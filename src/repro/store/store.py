"""The content-addressed result store: sqlite index + JSONL record shards.

A :class:`ResultStore` makes a computed :class:`~repro.api.spec.RunRecord`
an *artifact you fetch* instead of an execution you repeat.  Records are
keyed by :class:`~repro.store.keys.StoreKey` —
``(spec_id, seed, engine, code_version)`` — and live in two places:

* **shards** (``shards/<xx>.jsonl`` through the pluggable
  :class:`~repro.store.backend.StoreBackend`): append-only JSONL files,
  one *envelope* line per record —
  ``{"key": [...], "record": {...}, "sha256": "..."}`` — fanned out over
  the first two hex digits of the spec_id;
* **the index** (``index.sqlite``): one row per key with the shard name,
  the record's content hash and its creation time, so ``contains`` /
  ``stats`` / resume lookups never touch a shard.

Durability order is *shard first, index second*: a crash between the two
leaves an orphan line (harmless, compacted by :meth:`ResultStore.gc`),
never an index row pointing at missing bytes.  Corruption that does
arise — a truncated shard from a killed writer, a hand-edited file — is
detected on read by re-hashing the envelope; a shard whose indexed
records cannot be served is **quarantined** (moved aside, its index rows
purged) so the affected specs recompute instead of crashing the run.

Concurrency: multiple processes may share one store.  Sqlite serialises
index writes (WAL mode, busy-timeout), shard appends are atomic whole
lines (see :class:`~repro.store.backend.LocalBackend`), and duplicate
puts of the same key are benign — the index points at the winning line,
older duplicates become orphans.  :meth:`ResultStore.gc` compaction is
the one maintenance operation that assumes no concurrent writers.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..api.registry import STORE_BACKENDS
from ..api.spec import RunRecord, RunSpec
from .backend import LocalBackend, StoreBackend, StoreBackendError
from .keys import StoreKey, current_code_version

__all__ = [
    "StoreError",
    "StoreStats",
    "VerifyReport",
    "GcReport",
    "ResultStore",
    "open_store",
    "resolve_store",
]

#: Environment variable naming the default store directory.
STORE_ENV_VAR = "REPRO_STORE"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    spec_id TEXT NOT NULL,
    seed TEXT NOT NULL,
    engine TEXT NOT NULL,
    code_version TEXT NOT NULL,
    shard TEXT NOT NULL,
    sha256 TEXT NOT NULL,
    created_at REAL NOT NULL,
    nbytes INTEGER NOT NULL,
    PRIMARY KEY (spec_id, seed, engine, code_version)
);
CREATE INDEX IF NOT EXISTS records_by_shard ON records(shard);
CREATE INDEX IF NOT EXISTS records_by_created ON records(created_at);
CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
"""

#: Bump when the on-disk layout changes incompatibly.
LAYOUT_VERSION = "1"


class StoreError(RuntimeError):
    """The store is misconfigured or an operation cannot proceed."""


def _record_sha(record_json: str) -> str:
    return hashlib.sha256(record_json.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """Aggregate index statistics (no shard I/O)."""

    records: int
    shards: int
    total_bytes: int
    by_engine: Dict[str, int]
    by_code_version: Dict[str, int]
    oldest: Optional[float]
    newest: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for ``repro store stats`` and the service."""
        return {
            "records": self.records,
            "shards": self.shards,
            "total_bytes": self.total_bytes,
            "by_engine": dict(self.by_engine),
            "by_code_version": dict(self.by_code_version),
            "oldest": self.oldest,
            "newest": self.newest,
        }


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of re-hashing every shard against the index."""

    shards_checked: int
    records_checked: int
    missing: List[Tuple[StoreKey, str]] = field(default_factory=list)
    mismatched: List[Tuple[StoreKey, str]] = field(default_factory=list)
    orphan_lines: int = 0
    corrupt_lines: int = 0

    @property
    def clean(self) -> bool:
        """True when every indexed record is served by an intact line."""
        return not self.missing and not self.mismatched

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for ``repro store verify``."""
        return {
            "shards_checked": self.shards_checked,
            "records_checked": self.records_checked,
            "missing": [[list(key), shard] for key, shard in self.missing],
            "mismatched": [[list(key), shard] for key, shard in self.mismatched],
            "orphan_lines": self.orphan_lines,
            "corrupt_lines": self.corrupt_lines,
            "clean": self.clean,
        }


@dataclass(frozen=True)
class GcReport:
    """Outcome of one :meth:`ResultStore.gc` pass."""

    removed_records: int
    kept_records: int
    dropped_lines: int
    shards_compacted: int
    shards_deleted: int
    bytes_before: int
    bytes_after: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for ``repro store gc``."""
        return {
            "removed_records": self.removed_records,
            "kept_records": self.kept_records,
            "dropped_lines": self.dropped_lines,
            "shards_compacted": self.shards_compacted,
            "shards_deleted": self.shards_deleted,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
        }


class ResultStore:
    """A shared cache of executed runs, addressed by content.

    Parameters
    ----------
    root:
        Directory holding ``index.sqlite`` plus the default backend's
        shard files.  Created if missing.
    backend:
        A :class:`~repro.store.backend.StoreBackend` instance, or a name
        registered in :data:`~repro.api.registry.STORE_BACKENDS`
        (default ``"local"``, rooted at ``root``).
    code_version:
        The version stamped onto stored records and required of fetched
        ones; defaults to
        :func:`~repro.store.keys.current_code_version`.  Records written
        under a different code version are invisible (not deleted) —
        that is the invalidation rule.
    """

    def __init__(
        self,
        root: str,
        *,
        backend: Optional[Any] = None,
        code_version: Optional[str] = None,
    ) -> None:
        root = os.path.abspath(os.path.expanduser(root))
        if os.path.exists(root) and not os.path.isdir(root):
            raise StoreError(f"store root {root!r} exists and is not a directory")
        os.makedirs(root, exist_ok=True)
        self.root = root
        if backend is None:
            backend = LocalBackend(root)
        elif isinstance(backend, str):
            backend = STORE_BACKENDS.create(backend, root)
        if not isinstance(backend, StoreBackend):
            raise StoreError(
                f"backend must be a StoreBackend or registered name, got {backend!r}"
            )
        self.backend = backend
        self.code_version = code_version or current_code_version()
        self._index_path = os.path.join(root, "index.sqlite")
        self._local = threading.local()
        self._init_schema()

    # ------------------------------------------------------------------
    # sqlite plumbing
    # ------------------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """A per-(process, thread) connection — sqlite's safe sharing unit."""
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", None) == pid:
            return conn
        conn = sqlite3.connect(self._index_path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        self._local.conn = conn
        self._local.pid = pid
        return conn

    def _init_schema(self) -> None:
        conn = self._connection()
        with conn:
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('layout', ?)",
                (LAYOUT_VERSION,),
            )
        row = conn.execute("SELECT value FROM meta WHERE key = 'layout'").fetchone()
        if row and row[0] != LAYOUT_VERSION:
            raise StoreError(
                f"store at {self.root!r} uses layout {row[0]!r}; this build "
                f"speaks layout {LAYOUT_VERSION!r}"
            )

    def close(self) -> None:
        """Close this thread's index connection (other threads' stay open)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def __enter__(self) -> "ResultStore":
        """Context-manager support: ``with ResultStore(dir) as store:``."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Close the calling thread's connection on exit."""
        self.close()

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    def key_for(self, spec: RunSpec) -> StoreKey:
        """The :class:`StoreKey` this store files ``spec``'s record under."""
        return StoreKey.for_spec(spec, self.code_version)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def put(self, record: RunRecord, *, replace: bool = False) -> StoreKey:
        """Store one record; a no-op if its key is already present.

        Shard append happens before the index insert, so a crash between
        the two leaves an orphan line, never a dangling index row.  With
        ``replace=True`` an existing entry is superseded (the old line
        becomes an orphan until the next :meth:`gc`).
        """
        self.put_many([record], replace=replace)
        return self.key_for(record.spec)

    def put_many(self, records: Iterable[RunRecord], *, replace: bool = False) -> int:
        """Store many records in one index transaction; return how many were new."""
        conn = self._connection()
        new = 0
        pending: List[Tuple[StoreKey, str, int]] = []
        batch_seen: set = set()
        for record in records:
            key = self.key_for(record.spec)
            if key in batch_seen:
                continue
            batch_seen.add(key)
            if not replace and self._lookup(key) is not None:
                continue
            record_json = record.to_json()
            sha = _record_sha(record_json)
            envelope = json.dumps(
                {"key": key.to_list(), "record": json.loads(record_json), "sha256": sha},
                sort_keys=True,
                separators=(",", ":"),
            )
            data = (envelope + "\n").encode("utf-8")
            self.backend.append_line(key.shard, data)
            pending.append((key, sha, len(data)))
        if pending:
            now = time.time()
            with conn:
                conn.executemany(
                    "INSERT OR REPLACE INTO records "
                    "(spec_id, seed, engine, code_version, shard, sha256, created_at, nbytes) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            key.spec_id,
                            key.seed_text,
                            key.engine,
                            key.code_version,
                            key.shard,
                            sha,
                            now,
                            nbytes,
                        )
                        for key, sha, nbytes in pending
                    ],
                )
            new = len(pending)
        return new

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _lookup(self, key: StoreKey) -> Optional[Tuple[str, str]]:
        """Index row for ``key`` as ``(shard, sha256)``, or ``None``."""
        row = self._connection().execute(
            "SELECT shard, sha256 FROM records "
            "WHERE spec_id = ? AND seed = ? AND engine = ? AND code_version = ?",
            (key.spec_id, key.seed_text, key.engine, key.code_version),
        ).fetchone()
        return (row[0], row[1]) if row else None

    def contains(self, spec: RunSpec) -> bool:
        """Whether a record for ``spec`` is indexed (no shard I/O)."""
        return self._lookup(self.key_for(spec)) is not None

    def contains_many(self, specs: Iterable[RunSpec]) -> set:
        """The subset of ``specs``' spec_ids that are indexed (one query per chunk)."""
        keys = [self.key_for(spec) for spec in specs]
        found: set = set()
        conn = self._connection()
        chunk = 200
        for start in range(0, len(keys), chunk):
            part = keys[start : start + chunk]
            clause = " OR ".join(
                ["(spec_id = ? AND seed = ? AND engine = ? AND code_version = ?)"]
                * len(part)
            )
            params: List[Any] = []
            for key in part:
                params.extend([key.spec_id, key.seed_text, key.engine, key.code_version])
            for row in conn.execute(
                f"SELECT spec_id FROM records WHERE {clause}", params
            ):
                found.add(row[0])
        return found

    def get(self, spec: RunSpec) -> Optional[RunRecord]:
        """The stored record for ``spec``, or ``None`` (a cache miss).

        A miss is returned — never an exception — when the key is not
        indexed, when its shard was truncated or corrupted (the shard is
        quarantined and its index rows purged so the affected specs
        recompute), or when the backend itself fails.
        """
        fetched = self.get_many([spec])
        return fetched.get(spec.spec_id)

    def get_many(self, specs: Iterable[RunSpec]) -> Dict[str, RunRecord]:
        """Fetch every stored record among ``specs``, keyed by spec_id.

        Index lookups are batched and each needed shard is read exactly
        once, so a warm campaign resume costs one sqlite query round plus
        one file read per distinct spec_id prefix — independent of how
        many records the artifact JSONL (or the store) holds overall.
        """
        unique: Dict[str, StoreKey] = {}
        for spec in specs:
            sid = spec.spec_id
            if sid not in unique:
                unique[sid] = self.key_for(spec)
        if not unique:
            return {}
        indexed = self.contains_many_keys(list(unique.values()))
        wanted_by_shard: Dict[str, List[StoreKey]] = {}
        for sid, key in unique.items():
            sha = indexed.get(key)
            if sha is None:
                continue
            wanted_by_shard.setdefault(key.shard, []).append(key)
        results: Dict[str, RunRecord] = {}
        for shard, keys in wanted_by_shard.items():
            served = self._read_shard(shard, {key: indexed[key] for key in keys})
            results.update(served)
        return results

    def contains_many_keys(self, keys: Sequence[StoreKey]) -> Dict[StoreKey, str]:
        """Indexed subset of ``keys`` mapped to their recorded sha256."""
        conn = self._connection()
        found: Dict[StoreKey, str] = {}
        chunk = 200
        for start in range(0, len(keys), chunk):
            part = keys[start : start + chunk]
            clause = " OR ".join(
                ["(spec_id = ? AND seed = ? AND engine = ? AND code_version = ?)"]
                * len(part)
            )
            params: List[Any] = []
            for key in part:
                params.extend([key.spec_id, key.seed_text, key.engine, key.code_version])
            rows = conn.execute(
                "SELECT spec_id, seed, engine, code_version, sha256 "
                f"FROM records WHERE {clause}",
                params,
            ).fetchall()
            for spec_id, seed_text, engine, code_version, sha in rows:
                found[StoreKey(spec_id, json.loads(seed_text), engine, code_version)] = sha
        return found

    def _read_shard(
        self, shard: str, wanted: Dict[StoreKey, str]
    ) -> Dict[str, RunRecord]:
        """Serve ``wanted`` (key → indexed sha) from one shard scan.

        A shard that cannot serve every wanted indexed record is
        quarantined: some writer died mid-line, or the file was damaged.
        Lines are verified by re-hashing before anything is parsed into
        a :class:`RunRecord`, so a flipped bit never masquerades as data.
        """
        try:
            blob = self.backend.read_bytes(shard)
        except StoreBackendError:
            return {}
        by_sha: Dict[Tuple[StoreKey, str], str] = {}
        by_key: Dict[StoreKey, str] = {}
        for raw in blob.split(b"\n"):
            if not raw.strip():
                continue
            try:
                envelope = json.loads(raw.decode("utf-8"))
                key = StoreKey.from_list(envelope["key"])
                record_json = json.dumps(
                    envelope["record"], sort_keys=True, separators=(",", ":")
                )
                if _record_sha(record_json) != envelope["sha256"]:
                    continue  # self-inconsistent line: treat as absent
            except (ValueError, KeyError, TypeError):
                continue  # truncated/garbled line: treat as absent
            by_sha[(key, envelope["sha256"])] = record_json
            by_key[key] = record_json  # last writer wins for sha-less fallback
        served: Dict[str, RunRecord] = {}
        damaged = False
        for key, sha in wanted.items():
            record_json = by_sha.get((key, sha))
            if record_json is None:
                # Index/shard divergence for the exact sha (e.g. a racing
                # duplicate put): any intact line for the key still serves.
                record_json = by_key.get(key)
            if record_json is None:
                damaged = True
                continue
            try:
                served[key.spec_id] = RunRecord.from_json(record_json)
            except (ValueError, KeyError, TypeError):
                damaged = True
        if damaged:
            self._quarantine(shard)
            # Anything already parsed is still good data — keep serving it.
        return served

    def _quarantine(self, shard: str) -> None:
        """Move a damaged shard aside and purge its index rows."""
        try:
            self.backend.quarantine(shard)
        except StoreBackendError:
            pass
        conn = self._connection()
        with conn:
            conn.execute("DELETE FROM records WHERE shard = ?", (shard,))

    # ------------------------------------------------------------------
    # operations: stats / ls / verify / gc
    # ------------------------------------------------------------------

    def stats(self) -> StoreStats:
        """Aggregate counts from the index alone (cheap, no shard I/O)."""
        conn = self._connection()
        total, nbytes, oldest, newest = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(nbytes), 0), MIN(created_at), "
            "MAX(created_at) FROM records"
        ).fetchone()
        shards = conn.execute("SELECT COUNT(DISTINCT shard) FROM records").fetchone()[0]
        by_engine = dict(
            conn.execute("SELECT engine, COUNT(*) FROM records GROUP BY engine")
        )
        by_code_version = dict(
            conn.execute("SELECT code_version, COUNT(*) FROM records GROUP BY code_version")
        )
        return StoreStats(
            records=total,
            shards=shards,
            total_bytes=nbytes,
            by_engine=by_engine,
            by_code_version=by_code_version,
            oldest=oldest,
            newest=newest,
        )

    def ls(self, spec_id_prefix: str = "") -> List[Dict[str, Any]]:
        """Index rows whose spec_id starts with ``spec_id_prefix`` (hex).

        Returns plain dicts (JSON-safe) ordered newest-first; an empty
        prefix lists everything.  Spec ids are lowercase hex, so the
        prefix is validated before it reaches a ``LIKE`` pattern.
        """
        prefix = spec_id_prefix.strip().lower()
        if prefix and not all(c in "0123456789abcdef" for c in prefix):
            raise StoreError(f"spec_id prefix must be hex, got {spec_id_prefix!r}")
        rows = self._connection().execute(
            "SELECT spec_id, seed, engine, code_version, shard, sha256, "
            "created_at, nbytes FROM records WHERE spec_id LIKE ? "
            "ORDER BY created_at DESC, spec_id",
            (f"{prefix}%",),
        ).fetchall()
        return [
            {
                "spec_id": spec_id,
                "seed": json.loads(seed_text),
                "engine": engine,
                "code_version": code_version,
                "shard": shard,
                "sha256": sha,
                "created_at": created_at,
                "nbytes": nbytes,
            }
            for spec_id, seed_text, engine, code_version, shard, sha, created_at, nbytes in rows
        ]

    def _index_by_shard(self) -> Dict[str, Dict[StoreKey, str]]:
        """Every index row, grouped by shard, as ``key → sha256``."""
        grouped: Dict[str, Dict[StoreKey, str]] = {}
        for spec_id, seed_text, engine, code_version, shard, sha in self._connection().execute(
            "SELECT spec_id, seed, engine, code_version, shard, sha256 FROM records"
        ):
            key = StoreKey(spec_id, json.loads(seed_text), engine, code_version)
            grouped.setdefault(shard, {})[key] = sha
        return grouped

    def _scan_shard_lines(
        self, shard: str
    ) -> Tuple[List[Tuple[StoreKey, str, str]], int]:
        """All intact envelope lines of a shard plus the corrupt-line count."""
        lines: List[Tuple[StoreKey, str, str]] = []
        corrupt = 0
        for raw in self.backend.read_bytes(shard).split(b"\n"):
            if not raw.strip():
                continue
            try:
                envelope = json.loads(raw.decode("utf-8"))
                key = StoreKey.from_list(envelope["key"])
                record_json = json.dumps(
                    envelope["record"], sort_keys=True, separators=(",", ":")
                )
                if _record_sha(record_json) != envelope["sha256"]:
                    corrupt += 1
                    continue
                lines.append((key, envelope["sha256"], record_json))
            except (ValueError, KeyError, TypeError):
                corrupt += 1
        return lines, corrupt

    def verify(self) -> VerifyReport:
        """Re-hash every shard against the index; report divergence.

        ``missing`` — indexed records with no intact line for their key;
        ``mismatched`` — the key exists but never with the indexed hash;
        ``orphan_lines`` — intact lines no index row points at (crash
        leftovers and superseded duplicates; reclaimed by :meth:`gc`);
        ``corrupt_lines`` — lines that fail to parse or re-hash.
        """
        index = self._index_by_shard()
        shard_names = sorted(set(index) | set(self.backend.list_shards()))
        missing: List[Tuple[StoreKey, str]] = []
        mismatched: List[Tuple[StoreKey, str]] = []
        orphans = 0
        corrupt = 0
        checked = 0
        for shard in shard_names:
            lines, shard_corrupt = self._scan_shard_lines(shard)
            corrupt += shard_corrupt
            present = {(key, sha) for key, sha, _ in lines}
            present_keys = {key for key, _, _ in lines}
            wanted = index.get(shard, {})
            checked += len(wanted)
            for key, sha in wanted.items():
                if (key, sha) in present:
                    continue
                if key in present_keys:
                    mismatched.append((key, shard))
                else:
                    missing.append((key, shard))
            indexed_pairs = {(key, sha) for key, sha in wanted.items()}
            orphans += sum(1 for key, sha, _ in lines if (key, sha) not in indexed_pairs)
        return VerifyReport(
            shards_checked=len(shard_names),
            records_checked=checked,
            missing=missing,
            mismatched=mismatched,
            orphan_lines=orphans,
            corrupt_lines=corrupt,
        )

    def gc(self, keep_days: Optional[float] = None) -> GcReport:
        """Expire old records and compact every shard.

        ``keep_days`` drops records whose index row is older than that
        many days (``None`` keeps everything and only compacts).
        Compaction rewrites each shard to exactly its live indexed lines,
        reclaiming orphans, superseded duplicates and corrupt bytes, and
        deletes shards left empty.  Run it without concurrent writers —
        a line appended mid-compaction could be dropped by the rewrite.
        """
        conn = self._connection()
        removed = 0
        if keep_days is not None:
            cutoff = time.time() - float(keep_days) * 86400.0
            with conn:
                cursor = conn.execute(
                    "DELETE FROM records WHERE created_at < ?", (cutoff,)
                )
                removed = cursor.rowcount
        index = self._index_by_shard()
        shard_names = sorted(set(index) | set(self.backend.list_shards()))
        dropped_lines = 0
        compacted = 0
        deleted = 0
        bytes_before = 0
        bytes_after = 0
        kept = 0
        for shard in shard_names:
            original = self.backend.read_bytes(shard)
            bytes_before += len(original)
            lines, corrupt = self._scan_shard_lines(shard)
            wanted = index.get(shard, {})
            keep: List[str] = []
            seen: set = set()
            for key, sha, record_json in lines:
                if wanted.get(key) == sha and (key, sha) not in seen:
                    seen.add((key, sha))
                    envelope = json.dumps(
                        {
                            "key": key.to_list(),
                            "record": json.loads(record_json),
                            "sha256": sha,
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    keep.append(envelope)
            dropped_lines += (len(lines) + corrupt) - len(keep)
            kept += len(keep)
            if not keep:
                self.backend.delete(shard)
                deleted += 1
                continue
            data = ("\n".join(keep) + "\n").encode("utf-8")
            if data != original:
                self.backend.replace(shard, data)
                compacted += 1
            bytes_after += len(data)
        return GcReport(
            removed_records=removed,
            kept_records=kept,
            dropped_lines=dropped_lines,
            shards_compacted=compacted,
            shards_deleted=deleted,
            bytes_before=bytes_before,
            bytes_after=bytes_after,
        )


def open_store(
    root: str,
    *,
    backend: Optional[Any] = None,
    code_version: Optional[str] = None,
) -> ResultStore:
    """Open (creating if needed) the :class:`ResultStore` at ``root``."""
    return ResultStore(root, backend=backend, code_version=code_version)


def resolve_store(
    path: Optional[str] = None,
    *,
    no_store: bool = False,
    env: Optional[Dict[str, str]] = None,
) -> Optional[ResultStore]:
    """The store a CLI invocation should use, or ``None``.

    Resolution order: ``no_store`` wins (the escape hatch), then an
    explicit ``path`` (``--store DIR``), then the :data:`STORE_ENV_VAR`
    environment variable; with none of them set there is no store and
    callers fall back to JSONL-only behaviour.
    """
    if no_store:
        return None
    environ = os.environ if env is None else env
    root = path or environ.get(STORE_ENV_VAR)
    if not root:
        return None
    return ResultStore(root)
