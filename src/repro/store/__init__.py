"""Content-addressed result store: computed runs become fetchable artifacts.

Every experiment in this repository is a pure function of its
:class:`~repro.api.spec.RunSpec` (which embeds the seed and engine), so a
:class:`~repro.api.spec.RunRecord` computed once — by any campaign, user
or CI run — never needs computing again.  This package is the shared
cache that makes that true in practice:

* :class:`ResultStore` — sqlite index + append-only JSONL shards under a
  store directory, records keyed by
  ``(spec_id, seed, engine, code_version)`` with get/put/contains/stats/
  verify/gc (see :mod:`repro.store.store`);
* :class:`StoreKey` / :func:`current_code_version` — the keying and
  invalidation rules (:mod:`repro.store.keys`);
* :class:`~repro.store.backend.StoreBackend` — the pluggable byte layer
  (``"local"`` filesystem default, ``"remote"`` stub), registered in
  :data:`~repro.api.registry.STORE_BACKENDS`
  (:mod:`repro.store.backend`).

Typical use::

    from repro.api import BatchRunner, RunSpec
    from repro.store import ResultStore

    store = ResultStore("~/.cache/repro-store")
    runner = BatchRunner(store=store)
    records = runner.run(specs)          # hits cost a lookup, not a run
    print(runner.stats.store_hits, runner.stats.store_misses)

Or from a shell: ``repro experiment all --quick --store DIR`` (or set
``REPRO_STORE``); ``repro store stats`` / ``ls`` / ``verify`` / ``gc``
operate on the store itself, and ``repro serve`` exposes the whole
pipeline over HTTP (see :mod:`repro.service`).
"""

from .backend import (
    LocalBackend,
    RemoteBackendStub,
    StoreBackend,
    StoreBackendError,
)
from .keys import StoreKey, current_code_version, shard_name
from .store import (
    GcReport,
    ResultStore,
    STORE_ENV_VAR,
    StoreError,
    StoreStats,
    VerifyReport,
    open_store,
    resolve_store,
)

__all__ = [
    # keys
    "StoreKey",
    "current_code_version",
    "shard_name",
    # backends
    "StoreBackend",
    "LocalBackend",
    "RemoteBackendStub",
    "StoreBackendError",
    # the store
    "ResultStore",
    "StoreStats",
    "VerifyReport",
    "GcReport",
    "StoreError",
    "STORE_ENV_VAR",
    "open_store",
    "resolve_store",
]
