"""Pluggable byte-level backends for result-store shards.

The :class:`~repro.store.store.ResultStore` separates *what* it stores
(envelope lines addressed by :class:`~repro.store.keys.StoreKey`, indexed
in a local sqlite file) from *where* the shard bytes live.  A
:class:`StoreBackend` is the latter: a tiny append/read/replace interface
over named shard files, in the spirit of the pluggable ``S3Client``-style
trace backends of storage-research harnesses — the local filesystem
backend is the default, and a remote backend slots in behind the same
five methods.

Backends register themselves in
:data:`~repro.api.registry.STORE_BACKENDS` so a store location can name
one (``repro serve --store dir`` uses ``"local"``); the ``"remote"``
entry ships as an explicit stub — constructing it works (so specs and
configs naming it round-trip), but every byte operation raises
:class:`StoreBackendError` with a pointer at what a real implementation
must provide.

Append atomicity contract: :meth:`StoreBackend.append_line` must make the
whole line visible atomically — concurrent writers may interleave *lines*
but never *bytes within a line*.  The local backend gets this from a
single ``os.write`` on an ``O_APPEND`` descriptor (POSIX appends are
atomic per ``write`` call); any future backend must provide the same
guarantee or wrap appends in its own locking.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import List

from ..api.registry import STORE_BACKENDS

__all__ = [
    "StoreBackendError",
    "StoreBackend",
    "LocalBackend",
    "RemoteBackendStub",
]


class StoreBackendError(RuntimeError):
    """A backend operation failed (or the backend is an unwired stub)."""


class StoreBackend(ABC):
    """Byte storage for shard files, by name (``"ab.jsonl"``).

    Shard names never contain path separators; the backend owns the
    mapping from name to physical location.  All payloads are bytes of
    complete, newline-terminated JSONL lines.
    """

    @abstractmethod
    def append_line(self, name: str, data: bytes) -> None:
        """Atomically append one newline-terminated line to a shard."""

    @abstractmethod
    def read_bytes(self, name: str) -> bytes:
        """The shard's full contents; empty bytes if it does not exist."""

    @abstractmethod
    def replace(self, name: str, data: bytes) -> None:
        """Atomically replace a shard's contents (gc compaction)."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove a shard; missing shards are not an error."""

    @abstractmethod
    def list_shards(self) -> List[str]:
        """Every existing shard name, sorted."""

    @abstractmethod
    def quarantine(self, name: str) -> str:
        """Move a corrupt shard out of the data path; return its new name.

        Quarantined shards are kept (never silently destroyed — an
        operator may want the bytes) but stop being served; the caller is
        responsible for purging index rows that pointed into them.
        """


@STORE_BACKENDS.register("local")
class LocalBackend(StoreBackend):
    """Shards as files under ``<root>/shards/`` (the default backend).

    Appends go through a single ``os.write`` on an ``O_APPEND``
    descriptor, so concurrent store writers — two ``repro experiment``
    processes sharing one store — interleave whole lines, never partial
    ones.  Quarantined shards move to ``<root>/quarantine/`` with a
    monotonic suffix.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.shard_dir = os.path.join(root, "shards")
        self.quarantine_dir = os.path.join(root, "quarantine")
        os.makedirs(self.shard_dir, exist_ok=True)

    def _path(self, name: str) -> str:
        if os.sep in name or (os.altsep and os.altsep in name) or name.startswith("."):
            raise StoreBackendError(f"illegal shard name {name!r}")
        return os.path.join(self.shard_dir, name)

    def append_line(self, name: str, data: bytes) -> None:
        """Atomically append one line (single ``write`` on ``O_APPEND``)."""
        if not data.endswith(b"\n"):
            raise StoreBackendError("append_line payload must be newline-terminated")
        fd = os.open(self._path(name), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def read_bytes(self, name: str) -> bytes:
        """The shard's contents, or ``b""`` for a shard never written."""
        try:
            with open(self._path(name), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return b""

    def replace(self, name: str, data: bytes) -> None:
        """Write-then-rename so readers always see a complete shard."""
        path = self._path(name)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    def delete(self, name: str) -> None:
        """Remove the shard file if present."""
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            pass

    def list_shards(self) -> List[str]:
        """Sorted shard names currently on disk."""
        try:
            return sorted(
                entry
                for entry in os.listdir(self.shard_dir)
                if entry.endswith(".jsonl")
            )
        except FileNotFoundError:
            return []

    def quarantine(self, name: str) -> str:
        """Move the shard into ``quarantine/`` under a non-clobbering name."""
        os.makedirs(self.quarantine_dir, exist_ok=True)
        source = self._path(name)
        for attempt in range(10_000):
            target_name = f"{name}.{attempt}" if attempt else name
            target = os.path.join(self.quarantine_dir, target_name)
            if not os.path.exists(target):
                try:
                    os.replace(source, target)
                except FileNotFoundError:
                    return target_name  # already gone: quarantined by a peer
                return target_name
        raise StoreBackendError(f"cannot find a quarantine slot for {name!r}")


@STORE_BACKENDS.register("remote")
class RemoteBackendStub(StoreBackend):
    """Placeholder for an object-store backend (S3-style), deliberately inert.

    The store's read/write path is already backend-shaped; this entry
    reserves the ``"remote"`` name and documents the contract a real
    implementation must meet (atomic whole-line appends, atomic replace).
    Constructing it is allowed — configuration can round-trip — but every
    byte operation raises :class:`StoreBackendError` so a misconfigured
    deployment fails loudly instead of silently caching nothing.
    """

    def __init__(self, url: str = "") -> None:
        self.url = url

    def _unwired(self) -> StoreBackendError:
        return StoreBackendError(
            "the 'remote' store backend is a stub: shard I/O against "
            f"{self.url or '<no url>'} is not implemented; use the 'local' "
            "backend, or provide a StoreBackend subclass with atomic "
            "append_line/replace semantics"
        )

    def append_line(self, name: str, data: bytes) -> None:
        """Stub: raises :class:`StoreBackendError`."""
        raise self._unwired()

    def read_bytes(self, name: str) -> bytes:
        """Stub: raises :class:`StoreBackendError`."""
        raise self._unwired()

    def replace(self, name: str, data: bytes) -> None:
        """Stub: raises :class:`StoreBackendError`."""
        raise self._unwired()

    def delete(self, name: str) -> None:
        """Stub: raises :class:`StoreBackendError`."""
        raise self._unwired()

    def list_shards(self) -> List[str]:
        """Stub: raises :class:`StoreBackendError`."""
        raise self._unwired()

    def quarantine(self, name: str) -> str:
        """Stub: raises :class:`StoreBackendError`."""
        raise self._unwired()
