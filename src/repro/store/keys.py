"""Content-addressed keys for stored run records.

Every :class:`~repro.api.spec.RunRecord` in a
:class:`~repro.store.store.ResultStore` is addressed by a
:class:`StoreKey` — the four fields that determine whether a cached
record may stand in for a fresh execution:

* ``spec_id`` — the :attr:`~repro.api.spec.RunSpec.spec_id` content hash
  (which already covers graph, protocol, scheduler, engine, seed, fault
  model and every other semantic field of the spec);
* ``seed`` / ``engine`` — denormalised out of the spec so the index can
  be queried by them directly (``repro store ls``, per-engine stats)
  without parsing record payloads;
* ``code_version`` — the version of the code that produced the record.
  Experiments are pure functions of ``(spec, seed)`` *for a fixed
  implementation*; bumping the package version invalidates every cached
  record at once, which is the conservative-correct invalidation rule
  (see docs/STORE.md).

The key is deliberately redundant — ``spec_id`` alone determines ``seed``
and ``engine`` — but the redundancy is what makes the sqlite index
answer operational questions (how many fastpath records? which seeds of
this spec are cached?) without touching a shard.
"""

from __future__ import annotations

import json
import os
from typing import NamedTuple, Optional

__all__ = ["StoreKey", "current_code_version", "shard_name"]


def current_code_version() -> str:
    """The code version stamped onto (and required of) store records.

    Defaults to the installed :data:`repro.__version__`; the
    ``REPRO_STORE_CODE_VERSION`` environment variable overrides it — the
    escape hatch for rescuing a warm store across a version bump that is
    known not to change run semantics (documented in docs/STORE.md).
    """
    override = os.environ.get("REPRO_STORE_CODE_VERSION")
    if override:
        return override
    from .. import __version__

    return __version__


class StoreKey(NamedTuple):
    """The identity of one stored record: ``(spec_id, seed, engine, code_version)``."""

    spec_id: str
    seed: Optional[int]
    engine: str
    code_version: str

    @classmethod
    def for_spec(cls, spec, code_version: Optional[str] = None) -> "StoreKey":
        """The key under which ``spec``'s record is stored (or looked up)."""
        return cls(
            spec_id=spec.spec_id,
            seed=spec.seed,
            engine=spec.engine,
            code_version=code_version or current_code_version(),
        )

    @property
    def seed_text(self) -> str:
        """The seed as canonical JSON text (``"7"`` / ``"null"``).

        Sqlite composite primary keys treat ``NULL`` values as pairwise
        distinct, which would let seedless specs collide into duplicate
        index rows; storing the JSON text keeps the uniqueness constraint
        honest for every seed value.
        """
        return json.dumps(self.seed)

    @property
    def shard(self) -> str:
        """The shard file this key's record lives in."""
        return shard_name(self.spec_id)

    def to_list(self) -> list:
        """JSON-envelope form: ``[spec_id, seed, engine, code_version]``."""
        return [self.spec_id, self.seed, self.engine, self.code_version]

    @classmethod
    def from_list(cls, payload: list) -> "StoreKey":
        """Inverse of :meth:`to_list`."""
        spec_id, seed, engine, code_version = payload
        return cls(spec_id, seed, engine, code_version)


def shard_name(spec_id: str) -> str:
    """The shard file holding ``spec_id``'s records (``"shards/ab.jsonl"``).

    Records fan out over 256 append-only JSONL files keyed by the first
    two hex digits of the spec_id, so one shard stays small enough to
    scan in microseconds while the store as a whole scales to millions
    of records.
    """
    prefix = spec_id[:2] if len(spec_id) >= 2 else (spec_id + "__")[:2]
    return f"{prefix}.jsonl"
