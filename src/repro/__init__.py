"""repro — reproduction of Langberg, Schwartz & Bruck (PODC 2007),
*Distributed Broadcasting and Mapping Protocols in Directed Anonymous
Networks*.

The package implements, from scratch:

* the paper's formal model of anonymous protocols on directed networks
  (:mod:`repro.core.model`) over an asynchronous discrete-event substrate
  (:mod:`repro.network`),
* the four protocols — grounded-tree broadcast, DAG broadcast,
  general-graph interval broadcast, and unique label assignment — plus the
  Section 6 topology-mapping extension (:mod:`repro.core`),
* the lower-bound witness constructions and their measurement harnesses
  (:mod:`repro.graphs`, :mod:`repro.lowerbounds`),
* classical undirected/strongly-connected baselines for the Section 6
  comparison (:mod:`repro.baselines`), and
* the experiment drivers behind every row of EXPERIMENTS.md
  (:mod:`repro.analysis`).

Quickstart::

    from repro import (
        GeneralBroadcastProtocol, run_protocol, random_digraph,
    )

    net = random_digraph(num_internal=40, seed=1)
    result = run_protocol(net, GeneralBroadcastProtocol("hello"))
    assert result.terminated
    print(result.metrics.total_bits, "bits,", result.metrics.total_messages, "messages")
"""

from .core import (
    AnonymousProtocol,
    DagBroadcastProtocol,
    Dyadic,
    FunctionalProtocol,
    GeneralBroadcastProtocol,
    Interval,
    IntervalUnion,
    LabelAssignmentProtocol,
    TreeBroadcastProtocol,
    VertexView,
    canonical_partition,
    extract_labels,
    labels_pairwise_disjoint,
    split_interval,
)
from .core.mapping import MappingProtocol, NetworkMap
from .graphs import (
    caterpillar_gn,
    full_tree_with_terminal,
    path_network,
    pruned_tree,
    random_dag,
    random_digraph,
    random_grounded_tree,
    skeleton_tree,
)
from .network import (
    DirectedNetwork,
    Outcome,
    RunResult,
    run_protocol,
    make_standard_schedulers,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model + protocols
    "AnonymousProtocol",
    "FunctionalProtocol",
    "VertexView",
    "TreeBroadcastProtocol",
    "DagBroadcastProtocol",
    "GeneralBroadcastProtocol",
    "LabelAssignmentProtocol",
    "extract_labels",
    "labels_pairwise_disjoint",
    "MappingProtocol",
    "NetworkMap",
    # arithmetic
    "Dyadic",
    "Interval",
    "IntervalUnion",
    "split_interval",
    "canonical_partition",
    # substrate
    "DirectedNetwork",
    "run_protocol",
    "RunResult",
    "Outcome",
    "make_standard_schedulers",
    # graphs
    "random_grounded_tree",
    "random_dag",
    "random_digraph",
    "path_network",
    "caterpillar_gn",
    "skeleton_tree",
    "full_tree_with_terminal",
    "pruned_tree",
]
