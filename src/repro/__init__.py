"""repro — reproduction of Langberg, Schwartz & Bruck (PODC 2007),
*Distributed Broadcasting and Mapping Protocols in Directed Anonymous
Networks*.

The package implements, from scratch:

* the paper's formal model of anonymous protocols on directed networks
  (:mod:`repro.core.model`) over an asynchronous discrete-event substrate
  (:mod:`repro.network`),
* the four protocols — grounded-tree broadcast, DAG broadcast,
  general-graph interval broadcast, and unique label assignment — plus the
  Section 6 topology-mapping extension (:mod:`repro.core`),
* the lower-bound witness constructions and their measurement harnesses
  (:mod:`repro.graphs`, :mod:`repro.lowerbounds`),
* classical undirected/strongly-connected baselines for the Section 6
  comparison (:mod:`repro.baselines`),
* the experiment drivers behind every row of EXPERIMENTS.md
  (:mod:`repro.analysis`), and
* the run-spec layer (:mod:`repro.api`): serializable
  :class:`~repro.api.spec.RunSpec` descriptions of runs, string registries
  for every protocol/graph/scheduler, and a parallel
  :class:`~repro.api.runner.BatchRunner` with JSONL persistence + resume.

Quickstart — direct calls::

    from repro import (
        GeneralBroadcastProtocol, run_protocol, random_digraph,
    )

    net = random_digraph(num_internal=40, seed=1)
    result = run_protocol(net, GeneralBroadcastProtocol("hello"))
    assert result.terminated
    print(result.metrics.total_bits, "bits,", result.metrics.total_messages, "messages")

Quickstart — the same run as data (addressable, serializable, batchable)::

    from repro import RunSpec, BatchRunner

    spec = RunSpec(
        graph="random-digraph", graph_params={"num_internal": 40},
        protocol="general-broadcast", protocol_params={"broadcast_payload": "hello"},
        seed=1,
    )
    record = spec.run()                      # or execute_spec(spec)
    assert record.terminated
    spec == RunSpec.from_dict(spec.to_dict())  # JSON round-trip, always

    # Many runs, in parallel, persisted and resumable:
    records = BatchRunner().run(
        [spec.with_seed(s) for s in range(32)], output_path="out.jsonl"
    )

Registry names (see ``repro registry`` for the live list): protocols
``tree-broadcast``, ``dag-broadcast``, ``general-broadcast``,
``label-assignment``, ``topology-mapping``, plus the ``naive-tree-broadcast``
/ ``eager-dag-broadcast`` / ``flooding`` baselines; graphs
``random-grounded-tree``, ``random-dag``, ``random-digraph``,
``layered-diamond-dag``, ``path-network``, ``geometric-sensor-field``,
``caterpillar-gn``, ``skeleton-tree``, ``full-tree-with-terminal``,
``pruned-tree``; transforms ``with-dead-end-vertex``,
``with-stranded-cycle``; schedulers ``fifo``, ``lifo``, ``random``,
``terminal-last``, ``terminal-first``, ``port-biased``, ``latency``,
``dropping``; engines ``async``, ``fastpath``, ``synchronous``.

Choosing an engine: ``RunSpec(engine="fastpath")`` runs the compiled
flat-state engine (:mod:`repro.network.fastpath`) — result-identical to
the default ``"async"`` reference engine and several times faster on
large runs; use it for sweeps and batches, and keep ``"async"`` when
stepping through the reference implementation.  ``repro bench --quick``
measures both on this machine (see README.md).
"""

from .core import (
    AnonymousProtocol,
    DagBroadcastProtocol,
    Dyadic,
    FunctionalProtocol,
    GeneralBroadcastProtocol,
    Interval,
    IntervalUnion,
    LabelAssignmentProtocol,
    TreeBroadcastProtocol,
    VertexView,
    canonical_partition,
    extract_labels,
    labels_pairwise_disjoint,
    split_interval,
)
from .core.mapping import MappingProtocol, NetworkMap
from .graphs import (
    caterpillar_gn,
    full_tree_with_terminal,
    path_network,
    pruned_tree,
    random_dag,
    random_digraph,
    random_grounded_tree,
    skeleton_tree,
)
from .network import (
    ChurnFault,
    CrashFault,
    DirectedNetwork,
    FaultSpec,
    Outcome,
    RunResult,
    run_protocol,
    make_standard_schedulers,
)
from .api import (
    GRAPH_TRANSFORMS,
    GRAPHS,
    PROTOCOLS,
    SCHEDULERS,
    BatchRunner,
    CampaignRunner,
    ExperimentSpec,
    RunRecord,
    RunSpec,
    execute_spec,
    execute_spec_full,
    run_experiment,
    run_specs,
)

__version__ = "1.8.0"

__all__ = [
    "__version__",
    # model + protocols
    "AnonymousProtocol",
    "FunctionalProtocol",
    "VertexView",
    "TreeBroadcastProtocol",
    "DagBroadcastProtocol",
    "GeneralBroadcastProtocol",
    "LabelAssignmentProtocol",
    "extract_labels",
    "labels_pairwise_disjoint",
    "MappingProtocol",
    "NetworkMap",
    # arithmetic
    "Dyadic",
    "Interval",
    "IntervalUnion",
    "split_interval",
    "canonical_partition",
    # substrate
    "DirectedNetwork",
    "run_protocol",
    "RunResult",
    "Outcome",
    "make_standard_schedulers",
    "FaultSpec",
    "CrashFault",
    "ChurnFault",
    # graphs
    "random_grounded_tree",
    "random_dag",
    "random_digraph",
    "path_network",
    "caterpillar_gn",
    "skeleton_tree",
    "full_tree_with_terminal",
    "pruned_tree",
    # run-spec layer
    "RunSpec",
    "RunRecord",
    "BatchRunner",
    "execute_spec",
    "execute_spec_full",
    "run_specs",
    "PROTOCOLS",
    "GRAPHS",
    "GRAPH_TRANSFORMS",
    "SCHEDULERS",
    # campaign layer
    "ExperimentSpec",
    "CampaignRunner",
    "run_experiment",
]
