"""Command-line interface: run experiments and spec batches from a shell.

Usage::

    python -m repro list                 # show the experiment index
    python -m repro run E5               # run one experiment, print its table
    python -m repro run all              # run all eighteen
    python -m repro run E1 E9 --out report.txt
    python -m repro run --spec spec.json # execute one RunSpec file
    python -m repro batch specs.json -o out.jsonl   # parallel batch + resume
    python -m repro experiment e05 --engine fastpath  # registered campaign
    python -m repro experiment all --quick --out artifacts/
    python -m repro registry             # list spec-addressable names
    python -m repro bench --quick        # engine throughput -> BENCH_engines.json
    python -m repro experiment all --quick --store ~/.cache/repro-store
    python -m repro store stats --store ~/.cache/repro-store
    python -m repro serve --port 8642 --store ~/.cache/repro-store

``run --spec`` and ``batch`` drive the :mod:`repro.api` run-spec layer;
``experiment`` drives the campaign layer on top of it — registered
:class:`~repro.api.campaign.ExperimentSpec` grids executed with
spec_id-keyed resume and per-experiment artifacts.  The experiment index
(``list``) is derived from the :data:`~repro.api.registry.EXPERIMENTS`
registry, so a registered experiment can never be missing from the
listing.

``--store DIR`` (or the ``REPRO_STORE`` environment variable) attaches a
content-addressed :class:`~repro.store.store.ResultStore` to ``run
--spec``, ``batch`` and ``experiment``: any record computed before — in
any campaign, by any user of the store — is a cache hit, and the summary
lines grow ``store_hits`` / ``store_misses`` / ``store_hit_rate``
fields.  ``repro store`` inspects and maintains a store; ``repro serve``
exposes campaign submission over HTTP (see :mod:`repro.service`).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from typing import IO, Dict, List, Optional, Sequence

from .analysis.experiments import ALL_EXPERIMENTS
from .analysis.report import render_table
from .api import (
    ENGINES,
    EXPERIMENTS,
    BatchRunner,
    CampaignRunner,
    RunRecord,
    SpecError,
    all_registries,
    ensure_registered,
    execute_spec,
    load_experiment,
    load_specs,
)
from .store import STORE_ENV_VAR, ResultStore, StoreError, resolve_store

__all__ = ["main", "build_parser"]


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``--store`` / ``--no-store`` pair (batch, experiment, run, serve)."""
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="content-addressed result store directory (default: the "
        f"{STORE_ENV_VAR} environment variable, if set); previously computed "
        "records are served from the store instead of re-executed",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help=f"ignore --store and {STORE_ENV_VAR}; run without a result store",
    )


def _store_or_die(args) -> Optional[ResultStore]:
    """Resolve the CLI store flags, mapping defects to one-line exits."""
    try:
        return resolve_store(path=args.store, no_store=args.no_store)
    except StoreError as exc:
        raise SystemExit(f"cannot open result store: {exc}") from None


def _load_or_die(path: str, loader, noun: str):
    """Read a spec/experiment file, mapping every defect to a one-line exit.

    A typo'd path, malformed JSON, or an invalid payload (unknown field,
    bad ``faults`` model, unregistered engine) must produce a clear
    single-line error and a nonzero exit — never a traceback.
    """
    try:
        return loader(path)
    except OSError as exc:
        raise SystemExit(f"cannot read {noun} file {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"malformed JSON in {noun} file {path!r}: {exc}") from None
    except SpecError as exc:
        raise SystemExit(f"invalid {noun} in {path!r}: {exc}") from None


def _legacy_id(name: str) -> str:
    """Registry name → the historical experiment id (``"e01"`` → ``"E1"``)."""
    match = re.fullmatch(r"e(\d+)", name)
    return f"E{int(match.group(1))}" if match else name


def _campaign_name(key: str) -> Optional[str]:
    """Any of ``E1``/``e1``/``e01`` → the registry name ``e01``."""
    match = re.fullmatch(r"[eE](\d+)", key)
    return f"e{int(match.group(1)):02d}" if match else None


def _experiment_titles() -> Dict[str, str]:
    """Legacy id → registered title, for the ``run``/``report`` headers."""
    ensure_registered()
    return {
        _legacy_id(name): getattr(EXPERIMENTS.get(name), "title", "") or name
        for name in EXPERIMENTS.names()
    }


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction experiments for 'Distributed Broadcasting and "
            "Mapping Protocols in Directed Anonymous Networks' (PODC 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiments and what they reproduce")

    run = sub.add_parser(
        "run", help="run experiments (or one spec file) and print results"
    )
    run.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (E1..E18) or 'all'",
    )
    run.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="execute the RunSpec in this JSON file instead of an experiment",
    )
    run.add_argument(
        "--out",
        default=None,
        help="also append the output to this file",
    )
    run.add_argument(
        "--engine",
        default=None,
        metavar="ENGINE",
        help="override the execution engine of the --spec run",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="POLICY",
        help="record a durable .rtrace of the --spec run: 'full' or "
        "'sample:k' (overrides the spec's own trace field)",
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="where to write the .rtrace (default: the spec file name with "
        "an .rtrace extension)",
    )
    _add_store_flags(run)

    batch = sub.add_parser(
        "batch", help="execute a JSON file of RunSpecs in parallel, with resume"
    )
    batch.add_argument("specs", help="JSON list (or JSONL) of RunSpec objects")
    batch.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="FILE",
        help="JSONL output; if it already holds records, matching specs are "
        "reused instead of re-executed",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: cpu count)",
    )
    batch.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="specs per worker dispatch (default: auto-tuned to batch size)",
    )
    batch.add_argument(
        "--serial",
        action="store_true",
        help="run in-process instead of a process pool",
    )
    batch.add_argument(
        "--no-resume",
        action="store_true",
        help="re-execute every spec even if the output file has its record",
    )
    batch.add_argument(
        "--engine",
        default=None,
        metavar="ENGINE",
        help="override the execution engine for every spec in the file",
    )
    batch.add_argument(
        "--batch-min-group",
        type=int,
        default=None,
        metavar="K",
        help="smallest seed-group dispatched through an engine's run_many "
        "(default 8); smaller groups run per-seed",
    )
    _add_store_flags(batch)

    experiment = sub.add_parser(
        "experiment",
        help="run registered experiment campaigns (ExperimentSpec grids) with resume",
    )
    experiment.add_argument(
        "names",
        nargs="*",
        help="experiment names (e01..e19, E1..E19) or 'all'",
    )
    experiment.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="run the ExperimentSpec in this JSON file instead of registered ones",
    )
    experiment.add_argument(
        "--engine",
        default=None,
        metavar="ENGINE",
        help="override the execution engine for every expanded run "
        "(ignored by engine-locked campaigns such as e13)",
    )
    experiment.add_argument(
        "--scale",
        default=None,
        metavar="NAME",
        help="named axis override from the campaign's scales (e.g. 'quick')",
    )
    experiment.add_argument(
        "--trace",
        default=None,
        metavar="POLICY",
        help="record every expanded run: 'full' or 'sample:k'; with "
        "--store the .rtrace artifacts land under <store>/traces/",
    )
    experiment.add_argument(
        "--quick", action="store_true", help="shorthand for --scale quick"
    )
    experiment.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory: per experiment a <name>.runs.jsonl resume "
        "file and a <name>.rows.json table",
    )
    experiment.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: cpu count)",
    )
    experiment.add_argument(
        "--serial",
        action="store_true",
        help="run in-process instead of a process pool",
    )
    experiment.add_argument(
        "--no-resume",
        action="store_true",
        help="re-execute every run even if the artifact dir has its record",
    )
    experiment.add_argument(
        "--batch-min-group",
        type=int,
        default=None,
        metavar="K",
        help="smallest seed-group dispatched through an engine's run_many "
        "(default 8); smaller groups run per-seed",
    )
    _add_store_flags(experiment)

    store = sub.add_parser(
        "store",
        help="inspect and maintain a content-addressed result store",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="index statistics: record/shard counts, bytes, engines"
    )
    store_ls = store_sub.add_parser(
        "ls", help="list index rows for a spec_id (hex prefix match)"
    )
    store_ls.add_argument(
        "spec_id",
        nargs="?",
        default="",
        help="spec_id or hex prefix (empty lists everything, newest first)",
    )
    store_ls.add_argument(
        "--limit",
        type=int,
        default=50,
        help="maximum rows to print (default: 50)",
    )
    store_verify = store_sub.add_parser(
        "verify", help="re-hash every shard against the index, report corruption"
    )
    store_gc = store_sub.add_parser(
        "gc", help="expire old records and compact shards (reclaims orphans)"
    )
    store_gc.add_argument(
        "--keep-days",
        type=float,
        default=None,
        metavar="N",
        help="drop records older than N days (default: keep all, only compact)",
    )
    for store_cmd in (store_stats, store_ls, store_verify, store_gc):
        _add_store_flags(store_cmd)

    serve = sub.add_parser(
        "serve",
        help="HTTP experiment service: POST campaigns, poll status, fetch results",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port (default: 8642; 0 picks a free port)",
    )
    serve.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory; each job writes under <DIR>/<job-id>/",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per job (default: cpu count)",
    )
    serve.add_argument(
        "--serial",
        action="store_true",
        help="execute each job's runs in-process instead of a process pool",
    )
    serve.add_argument(
        "--job-workers",
        type=int,
        default=1,
        help="concurrent jobs (default: 1)",
    )
    _add_store_flags(serve)

    sub.add_parser(
        "registry",
        help="list the registered protocol, graph, transform, scheduler, "
        "engine, aggregator and experiment names",
    )

    trace = sub.add_parser(
        "trace",
        help="record, inspect, profile and deterministically replay "
        ".rtrace execution traces",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_record = trace_sub.add_parser(
        "record", help="execute a RunSpec file and write its .rtrace"
    )
    trace_record.add_argument("spec", help="RunSpec JSON file to execute")
    trace_record.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="FILE",
        help=".rtrace output (default: the spec file name with an .rtrace "
        "extension)",
    )
    trace_record.add_argument(
        "--trace",
        default="full",
        metavar="POLICY",
        help="capture policy: 'full' (default) or 'sample:k'",
    )
    trace_record.add_argument(
        "--engine",
        default=None,
        metavar="ENGINE",
        help="override the spec's execution engine",
    )
    trace_info = trace_sub.add_parser(
        "info", help="print a trace's header and footer as JSON"
    )
    trace_info.add_argument("trace", help=".rtrace file")
    trace_profile = trace_sub.add_parser(
        "profile",
        help="histogram profile (message sizes, per-edge/-vertex load, "
        "deferral depth) of one or more traces",
    )
    trace_profile.add_argument("traces", nargs="+", help=".rtrace file(s)")
    trace_replay = trace_sub.add_parser(
        "replay",
        help="re-execute a recording and verify it bit for bit "
        "(exit 0 iff the execution reproduces)",
    )
    trace_replay.add_argument("trace", help=".rtrace file")
    trace_replay.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="cross-check the trace against this RunSpec file's workload "
        "before replaying",
    )

    schedule = sub.add_parser(
        "schedule",
        help="guided worst-case schedule search and replayable certificates",
    )
    schedule_sub = schedule.add_subparsers(dest="schedule_command", required=True)
    schedule_search = schedule_sub.add_parser(
        "search",
        help="search a RunSpec's schedule space for the objective's worst "
        "execution and emit a replayable certificate",
    )
    schedule_search.add_argument("spec", help="RunSpec JSON file (the workload)")
    schedule_search.add_argument(
        "--objective",
        default="max-steps",
        metavar="NAME",
        help="search objective (default: max-steps; see `repro schedule "
        "search --list-objectives`)",
    )
    schedule_search.add_argument(
        "--list-objectives",
        action="store_true",
        help="list the registered objectives and exit",
    )
    schedule_search.add_argument(
        "--max-nodes",
        type=int,
        default=200_000,
        metavar="N",
        help="search node budget (default: 200000)",
    )
    schedule_search.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard the frontier across N processes (default: serial)",
    )
    schedule_search.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="FILE",
        help="write the certificate JSON here (default: stdout summary only, "
        "or under <store>/schedules/ when a store is given)",
    )
    _add_store_flags(schedule_search)
    schedule_info = schedule_sub.add_parser(
        "info", help="print a certificate's claims and search provenance"
    )
    schedule_info.add_argument("certificate", help="certificate JSON file")
    schedule_replay = schedule_sub.add_parser(
        "replay",
        help="independently re-execute a certificate and verify every claim "
        "bit for bit (exit 0 iff it checks out)",
    )
    schedule_replay.add_argument("certificate", help="certificate JSON file")

    bench = sub.add_parser(
        "bench",
        help="measure engine throughput (steps/sec) and write BENCH_engines.json",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small size sweep with fewer repeats (the CI configuration)",
    )
    bench.add_argument(
        "--out",
        default="BENCH_engines.json",
        metavar="FILE",
        help="JSON output path (default: BENCH_engines.json)",
    )
    bench.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="graph sizes |V| to benchmark (overrides --quick/full defaults)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed runs per engine/size, best taken (default: 2 quick, 3 full)",
    )
    bench.add_argument(
        "--engines",
        nargs="+",
        default=None,
        metavar="ENGINE",
        help="engines to benchmark (default: async fastpath synchronous)",
    )
    bench.add_argument(
        "--floors",
        default=None,
        metavar="FILE",
        help="floors JSON (benchmarks/floors.json); exit non-zero on violation",
    )
    bench.add_argument(
        "--no-protocols",
        action="store_true",
        help="skip the per-protocol kernel coverage matrix (engines only); "
        "note the coverage floors then report violations",
    )
    bench.add_argument(
        "--protocols-n",
        type=int,
        default=None,
        metavar="N",
        help="graph size |V| for the per-protocol coverage matrix "
        "(default: the gated size, 64)",
    )
    bench.add_argument(
        "--no-store-bench",
        action="store_true",
        help="skip the result-store put/get/contains micro-benchmark; "
        "note the store floors then report violations",
    )
    bench.add_argument(
        "--no-batch-bench",
        action="store_true",
        help="skip the batch-engine seed-group suite; note the batch "
        "floors then report violations",
    )
    bench.add_argument(
        "--no-trace-bench",
        action="store_true",
        help="skip the trace-capture overhead suite; note the trace "
        "floors then report violations",
    )
    bench.add_argument(
        "--no-schedule-bench",
        action="store_true",
        help="skip the guided-vs-exhaustive schedule-search suite; note "
        "the schedule floors then report violations",
    )
    bench.add_argument(
        "--batch-ks",
        type=int,
        nargs="+",
        default=None,
        metavar="K",
        help="seed-group sizes K for the batch suite (default: 16 64 256)",
    )
    bench.add_argument(
        "--store-records",
        type=int,
        default=None,
        metavar="N",
        help="record count for the store micro-benchmark "
        "(default: 2000 quick, 10000 full)",
    )

    report = sub.add_parser(
        "report", help="run all experiments and write a markdown report"
    )
    report.add_argument(
        "--out",
        default="experiment_report.md",
        help="markdown file to write (default: experiment_report.md)",
    )
    return parser


def _resolve(names: Sequence[str]) -> List[str]:
    if any(name.lower() == "all" for name in names):
        return list(ALL_EXPERIMENTS)
    resolved = []
    for name in names:
        key = name.upper()
        if key not in ALL_EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from "
                f"{', '.join(ALL_EXPERIMENTS)} or 'all'"
            )
        resolved.append(key)
    return resolved


def _emit(text: str, stream: IO[str], extra: Optional[IO[str]]) -> None:
    print(text, file=stream)
    if extra is not None:
        print(text, file=extra)


def _record_summary(record: RunRecord) -> str:
    spec = record.spec
    tag = spec.label or f"{spec.protocol} on {spec.graph}"
    metrics = record.metrics
    return (
        f"{tag}: {record.outcome}  V={record.num_vertices} E={record.num_edges}  "
        f"messages={metrics.get('total_messages')} total_bits={metrics.get('total_bits')}"
    )


def _override_engine(specs, engine: Optional[str]):
    """Re-target loaded specs at ``engine`` (``--engine`` flag), or die.

    Engine capability mismatches (an unregistered name, a fault model on
    an engine whose :class:`~repro.api.engines.EngineInfo` lacks
    ``supports_faults``) surface here as the usual one-line errors.
    """
    if engine is None:
        return specs
    ensure_registered()
    if engine not in ENGINES:
        raise SystemExit(
            f"unknown engine {engine!r}; registered: {', '.join(ENGINES.names())}"
        )
    import dataclasses

    try:
        return [dataclasses.replace(spec, engine=engine) for spec in specs]
    except SpecError as exc:
        raise SystemExit(f"cannot apply --engine {engine}: {exc}") from None


def _apply_trace_policy(specs, trace: Optional[str]):
    """Re-target loaded specs at a ``--trace`` capture policy, or die."""
    if trace is None:
        return specs
    import dataclasses

    try:
        return [dataclasses.replace(spec, trace=trace) for spec in specs]
    except SpecError as exc:
        raise SystemExit(f"cannot apply --trace {trace}: {exc}") from None


def _cmd_run_spec(
    path: str,
    stream: IO[str],
    extra: Optional[IO[str]],
    store: Optional[ResultStore] = None,
    engine: Optional[str] = None,
    trace: Optional[str] = None,
    trace_out: Optional[str] = None,
) -> int:
    specs = _override_engine(_load_or_die(path, load_specs, "spec"), engine)
    if len(specs) != 1:
        raise SystemExit(
            f"--spec expects exactly one RunSpec in {path!r}, found {len(specs)}; "
            "use 'repro batch' for many"
        )
    specs = _apply_trace_policy(specs, trace)
    spec = specs[0]
    if spec.trace is not None:
        # Recording is the point of a traced run: never serve it from the
        # store (a cache hit would produce no artifact).
        from .tracing import capture_traces

        destination = trace_out or os.path.splitext(path)[0] + ".rtrace"
        try:
            with capture_traces(file=destination):
                record = execute_spec(spec)
        except SpecError as exc:
            raise SystemExit(f"cannot execute spec in {path!r}: {exc}") from None
        if store is not None:
            store.put(record)
        _emit(_record_summary(record), stream, extra)
        metrics = record.metrics
        _emit(
            f"trace written to {destination} "
            f"(policy={spec.trace}, events={metrics.get('trace_events')}, "
            f"sampled={metrics.get('trace_sampled')}, "
            f"bytes={metrics.get('trace_bytes')})",
            stream,
            extra,
        )
        _emit(json.dumps(record.to_dict(), sort_keys=True, indent=2), stream, extra)
        return 0
    record = store.get(spec) if store is not None else None
    if record is not None:
        _emit(f"(served from store) {_record_summary(record)}", stream, extra)
    else:
        try:
            record = execute_spec(spec)
        except SpecError as exc:
            # defects only detectable at build time (fault vertex out of range,
            # unregistered adversary) get the same one-line treatment
            raise SystemExit(f"cannot execute spec in {path!r}: {exc}") from None
        if store is not None:
            store.put(record)
        _emit(_record_summary(record), stream, extra)
    _emit(json.dumps(record.to_dict(), sort_keys=True, indent=2), stream, extra)
    return 0


def _cmd_batch(args, stream: IO[str]) -> int:
    specs = _override_engine(_load_or_die(args.specs, load_specs, "spec"), args.engine)
    if not specs:
        raise SystemExit(f"no specs found in {args.specs!r}")
    store = _store_or_die(args)
    runner = BatchRunner(
        max_workers=args.workers,
        chunksize=args.chunksize,
        parallel=not args.serial,
        store=store,
        min_group_size=args.batch_min_group,
    )

    def progress(done: int, total: int, record: RunRecord) -> None:
        print(f"[{done}/{total}] {_record_summary(record)}", file=stream)

    start = time.time()
    try:
        if store is not None:
            # Traced specs in the batch drop their .rtrace artifacts beside
            # the result store, keyed (spec_id, seed, engine); untraced
            # specs are unaffected.
            from .tracing import capture_traces

            with capture_traces(directory=os.path.join(store.root, "traces")):
                records = runner.run(
                    specs,
                    output_path=args.out,
                    resume=not args.no_resume,
                    progress=progress,
                )
        else:
            records = runner.run(
                specs,
                output_path=args.out,
                resume=not args.no_resume,
                progress=progress,
            )
    except SpecError as exc:
        raise SystemExit(f"cannot execute batch {args.specs!r}: {exc}") from None
    elapsed = time.time() - start
    stats = runner.stats
    terminated = sum(1 for r in records if r.terminated)
    print(
        f"{stats.total} specs: {stats.executed} executed, {stats.reused} reused "
        f"({terminated} terminated) in {elapsed:.1f}s"
        + (f" -> {args.out}" if args.out else ""),
        file=stream,
    )
    # Stable machine-readable summary for CI and scripting: one line, fixed
    # prefix, JSON payload with sorted keys.  The prose line above may be
    # reworded freely; this one is an interface.
    summary = {
        "total": stats.total,
        "executed": stats.executed,
        "reused": stats.reused,
        "terminated": terminated,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "batched_groups": stats.batched_groups,
        "batch_fallbacks": stats.batch_fallbacks,
        "store": store.root if store is not None else None,
        "store_hits": stats.store_hits,
        "store_misses": stats.store_misses,
        "store_hit_rate": (
            round(stats.store_hits / stats.total, 4)
            if store is not None and stats.total
            else None
        ),
        "elapsed_seconds": round(elapsed, 3),
        "output": args.out,
    }
    print("BATCH_SUMMARY " + json.dumps(summary, sort_keys=True), file=stream)
    return 0


def _cmd_bench(args, stream: IO[str]) -> int:
    from .analysis.benchmark import (
        BENCH_ENGINES,
        FULL_SIZES,
        QUICK_SIZES,
        STORE_BENCH_RECORDS,
        check_floors,
        load_floors,
        render_bench_table,
        run_engine_benchmarks,
        run_protocol_matrix,
        run_store_benchmarks,
        write_benchmarks,
    )

    sizes = tuple(args.sizes) if args.sizes else (QUICK_SIZES if args.quick else FULL_SIZES)
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 3)
    engines = tuple(args.engines) if args.engines else BENCH_ENGINES
    from .api import ENGINES as engine_registry

    unknown = [engine for engine in engines if engine not in engine_registry]
    if unknown:
        raise SystemExit(
            f"unknown engine(s) {', '.join(unknown)}; "
            f"registered: {', '.join(engine_registry.names())}"
        )

    def progress(row) -> None:
        print(
            f"  {row['engine']:<12} n={row['n']:<4} {row['steps']} steps "
            f"in {row['best_seconds']:.4f}s  ({row['steps_per_sec']:.0f} steps/sec)",
            file=stream,
        )

    print(
        f"benchmarking engines {', '.join(engines)} at sizes "
        f"{', '.join(str(n) for n in sizes)} ({repeats} repeats, best taken)",
        file=stream,
    )
    payload = run_engine_benchmarks(
        sizes=sizes, engines=engines, repeats=repeats, progress=progress
    )
    if not args.no_protocols:
        print(
            "benchmarking kernel coverage for every registered protocol "
            "(async vs fastpath)",
            file=stream,
        )

        def protocol_progress(row) -> None:
            print(
                f"  {row['protocol']:<22} {row['engine']:<9} n={row['n']:<4} "
                f"{row['steps']} steps in {row['best_seconds']:.4f}s  "
                f"({row['steps_per_sec']:.0f} steps/sec)",
                file=stream,
            )

        matrix_kwargs = {"repeats": min(repeats, 2), "progress": protocol_progress}
        if args.protocols_n is not None:
            matrix_kwargs["n"] = args.protocols_n
        payload["protocols"] = run_protocol_matrix(**matrix_kwargs)
    if not args.no_store_bench:
        store_records = args.store_records
        if store_records is None:
            store_records = STORE_BENCH_RECORDS // 5 if args.quick else STORE_BENCH_RECORDS
        print(
            f"benchmarking result store put/contains/get at {store_records} records",
            file=stream,
        )
        payload["store"] = run_store_benchmarks(n_records=store_records)
    if not args.no_batch_bench:
        from .analysis.benchmark import (
            BATCH_BENCH_KS,
            run_batch_benchmarks,
            run_batch_protocol_matrix,
        )

        batch_ks = tuple(args.batch_ks) if args.batch_ks else BATCH_BENCH_KS
        print(
            "benchmarking batch engine seed-groups (run_many vs per-seed "
            f"fastpath) at K in {{{', '.join(str(k) for k in batch_ks)}}}",
            file=stream,
        )

        def batch_progress(row) -> None:
            print(
                f"  K={row['k']:<4} batch {row['batch_steps_per_sec']:.0f} "
                f"fastpath {row['fastpath_steps_per_sec']:.0f} steps/sec  "
                f"(ratio {row['ratio']:.2f}x)",
                file=stream,
            )

        payload["batch"] = run_batch_benchmarks(
            ks=batch_ks, repeats=repeats, progress=batch_progress
        )
        print(
            "benchmarking batch kernel coverage for every batchable protocol "
            "(run_many vs per-seed fastpath)",
            file=stream,
        )

        def batch_matrix_progress(row) -> None:
            print(
                f"  {row['protocol']:<22} K={row['k']:<4} "
                f"batch {row['batch_steps_per_sec']:.0f} "
                f"fastpath {row['fastpath_steps_per_sec']:.0f} steps/sec  "
                f"(ratio {row['ratio']:.2f}x)",
                file=stream,
            )

        payload["batch"]["protocols"] = run_batch_protocol_matrix(
            repeats=min(repeats, 2), progress=batch_matrix_progress
        )
    if not args.no_trace_bench:
        from .analysis.benchmark import run_trace_benchmarks

        print(
            "benchmarking trace-capture overhead (fastpath, untraced vs "
            "full vs sampled)",
            file=stream,
        )

        def trace_progress(row) -> None:
            print(
                f"  {row['arm']:<16} {row['steps']} steps in "
                f"{row['best_seconds']:.4f}s  ({row['steps_per_sec']:.0f} steps/sec)",
                file=stream,
            )

        payload["trace"] = run_trace_benchmarks(
            repeats=repeats, progress=trace_progress
        )
    if not args.no_schedule_bench:
        from .analysis.benchmark import run_schedule_benchmarks

        print(
            "benchmarking guided vs exhaustive schedule search on the "
            "pinned workload",
            file=stream,
        )

        def schedule_progress(block) -> None:
            print(
                f"  exhaustive {block['exhaustive_nodes']} nodes "
                f"({block['exhaustive_seconds']:.3f}s), guided incumbent at "
                f"node {block['guided_nodes_to_best']} "
                f"(node speedup {block['node_speedup']:.1f}x, "
                f"agrees={block['agrees']})",
                file=stream,
            )

        payload["schedules"] = run_schedule_benchmarks(
            repeats=repeats, progress=schedule_progress
        )
    write_benchmarks(payload, args.out)
    print(file=stream)
    print(render_bench_table(payload), file=stream)
    print(f"benchmarks written to {args.out}", file=stream)

    if args.floors is not None:
        violations = check_floors(payload, load_floors(args.floors))
        if violations:
            for violation in violations:
                print(f"FLOOR VIOLATION: {violation}", file=stream)
            return 1
        print(f"all floors in {args.floors} hold", file=stream)
    return 0


def _cmd_registry(stream: IO[str]) -> int:
    ensure_registered()
    for kind, registry in all_registries().items():
        print(f"{kind}:", file=stream)
        for name in registry.names():
            entry = registry.get(name)
            caps = getattr(entry, "capabilities", None)
            if callable(caps):
                # Engines are EngineInfo capability contracts; print what
                # each one actually supports next to its name.
                print(f"  {name}  [{', '.join(caps())}]", file=stream)
            else:
                print(f"  {name}", file=stream)
    return 0


def _resolve_experiments(names: Sequence[str]) -> List[str]:
    """Map CLI experiment arguments onto EXPERIMENTS registry names."""
    if any(name.lower() == "all" for name in names):
        return list(EXPERIMENTS.names())
    resolved: List[str] = []
    for raw in names:
        canonical = _campaign_name(raw)
        for candidate in (raw, canonical):
            if candidate is not None and candidate in EXPERIMENTS:
                resolved.append(candidate)
                break
        else:
            raise SystemExit(
                f"unknown experiment {raw!r}; registered: "
                f"{', '.join(EXPERIMENTS.names())} or 'all'"
            )
    return resolved


def _cmd_experiment(args, stream: IO[str]) -> int:
    ensure_registered()
    if args.quick and args.scale not in (None, "quick"):
        raise SystemExit("--quick is shorthand for --scale quick; give one of them")
    scale = "quick" if args.quick else args.scale
    if args.engine is not None and args.engine not in ENGINES:
        raise SystemExit(
            f"unknown engine {args.engine!r}; registered: {', '.join(ENGINES.names())}"
        )

    if args.spec is not None:
        if args.names:
            raise SystemExit("give either experiment names or --spec, not both")
        experiments = [_load_or_die(args.spec, load_experiment, "experiment")]
    else:
        if not args.names:
            raise SystemExit(
                "nothing to run: give experiment names (e01..e19, 'all') or --spec FILE"
            )
        experiments = [EXPERIMENTS.get(name) for name in _resolve_experiments(args.names)]

    if scale is not None:
        # Validate up front: a typo'd scale must be a clean one-line error
        # before any experiment runs, not a traceback mid-campaign.
        for experiment in experiments:
            scales = getattr(experiment, "scales", {}) or {}
            if scale not in scales:
                known = ", ".join(sorted(scales)) or "<none defined>"
                raise SystemExit(
                    f"experiment {experiment.name!r} has no scale {scale!r}; "
                    f"known: {known}"
                )

    def progress(done: int, total: int, record: RunRecord) -> None:
        print(f"[{done}/{total}] {_record_summary(record)}", file=stream)

    if args.trace is not None:
        from .tracing import TracePolicyError, normalize_policy

        try:
            args.trace = normalize_policy(args.trace)
        except TracePolicyError as exc:
            raise SystemExit(f"cannot apply --trace {args.trace}: {exc}") from None

    store = _store_or_die(args)
    runner = CampaignRunner(
        engine=args.engine,
        scale=scale,
        trace=args.trace,
        out_dir=args.out,
        resume=not args.no_resume,
        parallel=not args.serial,
        max_workers=args.workers,
        min_group_size=args.batch_min_group,
        progress=progress,
        store=store,
    )

    def _run_experiment(experiment):
        if store is None:
            return runner.run(experiment)
        # Same convention as `repro batch`: campaign runs that carry a
        # trace policy write their .rtrace beside the result store.
        from .tracing import capture_traces

        with capture_traces(directory=os.path.join(store.root, "traces")):
            return runner.run(experiment)

    start = time.time()
    total_specs = executed = reused = total_rows = 0
    cache_hits = cache_misses = store_hits = store_misses = batched_groups = 0
    batch_fallbacks: Dict[str, int] = {}
    engines_applied: Dict[str, Optional[str]] = {}
    for experiment in experiments:
        exp_start = time.time()
        try:
            result = _run_experiment(experiment)
        except SpecError as exc:
            # e.g. an engine override a campaign's fault model rejects:
            # surface it as a one-line error, not a mid-campaign traceback.
            raise SystemExit(f"experiment {experiment.name!r}: {exc}") from None
        exp_elapsed = time.time() - exp_start
        engines_applied[experiment.name] = result.applied_engine
        title = (
            f"== {experiment.name} — {experiment.title or 'experiment'} "
            f"({exp_elapsed:.1f}s) =="
        )
        print(render_table(result.rows, title=title), file=stream)
        print(file=stream)
        total_specs += result.stats.total
        executed += result.stats.executed
        reused += result.stats.reused
        cache_hits += result.stats.cache_hits
        cache_misses += result.stats.cache_misses
        store_hits += result.stats.store_hits
        store_misses += result.stats.store_misses
        batched_groups += getattr(result.stats, "batched_groups", 0)
        for reason, count in getattr(result.stats, "batch_fallbacks", {}).items():
            batch_fallbacks[reason] = batch_fallbacks.get(reason, 0) + count
        total_rows += len(result.rows)
    elapsed = time.time() - start

    # Stable machine-readable summary for CI and scripting: one line, fixed
    # prefix, JSON payload with sorted keys (the campaign twin of
    # BATCH_SUMMARY).  The tables above may be reworded freely; this line
    # is an interface.
    summary = {
        "experiments": [experiment.name for experiment in experiments],
        "scale": scale,
        # "engine" is the requested override; "engines_applied" is what each
        # campaign actually ran under (None = campaign ignored the override:
        # engine-locked grids and driver experiments).
        "engine": args.engine,
        "engines_applied": engines_applied,
        "trace": args.trace,
        "total_specs": total_specs,
        "executed": executed,
        "reused": reused,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "batched_groups": batched_groups,
        "batch_fallbacks": batch_fallbacks,
        "store": store.root if store is not None else None,
        "store_hits": store_hits,
        "store_misses": store_misses,
        "store_hit_rate": (
            round(store_hits / total_specs, 4)
            if store is not None and total_specs
            else None
        ),
        "rows": total_rows,
        "elapsed_seconds": round(elapsed, 3),
        "output": args.out,
    }
    print("EXPERIMENT_SUMMARY " + json.dumps(summary, sort_keys=True), file=stream)
    return 0


def _open_trace_or_die(path: str):
    """Open an ``.rtrace`` file, mapping every defect to a one-line exit.

    A missing file, a non-trace file (bad magic), a future format version
    or a truncated/garbled frame stream must all print one clear line and
    exit non-zero — never a traceback.
    """
    from .tracing import TraceFormatError, TraceReader

    try:
        return TraceReader(path)
    except OSError as exc:
        raise SystemExit(f"cannot read trace file {path!r}: {exc}") from None
    except TraceFormatError as exc:
        raise SystemExit(f"invalid trace file {path!r}: {exc}") from None


def _cmd_trace(args, stream: IO[str]) -> int:
    from .tracing import ReplayError, TraceProfiler, replay_trace

    if args.trace_command == "record":
        return _cmd_run_spec(
            args.spec,
            stream,
            None,
            store=None,
            engine=args.engine,
            trace=args.trace,
            trace_out=args.out,
        )

    if args.trace_command == "info":
        reader = _open_trace_or_die(args.trace)
        try:
            info = {
                "header": reader.header,
                "footer": reader.footer,
                "num_events": reader.num_events,
                "distinct_payloads": len(reader.payloads),
            }
        finally:
            reader.close()
        print(json.dumps(info, sort_keys=True, indent=2), file=stream)
        return 0

    if args.trace_command == "profile":
        for path in args.traces:
            reader = _open_trace_or_die(path)
            try:
                profile = TraceProfiler.from_reader(reader).profile()
            finally:
                reader.close()
            print(f"== {path} ==", file=stream)
            print(json.dumps(profile.to_dict(), sort_keys=True, indent=2), file=stream)
        return 0

    # trace_command == "replay"
    reader = _open_trace_or_die(args.trace)
    try:
        if args.spec is not None:
            specs = _load_or_die(args.spec, load_specs, "spec")
            if len(specs) != 1:
                raise SystemExit(
                    f"--spec expects exactly one RunSpec in {args.spec!r}, "
                    f"found {len(specs)}"
                )
            spec = specs[0]
        else:
            spec = reader.spec()
        try:
            report = replay_trace(spec, reader)
        except ReplayError as exc:
            raise SystemExit(f"cannot replay {args.trace!r}: {exc}") from None
    finally:
        reader.close()
    print(report.summary(), file=stream)
    return 0 if report.ok else 1


def _cmd_schedule(args, stream: IO[str]) -> int:
    from .lowerbounds.certificates import (
        CertificateError,
        load_certificate,
        search_and_certify,
        store_certificate,
        verify_certificate,
    )
    from .lowerbounds.guided import OBJECTIVES, get_objective

    if args.schedule_command == "search":
        if args.list_objectives:
            for name in sorted(OBJECTIVES):
                print(f"{name:20s} {OBJECTIVES[name].description}", file=stream)
            return 0
        try:
            get_objective(args.objective)
        except KeyError:
            raise SystemExit(
                f"unknown objective {args.objective!r}; registered: "
                f"{', '.join(sorted(OBJECTIVES))}"
            ) from None
        specs = _load_or_die(args.spec, load_specs, "spec")
        if len(specs) != 1:
            raise SystemExit(
                f"schedule search expects exactly one RunSpec in {args.spec!r}, "
                f"found {len(specs)}"
            )
        result, certificate = search_and_certify(
            specs[0],
            objective=args.objective,
            max_nodes=args.max_nodes,
            max_workers=args.workers,
        )
        print(result.summary(), file=stream)
        if certificate is None:
            print(
                "no complete execution found within the node budget — "
                "nothing to certify (raise --max-nodes)",
                file=stream,
            )
            return 1
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(certificate.to_json() + "\n")
            print(f"certificate written to {args.out}", file=stream)
        store = _store_or_die(args)
        if store is not None:
            path = store_certificate(store, certificate)
            print(f"certificate stored at {path}", file=stream)
        if args.out is None and store is None:
            print(
                f"certificate {certificate.cert_id} not persisted "
                "(give -o FILE or --store DIR)",
                file=stream,
            )
        return 0

    try:
        certificate = load_certificate(args.certificate)
    except CertificateError as exc:
        raise SystemExit(str(exc)) from None

    if args.schedule_command == "info":
        info = certificate.to_dict()
        # The script can run to thousands of deliveries; info summarises it.
        info["deliveries"] = len(certificate.deliveries)
        info["cert_id"] = certificate.cert_id
        print(json.dumps(info, sort_keys=True, indent=2), file=stream)
        return 0

    # schedule_command == "replay"
    report = verify_certificate(certificate)
    print(report.summary(), file=stream)
    return 0 if report.ok else 1


def _cmd_store(args, stream: IO[str]) -> int:
    store = _store_or_die(args)
    if store is None:
        raise SystemExit(
            f"no result store: give --store DIR or set {STORE_ENV_VAR} "
            "(--no-store makes no sense here)"
        )
    try:
        if args.store_command == "stats":
            print(json.dumps(store.stats().to_dict(), indent=2, sort_keys=True), file=stream)
        elif args.store_command == "ls":
            rows = store.ls(args.spec_id)
            for row in rows[: max(0, args.limit)]:
                print(json.dumps(row, sort_keys=True), file=stream)
            if len(rows) > args.limit:
                print(f"... {len(rows) - args.limit} more (raise --limit)", file=stream)
            print(f"{len(rows)} record(s) match {args.spec_id!r}", file=stream)
        elif args.store_command == "verify":
            report = store.verify()
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=stream)
            if not report.clean:
                print("STORE VERIFY: corruption detected", file=stream)
                return 1
            print(
                f"store at {store.root} is clean "
                f"({report.records_checked} records, {report.shards_checked} shards)",
                file=stream,
            )
        else:  # gc
            report = store.gc(keep_days=args.keep_days)
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=stream)
            reclaimed = report.bytes_before - report.bytes_after
            print(
                f"gc: removed {report.removed_records} record(s), kept "
                f"{report.kept_records}, reclaimed {reclaimed} bytes",
                file=stream,
            )
    except StoreError as exc:
        raise SystemExit(f"store {args.store_command} failed: {exc}") from None
    return 0


def _cmd_serve(args, stream: IO[str]) -> int:
    from .service import ExperimentService, make_server, serve_forever

    ensure_registered()
    store = _store_or_die(args)
    service = ExperimentService(
        store=store,
        out_dir=args.out,
        parallel=not args.serial,
        max_workers=args.workers,
        job_workers=args.job_workers,
    )
    try:
        server = make_server(args.host, args.port, service)
    except OSError as exc:
        raise SystemExit(f"cannot bind {args.host}:{args.port}: {exc}") from None
    print(
        f"serving experiments on http://{server.server_address[0]}:"
        f"{server.server_address[1]} "
        + (f"(store: {store.root})" if store is not None else "(no store)"),
        file=stream,
    )
    try:
        serve_forever(server)
    except KeyboardInterrupt:
        print("shutting down", file=stream)
    finally:
        service.close()
    return 0


def main(argv: Optional[Sequence[str]] = None, stream: IO[str] = sys.stdout) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        # Derived from the EXPERIMENTS registry: registering an experiment
        # is what puts it in this listing, so the two can never drift.
        ensure_registered()
        for name in EXPERIMENTS.names():
            experiment = EXPERIMENTS.get(name)
            title = getattr(experiment, "title", "") or ""
            print(f"{_legacy_id(name):4s} {title}  [{name}]", file=stream)
        return 0

    if args.command == "registry":
        return _cmd_registry(stream)

    if args.command == "experiment":
        return _cmd_experiment(args, stream)

    if args.command == "batch":
        return _cmd_batch(args, stream)

    if args.command == "store":
        return _cmd_store(args, stream)

    if args.command == "serve":
        return _cmd_serve(args, stream)

    if args.command == "trace":
        return _cmd_trace(args, stream)

    if args.command == "schedule":
        return _cmd_schedule(args, stream)

    if args.command == "bench":
        return _cmd_bench(args, stream)

    if args.command == "report":
        lines: List[str] = [
            "# Experiment report",
            "",
            "Generated by `python -m repro report`; one section per experiment",
            "(see EXPERIMENTS.md for the paper-vs-measured discussion).",
            "",
        ]
        titles = _experiment_titles()
        for name, driver in ALL_EXPERIMENTS.items():
            start = time.time()
            rows = driver()
            elapsed = time.time() - start
            lines.append(f"## {name} — {titles.get(name, name).strip()}")
            lines.append("")
            lines.append("```")
            lines.append(render_table(rows))
            lines.append("```")
            lines.append(f"_{len(rows)} rows, {elapsed:.1f}s_")
            lines.append("")
            print(f"{name} done ({elapsed:.1f}s)", file=stream)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines))
        print(f"report written to {args.out}", file=stream)
        return 0

    # command == "run"
    if args.spec is not None and args.experiments:
        raise SystemExit("give either experiment ids or --spec, not both")
    extra: Optional[IO[str]] = None
    if args.out is not None:
        extra = open(args.out, "a", encoding="utf-8")
    try:
        if args.spec is not None:
            return _cmd_run_spec(
                args.spec,
                stream,
                extra,
                store=_store_or_die(args),
                engine=args.engine,
                trace=args.trace,
                trace_out=args.trace_out,
            )
        if args.engine is not None:
            raise SystemExit(
                "--engine applies to --spec runs; for registered campaigns "
                "use 'repro experiment --engine'"
            )
        if args.trace is not None or args.trace_out is not None:
            raise SystemExit(
                "--trace applies to --spec runs; use 'repro trace record' "
                "for a spec file"
            )
        if not args.experiments:
            raise SystemExit("nothing to run: give experiment ids or --spec FILE")
        titles = _experiment_titles()
        for name in _resolve(args.experiments):
            driver = ALL_EXPERIMENTS[name]
            start = time.time()
            rows = driver()
            elapsed = time.time() - start
            title = f"== {name} — {titles.get(name, name)} ({elapsed:.1f}s) =="
            _emit(render_table(rows, title=title), stream, extra)
            _emit("", stream, extra)
    finally:
        if extra is not None:
            extra.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
