"""Named row aggregators: ``RunRecord`` lists in, experiment-table rows out.

An experiment campaign (:class:`~repro.api.campaign.ExperimentSpec`) names
its aggregator by string, so the *whole* experiment — grid plus reduction —
is serializable data.  An aggregator is a callable registered in
:data:`~repro.api.registry.AGGREGATORS`::

    aggregator(records, **params) -> list of dict rows

where ``records`` is the campaign's :class:`~repro.api.spec.RunRecord`
list in deterministic grid-expansion order.  The library here covers the
reductions the E-experiment drivers historically hand-rolled:

* generic: :func:`records_rows` (one row per record), :func:`min_mean_max`
  (per-group spread of one metric);
* bound-checking: :func:`worst_seed` (per-group worst case vs a paper
  bound — E1's shape) and :func:`bound_ratio` (per-record bound ratio —
  E3/E5's shape);
* experiment-faithful reductions for the remaining simulation-backed
  drivers: :func:`false_terminations` (E8), :func:`split_ablation` (E9),
  :func:`eager_ablation` (E10), :func:`round_complexity` (E13),
  :func:`state_space` (E15) and :func:`scheduler_spread` (E16);
* fault-model reductions: :func:`loss_termination` (E17's termination
  rate vs. message-loss rate; the churn aggregator is white-box and lives
  in :mod:`repro.analysis.campaigns`).

White-box aggregators — which need the live engine results, not just
records — are registered from :mod:`repro.analysis.campaigns` and carry a
``white_box = True`` attribute; see
:class:`~repro.api.campaign.CampaignRunner` for the calling convention.

Rows are compared verbatim against the pre-campaign imperative drivers in
``tests/analysis/test_campaign_differential.py``; treat the row shapes as
frozen interfaces.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .registry import AGGREGATORS
from .spec import RunRecord

__all__ = [
    "AGGREGATORS",
    "bound_function",
    "grouped_by_spec_path",
    "records_rows",
    "min_mean_max",
    "worst_seed",
    "bound_ratio",
    "false_terminations",
    "split_ablation",
    "eager_ablation",
    "round_complexity",
    "state_space",
    "scheduler_spread",
    "loss_termination",
]


def bound_function(name: str) -> Callable[..., float]:
    """The paper bound ``name`` refers to (``"tree"``/``"dag"``/``"general"``).

    Aggregator params are JSON, so bounds are addressed by short name and
    resolved lazily here (keeps ``import repro.api`` light).
    """
    from ..core import complexity

    bounds: Dict[str, Callable[..., float]] = {
        "tree": complexity.tree_broadcast_total_bits_bound,
        "dag": complexity.dag_broadcast_total_bits_bound,
        "general": complexity.general_broadcast_total_bits_bound,
    }
    try:
        return bounds[name]
    except KeyError:
        raise ValueError(
            f"unknown bound {name!r}; choose from {', '.join(sorted(bounds))}"
        ) from None


def _spec_value(record: RunRecord, path: str) -> Any:
    """Walk a dotted path (``"graph_params.num_internal"``) into the spec.

    Reads the frozen dataclass directly — no ``to_dict()`` deep copy per
    lookup, which matters when grouping hundreds of records.
    """
    first, _, rest = path.partition(".")
    value: Any = getattr(record.spec, first)
    for part in rest.split(".") if rest else ():
        value = value[part]
    return value


def grouped_by_spec_path(
    items: Sequence[Any],
    path: str,
    *,
    record_of: Callable[[Any], RunRecord] = lambda item: item,
) -> List[Tuple[Any, List[Any]]]:
    """Group items by a dotted spec path, in first-occurrence order.

    ``record_of`` extracts the :class:`RunRecord` from each item, so the
    white-box aggregators (whose items are ``WhiteBoxRun`` tuples) share
    this exact grouping semantics instead of re-implementing it.
    """
    order: List[Any] = []
    groups: Dict[Any, List[Any]] = {}
    for item in items:
        key = _spec_value(record_of(item), path)
        if key not in groups:
            order.append(key)
            groups[key] = []
        groups[key].append(item)
    return [(key, groups[key]) for key in order]


_grouped = grouped_by_spec_path


def _chunked(records: Sequence[RunRecord], size: int) -> Iterable[Sequence[RunRecord]]:
    if len(records) % size:
        raise ValueError(f"expected a multiple of {size} records, got {len(records)}")
    for start in range(0, len(records), size):
        yield records[start : start + size]


def _assert_terminated(records: Iterable[RunRecord]) -> None:
    for record in records:
        assert record.terminated, (
            f"run unexpectedly failed to terminate: {record.spec.to_json()}"
        )


@AGGREGATORS.register("records")
def records_rows(records: Sequence[RunRecord]) -> List[Dict]:
    """The identity reduction: one row per record, spec identity + metrics."""
    rows: List[Dict] = []
    for record in records:
        spec = record.spec
        row: Dict[str, Any] = {
            "spec_id": spec.spec_id,
            "graph": spec.graph,
            "protocol": spec.protocol,
            "scheduler": spec.scheduler,
            "engine": spec.engine,
            "seed": spec.seed,
            "outcome": record.outcome,
            "terminated": record.terminated,
            "V": record.num_vertices,
            "E": record.num_edges,
        }
        row.update(record.metrics)
        rows.append(row)
    return rows


@AGGREGATORS.register("min-mean-max")
def min_mean_max(
    records: Sequence[RunRecord],
    *,
    group_by: str = "graph_params.num_internal",
    group_key: str = "n_internal",
    metric: str = "total_bits",
) -> List[Dict]:
    """Per-group spread of one metric (the seed-sweep summary)."""
    rows: List[Dict] = []
    for value, group in _grouped(records, group_by):
        samples = [record.metrics[metric] for record in group]
        cleaned = [s for s in samples if s is not None]
        rows.append(
            {
                group_key: value,
                "runs": len(group),
                f"{metric}_min": min(cleaned),
                f"{metric}_mean": sum(cleaned) / len(cleaned),
                f"{metric}_max": max(cleaned),
            }
        )
    return rows


@AGGREGATORS.register("worst-seed")
def worst_seed(
    records: Sequence[RunRecord],
    *,
    group_by: str = "graph_params.num_internal",
    group_key: str = "n_internal",
    bound: str = "tree",
    bound_key: str = "bound_E_logE",
) -> List[Dict]:
    """Worst case over each group's seeds, against a paper bound (E1)."""
    bound_fn = bound_function(bound)
    rows: List[Dict] = []
    for value, group in _grouped(records, group_by):
        _assert_terminated(group)
        last = group[-1]
        bits = max(record.metrics["total_bits"] for record in group)
        bound_value = bound_fn(last.spec.build_graph())
        rows.append(
            {
                group_key: value,
                "E": last.num_edges,
                "messages": max(record.metrics["total_messages"] for record in group),
                "total_bits": bits,
                "max_msg_bits": max(
                    record.metrics["max_message_bits"] for record in group
                ),
                bound_key: round(bound_value),
                "ratio": bits / bound_value,
            }
        )
    return rows


@AGGREGATORS.register("bound-ratio")
def bound_ratio(
    records: Sequence[RunRecord],
    *,
    bound: str = "general",
    bound_key: str = "bound",
    columns: Sequence[str] = ("n_internal", "E", "messages", "total_bits", "max_msg_bits"),
) -> List[Dict]:
    """Per-record cost columns plus the bound and the measured/bound ratio.

    ``columns`` is drawn from a fixed vocabulary (``n_internal``, ``V``,
    ``E``, ``messages``, ``one_msg_per_edge``, ``total_bits``,
    ``max_msg_bits``, ``max_edge_bits``); the bound column and ``ratio``
    are always appended.  E3 and E5 are both instances of this shape.
    """
    bound_fn = bound_function(bound)
    rows: List[Dict] = []
    for record in records:
        _assert_terminated((record,))
        metrics = record.metrics
        available: Dict[str, Any] = {
            "n_internal": record.spec.graph_params.get("num_internal"),
            "V": record.num_vertices,
            "E": record.num_edges,
            "messages": metrics["total_messages"],
            "one_msg_per_edge": metrics["total_messages"] == record.num_edges,
            "total_bits": metrics["total_bits"],
            "max_msg_bits": metrics["max_message_bits"],
            "max_edge_bits": metrics["max_edge_bits"],
        }
        unknown = [column for column in columns if column not in available]
        if unknown:
            raise ValueError(f"unknown bound-ratio column(s): {', '.join(unknown)}")
        row = {column: available[column] for column in columns}
        bound_value = bound_fn(record.spec.build_graph())
        row[bound_key] = round(bound_value)
        row["ratio"] = metrics["total_bits"] / bound_value
        rows.append(row)
    return rows


@AGGREGATORS.register("false-terminations")
def false_terminations(
    records: Sequence[RunRecord],
    *,
    group_by: str = "protocol",
    rename: Optional[Dict[str, str]] = None,
) -> List[Dict]:
    """Count terminations per group — zero expected on bad graphs (E8)."""
    rename = rename or {}
    rows: List[Dict] = []
    for value, group in _grouped(records, group_by):
        rows.append(
            {
                "protocol": rename.get(value, value),
                "bad_graph_runs": len(group),
                "false_terminations": sum(1 for r in group if r.terminated),
            }
        )
    return rows


@AGGREGATORS.register("split-ablation")
def split_ablation(
    records: Sequence[RunRecord], *, group_by: str = "graph_params.num_internal"
) -> List[Dict]:
    """Naive-vs-power-of-two split pairs per size (E9)."""
    rows: List[Dict] = []
    for value, group in _grouped(records, group_by):
        if len(group) != 2:
            raise ValueError(f"split-ablation expects (naive, pow2) pairs, got {len(group)}")
        naive, pow2 = group
        _assert_terminated(group)
        rows.append(
            {
                "n_internal": value,
                "E": naive.num_edges,
                "naive_bits": naive.metrics["total_bits"],
                "pow2_bits": pow2.metrics["total_bits"],
                "naive_max_msg": naive.metrics["max_message_bits"],
                "pow2_max_msg": pow2.metrics["max_message_bits"],
                "bits_ratio": naive.metrics["total_bits"] / pow2.metrics["total_bits"],
            }
        )
    return rows


@AGGREGATORS.register("eager-ablation")
def eager_ablation(
    records: Sequence[RunRecord], *, group_by: str = "graph_params.depth"
) -> List[Dict]:
    """Eager-vs-aggregating DAG commodity pairs per depth (E10)."""
    rows: List[Dict] = []
    for value, group in _grouped(records, group_by):
        if len(group) != 2:
            raise ValueError(f"eager-ablation expects (eager, waiting) pairs, got {len(group)}")
        eager, waiting = group
        _assert_terminated(group)
        rows.append(
            {
                "depth": value,
                "E": eager.num_edges,
                "eager_messages": eager.metrics["total_messages"],
                "waiting_messages": waiting.metrics["total_messages"],
                "waiting_is_E": waiting.metrics["total_messages"] == waiting.num_edges,
                "eager_max_msg_bits": eager.metrics["max_message_bits"],
                "waiting_max_msg_bits": waiting.metrics["max_message_bits"],
            }
        )
    return rows


@AGGREGATORS.register("round-complexity")
def round_complexity(records: Sequence[RunRecord]) -> List[Dict]:
    """Synchronous rounds vs longest directed path, per (tree, dag, general)
    triple (E13)."""
    from ..graphs.properties import longest_path_length

    rows: List[Dict] = []
    for tree_run, dag_run, dig_run in _chunked(records, 3):
        _assert_terminated((tree_run, dag_run, dig_run))
        rows.append(
            {
                "n_internal": tree_run.spec.graph_params["num_internal"],
                "tree_rounds": tree_run.metrics["termination_round"],
                "tree_longest_path": longest_path_length(tree_run.spec.build_graph()),
                "dag_rounds": dag_run.metrics["termination_round"],
                "dag_longest_path": longest_path_length(dag_run.spec.build_graph()),
                "general_rounds": dig_run.metrics["termination_round"],
                "general_V": dig_run.num_vertices,
                "general_rounds/V": dig_run.metrics["termination_round"]
                / dig_run.num_vertices,
            }
        )
    return rows


@AGGREGATORS.register("state-space")
def state_space(
    records: Sequence[RunRecord], *, group_by: str = "graph_params.num_internal"
) -> List[Dict]:
    """Per-vertex state high-water marks per workload quadruple (E15)."""
    names = ("tree", "dag", "general", "labeling")
    rows: List[Dict] = []
    for value, group in _grouped(records, group_by):
        if len(group) != len(names):
            raise ValueError(f"state-space expects {len(names)} workloads, got {len(group)}")
        _assert_terminated(group)
        measurements = {
            name: record.metrics["max_state_bits"]
            for name, record in zip(names, group)
        }
        rows.append(
            {
                "n_internal": value,
                "tree_state_bits": measurements["tree"],
                "dag_state_bits": measurements["dag"],
                "general_state_bits": measurements["general"],
                "labeling_state_bits": measurements["labeling"],
                "general/dag_ratio": round(
                    measurements["general"] / max(1, measurements["dag"]), 1
                ),
            }
        )
    return rows


@AGGREGATORS.register("loss-termination")
def loss_termination(records: Sequence[RunRecord]) -> List[Dict]:
    """Termination rate per message-loss rate, over the seed sweep (E17).

    Groups records by their fault model's ``drop_probability`` (``0.0``
    for fault-free records) in first-occurrence order.  The paper's
    protocols are not loss-tolerant but must fail *safe*: as the loss rate
    rises the termination rate falls toward zero while every
    non-terminating run ends quiescent — never falsely terminated.
    """
    order: List[float] = []
    groups: Dict[float, List[RunRecord]] = {}
    for record in records:
        faults = record.spec.faults
        rate = faults.drop_probability if faults is not None else 0.0
        if rate not in groups:
            order.append(rate)
            groups[rate] = []
        groups[rate].append(record)
    rows: List[Dict] = []
    for rate in order:
        group = groups[rate]
        terminated = sum(1 for r in group if r.terminated)
        budget_exhausted = sum(
            1 for r in group if r.outcome == "budget-exhausted"
        )
        dropped = [r.metrics.get("fault_dropped", 0) or 0 for r in group]
        messages = [r.metrics["total_messages"] for r in group]
        rows.append(
            {
                "drop_probability": rate,
                "runs": len(group),
                "terminated": terminated,
                "termination_rate": round(terminated / len(group), 3),
                "quiescent": len(group) - terminated - budget_exhausted,
                "dropped_mean": round(sum(dropped) / len(group), 1),
                "messages_mean": round(sum(messages) / len(group), 1),
            }
        )
    return rows


@AGGREGATORS.register("scheduler-spread")
def scheduler_spread(records: Sequence[RunRecord]) -> List[Dict]:
    """Cost spread across adversaries, normalised to the cheapest (E16)."""
    rows: List[Dict] = []
    for record in records:
        assert record.terminated, record.spec.scheduler
        metrics = record.metrics
        rows.append(
            {
                "scheduler": record.spec.build_scheduler().name,
                "terminated": record.terminated,
                "messages": metrics["total_messages"],
                "total_bits": metrics["total_bits"],
                "msgs_at_termination": metrics["messages_at_termination"],
                "max_msg_bits": metrics["max_message_bits"],
            }
        )
    baseline = min(row["messages"] for row in rows)
    for row in rows:
        row["vs_best"] = round(row["messages"] / baseline, 2)
    return rows
