"""Declarative experiment campaigns: grids of runs plus a named reduction.

PR 1 made a single run first-class data (:class:`~repro.api.spec.RunSpec`);
this module does the same for a whole *experiment*.  An
:class:`ExperimentSpec` is a frozen, JSON-round-trippable description of a
campaign:

* ``base`` — a RunSpec template as a plain dict;
* ``axes`` — an ordered mapping of grid axes.  A key is a dotted path into
  the template (``"graph_params.num_internal"``, ``"seed"``) and its value
  the list of settings to sweep.  A key starting with ``"@"`` is a *patch
  axis*: its values are dicts of dotted-path assignments applied together,
  for workloads where several fields move in lockstep (E13's
  graph/protocol/size triples);
* ``aggregator`` / ``aggregator_params`` — a name in
  :data:`~repro.api.registry.AGGREGATORS` turning the executed
  :class:`~repro.api.spec.RunRecord` list into the experiment's dict rows;
* ``scales`` — named axis overrides (``"quick"`` for CI smoke runs).

:meth:`ExperimentSpec.expand` produces the concrete ``RunSpec`` grid
deterministically — ``itertools.product`` over the axes in declaration
order, first axis outermost — so the same campaign file always yields the
same specs in the same order, which is what makes campaign output
resumable and differential-testable.

The :class:`CampaignRunner` executes a campaign through the
:class:`~repro.api.runner.BatchRunner` (spec_id-keyed resume, JSONL
persistence) and aggregates rows, writing per-experiment artifacts
(``<name>.runs.jsonl`` + ``<name>.rows.json``) when given an output
directory.  Experiments registered in
:data:`~repro.api.registry.EXPERIMENTS` (see
:mod:`repro.analysis.campaigns`) are addressable by name from the CLI:
``repro experiment e05 --engine fastpath --quick``.

Two escape hatches keep the registry complete for experiments the grid
cannot express: aggregators marked ``white_box = True`` receive live
engine results (per-vertex states) instead of records, and
:class:`DriverExperiment` wraps a legacy imperative driver by dotted name
(the lower-bound harnesses E2/E4/E7/E14).
"""

from __future__ import annotations

import copy
import hashlib
import importlib
import itertools
import json
import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from .registry import AGGREGATORS, EXPERIMENTS
from .runner import BatchRunner, BatchStats
from .spec import (
    RunRecord,
    RunSpec,
    SpecError,
    _json_safe,
    execute_spec_full,
    topology_cache_stats,
)

__all__ = [
    "ExperimentSpec",
    "DriverExperiment",
    "WhiteBoxRun",
    "CampaignResult",
    "CampaignRunner",
    "register_experiment",
    "load_experiment",
    "run_experiment",
]


def _assign(payload: Dict[str, Any], path: str, value: Any) -> None:
    """Set a dotted path inside a nested dict, creating intermediate dicts."""
    parts = path.split(".")
    target = payload
    for part in parts[:-1]:
        node = target.setdefault(part, {})
        if not isinstance(node, dict):
            raise SpecError(f"axis path {path!r} descends into non-dict {part!r}")
        target = node
    target[parts[-1]] = value


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment campaign, as plain data.

    ``ExperimentSpec.from_dict(spec.to_dict()) == spec`` always holds, so
    campaigns live in JSON files and key artifact directories the same way
    :class:`~repro.api.spec.RunSpec` keys result lines.

    >>> campaign = ExperimentSpec(
    ...     name="sweep",
    ...     base={"graph": "random-digraph", "protocol": "general-broadcast"},
    ...     axes={"graph_params.num_internal": [10, 20], "seed": [0, 1]},
    ... )
    >>> ExperimentSpec.from_dict(campaign.to_dict()) == campaign
    True
    >>> [spec.seed for spec in campaign.expand()]  # first axis outermost
    [0, 1, 0, 1]
    """

    name: str
    title: str = ""
    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    aggregator: str = "records"
    aggregator_params: Dict[str, Any] = field(default_factory=dict)
    scales: Dict[str, Dict[str, List[Any]]] = field(default_factory=dict)
    #: When true, the campaign's engine is part of its semantics (E13's
    #: synchronous rounds) and ``expand(engine=...)`` overrides are ignored.
    engine_locked: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SpecError("experiment name must be a non-empty string")
        if not isinstance(self.aggregator, str) or not self.aggregator:
            raise SpecError("aggregator must be a non-empty registry name")
        for key in ("base", "axes", "aggregator_params", "scales"):
            value = _json_safe(getattr(self, key), f"{self.name}.{key}")
            if not isinstance(value, dict):
                raise SpecError(f"{self.name}.{key} must be a dict")
            object.__setattr__(self, key, value)
        for scope, axes in [("axes", self.axes)] + [
            (f"scales[{scale!r}]", overrides) for scale, overrides in self.scales.items()
        ]:
            if not isinstance(axes, dict):
                raise SpecError(f"{self.name}.{scope} must be a dict of axes")
            for axis, values in axes.items():
                if not isinstance(values, list) or not values:
                    raise SpecError(
                        f"{self.name}.{scope}[{axis!r}] must be a non-empty list"
                    )
                if axis.startswith("@") and not all(isinstance(v, dict) for v in values):
                    raise SpecError(
                        f"{self.name}.{scope}[{axis!r}] is a patch axis; every "
                        "value must be a dict of dotted-path assignments"
                    )
        for scale, overrides in self.scales.items():
            unknown = set(overrides) - set(self.axes)
            if unknown:
                raise SpecError(
                    f"{self.name}.scales[{scale!r}] overrides unknown axes: "
                    f"{', '.join(sorted(unknown))}"
                )

    # ------------------------------------------------------------------
    # identity & serialization (mirrors RunSpec)
    # ------------------------------------------------------------------

    @property
    def experiment_id(self) -> str:
        """Stable content hash of the campaign (title excluded)."""
        payload = self.to_dict()
        payload.pop("title", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def __hash__(self) -> int:
        return hash(self.experiment_id)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict with every field present.

        Axis declaration order is preserved (JSON objects keep insertion
        order), so a campaign file round-trips to the same expansion order.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        if not isinstance(payload, dict):
            raise SpecError(
                f"experiment payload must be a dict, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise SpecError(f"unknown experiment field(s): {', '.join(sorted(unknown))}")
        return cls(**payload)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialize to a JSON string (axis order preserved)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a campaign from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # grid expansion
    # ------------------------------------------------------------------

    def grid(self, scale: Optional[str] = None) -> Dict[str, List[Any]]:
        """The effective axes after applying a named scale override."""
        if scale is None:
            return dict(self.axes)
        if scale not in self.scales:
            known = ", ".join(sorted(self.scales)) or "<none defined>"
            raise SpecError(f"{self.name} has no scale {scale!r}; known: {known}")
        axes = dict(self.axes)
        axes.update(self.scales[scale])
        return axes

    def expand(
        self,
        *,
        scale: Optional[str] = None,
        engine: Optional[str] = None,
        trace: Optional[str] = None,
    ) -> List[RunSpec]:
        """The campaign's concrete runs, in deterministic grid order.

        The cartesian product iterates axes in declaration order with the
        first axis outermost (``itertools.product`` semantics); aggregators
        may therefore rely on group adjacency.  ``engine`` rewrites every
        expanded spec's engine unless the campaign is ``engine_locked``;
        ``trace`` rewrites every spec's capture policy (``"full"`` /
        ``"sample:k"``) so a whole campaign can be recorded.
        """
        axes = self.grid(scale)
        keys = list(axes)
        specs: List[RunSpec] = []
        for combo in itertools.product(*(axes[key] for key in keys)):
            payload = copy.deepcopy(self.base)
            for key, value in zip(keys, combo):
                if key.startswith("@"):
                    for path, patch_value in value.items():
                        _assign(payload, path, copy.deepcopy(patch_value))
                else:
                    _assign(payload, key, copy.deepcopy(value))
            if engine is not None and not self.engine_locked:
                payload["engine"] = engine
            if trace is not None:
                payload["trace"] = trace
            specs.append(RunSpec.from_dict(payload))
        return specs

    def with_overrides(
        self,
        *,
        axes: Optional[Dict[str, Sequence[Any]]] = None,
        base: Optional[Dict[str, Any]] = None,
    ) -> "ExperimentSpec":
        """A copy with axes replaced and/or dotted-path base patches applied.

        This is how the keyword-driven experiment functions
        (``experiment_e01_tree_broadcast(sizes=..., seeds=...)``) reuse the
        registered campaign: same base, same aggregator, caller's grid.
        """
        new_axes = dict(self.axes)
        if axes:
            for key, values in axes.items():
                new_axes[key] = list(values)
        new_base = copy.deepcopy(self.base)
        if base:
            for path, value in base.items():
                _assign(new_base, path, value)
        # Stale scale overrides may reference replaced axes; drop scales on
        # derived campaigns — overriding callers have already chosen a size.
        return replace(self, axes=new_axes, base=new_base, scales={})


@dataclass(frozen=True)
class DriverExperiment:
    """A registry entry backed by an imperative driver, by dotted name.

    The lower-bound and exhaustive-verification experiments (E2, E4, E7,
    E14) do not execute ``RunSpec`` grids — their work lives in dedicated
    harnesses — but they still belong in :data:`EXPERIMENTS` so listings
    and ``repro experiment all`` cover every experiment.  ``driver`` is a
    ``"module:function"`` reference resolved lazily; ``scales`` maps scale
    names to driver keyword arguments.
    """

    name: str
    title: str = ""
    driver: str = ""
    scales: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def resolve(self) -> Callable[..., List[Dict]]:
        module_name, _, attr = self.driver.partition(":")
        if not module_name or not attr:
            raise SpecError(
                f"driver experiment {self.name!r} needs a 'module:function' "
                f"reference, got {self.driver!r}"
            )
        return getattr(importlib.import_module(module_name), attr)


class WhiteBoxRun(NamedTuple):
    """One executed spec with its live engine result (white-box consumers)."""

    record: RunRecord
    result: Any
    network: Any


@dataclass(frozen=True)
class CampaignResult:
    """Everything one campaign execution produced.

    ``engine`` is the override the runner was *asked* for;
    ``applied_engine`` is what actually reached the runs — ``None`` when the
    campaign ignored the request (``engine_locked`` grids, driver
    experiments), so consumers never mistake e13's synchronous rounds for
    fastpath output.
    """

    experiment: Union[ExperimentSpec, DriverExperiment]
    scale: Optional[str]
    engine: Optional[str]
    specs: List[RunSpec]
    records: List[RunRecord]
    rows: List[Dict]
    stats: BatchStats
    runs_path: Optional[str] = None
    rows_path: Optional[str] = None
    applied_engine: Optional[str] = None


class CampaignRunner:
    """Execute experiment campaigns with resume and per-experiment artifacts.

    Parameters
    ----------
    engine:
        Engine override applied to every expanded spec (ignored by
        ``engine_locked`` campaigns, and by driver experiments — their
        harnesses do not run engines).
    trace:
        Trace-capture policy (``"full"`` / ``"sample:k"``) applied to
        every expanded spec, recording the whole campaign; route the
        artifacts with :func:`repro.tracing.capture_traces`.  Ignored by
        driver experiments, like ``engine``.
    scale:
        Named scale from the campaign's ``scales`` (e.g. ``"quick"``).
    out_dir:
        Artifact directory.  Each campaign writes ``<name>.runs.jsonl``
        (the BatchRunner resume file — one record per line) and
        ``<name>.rows.json`` (aggregated rows plus campaign metadata).
    resume:
        Reuse completed spec_ids found in ``<name>.runs.jsonl`` instead of
        re-executing them.  White-box campaigns cannot resume (their rows
        need live states) and always execute.
    parallel / max_workers / chunksize / min_group_size:
        Forwarded to the :class:`~repro.api.runner.BatchRunner`
        (``chunksize=None`` auto-tunes per dispatch;
        ``min_group_size=None`` keeps the runner's batching threshold).
        The default is in-process serial execution — the right mode
        inside drivers, tests and benches; the CLI turns parallelism on.
    store:
        Optional :class:`~repro.store.store.ResultStore` shared across
        campaigns, users and CI runs.  Grid campaigns resolve every
        expanded spec against the store index before executing anything
        and publish fresh records back (see
        :class:`~repro.api.runner.BatchRunner`); white-box campaigns
        ignore it — their rows need live engine states, which records
        cannot carry — and driver experiments execute no specs at all.
    """

    def __init__(
        self,
        *,
        engine: Optional[str] = None,
        scale: Optional[str] = None,
        trace: Optional[str] = None,
        out_dir: Optional[str] = None,
        resume: bool = True,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        min_group_size: Optional[int] = None,
        progress: Optional[Callable[[int, int, RunRecord], None]] = None,
        store: Optional[Any] = None,
    ) -> None:
        self.engine = engine
        self.scale = scale
        self.trace = trace
        self.out_dir = out_dir
        self.resume = resume
        self.parallel = parallel
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.min_group_size = min_group_size
        self.progress = progress
        self.store = store

    # ------------------------------------------------------------------

    def run(self, experiment: Union[ExperimentSpec, DriverExperiment, str]) -> CampaignResult:
        """Execute one campaign (an object, or a registered name)."""
        if isinstance(experiment, str):
            from .spec import ensure_registered

            ensure_registered()
            experiment = EXPERIMENTS.get(experiment)
        if isinstance(experiment, DriverExperiment):
            return self._run_driver(experiment)
        return self._run_grid(experiment)

    # ------------------------------------------------------------------

    def _artifact_paths(self, name: str) -> Tuple[Optional[str], Optional[str]]:
        if not self.out_dir:
            return None, None
        os.makedirs(self.out_dir, exist_ok=True)
        return (
            os.path.join(self.out_dir, f"{name}.runs.jsonl"),
            os.path.join(self.out_dir, f"{name}.rows.json"),
        )

    def _write_rows(
        self,
        rows_path: Optional[str],
        experiment: Union[ExperimentSpec, DriverExperiment],
        rows: List[Dict],
        stats: BatchStats,
        applied_engine: Optional[str],
    ) -> None:
        if not rows_path:
            return
        payload = {
            "experiment": experiment.to_dict()
            if isinstance(experiment, ExperimentSpec)
            else {"name": experiment.name, "title": experiment.title, "driver": experiment.driver},
            "scale": self.scale,
            # The engine that actually reached the runs — None when the
            # campaign ignored the runner's override.
            "engine": applied_engine,
            "stats": asdict(stats),
            "rows": rows,
        }
        tmp = f"{rows_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
        os.replace(tmp, rows_path)

    def _run_grid(self, experiment: ExperimentSpec) -> CampaignResult:
        specs = experiment.expand(
            scale=self.scale, engine=self.engine, trace=self.trace
        )
        applied_engine = None if experiment.engine_locked else self.engine
        runs_path, rows_path = self._artifact_paths(experiment.name)
        aggregate = AGGREGATORS.get(experiment.aggregator)

        if getattr(aggregate, "white_box", False):
            # Live states cannot be persisted, so white-box campaigns always
            # execute serially in-process; records are still written for
            # inspection (not resume).
            cache_before = topology_cache_stats()
            runs: List[WhiteBoxRun] = []
            for spec in specs:
                run = WhiteBoxRun(*execute_spec_full(spec))
                runs.append(run)
                if self.progress is not None:
                    self.progress(len(runs), len(specs), run.record)
            cache_after = topology_cache_stats()
            records = [run.record for run in runs]
            if runs_path:
                with open(runs_path, "w", encoding="utf-8") as handle:
                    for record in records:
                        handle.write(record.to_json() + "\n")
            stats = BatchStats(
                total=len(specs),
                executed=len(specs),
                reused=0,
                cache_hits=cache_after.hits - cache_before.hits,
                cache_misses=cache_after.misses - cache_before.misses,
            )
            rows = aggregate(runs, **experiment.aggregator_params)
        else:
            runner = BatchRunner(
                parallel=self.parallel,
                max_workers=self.max_workers,
                chunksize=self.chunksize,
                min_group_size=self.min_group_size,
                store=self.store,
            )
            records = runner.run(
                specs,
                output_path=runs_path,
                resume=self.resume,
                progress=self.progress,
            )
            stats = runner.stats
            assert stats is not None  # BatchRunner.run always sets it
            rows = aggregate(records, **experiment.aggregator_params)

        self._write_rows(rows_path, experiment, rows, stats, applied_engine)
        return CampaignResult(
            experiment=experiment,
            scale=self.scale,
            engine=self.engine,
            specs=specs,
            records=records,
            rows=rows,
            stats=stats,
            runs_path=runs_path,
            rows_path=rows_path,
            applied_engine=applied_engine,
        )

    def _run_driver(self, experiment: DriverExperiment) -> CampaignResult:
        kwargs: Dict[str, Any] = {}
        if self.scale is not None:
            if self.scale not in experiment.scales:
                known = ", ".join(sorted(experiment.scales)) or "<none defined>"
                raise SpecError(
                    f"{experiment.name} has no scale {self.scale!r}; known: {known}"
                )
            kwargs = dict(experiment.scales[self.scale])
        driver = experiment.resolve()
        # Drivers that emit store artifacts (e19's schedule certificates) or
        # fan work out across processes declare store=/max_workers= keywords;
        # the runner threads its own configuration through to them.
        from .spec import _accepts_param

        if self.store is not None and "store" not in kwargs and _accepts_param(driver, "store"):
            kwargs["store"] = self.store
        if "max_workers" not in kwargs and _accepts_param(driver, "max_workers"):
            kwargs["max_workers"] = self.max_workers if self.parallel else 1
        rows = driver(**kwargs)
        stats = BatchStats(total=0, executed=0, reused=0)
        _, rows_path = self._artifact_paths(experiment.name)
        self._write_rows(rows_path, experiment, rows, stats, None)
        return CampaignResult(
            experiment=experiment,
            scale=self.scale,
            engine=self.engine,
            specs=[],
            records=[],
            rows=rows,
            stats=stats,
            rows_path=rows_path,
            applied_engine=None,
        )


# ----------------------------------------------------------------------
# registration & convenience
# ----------------------------------------------------------------------


def register_experiment(
    experiment: Union[ExperimentSpec, DriverExperiment],
) -> Union[ExperimentSpec, DriverExperiment]:
    """Register a campaign under its own name in :data:`EXPERIMENTS`."""
    EXPERIMENTS.register(experiment.name, experiment)
    return experiment


def load_experiment(path: str) -> ExperimentSpec:
    """Read one :class:`ExperimentSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return ExperimentSpec.from_json(handle.read())


def run_experiment(
    name_or_spec: Union[ExperimentSpec, DriverExperiment, str], **runner_kwargs: Any
) -> CampaignResult:
    """One-shot convenience: ``run_experiment("e05", engine="fastpath")``."""
    return CampaignRunner(**runner_kwargs).run(name_or_spec)
