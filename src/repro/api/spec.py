"""Serializable run specifications and structured run results.

The simulator's promise — *"every experiment is exactly reproducible from
(graph, protocol, scheduler, seed)"* — becomes a first-class object here.
A :class:`RunSpec` is a frozen, JSON-round-trippable description of one
execution: which graph to build (by registry name, with parameters), which
protocol to run on it, under which scheduler, with what step budget, seed
and tracing flags.  ``RunSpec.from_dict(spec.to_dict()) == spec`` always
holds, so specs can live in files, travel across process boundaries, and
key caches.

Executing a spec yields a :class:`RunRecord` — the spec plus outcome,
graph size and the full :class:`~repro.network.metrics.RunMetrics` as a
plain dict — which is itself JSON-round-trippable and is the unit the
:class:`~repro.api.runner.BatchRunner` persists to JSONL.

Two entry points:

* :func:`execute_spec` — spec in, record out; safe to call in worker
  processes.
* :func:`execute_spec_full` — additionally returns the live
  :class:`~repro.network.simulator.RunResult` and the constructed network
  for white-box consumers (experiment drivers that inspect per-vertex
  states, protocol output or graph structure).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field, fields, replace
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple, Union

from .engines import ENGINES
from .registry import GRAPH_TRANSFORMS, GRAPHS, PROTOCOLS, SCHEDULERS, UnknownNameError

__all__ = [
    "RunSpec",
    "RunRecord",
    "SpecError",
    "MetricValue",
    "TIMING_FIELDS",
    "TopologyCacheStats",
    "execute_spec",
    "execute_spec_full",
    "compiled_topology",
    "topology_key",
    "cached_network",
    "topology_cache_stats",
    "clear_topology_cache",
    "ensure_registered",
    "load_specs",
    "dump_specs",
]

#: One entry of :attr:`RunRecord.metrics`.  Most metrics are floats (or
#: ``None`` where a quantity is undefined for a run), but engines may fold
#: in integer extras — the synchronous engine's ``rounds`` and
#: ``termination_round`` — and JSON round-trips preserve the distinction,
#: so the union is the honest type.
MetricValue = Union[int, float, None]

#: RunRecord fields that vary between identical runs (wall-clock noise).
#: Determinism comparisons — and the resume logic's byte-identity claims —
#: are always "modulo these fields".
TIMING_FIELDS: Tuple[str, ...] = ("elapsed_seconds",)


class SpecError(ValueError):
    """A spec is malformed (bad field, unknown key, wrong engine...)."""


def ensure_registered() -> None:
    """Import every module that registers spec-addressable components.

    Registration is an import side effect; a worker process (or a user who
    imported only :mod:`repro.api`) may not have pulled in the baselines
    yet.  Called automatically by every ``build_*`` method; public so tools
    that only *enumerate* the registries (e.g. ``repro registry``) can
    populate them first.  Idempotent and cheap after the first call.
    """
    from .. import baselines, core, graphs  # noqa: F401
    from ..analysis import campaigns  # noqa: F401  (EXPERIMENTS entries)
    from ..network import faults, scheduler  # noqa: F401
    from ..store import backend  # noqa: F401  (STORE_BACKENDS entries)


@lru_cache(maxsize=1024)
def _accepts_param(factory: Any, name: str) -> bool:
    """Whether calling ``factory`` accepts a keyword argument ``name``.

    Memoised: registry factories are a small fixed set, and the
    ``inspect.signature`` walk is ~60µs — a measurable fraction of a short
    run when campaigns execute thousands of specs.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - C callables etc.
        return False
    params = signature.parameters
    if name in params:
        return params[name].kind not in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.VAR_POSITIONAL,
        )
    return any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values())


def _json_safe(value: Any, where: str) -> Any:
    """Round ``value`` through JSON so tuples normalise and bad types fail loudly."""
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{where} is not JSON-serializable: {exc}") from None


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified protocol execution, as plain data.

    Parameters
    ----------
    graph / graph_params:
        A :data:`~repro.api.registry.GRAPHS` name plus its keyword
        arguments (e.g. ``"random-digraph"``, ``{"num_internal": 40}``).
    graph_transforms:
        :data:`~repro.api.registry.GRAPH_TRANSFORMS` names applied to the
        generated network in order (e.g. ``("with-dead-end-vertex",)``).
    protocol / protocol_params:
        A :data:`~repro.api.registry.PROTOCOLS` name plus constructor
        keyword arguments.
    scheduler / scheduler_params:
        A :data:`~repro.api.registry.SCHEDULERS` name plus constructor
        keyword arguments; ignored by the synchronous engine.
    engine:
        A :data:`~repro.api.registry.ENGINES` name: ``"async"`` (the
        paper's adversarial model, default), ``"fastpath"`` (compiled
        flat-state engine, result-identical to ``"async"`` and much
        faster) or ``"synchronous"`` (lockstep rounds, E13).
    max_steps:
        Delivery budget (rounds budget under the synchronous engine);
        ``None`` uses each engine's generous default.
    seed:
        The run's reproducibility seed.  Injected as the ``seed`` keyword
        into the graph factory — and the scheduler factory — whenever the
        factory accepts one and the explicit params don't already set it.
    record_trace / track_state_bits / stop_at_termination:
        Forwarded to :func:`~repro.network.simulator.run_protocol`
        (async engine only; ``stop_at_termination`` also applies to the
        synchronous engine).
    faults:
        Optional fault model: a :class:`~repro.network.faults.FaultSpec`
        (or its dict form) describing message loss/duplication/delay,
        crash schedules, churn intervals and an optional adversarial
        scheduler strategy.  ``None`` — the default, and the paper's
        reliable model — leaves the engines' fault-free paths untouched
        and keeps :attr:`spec_id` byte-identical to pre-fault-layer specs.
    trace:
        Durable trace-capture policy: ``None`` (off, the default),
        ``"full"`` (every delivery), or ``"sample:k"`` (reproducible
        keep-1-in-``k`` selection; see :mod:`repro.tracing`).  ``None``
        is excluded from :attr:`spec_id` — the same trick as
        ``faults=None`` — so untraced specs keep their historical hashes.
        Off-spellings (``"off"``/``"none"``/``""``) normalise to ``None``
        and ``"sample:08"`` to ``"sample:8"``, so equal policies always
        hash equally.
    label:
        Free-form human tag.  Not part of the spec's identity: two specs
        differing only in label share a :attr:`spec_id`.

    >>> spec = RunSpec(graph="random-grounded-tree", protocol="tree-broadcast", seed=1)
    >>> RunSpec.from_dict(spec.to_dict()) == spec
    True
    >>> spec.with_seed(2).seed
    2
    """

    graph: str
    protocol: str
    graph_params: Dict[str, Any] = field(default_factory=dict)
    protocol_params: Dict[str, Any] = field(default_factory=dict)
    graph_transforms: Tuple[str, ...] = ()
    scheduler: str = "fifo"
    scheduler_params: Dict[str, Any] = field(default_factory=dict)
    engine: str = "async"
    max_steps: Optional[int] = None
    seed: Optional[int] = None
    record_trace: bool = False
    track_state_bits: bool = False
    stop_at_termination: bool = False
    faults: Optional[Any] = None
    trace: Optional[str] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        for key in ("graph", "protocol", "scheduler"):
            value = getattr(self, key)
            if not isinstance(value, str) or not value:
                raise SpecError(f"{key} must be a non-empty registry name")
        if self.engine not in ENGINES:
            raise SpecError(
                f"engine must be one of {ENGINES.names()}, got {self.engine!r}"
            )
        for key in ("graph_params", "protocol_params", "scheduler_params"):
            object.__setattr__(self, key, dict(_json_safe(getattr(self, key), key)))
        transforms = getattr(self, "graph_transforms") or ()
        if isinstance(transforms, str):
            raise SpecError("graph_transforms must be a sequence of names, not a string")
        object.__setattr__(self, "graph_transforms", tuple(transforms))
        if self.faults is not None:
            # Imported lazily: repro.network.faults needs the scheduler
            # module, whose import in turn initialises this package.
            from ..network.faults import FaultSpec, FaultSpecError

            try:
                if isinstance(self.faults, dict):
                    object.__setattr__(self, "faults", FaultSpec.from_dict(self.faults))
                elif not isinstance(self.faults, FaultSpec):
                    raise SpecError(
                        "faults must be a FaultSpec, its dict form, or None; "
                        f"got {type(self.faults).__name__}"
                    )
            except FaultSpecError as exc:
                raise SpecError(f"invalid faults payload: {exc}") from None
            if not ENGINES.get(self.engine).supports_faults:
                from .engines import fault_capable_engines

                capable = "', '".join(fault_capable_engines())
                raise SpecError(
                    f"engine {self.engine!r} does not support fault injection; "
                    f"use '{capable}'"
                )
        if self.trace is not None:
            # Dependency-free policy module: safe to import eagerly, kept
            # lazy for symmetry with the faults block above.
            from ..tracing.policy import TracePolicyError, normalize_policy

            try:
                object.__setattr__(self, "trace", normalize_policy(self.trace))
            except TracePolicyError as exc:
                raise SpecError(f"invalid trace policy: {exc}") from None
            if self.trace is not None and not ENGINES.get(self.engine).supports_trace:
                from .engines import trace_capable_engines

                capable = "', '".join(trace_capable_engines())
                raise SpecError(
                    f"engine {self.engine!r} does not support trace capture; "
                    f"use '{capable}'"
                )

    # ------------------------------------------------------------------
    # identity & serialization
    # ------------------------------------------------------------------

    @property
    def spec_id(self) -> str:
        """Stable content hash identifying the run (label excluded).

        The :class:`~repro.api.runner.BatchRunner` keys resume-from-partial
        output on this, so re-labelling specs never invalidates results.
        ``faults=None`` is excluded from the hash: fault-free specs keep
        the spec_id they had before the fault layer existed, so legacy
        resume files and caches stay valid.  ``trace=None`` is excluded
        the same way for the trace-capture layer.
        """
        payload = self.to_dict()
        payload.pop("label", None)
        if payload.get("faults") is None:
            payload.pop("faults", None)
        if payload.get("trace") is None:
            payload.pop("trace", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def __hash__(self) -> int:
        return hash(self.spec_id)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict with every field present (stable shape)."""
        payload = asdict(self)
        payload["graph_transforms"] = list(self.graph_transforms)
        payload["faults"] = self.faults.to_dict() if self.faults is not None else None
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        if not isinstance(payload, dict):
            raise SpecError(f"spec payload must be a dict, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise SpecError(f"unknown spec field(s): {', '.join(sorted(unknown))}")
        return cls(**payload)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialize to a JSON string (sorted keys, optional pretty-print)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))

    def with_seed(self, seed: Optional[int]) -> "RunSpec":
        """A copy differing only in :attr:`seed` (sweep convenience)."""
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------

    def _params_with_seed(self, factory: Any, params: Dict[str, Any]) -> Dict[str, Any]:
        merged = dict(params)
        if self.seed is not None and "seed" not in merged and _accepts_param(factory, "seed"):
            merged["seed"] = self.seed
        return merged

    def build_graph(self):
        """Construct the network this spec describes (deterministic)."""
        ensure_registered()
        factory = GRAPHS.get(self.graph)
        network = factory(**self._params_with_seed(factory, self.graph_params))
        for transform in self.graph_transforms:
            network = GRAPH_TRANSFORMS.create(transform, network)
        return network

    def build_protocol(self):
        """A fresh protocol instance."""
        ensure_registered()
        return PROTOCOLS.create(self.protocol, **self.protocol_params)

    def build_scheduler(self):
        """A fresh scheduler instance (async engine only)."""
        ensure_registered()
        factory = SCHEDULERS.get(self.scheduler)
        return factory(**self._params_with_seed(factory, self.scheduler_params))

    def build_faults(self, network):
        """The run's :class:`~repro.network.faults.FaultInjector`, or ``None``.

        Needs the built network (fault schedules are validated against its
        vertex count); the run seed feeds the fault RNG unless the fault
        spec pins its own seed.  Build-time defects — a fault vertex the
        network doesn't have, an unregistered adversary name — surface as
        :class:`SpecError`, same as construction-time ones.
        """
        if self.faults is None:
            return None
        ensure_registered()
        from ..network.faults import FaultSpecError

        try:
            return self.faults.build(network, self.seed)
        except (FaultSpecError, UnknownNameError) as exc:
            raise SpecError(f"invalid faults payload: {exc}") from None

    def run(self) -> "RunRecord":
        """Execute this spec; shorthand for :func:`execute_spec`."""
        return execute_spec(self)


@dataclass(frozen=True)
class RunRecord:
    """Structured result of executing one :class:`RunSpec`.

    ``metrics`` is the flattened :class:`~repro.network.metrics.RunMetrics`
    (plus ``rounds`` / ``termination_round`` under the synchronous engine).
    ``elapsed_seconds`` is the only non-deterministic field — see
    :data:`TIMING_FIELDS`.
    """

    spec: RunSpec
    outcome: str
    terminated: bool
    num_vertices: int
    num_edges: int
    metrics: Dict[str, MetricValue]
    elapsed_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict with the spec nested in its own dict form."""
        payload = asdict(self)
        payload["spec"] = self.spec.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict`."""
        data = dict(payload)
        data["spec"] = RunSpec.from_dict(data["spec"])
        return cls(**data)

    def to_json(self) -> str:
        """One deterministic JSONL line (keys sorted, compact)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        """Parse one :meth:`to_json` line back into a record."""
        return cls.from_dict(json.loads(text))

    def comparable_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` minus :data:`TIMING_FIELDS` (determinism checks)."""
        payload = self.to_dict()
        for key in TIMING_FIELDS:
            payload.pop(key, None)
        return payload


# ----------------------------------------------------------------------
# compiled-topology cache
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TopologyCacheStats:
    """Snapshot of the process-local topology cache counters."""

    hits: int
    misses: int


class _TopologyEntry:
    """One cached topology: the built network plus its lazy compilation."""

    __slots__ = ("network", "compiled")

    def __init__(self, network: Any) -> None:
        self.network = network
        self.compiled: Any = None


class _TopologyCache:
    """Bounded process-local LRU of built (and compiled) topologies.

    Campaign grids routinely sweep thousands of protocol/scheduler/seed
    combinations over a handful of graphs; rebuilding the
    :class:`~repro.network.graph.DirectedNetwork` — and, on the fastpath
    engine, re-flattening it into a
    :class:`~repro.network.fastpath.CompiledNetwork` — per run is pure
    waste, since networks are immutable.  Entries are keyed by the spec's
    *graph-defining* fields: graph name, effective graph params (with the
    run seed injected exactly as :meth:`RunSpec.build_graph` would inject
    it — so graph families that ignore the seed share one entry across a
    seed sweep), and the transform chain.

    The cache is deliberately process-local: each
    :class:`~repro.api.runner.BatchRunner` worker populates its own copy
    on first use, and the per-run hit/miss deltas are shipped back with
    each record so :class:`~repro.api.runner.BatchStats` can aggregate
    them across the pool.
    """

    __slots__ = ("maxsize", "_entries", "hits", "misses")

    def __init__(self, maxsize: int = 32) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[Any, _TopologyEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _key(self, spec: "RunSpec") -> Any:
        ensure_registered()
        factory = GRAPHS.get(spec.graph)
        params = spec._params_with_seed(factory, spec.graph_params)
        return (
            spec.graph,
            json.dumps(params, sort_keys=True, separators=(",", ":")),
            spec.graph_transforms,
        )

    def entry(self, spec: "RunSpec") -> _TopologyEntry:
        key = self._key(spec)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = _TopologyEntry(spec.build_graph())
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def network(self, spec: "RunSpec") -> Any:
        return self.entry(spec).network

    def compiled(self, spec: "RunSpec", network: Any) -> Any:
        """The :class:`CompiledNetwork` for ``network``, cached per topology.

        Only the entry whose network *is* the given object may serve (or
        store) a compilation — a caller-built network bypassing the cache
        gets a fresh, uncached compilation instead of poisoning an entry.
        """
        from ..network.fastpath import CompiledNetwork

        key = self._key(spec)
        entry = self._entries.get(key)
        if entry is not None and entry.network is network:
            if entry.compiled is None:
                entry.compiled = CompiledNetwork(network)
            return entry.compiled
        return CompiledNetwork(network)

    def stats(self) -> TopologyCacheStats:
        return TopologyCacheStats(hits=self.hits, misses=self.misses)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_TOPOLOGY_CACHE = _TopologyCache()


def topology_cache_stats() -> TopologyCacheStats:
    """Cumulative hit/miss counters of this process's topology cache."""
    return _TOPOLOGY_CACHE.stats()


def clear_topology_cache() -> None:
    """Drop every cached topology and reset the counters (test isolation)."""
    _TOPOLOGY_CACHE.clear()


def compiled_topology(spec: RunSpec, network: Any) -> Any:
    """The cached :class:`~repro.network.fastpath.CompiledNetwork` for a run.

    Used by the fastpath engine adapter; see :meth:`_TopologyCache.compiled`
    for the safety rule.
    """
    return _TOPOLOGY_CACHE.compiled(spec, network)


def topology_key(spec: RunSpec) -> Any:
    """The spec's graph-defining identity (hashable).

    Two specs with equal topology keys build the same network — this is
    the key the process-local topology cache uses, exposed so the batch
    engine can subdivide a seed-group wherever the seed actually changes
    the graph (seed-sensitive graph families) before vectorizing.
    """
    return _TOPOLOGY_CACHE._key(spec)


def cached_network(spec: RunSpec) -> Any:
    """The spec's network, served from the process-local topology cache."""
    return _TOPOLOGY_CACHE.network(spec)


def execute_spec(spec: RunSpec) -> RunRecord:
    """Execute ``spec`` and return only the serializable record."""
    return execute_spec_full(spec)[0]


def execute_spec_full(spec: RunSpec):
    """Execute ``spec``; return ``(record, result, network)``.

    ``result`` is the engine's native result object —
    :class:`~repro.network.simulator.RunResult` or
    :class:`~repro.network.synchronous.SynchronousRunResult` — carrying
    per-vertex states, protocol output and the optional trace, none of
    which survive serialization; ``network`` is the
    :class:`~repro.network.graph.DirectedNetwork` the run executed on (so
    white-box callers need not rebuild it).  Callers that only need
    numbers should use :func:`execute_spec` (or the batch runner) instead.

    The engine is resolved through :data:`~repro.api.registry.ENGINES`
    (see :mod:`repro.api.engines`), so ``engine="fastpath"`` — or any
    engine registered later — needs no changes here.

    The network comes from the process-local topology cache (networks are
    immutable, so sharing one object across runs is sound); see
    :class:`_TopologyCache` and :func:`topology_cache_stats`.
    """
    network = _TOPOLOGY_CACHE.network(spec)
    protocol = spec.build_protocol()
    engine = ENGINES.get(spec.engine)
    start = time.perf_counter()
    result, extra = engine.run_one(spec, network, protocol)
    elapsed = time.perf_counter() - start

    metrics: Dict[str, MetricValue] = dict(asdict(result.metrics))
    metrics.update(extra)
    record = RunRecord(
        spec=spec,
        outcome=result.outcome.value,
        terminated=result.terminated,
        num_vertices=network.num_vertices,
        num_edges=network.num_edges,
        metrics=metrics,
        elapsed_seconds=elapsed,
    )
    return record, result, network


# ----------------------------------------------------------------------
# spec files
# ----------------------------------------------------------------------


def load_specs(path: str) -> list:
    """Read specs from a file: a JSON list, a single JSON object, or JSONL."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if not text.strip():
        return []
    try:
        payloads = json.loads(text)
        if isinstance(payloads, dict):
            payloads = [payloads]
    except json.JSONDecodeError as whole_file_error:
        try:
            payloads = [json.loads(line) for line in text.splitlines() if line.strip()]
        except json.JSONDecodeError:
            # Not valid JSONL either: the whole-file error points at the
            # actual defect (e.g. a trailing comma mid-list); re-raise it
            # rather than a misleading "line 1" error from the fallback.
            raise whole_file_error from None
    return [RunSpec.from_dict(p) for p in payloads]


def dump_specs(specs, path: str) -> None:
    """Write specs as a pretty-printed JSON list (the ``repro batch`` input)."""
    payload = [spec.to_dict() for spec in specs]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")
