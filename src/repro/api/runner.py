"""Parallel batch execution of run specs with JSONL persistence and resume.

The :class:`BatchRunner` is the scaling workhorse the ROADMAP's north star
asks every future PR to build against: hand it an iterable of
:class:`~repro.api.spec.RunSpec` and it executes them across a
``concurrent.futures.ProcessPoolExecutor`` (chunked, so tiny runs amortise
IPC), returns :class:`~repro.api.spec.RunRecord` objects **in input
order** regardless of completion order, and — when given an output path —
persists one deterministic JSON line per record.

Resume semantics: records are keyed by :attr:`RunSpec.spec_id` (a content
hash).  When the output file already holds a record for a spec, that spec
is not re-executed; freshly computed records are appended as they finish
(crash-safe), and the file is rewritten in canonical input order at the
end.  Re-running an identical batch therefore costs zero simulations and
reproduces the file byte-for-byte modulo :data:`~repro.api.spec.TIMING_FIELDS`.

With a :class:`~repro.store.store.ResultStore` attached
(``BatchRunner(store=...)``), resume first consults the store's sqlite
index — cross-campaign, cross-user, cross-CI cache hits at the cost of an
index lookup, not a JSONL parse — and every freshly computed record is
published back to the store as it completes.  The per-batch JSONL file
keeps working exactly as before and is only parsed when the store could
not satisfy the whole batch (the legacy fallback); records it serves are
absorbed into the store, migrating old artifact dirs on touch.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Sequence

from .engines import ENGINES
from .spec import RunRecord, RunSpec, execute_spec, topology_cache_stats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..store.store import ResultStore

__all__ = [
    "BatchRunner",
    "BatchStats",
    "DEFAULT_MIN_GROUP_SIZE",
    "run_specs",
    "load_records",
]

#: Default :class:`BatchRunner` batching threshold: seed-groups smaller
#: than this run per-spec instead of through ``run_many``.  Measured
#: batch-vs-fastpath ratios (BENCH_engines.json) only reach ~1.7x at
#: K=16 and the SoA set-up cost is flat per group, so tiny groups pay
#: the overhead for little gain; 8 keeps every campaign-scale sweep
#: batched while letting small ad-hoc groups skip the machinery.
DEFAULT_MIN_GROUP_SIZE = 8


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: dicts in, dicts out (cheap, version-tolerant IPC).

    Alongside the record, each result carries the run's topology-cache
    hit/miss *delta* — caches are process-local, so per-run deltas are the
    only aggregation that composes across a worker pool.
    """
    before = topology_cache_stats()
    record = execute_spec(RunSpec.from_dict(payload)).to_dict()
    after = topology_cache_stats()
    return {
        "record": record,
        "cache_hits": after.hits - before.hits,
        "cache_misses": after.misses - before.misses,
    }


def _execute_group_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point for one seed-group: ``{"specs": [...]}`` in,
    ``{"records": [...], "cache_hits", "cache_misses"}`` out.

    The whole group runs through the engine's ``run_many`` capability in
    this one worker — that is the point: the vectorized engines only pay
    off when the seed-group reaches them intact.
    """
    specs = [RunSpec.from_dict(d) for d in payload["specs"]]
    before = topology_cache_stats()
    fallbacks: Dict[str, int] = {}
    records = ENGINES.get(specs[0].engine).run_many(
        specs[0], [spec.seed for spec in specs], fallbacks
    )
    after = topology_cache_stats()
    return {
        "records": [record.to_dict() for record in records],
        "cache_hits": after.hits - before.hits,
        "cache_misses": after.misses - before.misses,
        "batch_fallbacks": fallbacks,
    }


def load_records(path: str) -> List[RunRecord]:
    """Parse a results JSONL file, tolerating a truncated final line.

    A batch interrupted mid-write leaves at most one partial line; skipping
    unparseable lines is exactly what makes resume-from-partial-output work.
    """
    records: List[RunRecord] = []
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(RunRecord.from_json(line))
            except (ValueError, KeyError, TypeError):
                continue  # partial or foreign line — recompute that spec
    return records


@dataclass(frozen=True)
class BatchStats:
    """What the last :meth:`BatchRunner.run` actually did.

    ``cache_hits`` / ``cache_misses`` count compiled-topology cache events
    across every process that executed specs (see
    :func:`~repro.api.spec.topology_cache_stats`); a grid that sweeps
    protocol/scheduler/seed axes over one topology should show hits close
    to ``executed``.

    ``store_hits`` / ``store_misses`` count result-store lookups (unique
    specs served from / absent from the attached
    :class:`~repro.store.store.ResultStore`); both stay zero when no
    store is attached or resume is off.  Store hits are counted inside
    ``reused`` — a record served from the store was not executed.

    ``batched_groups`` counts the seed-groups dispatched whole through an
    engine's ``run_many`` capability (see
    :class:`~repro.api.engines.EngineInfo`); the specs they contain are
    still counted individually in ``executed``.

    ``batch_fallbacks`` tallies, by reason, every executed spec that was
    *eligible* for batching but ran per-seed anyway: ``small_group``
    (seed-group under the runner's ``min_group_size`` or a singleton
    after topology subdivision), plus the engine-reported reasons from
    :func:`~repro.network.batchpath.run_many_batched` (``no_kernel``,
    ``faults``, ``trace``, ``state_bits``, ``scheduler``,
    ``seed_range``).  Empty when nothing fell back — so silent per-seed
    execution is observable instead of inferred from timings.
    """

    total: int
    executed: int
    reused: int
    cache_hits: int = 0
    cache_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0
    batched_groups: int = 0
    batch_fallbacks: Dict[str, int] = field(default_factory=dict)


class BatchRunner:
    """Execute many :class:`RunSpec`\\ s, in parallel, deterministically.

    Parameters
    ----------
    max_workers:
        Worker processes (``None`` = ``os.cpu_count()``).
    chunksize:
        Specs per IPC round-trip.  ``None`` (the default) auto-tunes to
        ``max(4, pending // (8 * workers))`` when the batch is dispatched,
        so huge quick-scale campaigns stop paying one IPC round-trip per
        4 tiny runs while each worker still gets ~8 chunks to balance load.
    parallel:
        ``False`` runs everything in-process — the right mode inside
        experiment drivers and tests (no fork overhead, full determinism
        guarantees hold in both modes because results are ordered by input
        position, never by completion).
    store:
        Optional :class:`~repro.store.store.ResultStore`.  When set, a
        resuming run looks specs up in the store index before anything
        else (O(pending) — the batch JSONL is not even parsed when the
        store satisfies every spec) and publishes every freshly computed
        record back to the store as it completes.  The store is only
        touched from this parent process, never from pool workers.
    min_group_size:
        Smallest seed-group worth dispatching through ``run_many``
        (default :data:`DEFAULT_MIN_GROUP_SIZE`); smaller groups run
        per-spec and are tallied under ``batch_fallbacks["small_group"]``.
        Exposed on the CLI as ``--batch-min-group``.
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        parallel: bool = True,
        store: "Optional[ResultStore]" = None,
        min_group_size: Optional[int] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 (use parallel=False for serial)")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1 (or None to auto-tune)")
        if min_group_size is not None and min_group_size < 1:
            raise ValueError("min_group_size must be >= 1 (or None for the default)")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.parallel = parallel
        self.store = store
        self.min_group_size = (
            DEFAULT_MIN_GROUP_SIZE if min_group_size is None else min_group_size
        )
        #: Stats of the most recent :meth:`run` call.
        self.stats: Optional[BatchStats] = None
        self._cache_hits = 0
        self._cache_misses = 0
        self._batched_groups = 0
        self._batch_fallbacks: Dict[str, int] = {}

    def effective_chunksize(self, pending: int) -> int:
        """The chunksize a dispatch of ``pending`` specs will use."""
        if self.chunksize is not None:
            return self.chunksize
        workers = self.max_workers or os.cpu_count() or 1
        return max(4, pending // (8 * workers))

    # ------------------------------------------------------------------

    def run(
        self,
        specs: Iterable[RunSpec],
        *,
        output_path: Optional[str] = None,
        resume: bool = True,
        progress: Optional[Callable[[int, int, RunRecord], None]] = None,
    ) -> List[RunRecord]:
        """Execute ``specs``; return records in input order.

        Parameters
        ----------
        output_path:
            JSONL file to persist records to.  Written incrementally while
            running, then rewritten in input order (one sorted-key compact
            JSON object per line) on completion.
        resume:
            Reuse records already present in the attached store and in
            ``output_path`` (keyed by ``spec_id``) instead of re-executing
            their specs.
        progress:
            Optional ``(done, total, record)`` callback per completed spec.

        Notes
        -----
        With a store attached, ``output_path`` is only *parsed* when the
        store could not satisfy every spec in the batch (legacy fallback;
        JSONL-served records are absorbed into the store).  When the store
        serves the whole batch, the file is rewritten purely from batch
        records — records for specs outside the batch are preserved only
        on the no-store / fallback path, where the file has been read.
        """
        spec_list = list(specs)
        # First occurrence of each distinct spec in input order.
        unique: Dict[str, RunSpec] = {}
        for spec in spec_list:
            unique.setdefault(spec.spec_id, spec)

        by_id: Dict[str, RunRecord] = {}
        store = self.store
        store_ids: set = set()
        if store is not None and resume:
            by_id.update(store.get_many(unique.values()))
            store_ids = set(by_id)

        # Legacy JSONL resume: skipped entirely when the store already
        # satisfied the whole batch — that is what makes a warm-store
        # resume O(pending) instead of O(records in the artifact file).
        file_records: List[RunRecord] = []
        fully_served = store is not None and resume and len(by_id) == len(unique)
        if output_path and not fully_served:
            file_records = load_records(output_path)
            if resume:
                for record in file_records:
                    by_id.setdefault(record.spec.spec_id, record)
                if store is not None:
                    # Absorb JSONL-only records: legacy artifact dirs
                    # migrate into the store the first time they resume.
                    absorbed = [
                        by_id[sid]
                        for sid in unique
                        if sid in by_id and sid not in store_ids
                    ]
                    if absorbed:
                        store.put_many(absorbed)

        pending = [spec for sid, spec in unique.items() if sid not in by_id]
        done = len(spec_list) - len(pending)

        self._cache_hits = 0
        self._cache_misses = 0
        self._batched_groups = 0
        self._batch_fallbacks = {}
        sink = None
        try:
            if output_path:
                sink = open(output_path, "a", encoding="utf-8")
            for record in self._execute(pending):
                by_id[record.spec.spec_id] = record
                if store is not None:
                    store.put(record)
                if sink is not None:
                    sink.write(record.to_json() + "\n")
                    sink.flush()
                done += 1
                if progress is not None:
                    progress(done, len(spec_list), record)
        finally:
            if sink is not None:
                sink.close()

        records = [by_id[spec.spec_id] for spec in spec_list]
        if output_path:
            # Records in the file for specs outside this batch are kept (in
            # their original order, after the batch) — a subset re-run must
            # never destroy results it did not recompute.
            batch_ids = {spec.spec_id for spec in spec_list}
            extras = [r for r in file_records if r.spec.spec_id not in batch_ids]
            self._rewrite(output_path, list(records) + extras)
        lookups = len(unique) if (store is not None and resume) else 0
        self.stats = BatchStats(
            total=len(spec_list),
            executed=len(pending),
            reused=len(spec_list) - len(pending),
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
            store_hits=len(store_ids),
            store_misses=max(0, lookups - len(store_ids)),
            batched_groups=self._batched_groups,
            batch_fallbacks=dict(self._batch_fallbacks),
        )
        return records

    # ------------------------------------------------------------------

    def _plan(
        self, pending: Sequence[RunSpec]
    ) -> "tuple[List[RunSpec], List[List[RunSpec]]]":
        """Split pending work into singleton specs and ``run_many`` groups.

        Specs whose engine declares ``supports_batching`` are grouped by
        "spec minus seed" (the ``spec_id`` with the seed nulled out).
        Grouping happens strictly *after* store/JSONL resume filtering, so
        a store hit inside a group shrinks the group instead of forcing a
        re-execution; groups that shrink below ``min_group_size`` (always
        at least 2) fall back to the ordinary per-spec path, where
        dispatch is cheaper than the SoA set-up — multi-spec groups the
        threshold turned away are tallied under
        ``batch_fallbacks["small_group"]`` (singletons had nothing to
        batch with and are not).
        """
        singles: List[RunSpec] = []
        by_shape: Dict[str, List[RunSpec]] = {}
        for spec in pending:
            info = ENGINES.get(spec.engine)
            if getattr(info, "supports_batching", False):
                by_shape.setdefault(spec.with_seed(None).spec_id, []).append(spec)
            else:
                singles.append(spec)
        threshold = max(2, self.min_group_size)
        groups: List[List[RunSpec]] = []
        for members in by_shape.values():
            if len(members) >= threshold:
                groups.append(members)
            else:
                if len(members) >= 2:
                    self._batch_fallbacks["small_group"] = (
                        self._batch_fallbacks.get("small_group", 0) + len(members)
                    )
                singles.extend(members)
        return singles, groups

    def _execute(self, pending: Sequence[RunSpec]) -> Iterable[RunRecord]:
        if not pending:
            return
        singles, groups = self._plan(pending)
        if not self.parallel or len(pending) == 1:
            for members in groups:
                before = topology_cache_stats()
                records = ENGINES.get(members[0].engine).run_many(
                    members[0],
                    [spec.seed for spec in members],
                    self._batch_fallbacks,
                )
                after = topology_cache_stats()
                self._cache_hits += after.hits - before.hits
                self._cache_misses += after.misses - before.misses
                self._batched_groups += 1
                yield from records
            for spec in singles:
                before = topology_cache_stats()
                record = execute_spec(spec)
                after = topology_cache_stats()
                self._cache_hits += after.hits - before.hits
                self._cache_misses += after.misses - before.misses
                yield record
            return
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            if groups:
                group_payloads = [
                    {"specs": [spec.to_dict() for spec in members]}
                    for members in groups
                ]
                for result in pool.map(_execute_group_payload, group_payloads):
                    self._cache_hits += result["cache_hits"]
                    self._cache_misses += result["cache_misses"]
                    self._batched_groups += 1
                    for reason, count in result.get("batch_fallbacks", {}).items():
                        self._batch_fallbacks[reason] = (
                            self._batch_fallbacks.get(reason, 0) + count
                        )
                    for record in result["records"]:
                        yield RunRecord.from_dict(record)
            if singles:
                payloads = [spec.to_dict() for spec in singles]
                chunksize = self.effective_chunksize(len(payloads))
                for result in pool.map(_execute_payload, payloads, chunksize=chunksize):
                    self._cache_hits += result["cache_hits"]
                    self._cache_misses += result["cache_misses"]
                    yield RunRecord.from_dict(result["record"])

    def map_payloads(
        self,
        worker: Callable[[Dict[str, Any]], Dict[str, Any]],
        payloads: Sequence[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Run a picklable ``worker`` over JSON-safe payload dicts, in order.

        The generic sibling of :meth:`run` for work that is not a
        :class:`~repro.api.spec.RunSpec` — the guided schedule search
        shards subtree roots across the same worker pool this way.
        Results come back in input order; ``parallel=False`` (or a single
        payload) runs in-process, preserving the determinism story of the
        spec path.  ``worker`` must be a module-level function (it
        crosses the process boundary).
        """
        items = list(payloads)
        if not items:
            return []
        if not self.parallel or len(items) == 1:
            return [worker(payload) for payload in items]
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(worker, items))

    @staticmethod
    def _rewrite(path: str, records: Sequence[RunRecord]) -> None:
        """Atomically replace ``path`` with the canonical input-order JSONL."""
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(record.to_json() + "\n")
        os.replace(tmp, path)


def run_specs(
    specs: Iterable[RunSpec],
    *,
    output_path: Optional[str] = None,
    resume: bool = True,
    max_workers: Optional[int] = None,
    parallel: bool = True,
    store: "Optional[ResultStore]" = None,
    min_group_size: Optional[int] = None,
) -> List[RunRecord]:
    """One-shot convenience wrapper around :class:`BatchRunner`."""
    runner = BatchRunner(
        max_workers=max_workers,
        parallel=parallel,
        store=store,
        min_group_size=min_group_size,
    )
    return runner.run(specs, output_path=output_path, resume=resume)
