"""Execution engines as registry entries.

An *engine* is the thing that actually drives a protocol over a network:
the asynchronous adversarial simulator, the synchronous lockstep runner, or
the compiled fast-path loop.  Each engine is registered in
:data:`~repro.api.registry.ENGINES` as a callable::

    engine(spec, network, protocol) -> (result, extra_metrics)

where ``result`` is the engine's native result object (it must expose
``outcome``, ``terminated`` and ``metrics``) and ``extra_metrics`` is a
dict of engine-specific additions folded into the
:class:`~repro.api.spec.RunRecord` metrics (e.g. the synchronous engine's
``rounds``).  :func:`~repro.api.spec.execute_spec_full` dispatches through
the registry, so ``RunSpec(engine="fastpath")`` selects the fast path with
zero driver changes, and a new engine becomes spec-addressable the moment
it registers itself.

The heavy engine modules are imported lazily inside each adapter so that
importing :mod:`repro.api` stays cheap.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from .registry import ENGINES

__all__ = ["ENGINES"]


def _faults_and_scheduler(spec: Any, network: Any) -> Tuple[Any, Any]:
    """The run's fault injector (or ``None``) and its effective scheduler.

    A fault spec naming an adversarial strategy replaces the run spec's
    scheduler with it — the strategy *is* the delivery adversary.
    """
    injector = spec.build_faults(network)
    if injector is not None and injector.adversary is not None:
        return injector, injector.adversary
    return injector, spec.build_scheduler()


@ENGINES.register("async")
def _run_async(spec: Any, network: Any, protocol: Any) -> Tuple[Any, Dict[str, Any]]:
    """The paper's adversarial model: per-event delivery under a scheduler."""
    from ..network.simulator import run_protocol

    faults, scheduler = _faults_and_scheduler(spec, network)
    result = run_protocol(
        network,
        protocol,
        scheduler,
        max_steps=spec.max_steps,
        record_trace=spec.record_trace,
        track_state_bits=spec.track_state_bits,
        stop_at_termination=spec.stop_at_termination,
        faults=faults,
    )
    return result, faults.counters() if faults is not None else {}


_run_async.supports_faults = True


@ENGINES.register("fastpath")
def _run_fastpath(spec: Any, network: Any, protocol: Any) -> Tuple[Any, Dict[str, Any]]:
    """Compiled flat-state engine; bit-identical to ``async``, much faster.

    The ``O(|V| + |E|)`` topology compilation is served from the
    process-local cache keyed by the spec's graph-defining fields, so
    campaign grids that sweep protocol/scheduler/seed axes over one
    topology compile it once per worker instead of once per run.

    When the spec carries a fault model the engine runs kernel-exempt (the
    generic protocol machine under the real scheduler object), with the
    same injection hooks as the reference simulator — faulty runs stay
    engine-identical, and fault-free runs never touch the fault path.
    """
    from ..network.fastpath import run_protocol_fastpath
    from .spec import compiled_topology

    faults, scheduler = _faults_and_scheduler(spec, network)
    result = run_protocol_fastpath(
        network,
        protocol,
        scheduler,
        max_steps=spec.max_steps,
        record_trace=spec.record_trace,
        track_state_bits=spec.track_state_bits,
        stop_at_termination=spec.stop_at_termination,
        compiled=compiled_topology(spec, network),
        faults=faults,
    )
    return result, faults.counters() if faults is not None else {}


_run_fastpath.supports_faults = True


@ENGINES.register("synchronous")
def _run_synchronous(spec: Any, network: Any, protocol: Any) -> Tuple[Any, Dict[str, Any]]:
    """Lockstep rounds (§2's time-complexity extension, experiment E13)."""
    from ..network.synchronous import run_protocol_synchronous

    result = run_protocol_synchronous(
        network,
        protocol,
        max_rounds=spec.max_steps,
        stop_at_termination=spec.stop_at_termination,
    )
    return result, {"rounds": result.rounds, "termination_round": result.termination_round}
