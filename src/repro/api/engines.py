"""Execution engines as structured registry entries.

An *engine* is the thing that actually drives a protocol over a network:
the asynchronous adversarial simulator, the synchronous lockstep runner,
the compiled fast-path loop, or the vectorized multi-run batch engine.
Each engine is registered in :data:`~repro.api.registry.ENGINES` as an
:class:`EngineInfo` — a capability contract instead of a bare callable::

    info = ENGINES.get("fastpath")
    result, extra = info.run_one(spec, network, protocol)
    if info.supports_batching:
        records = info.run_many(spec, seeds)

``run_one`` keeps the historical callable signature
``(spec, network, protocol) -> (result, extra_metrics)`` where ``result``
is the engine's native result object (it must expose ``outcome``,
``terminated`` and ``metrics``) and ``extra_metrics`` is a dict of
engine-specific additions folded into the
:class:`~repro.api.spec.RunRecord` metrics (e.g. the synchronous engine's
``rounds``).  :class:`EngineInfo` instances are themselves callable with
that signature, so legacy ``engine(spec, network, protocol)`` call sites
keep working unchanged.

``run_many`` is the batching capability: ``run_many(spec, seeds)``
executes one spec shape across many seeds in a single call and returns
input-ordered :class:`~repro.api.spec.RunRecord` objects (an optional
third ``fallbacks`` counter dict collects per-seed fallback reasons).
Only engines with ``supports_batching=True`` provide it; the
:class:`~repro.api.runner.BatchRunner` groups pending work by
"spec minus seed" and dispatches whole seed-groups through it.

``supports_faults`` replaces the old ad-hoc function attribute of the
same name: :class:`~repro.api.spec.RunSpec` validation consults it, so a
spec carrying a fault model on a non-fault engine fails at construction
with a one-line error listing the engines that do support faults.

The heavy engine modules are imported lazily inside each adapter so that
importing :mod:`repro.api` stays cheap (and so the ``batch`` engine's
numpy dependency is only required when the batch engine actually runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .registry import ENGINES

__all__ = [
    "ENGINES",
    "EngineInfo",
    "fault_capable_engines",
    "trace_capable_engines",
]


@dataclass(frozen=True)
class EngineInfo:
    """Capability contract for one registered execution engine.

    Parameters
    ----------
    name:
        The registry name (``"async"``, ``"fastpath"``, ...).
    run_one:
        ``(spec, network, protocol) -> (result, extra_metrics)`` — the
        single-run adapter every engine must provide.
    run_many:
        Optional ``(spec, seeds, fallbacks=None) -> list[RunRecord]``
        executing one spec shape across many seeds in a single call
        (input-ordered records).  ``fallbacks`` is an optional mutable
        counter dict the engine increments per spec that silently took a
        per-seed fallback, keyed by reason (surfaced as
        ``batch_fallbacks`` in :class:`~repro.api.runner.BatchStats`).
        Must be present exactly when ``supports_batching`` is set.
    supports_faults:
        Whether specs carrying a :class:`~repro.network.faults.FaultSpec`
        may select this engine.
    supports_batching:
        Whether :class:`~repro.api.runner.BatchRunner` may dispatch whole
        seed-groups through :attr:`run_many`.
    supports_trace:
        Whether specs carrying a :attr:`~repro.api.spec.RunSpec.trace`
        capture policy may select this engine (see :mod:`repro.tracing`).
    """

    name: str
    run_one: Callable[[Any, Any, Any], Tuple[Any, Dict[str, Any]]]
    run_many: Optional[Callable[[Any, Sequence[Any]], List[Any]]] = None
    supports_faults: bool = False
    supports_batching: bool = False
    supports_trace: bool = False

    def __post_init__(self) -> None:
        if self.supports_batching != (self.run_many is not None):
            raise ValueError(
                f"engine {self.name!r}: supports_batching must match the "
                "presence of run_many"
            )

    def __call__(self, spec: Any, network: Any, protocol: Any) -> Tuple[Any, Dict[str, Any]]:
        """Legacy callable form; delegates to :attr:`run_one`."""
        return self.run_one(spec, network, protocol)

    def capabilities(self) -> Tuple[str, ...]:
        """The declared capability tags, for ``repro registry`` and tests."""
        tags = ["run_one"]
        if self.run_many is not None:
            tags.append("run_many")
        if self.supports_faults:
            tags.append("faults")
        if self.supports_batching:
            tags.append("batching")
        if self.supports_trace:
            tags.append("trace")
        return tuple(tags)


def fault_capable_engines() -> Tuple[str, ...]:
    """Registry names of every engine with ``supports_faults=True``."""
    return tuple(
        name for name in ENGINES.names() if ENGINES.get(name).supports_faults
    )


def trace_capable_engines() -> Tuple[str, ...]:
    """Registry names of every engine with ``supports_trace=True``."""
    return tuple(
        name for name in ENGINES.names() if ENGINES.get(name).supports_trace
    )


def _faults_and_scheduler(spec: Any, network: Any) -> Tuple[Any, Any]:
    """The run's fault injector (or ``None``) and its effective scheduler.

    A fault spec naming an adversarial strategy replaces the run spec's
    scheduler with it — the strategy *is* the delivery adversary.
    """
    injector = spec.build_faults(network)
    if injector is not None and injector.adversary is not None:
        return injector, injector.adversary
    return injector, spec.build_scheduler()


def _trace_capture(spec: Any, network: Any) -> Optional[Any]:
    """The run's trace sink, or ``None`` (the overwhelmingly common case)."""
    if getattr(spec, "trace", None) is None:
        return None
    from ..tracing.capture import open_capture

    return open_capture(spec, network)


def _extra_metrics(faults: Any, capture: Any) -> Dict[str, Any]:
    """Fold fault and trace counters into the record's engine extras."""
    extra: Dict[str, Any] = {}
    if faults is not None:
        extra.update(faults.counters())
    if capture is not None:
        extra.update(capture.counters())
    return extra


def _run_async(spec: Any, network: Any, protocol: Any) -> Tuple[Any, Dict[str, Any]]:
    """The paper's adversarial model: per-event delivery under a scheduler."""
    from ..network.simulator import run_protocol

    faults, scheduler = _faults_and_scheduler(spec, network)
    capture = _trace_capture(spec, network)
    try:
        result = run_protocol(
            network,
            protocol,
            scheduler,
            max_steps=spec.max_steps,
            record_trace=spec.record_trace,
            track_state_bits=spec.track_state_bits,
            stop_at_termination=spec.stop_at_termination,
            faults=faults,
            trace_sink=capture,
        )
    except BaseException:
        if capture is not None:
            capture.abort()
        raise
    if capture is not None:
        capture.finalize(result)
    return result, _extra_metrics(faults, capture)


def _run_fastpath(spec: Any, network: Any, protocol: Any) -> Tuple[Any, Dict[str, Any]]:
    """Compiled flat-state engine; bit-identical to ``async``, much faster.

    The ``O(|V| + |E|)`` topology compilation is served from the
    process-local cache keyed by the spec's graph-defining fields, so
    campaign grids that sweep protocol/scheduler/seed axes over one
    topology compile it once per worker instead of once per run.

    When the spec carries a fault model the engine runs kernel-exempt (the
    generic protocol machine under the real scheduler object), with the
    same injection hooks as the reference simulator — faulty runs stay
    engine-identical, and fault-free runs never touch the fault path.
    """
    from ..network.fastpath import run_protocol_fastpath
    from .spec import compiled_topology

    faults, scheduler = _faults_and_scheduler(spec, network)
    capture = _trace_capture(spec, network)
    try:
        result = run_protocol_fastpath(
            network,
            protocol,
            scheduler,
            max_steps=spec.max_steps,
            record_trace=spec.record_trace,
            track_state_bits=spec.track_state_bits,
            stop_at_termination=spec.stop_at_termination,
            compiled=compiled_topology(spec, network),
            faults=faults,
            trace_sink=capture,
        )
    except BaseException:
        if capture is not None:
            capture.abort()
        raise
    if capture is not None:
        capture.finalize(result)
    return result, _extra_metrics(faults, capture)


def _run_synchronous(spec: Any, network: Any, protocol: Any) -> Tuple[Any, Dict[str, Any]]:
    """Lockstep rounds (§2's time-complexity extension, experiment E13)."""
    from ..network.synchronous import run_protocol_synchronous

    result = run_protocol_synchronous(
        network,
        protocol,
        max_rounds=spec.max_steps,
        stop_at_termination=spec.stop_at_termination,
    )
    return result, {"rounds": result.rounds, "termination_round": result.termination_round}


def _run_batch_many(
    spec: Any,
    seeds: Sequence[Any],
    fallbacks: Optional[Dict[str, int]] = None,
) -> List[Any]:
    """Structure-of-arrays multi-run execution (see :mod:`repro.network.batchpath`)."""
    from ..network.batchpath import run_many_batched

    return run_many_batched(spec, seeds, fallbacks)


ENGINES.register(
    "async",
    EngineInfo(
        name="async", run_one=_run_async, supports_faults=True, supports_trace=True
    ),
)
ENGINES.register(
    "fastpath",
    EngineInfo(
        name="fastpath",
        run_one=_run_fastpath,
        supports_faults=True,
        supports_trace=True,
    ),
)
ENGINES.register(
    "synchronous",
    EngineInfo(name="synchronous", run_one=_run_synchronous),
)
# The batch engine executes single runs through the fastpath adapter (its
# vectorized path only pays off across a seed-group), so run_one results
# are fastpath-identical by construction; run_many vectorizes seed-groups
# and falls back to per-spec fastpath execution for anything its kernels
# cannot express — including traced specs, which are never vectorized
# (kernels use flat payload representations the trace format must not
# see), so trace support comes along via the fallback.
ENGINES.register(
    "batch",
    EngineInfo(
        name="batch",
        run_one=_run_fastpath,
        run_many=_run_batch_many,
        supports_batching=True,
        supports_trace=True,
    ),
)
