"""String-addressable registries for protocols, graphs and schedulers.

The run-spec layer (:mod:`repro.api.spec`) describes an experiment as plain
data — ``{"graph": "random-digraph", "protocol": "general-broadcast", ...}``
— so every component a spec can name must be reachable from a string.  A
:class:`Registry` maps such names to factories; the component modules
register themselves at import time with the decorator form::

    from ..api.registry import PROTOCOLS

    @PROTOCOLS.register()
    class TreeBroadcastProtocol(AnonymousProtocol):
        name = "tree-broadcast"

Four registries cover the spec vocabulary:

* :data:`PROTOCOLS` — :class:`~repro.core.model.AnonymousProtocol`
  subclasses, keyed by their ``name`` attribute.
* :data:`GRAPHS` — generator/construction functions returning a
  :class:`~repro.network.graph.DirectedNetwork`, keyed by the kebab-cased
  function name (``random_digraph`` → ``"random-digraph"``).
* :data:`GRAPH_TRANSFORMS` — ``DirectedNetwork → DirectedNetwork``
  post-processors (e.g. the E8 "bad graph" mutators).
* :data:`SCHEDULERS` — :class:`~repro.network.scheduler.Scheduler`
  subclasses, keyed by their class-level ``name``.
* :data:`ENGINES` — execution engines: callables taking
  ``(spec, network, protocol)`` and returning ``(result, extra_metrics)``
  (see :mod:`repro.api.engines`).  ``RunSpec(engine=...)`` selects one.
* :data:`AGGREGATORS` — row aggregators: callables collapsing a list of
  :class:`~repro.api.spec.RunRecord` into the experiment tables' dict rows
  (see :mod:`repro.api.aggregators`).
* :data:`FAULTS` — adversarial fault-model scheduler strategies
  (``"starve-one-edge"``, ``"oldest-last"``), named by
  :attr:`~repro.network.faults.FaultSpec.adversary` (see
  :mod:`repro.network.faults`).
* :data:`EXPERIMENTS` — whole experiment campaigns.  Unlike the other
  registries this one holds *objects*, not factories: each entry is a
  :class:`~repro.api.campaign.ExperimentSpec` (a declarative parameter
  grid) or a :class:`~repro.api.campaign.DriverExperiment` (a legacy
  imperative driver referenced by dotted name), looked up with ``.get``.
* :data:`STORE_BACKENDS` — result-store shard backends (``"local"``
  filesystem, ``"remote"`` stub), named factories taking the store root
  (see :mod:`repro.store.backend`).

This module is intentionally a leaf: it imports nothing from the rest of
the package, so any component module may import it without cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple

__all__ = [
    "UnknownNameError",
    "DuplicateNameError",
    "Registry",
    "PROTOCOLS",
    "GRAPHS",
    "GRAPH_TRANSFORMS",
    "SCHEDULERS",
    "ENGINES",
    "AGGREGATORS",
    "FAULTS",
    "EXPERIMENTS",
    "STORE_BACKENDS",
    "all_registries",
]


class UnknownNameError(KeyError):
    """A name was looked up that no component registered."""

    def __init__(self, kind: str, name: str, known: Tuple[str, ...]) -> None:
        self.kind = kind
        self.name = name
        self.known = known
        super().__init__(name)

    def __str__(self) -> str:
        choices = ", ".join(self.known) if self.known else "<registry is empty>"
        return f"unknown {self.kind} {self.name!r}; registered: {choices}"


class DuplicateNameError(ValueError):
    """Two components tried to claim the same name."""


def _default_name(obj: Any) -> str:
    """The registration name implied by the object itself.

    Classes with a string ``name`` attribute (protocols, schedulers) use it;
    everything else uses the kebab-cased ``__name__``.
    """
    attr = getattr(obj, "name", None)
    if isinstance(attr, str) and attr:
        return attr
    return obj.__name__.replace("_", "-")


class Registry:
    """An ordered name → factory mapping with decorator registration.

    >>> COLORS = Registry("color")
    >>> @COLORS.register("red")
    ... def make_red():
    ...     return "#ff0000"
    >>> COLORS.create("red")
    '#ff0000'
    >>> "red" in COLORS and "blue" not in COLORS
    True
    """

    def __init__(self, kind: str) -> None:
        #: What the registry holds, e.g. ``"protocol"`` — used in error text.
        self.kind = kind
        self._factories: Dict[str, Callable[..., Any]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(
        self, name: Optional[str] = None, factory: Optional[Callable[..., Any]] = None
    ):
        """Register a factory, as a decorator or a direct call.

        ``@REG.register()`` (name inferred), ``@REG.register("name")``, or
        ``REG.register("name", factory)``.  Re-registering a taken name
        raises :class:`DuplicateNameError` — names are a public, stable API.
        """
        if factory is not None:
            if name is None:
                raise TypeError("direct registration requires an explicit name")
            self._add(name, factory)
            return factory

        def decorator(obj: Callable[..., Any]) -> Callable[..., Any]:
            self._add(name or _default_name(obj), obj)
            return obj

        return decorator

    def _add(self, name: str, factory: Callable[..., Any]) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")
        existing = self._factories.get(name)
        if existing is not None and existing is not factory:
            raise DuplicateNameError(
                f"{self.kind} name {name!r} already registered to {existing!r}"
            )
        self._factories[name] = factory

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``.

        Raises
        ------
        UnknownNameError
            Listing every registered name, so typos are one glance away.
        """
        try:
            return self._factories[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, self.names()) from None

    def create(self, name: str, *args: Any, **params: Any) -> Any:
        """Instantiate ``name`` with the given arguments."""
        return self.get(name)(*args, **params)

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"


#: Anonymous protocols, by their ``name`` attribute.
PROTOCOLS = Registry("protocol")
#: Graph generators and witness constructions, by kebab-cased function name.
GRAPHS = Registry("graph")
#: Network → network post-processors applied after generation.
GRAPH_TRANSFORMS = Registry("graph transform")
#: Delivery schedulers, by their class-level ``name``.
SCHEDULERS = Registry("scheduler")
#: Execution engines, by name (``"async"``, ``"synchronous"``, ``"fastpath"``).
ENGINES = Registry("engine")
#: RunRecord-list → row-dict-list aggregators, by name.
AGGREGATORS = Registry("aggregator")
#: Adversarial fault-model scheduler strategies, by class-level ``name``.
FAULTS = Registry("fault adversary")
#: Experiment campaigns (``"e01"`` … ``"e18"`` plus user registrations).
EXPERIMENTS = Registry("experiment")
#: Result-store shard backends (``"local"``, ``"remote"`` stub).
STORE_BACKENDS = Registry("store backend")


def all_registries() -> Dict[str, Registry]:
    """The spec vocabulary, for introspection (``repro registry``)."""
    return {
        "protocols": PROTOCOLS,
        "graphs": GRAPHS,
        "graph-transforms": GRAPH_TRANSFORMS,
        "schedulers": SCHEDULERS,
        "engines": ENGINES,
        "aggregators": AGGREGATORS,
        "faults": FAULTS,
        "experiments": EXPERIMENTS,
        "store-backends": STORE_BACKENDS,
    }
