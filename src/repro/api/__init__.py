"""The run-spec layer: declarative, serializable, batchable experiments.

Everything an execution needs — graph family and parameters, protocol and
parameters, scheduler, step budget, seed, trace flags — lives in one frozen
:class:`RunSpec` that round-trips through JSON.  Components are addressed
by name through the :mod:`~repro.api.registry` registries (populated by
decorator at import time in :mod:`repro.core`, :mod:`repro.baselines`,
:mod:`repro.graphs` and :mod:`repro.network.scheduler`), results come back
as structured :class:`RunRecord` objects, and the :class:`BatchRunner`
executes whole spec files in parallel with JSONL persistence and
resume-from-partial-output.

Typical use::

    from repro.api import RunSpec, BatchRunner

    specs = [
        RunSpec(graph="random-digraph", graph_params={"num_internal": 40},
                protocol="general-broadcast", seed=seed)
        for seed in range(8)
    ]
    records = BatchRunner().run(specs, output_path="out.jsonl")
    print(max(r.metrics["total_bits"] for r in records))

Or from a shell: ``repro batch specs.json -o out.jsonl``.

One level up, a whole experiment — a parameter *grid* of runs plus a named
row aggregation — is an :class:`ExperimentSpec` (see
:mod:`~repro.api.campaign`), registered in :data:`EXPERIMENTS` and executed
by the :class:`CampaignRunner` with spec_id-keyed resume::

    from repro.api import CampaignRunner

    result = CampaignRunner(engine="fastpath").run("e05")
    print(result.rows)

Or from a shell: ``repro experiment e05 --engine fastpath``.
"""

from .registry import (
    AGGREGATORS,
    ENGINES,
    EXPERIMENTS,
    FAULTS,
    GRAPH_TRANSFORMS,
    GRAPHS,
    PROTOCOLS,
    SCHEDULERS,
    DuplicateNameError,
    Registry,
    UnknownNameError,
    all_registries,
)
from .spec import (
    TIMING_FIELDS,
    ensure_registered,
    MetricValue,
    RunRecord,
    RunSpec,
    SpecError,
    TopologyCacheStats,
    clear_topology_cache,
    dump_specs,
    execute_spec,
    execute_spec_full,
    load_specs,
    topology_cache_stats,
)
from .engines import EngineInfo, fault_capable_engines
from .runner import BatchRunner, BatchStats, load_records, run_specs
from . import aggregators as _aggregators  # noqa: F401  (populates AGGREGATORS)
from .campaign import (
    CampaignResult,
    CampaignRunner,
    DriverExperiment,
    ExperimentSpec,
    WhiteBoxRun,
    load_experiment,
    register_experiment,
    run_experiment,
)

__all__ = [
    # registries
    "Registry",
    "UnknownNameError",
    "DuplicateNameError",
    "PROTOCOLS",
    "GRAPHS",
    "GRAPH_TRANSFORMS",
    "SCHEDULERS",
    "ENGINES",
    "AGGREGATORS",
    "FAULTS",
    "EXPERIMENTS",
    "all_registries",
    # specs & records
    "RunSpec",
    "RunRecord",
    "SpecError",
    "MetricValue",
    "TIMING_FIELDS",
    "execute_spec",
    "execute_spec_full",
    "ensure_registered",
    "load_specs",
    "dump_specs",
    # topology cache
    "TopologyCacheStats",
    "topology_cache_stats",
    "clear_topology_cache",
    # engine capabilities
    "EngineInfo",
    "fault_capable_engines",
    # batch execution
    "BatchRunner",
    "BatchStats",
    "run_specs",
    "load_records",
    # campaigns
    "ExperimentSpec",
    "DriverExperiment",
    "WhiteBoxRun",
    "CampaignResult",
    "CampaignRunner",
    "register_experiment",
    "load_experiment",
    "run_experiment",
]
