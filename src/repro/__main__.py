"""``python -m repro`` — experiment runner CLI (see :mod:`repro.cli`)."""

import sys

from .cli import main

sys.exit(main())
