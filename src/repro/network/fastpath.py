"""The compiled fast-path execution engine.

:func:`run_protocol_fastpath` is a drop-in replacement for
:func:`~repro.network.simulator.run_protocol` that produces **identical
results** (outcome, step counts, every metric, states, output, trace) while
running several times faster.  It gets there by doing all per-delivery work
on flat, preprocessed data instead of per-event objects:

* **Compiled topology** — a :class:`CompiledNetwork` preprocessing pass
  flattens the :class:`~repro.network.graph.DirectedNetwork` into plain
  lists: ``edge_head[eid]``, ``in_port[eid]`` (the reference simulator
  recomputes the in-port with an ``O(degree)`` ``.index`` call per
  delivery), CSR-style per-vertex out-edge-id lists and prebuilt
  :class:`~repro.core.model.VertexView` rows.
* **Flat in-flight queues** — under the FIFO (default) and LIFO
  schedulers the scheduler object is bypassed entirely: in-flight messages
  live in a preallocated list used as an index ring buffer / stack of
  ``(edge_id, payload, bits)`` tuples.  Under any other scheduler the
  adversary keeps full control, but events become ``__slots__`` records
  (:class:`FastEvent`) instead of frozen dataclasses.
* **Inlined metrics** — per-delivery accounting updates local integers and
  two flat per-edge arrays; the immutable
  :class:`~repro.network.metrics.RunMetrics` is materialised once at the
  end, as are the :class:`~repro.network.trace.Trace` and
  :class:`~repro.network.simulator.RunResult`.
* **Termination-check elision** — the reference engine evaluates the
  stopping predicate ``S`` on every delivery to the terminal even after
  termination was already recorded; the result of those calls is
  unobservable (``record_termination`` latches the first step), so the
  fast path skips them.
* **Protocol kernels** — a protocol may implement
  :meth:`~repro.core.model.AnonymousProtocol.compile_fastpath` and return
  a :class:`FastpathKernel`-shaped object that replaces the per-vertex
  object states and message payloads with its own flat representation
  (see :mod:`repro.core.interval_kernel` for the Section 4/5 interval
  protocols).  Kernels must be *exactly* result-equivalent; the engine
  falls back to the generic machine whenever tracing or state-bit
  tracking is requested, and the differential test suite
  (``tests/api/test_engine_differential.py``) holds every protocol ×
  graph × scheduler combination to byte-identical records.

The scheduler contract is unchanged: schedulers see the same sequence of
``push``/``pop`` calls as under the reference engine, so seeded adversaries
(random, latency) make identical choices and every ∀-schedule claim carries
over.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.model import VertexView
from .faults import DELIVER_AFTER_RESET as _FAULT_RESET
from .faults import SWALLOW as _FAULT_SWALLOW
from .graph import DirectedNetwork
from .metrics import RunMetrics
from .scheduler import FifoScheduler, LifoScheduler, Scheduler
from .simulator import Outcome, RunResult, SimulationError, default_step_budget
from .trace import DeliveryRecord, Trace

__all__ = [
    "CompiledNetwork",
    "FastEvent",
    "KERNEL_EXEMPT",
    "run_protocol_fastpath",
]

#: Protocol registry names that are allowed to lack a ``compile_fastpath``
#: kernel.  Every registered protocol now ships one, so the set is empty;
#: the registry-driven completeness test
#: (``tests/api/test_kernel_completeness.py``) fails the build if a newly
#: registered protocol neither compiles a kernel nor is listed here.
KERNEL_EXEMPT: frozenset = frozenset()


class CompiledNetwork:
    """Flat-array view of a :class:`DirectedNetwork` for the inner loop.

    Construction is ``O(|V| + |E|)`` and done once per run; afterwards every
    per-delivery topology query is a list index instead of a method call
    (and for :attr:`in_port`, instead of an ``O(degree)`` search).
    """

    __slots__ = (
        "network",
        "num_vertices",
        "num_edges",
        "root",
        "terminal",
        "edge_head",
        "edge_tail",
        "in_port",
        "out_edge_ids",
        "views",
    )

    def __init__(self, network: DirectedNetwork) -> None:
        self.network = network
        n = network.num_vertices
        self.num_vertices = n
        self.num_edges = network.num_edges
        self.root = network.root
        self.terminal = network.terminal
        edges = network.edges
        self.edge_tail: List[int] = [tail for tail, _ in edges]
        self.edge_head: List[int] = [head for _, head in edges]
        in_port = [0] * len(edges)
        for v in range(n):
            for idx, eid in enumerate(network.in_edge_ids(v)):
                in_port[eid] = idx
        self.in_port: List[int] = in_port
        self.out_edge_ids: List[Tuple[int, ...]] = [
            network.out_edge_ids(v) for v in range(n)
        ]
        self.views: List[VertexView] = [
            VertexView(
                in_degree=network.in_degree(v), out_degree=network.out_degree(v)
            )
            for v in range(n)
        ]


class FastEvent:
    """A ``__slots__`` stand-in for :class:`~repro.network.events.MessageEvent`.

    Schedulers only read attributes (``edge_id``, ``seq``, ``bits``,
    ``payload``, ``sent_step``), so this duck-typed record — allocated with
    plain attribute stores instead of a frozen dataclass's
    ``object.__setattr__`` chain — is interchangeable and much cheaper.
    """

    __slots__ = ("edge_id", "payload", "seq", "sent_step", "bits")

    def __init__(
        self, edge_id: int, payload: Any, seq: int, sent_step: int, bits: int
    ) -> None:
        self.edge_id = edge_id
        self.payload = payload
        self.seq = seq
        self.sent_step = sent_step
        self.bits = bits


class _ProtocolMachine:
    """Generic execution machine: runs any protocol as-is over flat state.

    This is the fallback used when a protocol offers no compiled kernel (or
    when tracing / state-bit tracking forces the fully general path).  The
    per-delivery protocol work is unchanged; the savings come from the
    engine loop around it.
    """

    __slots__ = ("protocol", "views", "states", "message_bits")

    def __init__(self, protocol: Any, compiled: CompiledNetwork) -> None:
        self.protocol = protocol
        self.views = compiled.views
        self.states: List[Any] = [
            protocol.create_state(view) for view in self.views
        ]
        self.message_bits = protocol.message_bits

    def initial_emissions(self, root: int) -> List[Tuple[int, Any, int]]:
        bits = self.message_bits
        return [
            (port, payload, bits(payload))
            for port, payload in self.protocol.initial_emissions(self.views[root])
        ]

    def deliver(
        self, vertex: int, in_port: int, payload: Any
    ) -> List[Tuple[int, Any, int]]:
        new_state, emissions = self.protocol.on_receive(
            self.states[vertex], self.views[vertex], in_port, payload
        )
        self.states[vertex] = new_state
        if not emissions:
            return emissions  # type: ignore[return-value]
        bits = self.message_bits
        return [(port, out, bits(out)) for port, out in emissions]

    def check_terminal(self, terminal: int) -> bool:
        return self.protocol.is_terminated(self.states[terminal])

    def reset_vertex(self, vertex: int) -> None:
        """Reset one vertex to a fresh initial state (churn rejoin)."""
        self.states[vertex] = self.protocol.create_state(self.views[vertex])

    def state_bits(self, vertex: int) -> int:
        return self.protocol.state_bits(self.states[vertex])

    def finalize_states(self) -> Dict[int, Any]:
        return dict(enumerate(self.states))

    def output(self, terminal: int) -> Any:
        return self.protocol.output(self.states[terminal])


def run_protocol_fastpath(
    network: DirectedNetwork,
    protocol: Any,
    scheduler: Optional[Scheduler] = None,
    *,
    max_steps: Optional[int] = None,
    record_trace: bool = False,
    track_state_bits: bool = False,
    stop_at_termination: bool = False,
    compiled: Optional[CompiledNetwork] = None,
    faults: Optional[Any] = None,
    trace_sink: Optional[Any] = None,
) -> RunResult:
    """Execute ``protocol`` on ``network``; result-identical to
    :func:`~repro.network.simulator.run_protocol`.

    Accepts exactly the same parameters (including the same default step
    budget) and returns the same :class:`RunResult` shape.  See the module
    docstring for what makes it fast.

    ``compiled`` optionally supplies a pre-built :class:`CompiledNetwork`
    for ``network`` (campaign runners cache them per topology); it is used
    only if it actually wraps this exact network object, so a stale or
    mismatched cache entry can never corrupt a run.

    ``faults`` optionally supplies a
    :class:`~repro.network.faults.FaultInjector`.  A fault model forces
    the kernel-exempt path: protocol kernels flatten state in ways the
    fault layer cannot reset mid-run, so the generic protocol machine runs
    under the real scheduler object with exactly the injection hooks of
    the reference simulator — faulty runs are engine-identical, and
    ``faults=None`` never touches this branch.

    ``trace_sink`` optionally supplies a durable trace capture (a
    :class:`~repro.tracing.capture.TraceCapture`).  Like ``record_trace``
    it forces the generic protocol machine — kernels flatten payloads
    into representations whose canonical digests would differ from the
    reference engine's, and engine-identical trace bytes are part of the
    contract — and its hooks fire at exactly the reference simulator's
    call sites.
    """
    if scheduler is None:
        scheduler = FifoScheduler()
    scheduler.bind(network)
    if max_steps is None:
        max_steps = default_step_budget(network)

    if compiled is None or compiled.network is not network:
        compiled = CompiledNetwork(network)
    if faults is not None:
        # Kernel-exempt fallback: the generic machine under the real
        # scheduler, so sequence numbers and hook order match the
        # reference simulator delivery for delivery.
        return _drive_faults(
            compiled,
            _ProtocolMachine(protocol, compiled),
            scheduler,
            max_steps,
            record_trace,
            track_state_bits,
            stop_at_termination,
            faults,
            trace_sink,
        )
    machine: Any = None
    if not record_trace and not track_state_bits and trace_sink is None:
        machine = protocol.compile_fastpath(compiled)
    if machine is None:
        machine = _ProtocolMachine(protocol, compiled)

    # The FIFO/LIFO bypass is only sound for the exact stock classes —
    # subclasses may reorder arbitrarily, so they keep the scheduler path.
    if type(scheduler) is FifoScheduler:
        runner = _drive_flat_queue
    elif type(scheduler) is LifoScheduler:
        runner = _drive_flat_stack
    else:
        runner = _drive_scheduler
    return runner(
        compiled,
        machine,
        scheduler,
        max_steps,
        record_trace,
        track_state_bits,
        stop_at_termination,
        trace_sink,
    )


def _freeze_result(
    compiled: CompiledNetwork,
    machine: Any,
    outcome: Outcome,
    step: int,
    total_messages: int,
    total_bits: int,
    max_message_bits: int,
    edge_bits: List[int],
    edge_messages: List[int],
    termination_step: Optional[int],
    messages_at_termination: int,
    bits_at_termination: int,
    max_state_bits: int,
    trace_log: Optional[List[Tuple[int, int, Any, int]]],
) -> RunResult:
    """Materialise the immutable result objects (the only allocation-heavy
    part of the engine, deferred to run end)."""
    terminated = termination_step is not None
    metrics = RunMetrics(
        total_messages=total_messages,
        total_bits=total_bits,
        max_message_bits=max_message_bits,
        max_edge_bits=max(edge_bits, default=0),
        max_edge_messages=max(edge_messages, default=0),
        termination_step=termination_step,
        steps=step,
        messages_at_termination=(
            messages_at_termination if terminated else total_messages
        ),
        bits_at_termination=bits_at_termination if terminated else total_bits,
        max_state_bits=max_state_bits,
    )
    trace: Optional[Trace] = None
    if trace_log is not None:
        trace = Trace()
        trace.deliveries = [
            DeliveryRecord(s, e, p, b) for s, e, p, b in trace_log
        ]
    output = None
    if terminated and outcome is Outcome.TERMINATED:
        output = machine.output(compiled.terminal)
    return RunResult(
        outcome=outcome,
        metrics=metrics,
        states=machine.finalize_states(),
        output=output,
        trace=trace,
    )


def _bad_port(vertex: int, out_port: int, out_degree: int) -> SimulationError:
    return SimulationError(
        f"vertex {vertex} emitted on out-port {out_port} but has "
        f"out-degree {out_degree}"
    )


def _drive_flat_queue(
    compiled: CompiledNetwork,
    machine: Any,
    scheduler: Scheduler,
    max_steps: int,
    record_trace: bool,
    track_state_bits: bool,
    stop_at_termination: bool,
    trace_sink: Optional[Any] = None,
) -> RunResult:
    """Inner loop under global send order: a list used as an index ring."""
    edge_head = compiled.edge_head
    in_port = compiled.in_port
    out_edge_ids = compiled.out_edge_ids
    terminal = compiled.terminal
    deliver = machine.deliver

    total_messages = 0
    total_bits = 0
    max_message_bits = 0
    edge_bits = [0] * compiled.num_edges
    edge_messages = [0] * compiled.num_edges
    termination_step: Optional[int] = None
    messages_at_termination = 0
    bits_at_termination = 0
    max_state_bits = 0
    trace_log: Optional[List[Tuple[int, int, Any, int]]] = (
        [] if record_trace else None
    )

    queue: List[Tuple[int, Any, int]] = []
    head_idx = 0
    root = compiled.root
    root_ports = out_edge_ids[root]
    for out_port, payload, bits in machine.initial_emissions(root):
        if not 0 <= out_port < len(root_ports):
            raise _bad_port(root, out_port, len(root_ports))
        queue.append((root_ports[out_port], payload, bits))

    step = 0
    outcome = None
    while head_idx < len(queue):
        if step >= max_steps:
            outcome = Outcome.BUDGET_EXHAUSTED
            break
        edge_id, payload, bits = queue[head_idx]
        head_idx += 1
        # Reclaim the consumed prefix once it dominates the buffer, so
        # in-flight memory stays proportional to the live message count.
        if head_idx >= 8192 and head_idx * 2 >= len(queue):
            del queue[:head_idx]
            head_idx = 0
        step += 1
        head = edge_head[edge_id]
        total_messages += 1
        total_bits += bits
        if bits > max_message_bits:
            max_message_bits = bits
        edge_bits[edge_id] += bits
        edge_messages[edge_id] += 1
        if trace_log is not None:
            trace_log.append((step, edge_id, payload, bits))
        if trace_sink is not None:
            trace_sink.record(step, edge_id, payload, bits)

        emissions = deliver(head, in_port[edge_id], payload)
        if emissions:
            ports = out_edge_ids[head]
            nports = len(ports)
            for out_port, out_payload, out_bits in emissions:
                if not 0 <= out_port < nports:
                    raise _bad_port(head, out_port, nports)
                queue.append((ports[out_port], out_payload, out_bits))
        if track_state_bits:
            sb = machine.state_bits(head)
            if sb > max_state_bits:
                max_state_bits = sb

        if head == terminal and termination_step is None:
            if machine.check_terminal(terminal):
                termination_step = step
                messages_at_termination = total_messages
                bits_at_termination = total_bits
                if stop_at_termination:
                    break
    if outcome is None:
        outcome = (
            Outcome.TERMINATED if termination_step is not None else Outcome.QUIESCENT
        )

    return _freeze_result(
        compiled,
        machine,
        outcome,
        step,
        total_messages,
        total_bits,
        max_message_bits,
        edge_bits,
        edge_messages,
        termination_step,
        messages_at_termination,
        bits_at_termination,
        max_state_bits,
        trace_log,
    )


def _drive_flat_stack(
    compiled: CompiledNetwork,
    machine: Any,
    scheduler: Scheduler,
    max_steps: int,
    record_trace: bool,
    track_state_bits: bool,
    stop_at_termination: bool,
    trace_sink: Optional[Any] = None,
) -> RunResult:
    """Inner loop under newest-first order: a plain list used as a stack.

    Mirrors :func:`_drive_flat_queue` except for the pop side; the two are
    kept as separate straight-line loops on purpose — this is the hot path,
    and a shared parameterised loop costs a branch or an indirection per
    delivery.
    """
    edge_head = compiled.edge_head
    in_port = compiled.in_port
    out_edge_ids = compiled.out_edge_ids
    terminal = compiled.terminal
    deliver = machine.deliver

    total_messages = 0
    total_bits = 0
    max_message_bits = 0
    edge_bits = [0] * compiled.num_edges
    edge_messages = [0] * compiled.num_edges
    termination_step: Optional[int] = None
    messages_at_termination = 0
    bits_at_termination = 0
    max_state_bits = 0
    trace_log: Optional[List[Tuple[int, int, Any, int]]] = (
        [] if record_trace else None
    )

    stack: List[Tuple[int, Any, int]] = []
    root = compiled.root
    root_ports = out_edge_ids[root]
    for out_port, payload, bits in machine.initial_emissions(root):
        if not 0 <= out_port < len(root_ports):
            raise _bad_port(root, out_port, len(root_ports))
        stack.append((root_ports[out_port], payload, bits))

    step = 0
    outcome = None
    while stack:
        if step >= max_steps:
            outcome = Outcome.BUDGET_EXHAUSTED
            break
        edge_id, payload, bits = stack.pop()
        step += 1
        head = edge_head[edge_id]
        total_messages += 1
        total_bits += bits
        if bits > max_message_bits:
            max_message_bits = bits
        edge_bits[edge_id] += bits
        edge_messages[edge_id] += 1
        if trace_log is not None:
            trace_log.append((step, edge_id, payload, bits))
        if trace_sink is not None:
            trace_sink.record(step, edge_id, payload, bits)

        emissions = deliver(head, in_port[edge_id], payload)
        if emissions:
            ports = out_edge_ids[head]
            nports = len(ports)
            for out_port, out_payload, out_bits in emissions:
                if not 0 <= out_port < nports:
                    raise _bad_port(head, out_port, nports)
                stack.append((ports[out_port], out_payload, out_bits))
        if track_state_bits:
            sb = machine.state_bits(head)
            if sb > max_state_bits:
                max_state_bits = sb

        if head == terminal and termination_step is None:
            if machine.check_terminal(terminal):
                termination_step = step
                messages_at_termination = total_messages
                bits_at_termination = total_bits
                if stop_at_termination:
                    break
    if outcome is None:
        outcome = (
            Outcome.TERMINATED if termination_step is not None else Outcome.QUIESCENT
        )

    return _freeze_result(
        compiled,
        machine,
        outcome,
        step,
        total_messages,
        total_bits,
        max_message_bits,
        edge_bits,
        edge_messages,
        termination_step,
        messages_at_termination,
        bits_at_termination,
        max_state_bits,
        trace_log,
    )


def _drive_faults(
    compiled: CompiledNetwork,
    machine: Any,
    scheduler: Scheduler,
    max_steps: int,
    record_trace: bool,
    track_state_bits: bool,
    stop_at_termination: bool,
    faults: Any,
    trace_sink: Optional[Any] = None,
) -> RunResult:
    """Inner loop with fault injection: :func:`_drive_scheduler` plus the
    three :class:`~repro.network.faults.FaultInjector` hooks, called at
    exactly the reference simulator's call sites (send, pop, deliver) so
    the fault RNG makes identical choices under both engines."""
    edge_head = compiled.edge_head
    in_port = compiled.in_port
    out_edge_ids = compiled.out_edge_ids
    terminal = compiled.terminal
    deliver = machine.deliver
    push = scheduler.push
    pop = scheduler.pop
    send_copies = faults.send_copies
    should_defer = faults.should_defer
    on_deliver = faults.on_deliver

    total_messages = 0
    total_bits = 0
    max_message_bits = 0
    edge_bits = [0] * compiled.num_edges
    edge_messages = [0] * compiled.num_edges
    termination_step: Optional[int] = None
    messages_at_termination = 0
    bits_at_termination = 0
    max_state_bits = 0
    trace_log: Optional[List[Tuple[int, int, Any, int]]] = (
        [] if record_trace else None
    )

    seq = 0
    root = compiled.root
    root_ports = out_edge_ids[root]
    for out_port, payload, bits in machine.initial_emissions(root):
        if not 0 <= out_port < len(root_ports):
            raise _bad_port(root, out_port, len(root_ports))
        for _ in range(send_copies()):
            push(FastEvent(root_ports[out_port], payload, seq, 0, bits))
            seq += 1

    step = 0
    outcome = None
    while len(scheduler):
        if step >= max_steps:
            outcome = Outcome.BUDGET_EXHAUSTED
            break
        event = pop()
        if should_defer(len(scheduler)):
            if trace_sink is not None:
                trace_sink.defer(step)
            push(event)  # deferred, not delivered: no step consumed
            continue
        step += 1
        edge_id = event.edge_id
        bits = event.bits
        payload = event.payload
        head = edge_head[edge_id]
        total_messages += 1
        total_bits += bits
        if bits > max_message_bits:
            max_message_bits = bits
        edge_bits[edge_id] += bits
        edge_messages[edge_id] += 1
        if trace_log is not None:
            trace_log.append((step, edge_id, payload, bits))
        if trace_sink is not None:
            trace_sink.record(step, edge_id, payload, bits)

        action = on_deliver(head, step)
        if action == _FAULT_SWALLOW:
            continue  # vertex is down: message consumed, no transition
        if action == _FAULT_RESET:
            machine.reset_vertex(head)

        emissions = deliver(head, in_port[edge_id], payload)
        if emissions:
            ports = out_edge_ids[head]
            nports = len(ports)
            for out_port, out_payload, out_bits in emissions:
                if not 0 <= out_port < nports:
                    raise _bad_port(head, out_port, nports)
                for _ in range(send_copies()):
                    push(FastEvent(ports[out_port], out_payload, seq, step, out_bits))
                    seq += 1
        if track_state_bits:
            sb = machine.state_bits(head)
            if sb > max_state_bits:
                max_state_bits = sb

        if head == terminal and termination_step is None:
            if machine.check_terminal(terminal):
                termination_step = step
                messages_at_termination = total_messages
                bits_at_termination = total_bits
                if stop_at_termination:
                    break
    if outcome is None:
        outcome = (
            Outcome.TERMINATED if termination_step is not None else Outcome.QUIESCENT
        )

    return _freeze_result(
        compiled,
        machine,
        outcome,
        step,
        total_messages,
        total_bits,
        max_message_bits,
        edge_bits,
        edge_messages,
        termination_step,
        messages_at_termination,
        bits_at_termination,
        max_state_bits,
        trace_log,
    )


def _drive_scheduler(
    compiled: CompiledNetwork,
    machine: Any,
    scheduler: Scheduler,
    max_steps: int,
    record_trace: bool,
    track_state_bits: bool,
    stop_at_termination: bool,
    trace_sink: Optional[Any] = None,
) -> RunResult:
    """Inner loop under an arbitrary adversary: the scheduler keeps full
    control, receiving the same push/pop sequence as under the reference
    engine (so seeded adversaries replay identically)."""
    edge_head = compiled.edge_head
    in_port = compiled.in_port
    out_edge_ids = compiled.out_edge_ids
    terminal = compiled.terminal
    deliver = machine.deliver
    push = scheduler.push
    pop = scheduler.pop

    total_messages = 0
    total_bits = 0
    max_message_bits = 0
    edge_bits = [0] * compiled.num_edges
    edge_messages = [0] * compiled.num_edges
    termination_step: Optional[int] = None
    messages_at_termination = 0
    bits_at_termination = 0
    max_state_bits = 0
    trace_log: Optional[List[Tuple[int, int, Any, int]]] = (
        [] if record_trace else None
    )

    seq = 0
    root = compiled.root
    root_ports = out_edge_ids[root]
    for out_port, payload, bits in machine.initial_emissions(root):
        if not 0 <= out_port < len(root_ports):
            raise _bad_port(root, out_port, len(root_ports))
        push(FastEvent(root_ports[out_port], payload, seq, 0, bits))
        seq += 1

    step = 0
    outcome = None
    while len(scheduler):
        if step >= max_steps:
            outcome = Outcome.BUDGET_EXHAUSTED
            break
        event = pop()
        step += 1
        edge_id = event.edge_id
        bits = event.bits
        payload = event.payload
        head = edge_head[edge_id]
        total_messages += 1
        total_bits += bits
        if bits > max_message_bits:
            max_message_bits = bits
        edge_bits[edge_id] += bits
        edge_messages[edge_id] += 1
        if trace_log is not None:
            trace_log.append((step, edge_id, payload, bits))
        if trace_sink is not None:
            trace_sink.record(step, edge_id, payload, bits)

        emissions = deliver(head, in_port[edge_id], payload)
        if emissions:
            ports = out_edge_ids[head]
            nports = len(ports)
            for out_port, out_payload, out_bits in emissions:
                if not 0 <= out_port < nports:
                    raise _bad_port(head, out_port, nports)
                push(FastEvent(ports[out_port], out_payload, seq, step, out_bits))
                seq += 1
        if track_state_bits:
            sb = machine.state_bits(head)
            if sb > max_state_bits:
                max_state_bits = sb

        if head == terminal and termination_step is None:
            if machine.check_terminal(terminal):
                termination_step = step
                messages_at_termination = total_messages
                bits_at_termination = total_bits
                if stop_at_termination:
                    break
    if outcome is None:
        outcome = (
            Outcome.TERMINATED if termination_step is not None else Outcome.QUIESCENT
        )

    return _freeze_result(
        compiled,
        machine,
        outcome,
        step,
        total_messages,
        total_bits,
        max_message_bits,
        edge_bits,
        edge_messages,
        termination_step,
        messages_at_termination,
        bits_at_termination,
        max_state_bits,
        trace_log,
    )
