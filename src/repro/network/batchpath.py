"""The vectorized multi-run ``batch`` engine.

Campaigns spend their wall-clock running hundreds of seed variants of the
*same* compiled topology one Python step at a time.  This module runs a
whole seed-group at once: one numpy state tensor per kernel field holds
``K`` simultaneous runs, and every simulation step is an array operation
across all ``K`` runs (see :mod:`repro.core.batch_kernel`) instead of
``K`` Python steps.

Exactness is the whole game.  The fastpath engine drives a seeded
:class:`~repro.network.scheduler.RandomScheduler`, whose every choice is
``random.Random(seed).randrange(len(in_flight))`` followed by a swap-pop.
:class:`MTStreams` therefore reimplements CPython's Mersenne Twister —
``init_by_array`` seeding, the block twist, the tempering shifts, and
``_randbelow_with_getrandbits``'s top-bits rejection sampling — as
lockstep array operations over ``K`` independent streams, so that stream
``i`` emits *exactly* the values ``random.Random(seed_i)`` would.  The
batch kernels mirror the scheduler's append order and swap-pop, so every
run's delivery sequence — and with it every metric — is identical to its
fastpath twin.  The differential suite
(``tests/api/test_batch_differential.py``) holds this per (spec, seed).

:func:`run_many_batched` is the engine's ``run_many`` capability (see
:class:`~repro.api.engines.EngineInfo`): it receives one spec shape plus
a seed list, subdivides the group wherever the seed actually changes the
topology, vectorizes the subgroups its kernels can express, and falls
back to per-spec fastpath execution for everything else (protocols
without a batch kernel, non-random schedulers, fault/trace/state-bit
requests, out-of-range seeds).  Records come back input-ordered either
way, and every spec that takes the fallback is tallied by reason into
the caller's ``fallbacks`` dict so silent per-seed execution is
observable (surfaced as ``batch_fallbacks`` in
:class:`~repro.api.runner.BatchStats` and the CLI summary lines).
"""

from __future__ import annotations

import json
import time
from dataclasses import fields
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.registry import GRAPHS, SCHEDULERS
from ..api.spec import (
    RunRecord,
    RunSpec,
    _accepts_param,
    cached_network,
    compiled_topology,
    ensure_registered,
    execute_spec,
    topology_key,
)
from .scheduler import RandomScheduler
from .simulator import Outcome, default_step_budget

__all__ = ["BATCH_KERNEL_EXEMPT", "MTStreams", "run_many_batched"]

#: Protocol registry names that are allowed to lack a ``compile_batch``
#: kernel, mirroring :data:`~repro.network.fastpath.KERNEL_EXEMPT`.  The
#: interval protocols carry arbitrary label/interval payloads that are
#: not int-array shaped, so they run per-seed; the registry-driven
#: completeness test (``tests/api/test_batch_differential.py``) fails
#: the build if a newly registered protocol neither compiles a batch
#: kernel nor is listed here.
BATCH_KERNEL_EXEMPT: frozenset = frozenset(
    {"general-broadcast", "label-assignment", "topology-mapping"}
)

_N = 624
_M = 397
_MATRIX_A = np.uint32(0x9908B0DF)
_UPPER = np.uint32(0x80000000)
_LOWER = np.uint32(0x7FFFFFFF)
#: Rejection-scan horizon of :meth:`MTStreams.randbelow_dense`: how many
#: buffered words each stream inspects per vectorized call.  Acceptance
#: probability per word is >= 1/2, so P(no accept in _H) <= 2**-_H.
_H = 8
#: Per-stream buffer size: two tempered blocks, so the horizon gather
#: never straddles a refill (see :meth:`MTStreams._advance`).
_N2 = 2 * _N

#: Ceiling on the ``bit_length`` lookup table (4 MiB of uint32).  Draw
#: bounds are queue lengths, bounded by edge counts in practice; a freak
#: bound past this computes its shift directly instead of growing a
#: table whose allocation would dwarf the draw it serves.
_SHIFT_TABLE_MAX = 1 << 20

#: Seeds a single-word ``init_by_array`` key can express.  CPython chunks
#: ``abs(seed)`` into 32-bit words; multi-word keys would vectorize too,
#: but no campaign uses them, so such specs take the fastpath fallback.
MAX_STREAM_SEED = 2**32


@lru_cache(maxsize=1)
def _base_state() -> np.ndarray:
    """The stream-independent ``init_genrand(19650218)`` state vector."""
    base = np.empty(_N, dtype=np.uint32)
    base[0] = 19650218
    with np.errstate(over="ignore"):  # uint32 wraparound is the algorithm
        for i in range(1, _N):
            prev = base[i - 1]
            base[i] = np.uint32(1812433253) * (prev ^ (prev >> np.uint32(30))) + np.uint32(i)
    return base


@lru_cache(maxsize=32)
def _seeded_state(seeds: Tuple[int, ...]) -> np.ndarray:
    """Pristine post-``init_by_array`` MT state, one column per seed.

    The seeding loops are 1247 sequential array steps — several
    milliseconds per group — and campaigns reuse the same seed list
    across every spec of a sweep, so the pristine state is cached by
    seed tuple (read-only; callers copy).
    """
    k = len(seeds)
    mt = np.repeat(_base_state()[:, None], k, axis=1)
    # init_by_array with one single-word key per stream.  key_length is
    # 1, so the key index j is 0 at every use.
    key = np.asarray(seeds, dtype=np.uint32)
    i = 1
    for _ in range(_N):
        prev = mt[i - 1]
        mt[i] = (mt[i] ^ ((prev ^ (prev >> np.uint32(30))) * np.uint32(1664525))) + key
        i += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    for _ in range(_N - 1):
        prev = mt[i - 1]
        mt[i] = (mt[i] ^ ((prev ^ (prev >> np.uint32(30))) * np.uint32(1566083941))) - np.uint32(i)
        i += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    mt[0] = _UPPER
    mt.setflags(write=False)
    return mt


class MTStreams:
    """``K`` MT19937 streams advanced in lockstep as ``(624, K)`` arrays.

    Stream ``i`` reproduces ``random.Random(seeds[i])`` exactly:
    :meth:`randbelow` consumes one 32-bit word per call per stream (plus
    the occasional rejection redraw, per stream), just like
    ``Random.randrange``.  Streams consume words at different rates once
    rejections diverge, so each stream keeps its own cursor into its
    block of tempered output and re-twists independently (in vectorized
    sub-batches) when its block runs dry.
    """

    __slots__ = (
        "k",
        "_mt",
        "_buf",
        "_abs",
        "_all",
        "_rowbase",
        "_rowh",
        "_hspan",
        "_until",
        "_shift",
        "_scratch",
        "_have2",
    )

    def __init__(self, seeds: Sequence[int]) -> None:
        for seed in seeds:
            if not isinstance(seed, int) or not 0 <= seed < MAX_STREAM_SEED:
                raise ValueError(
                    f"MTStreams seeds must be ints in [0, 2**32), got {seed!r}"
                )
        k = len(seeds)
        self.k = k
        self._mt = _seeded_state(tuple(int(s) for s in seeds)).copy()
        # Tempered output, flat and stream-major, double-buffered: stream
        # j's words live in ``_buf[j*1248 : (j+1)*1248]`` and always hold
        # two consecutive tempered blocks, so the dense path's horizon
        # gather (cursor..cursor+_H) never straddles a refill.
        self._buf = np.zeros(k * _N2, dtype=np.uint32)
        self._all = np.arange(k, dtype=np.int64)
        self._rowbase = self._all * _N2
        # Cursors are kept pre-offset into the flat buffer (stream j's
        # next word is ``_buf[_abs[j]]``); the per-stream position is
        # ``_abs - _rowbase``.
        self._abs = self._rowbase.copy()
        self._rowh = self._all * _H
        self._hspan = np.arange(_H, dtype=np.int64)
        #: Dense calls guaranteed in-bounds before the next boundary
        #: check (each call consumes at most ``_H`` words per stream).
        self._until = 0
        # ``32 - bit_length(n)`` lookup for randbelow_dense, grown on
        # demand (an out-of-range gather raises, which is the grow signal).
        self._shift = np.array([32, 31], dtype=np.uint32)
        self._alloc_scratch()
        rows = self._buf.reshape(k, _N2)
        rows[:, :_N] = self._twist(self._all).T
        # The second block is tempered lazily: a typical kernel run
        # consumes a few hundred words per stream, nowhere near the first
        # block's 624, so eagerly filling both halves would double the
        # up-front tempering cost for nothing.
        self._have2 = False

    def _ensure_second(self) -> None:
        """Temper the deferred second block (all streams) before any read
        of it — via :meth:`_advance`, a near-block-end horizon gather, or
        a straggler walk past a block boundary."""
        self._buf.reshape(self.k, _N2)[:, _N:] = self._twist(self._all).T
        self._have2 = True

    def _alloc_scratch(self) -> None:
        """Reusable dense-path buffers (every shape is ``k``-determined,
        so the hot loop runs allocation-free)."""
        k = self.k
        self._scratch = (
            np.empty(k, dtype=np.uint32),  # shift per stream
            np.empty((k, _H), dtype=np.int64),  # gather span
            np.empty((k, _H), dtype=np.uint32),  # raw words
            np.empty((k, _H), dtype=np.uint32),  # top-bit values
            np.empty((k, _H), dtype=bool),  # acceptance mask
            np.empty(k, dtype=np.intp),  # accepted position
            np.empty(k, dtype=np.int64),  # flat gather index
            np.empty(k, dtype=np.uint32),  # results
            np.empty(k, dtype=np.int64),  # words consumed
        )

    def _twist(self, cols: np.ndarray) -> np.ndarray:
        """Advance ``mt`` one block for the given streams; return the
        ``(624, m)`` tempered output.

        The twist's second range reads values the first range just wrote,
        so it is split at the points where the read window crosses into
        the write window — three slice assignments reproduce the scalar
        loop's in-place semantics.
        """
        mt = self._mt[:, cols]
        y = (mt[0 : _N - _M] & _UPPER) | (mt[1 : _N - _M + 1] & _LOWER)
        mt[0 : _N - _M] = mt[_M:_N] ^ (y >> np.uint32(1)) ^ ((y & np.uint32(1)) * _MATRIX_A)
        y = (mt[_N - _M : _N - 1] & _UPPER) | (mt[_N - _M + 1 : _N] & _LOWER)
        low, mid = _N - _M, 2 * (_N - _M)
        mt[low:mid] = (
            mt[0 : _N - _M]
            ^ (y[0 : _N - _M] >> np.uint32(1))
            ^ ((y[0 : _N - _M] & np.uint32(1)) * _MATRIX_A)
        )
        mt[mid : _N - 1] = (
            mt[_N - _M : _M - 1]
            ^ (y[_N - _M :] >> np.uint32(1))
            ^ ((y[_N - _M :] & np.uint32(1)) * _MATRIX_A)
        )
        y = (mt[_N - 1] & _UPPER) | (mt[0] & _LOWER)
        mt[_N - 1] = mt[_M - 1] ^ (y >> np.uint32(1)) ^ ((y & np.uint32(1)) * _MATRIX_A)
        self._mt[:, cols] = mt

        out = mt.copy()
        out ^= out >> np.uint32(11)
        out ^= (out << np.uint32(7)) & np.uint32(0x9D2C5680)
        out ^= (out << np.uint32(15)) & np.uint32(0xEFC60000)
        out ^= out >> np.uint32(18)
        return out

    def _advance(self, cols: np.ndarray) -> None:
        """Slide the double buffer one block for the given streams.

        The consumed first block is dropped, the second becomes the
        first, a fresh block is tempered into the vacated half, and the
        cursors shift back with the words they index.
        """
        if not self._have2:
            self._ensure_second()
        rows = self._buf.reshape(self.k, _N2)
        rows[cols, :_N] = rows[cols, _N:]
        rows[cols, _N:] = self._twist(cols).T
        self._abs[cols] -= _N

    def _draw(self, cols: np.ndarray) -> np.ndarray:
        """One 32-bit word per stream in ``cols`` (each cursor advances)."""
        self._until = 0  # cursors move unevenly; dense path must re-check
        pos = self._abs[cols]
        high = pos - self._rowbase[cols] >= _N
        if high.any():
            self._advance(cols[high])
            pos = self._abs[cols]
        words = self._buf[pos]
        self._abs[cols] = pos + 1
        return words

    def randbelow(self, n: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """``Random.randrange(n[i])`` for each stream in ``cols`` (n >= 1).

        CPython's ``_randbelow_with_getrandbits``: draw ``bit_length(n)``
        top bits, redraw while the value is >= n.  Each retry consumes one
        word in the rejected streams only, keeping them word-for-word in
        sync with their scalar twins.
        """
        n = np.asarray(n, dtype=np.int64)
        # frexp's exponent is exactly bit_length for ints below 2**53.
        k_bits = np.frexp(n.astype(np.float64))[1].astype(np.uint32)
        shift = np.uint32(32) - k_bits
        r = (self._draw(cols) >> shift).astype(np.int64)
        bad = np.nonzero(r >= n)[0]
        while bad.size:
            r[bad] = (self._draw(cols[bad]) >> shift[bad]).astype(np.int64)
            bad = bad[r[bad] >= n[bad]]
        return r

    def _shift_for(self, n: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``32 - bit_length(n[i])`` per stream, from the cached table.

        The table covers the queue-length range the kernels actually draw
        from; values past ``_SHIFT_TABLE_MAX`` (which would make the
        table itself the allocation) fall back to a direct frexp.
        """
        try:
            return self._shift.take(n, out=out)
        except IndexError:
            top = int(n.max())
            if top > _SHIFT_TABLE_MAX:
                bl = np.frexp(n.astype(np.float64))[1]
                out[:] = np.uint32(32) - bl.astype(np.uint32)
                return out
            bl = np.frexp(np.arange(2 * top + 2, dtype=np.float64))[1]
            self._shift = np.uint32(32) - bl.astype(np.uint32)
            return self._shift.take(n, out=out)

    def randbelow_dense(self, n: np.ndarray) -> np.ndarray:
        """:meth:`randbelow` over *all* streams at once — the hot-loop form.

        Identical draws to ``randbelow(n, arange(k))`` (the batch kernels
        rely on this to keep their fast and general loops word-for-word
        aligned), but instead of redrawing rejected streams round by
        round, it gathers each stream's next ``_H`` buffered words in one
        shot and resolves the whole rejection walk with an ``argmax`` —
        the accepted word is the first one whose top bits fall below
        ``n``, and each cursor advances by exactly the words its stream
        inspected, preserving word-for-word parity.  Streams that reject
        all ``_H`` words (p < 1%) or sit within ``_H`` words of their
        block end finish on the exact scalar path.  ``n`` must be a
        ``(k,)`` int64 array of values >= 1; the result dtype is uint32.
        """
        shiftbuf, span, words, shifted, valid, pos, flat, r, consumed = self._scratch
        shift = self._shift_for(n, shiftbuf)
        if self._until <= 0:
            # Re-check boundaries: pull streams past their first block
            # back one block.  A gather stays in-bounds while every
            # cursor is <= 2*_N - _H, and each dense call moves a cursor
            # at most _H words, so after this check the next _N//_H - 1
            # calls can skip it.  Before the second block exists the
            # budget is tighter — no gather may pass the *first* block
            # end, so the safe call count is paced off the deepest
            # cursor — and once that budget hits zero the block is
            # tempered and the steady-state rule takes over.
            if not self._have2:
                maxpos = int((self._abs - self._rowbase).max())
                safe = (_N - _H - maxpos) // _H
                if safe <= 0:
                    self._ensure_second()
            if self._have2:
                high = np.nonzero(self._abs - self._rowbase >= _N)[0]
                if high.size:
                    self._advance(high)
                self._until = _N // _H - 1
            else:
                self._until = safe
        self._until -= 1
        np.add(self._abs[:, None], self._hspan, out=span)
        self._buf.take(span, out=words)
        np.right_shift(words, shift[:, None], out=shifted)
        np.less(shifted, n[:, None], out=valid)
        valid.argmax(axis=1, out=pos)
        np.add(self._rowh, pos, out=flat)
        shifted.reshape(-1).take(flat, out=r)
        np.add(pos, 1, out=consumed)
        # A straggler row is all-invalid, so argmax lands on word 0 and
        # the gathered value itself betrays the rejection.
        bad = r >= n
        if not bad.any():
            self._abs += consumed
            return r
        stragglers = np.nonzero(bad)[0]
        consumed[stragglers] = _H
        self._abs += consumed
        self._scalar_calls(stragglers, n, shift, r)
        return r

    def _scalar_calls(self, cols: np.ndarray, n: np.ndarray, shift: np.ndarray, r: np.ndarray) -> None:
        """Finish ``randrange`` per stream in ``cols``, one word at a time.

        Continues each stream from its current cursor (streams that
        already rejected buffered words enter mid-walk), sliding the
        double buffer in the (astronomically unlikely) event a walk
        consumes it whole.
        """
        if not self._have2:
            # A straggler's cursor already moved _H past its gather start
            # and the walk continues from there — it may read past the
            # first block end.
            self._ensure_second()
        buf = self._buf
        cur = self._abs
        for j in cols.tolist():
            nj = int(n[j])
            sj = int(shift[j])
            cj = int(cur[j])
            end = j * _N2 + _N2
            while True:
                if cj >= end:
                    cur[j] = cj
                    self._advance(self._all[j : j + 1])
                    cj = int(cur[j])
                rj = int(buf[cj]) >> sj
                cj += 1
                if rj < nj:
                    break
            r[j] = rj
            cur[j] = cj
        self._until = 0  # cursors moved unevenly; next dense call re-checks

    def compact(self, keep: np.ndarray) -> None:
        """Drop every stream not in ``keep`` (kernel drain compaction).

        ``keep`` is a sorted index array into the current streams; the
        surviving streams keep their exact word positions, so draws after
        a compaction continue each stream's sequence unbroken.
        """
        self._mt = self._mt[:, keep]
        self._buf = self._buf.reshape(self.k, _N2)[keep].reshape(-1)
        positions = self._abs[keep] - self._rowbase[keep]
        self.k = int(keep.size)
        self._all = self._all[: self.k]
        self._rowbase = self._all * _N2
        self._abs = self._rowbase + positions
        self._rowh = self._all * _H
        self._until = 0  # rowh/rowbase changed under the cached bound
        self._alloc_scratch()  # shapes are k-determined


_SPEC_FIELD_NAMES = tuple(f.name for f in fields(RunSpec))

_TERMINATED = Outcome.TERMINATED.value
_EXHAUSTED = Outcome.BUDGET_EXHAUSTED.value
_QUIESCENT = Outcome.QUIESCENT.value


def _seed_variants(spec: RunSpec, seeds: Sequence[Any]) -> List[RunSpec]:
    """``[spec.with_seed(s) for s in seeds]`` without re-validation.

    ``with_seed`` re-runs ``__post_init__`` — three ``_json_safe`` round
    trips per clone — but the template already passed it and ``seed``
    participates in no validation, so a large group can clone fields
    directly (~10x cheaper, which matters when ``run_many`` is the thing
    being benchmarked against per-spec execution).
    """
    shared = [
        (name, getattr(spec, name)) for name in _SPEC_FIELD_NAMES if name != "seed"
    ]
    new = object.__new__
    set_ = object.__setattr__
    out: List[RunSpec] = []
    for seed in seeds:
        clone = new(RunSpec)
        for name, value in shared:
            set_(clone, name, value)
        set_(clone, "seed", seed)
        out.append(clone)
    return out


def _scheduler_seed(spec: RunSpec) -> Optional[int]:
    """The seed the spec's RandomScheduler would be constructed with,
    or ``None`` when the spec does not drive a stock RandomScheduler."""
    scheduler = spec.build_scheduler()
    if type(scheduler) is not RandomScheduler:
        return None
    return scheduler.seed


def _group_scheduler_seeds(
    spec: RunSpec, group: Sequence[RunSpec]
) -> Optional[List[int]]:
    """Per-run RNG stream seeds for a same-shape group, or ``None``.

    Seed injection (:meth:`RunSpec._params_with_seed`) makes a stock
    scheduler's seed either the spec seed (factory accepts ``seed`` and
    the params don't pin it) or a group-wide constant, so one probe
    construction classifies the whole group; a probe that contradicts
    the injection rule (an exotic factory) falls back to constructing
    every scheduler.  Any seed :class:`MTStreams` can't express rejects
    the group.
    """
    factory = SCHEDULERS.get(spec.scheduler)
    probe = group[0].build_scheduler()
    if type(probe) is not RandomScheduler:
        return None
    injected = "seed" not in spec.scheduler_params and _accepts_param(factory, "seed")
    if injected and probe.seed == group[0].seed:
        seeds: List[Any] = [s.seed for s in group]
    elif not injected:
        seeds = [probe.seed] * len(group)
    else:
        seeds = [_scheduler_seed(s) for s in group]
    for seed in seeds:
        if not isinstance(seed, int) or not 0 <= seed < MAX_STREAM_SEED:
            return None
    return seeds


#: Batch kernels keyed by (topology key, protocol name, protocol params).
#: A kernel is pure precomputation over its compiled topology — ``run``
#: allocates fresh per-call state — so one instance serves every group of
#: the same shape; campaigns re-dispatch the same shape hundreds of times
#: and the rebuild (CSR layout, reachability walk) would otherwise be
#: paid on each dispatch.  ``None`` results (protocols without a batch
#: kernel) are cached too, so the fallback probe is paid once per shape.
_KERNEL_CACHE: Dict[Any, Any] = {}
_KERNEL_CACHE_MAX = 64


def _group_kernel(rep: RunSpec, compiled: Any) -> Optional[Any]:
    """The (cached) batch kernel for a group's representative spec."""
    key = (
        topology_key(rep),
        rep.protocol,
        json.dumps(rep.protocol_params, sort_keys=True),
    )
    try:
        return _KERNEL_CACHE[key]
    except KeyError:
        pass
    kernel = rep.build_protocol().compile_batch(compiled)
    if len(_KERNEL_CACHE) >= _KERNEL_CACHE_MAX:
        _KERNEL_CACHE.pop(next(iter(_KERNEL_CACHE)))
    _KERNEL_CACHE[key] = kernel
    return kernel


def _shape_fallback_reason(spec: RunSpec) -> Optional[str]:
    """Why the spec *shape* (seed aside) can't run on a batch kernel, or
    ``None`` when it can.  ``stop_at_termination`` never blocks
    vectorization: the kernels latch and stop per run."""
    if spec.faults is not None:
        return "faults"
    if spec.trace is not None or spec.record_trace:
        return "trace"
    if spec.track_state_bits:
        return "state_bits"
    return None


def _vectorizable_shape(spec: RunSpec) -> bool:
    """Whether the spec *shape* (seed aside) can run on a batch kernel."""
    return _shape_fallback_reason(spec) is None


def _records_from_outcome(
    specs: Sequence[RunSpec],
    network: Any,
    outcome: Any,
    elapsed: float,
) -> List[RunRecord]:
    """Materialise per-run :class:`RunRecord`\\ s from kernel arrays,
    freezing metrics exactly as the fastpath engine would.

    The metric dicts are written literally, in
    :class:`~repro.network.metrics.RunMetrics` field order — the same
    shape ``asdict(RunMetrics(...))`` yields, without K dataclass
    round-trips (the differential suite pins the equivalence).
    """
    records: List[RunRecord] = []
    per_run = elapsed / max(1, len(specs))
    steps = outcome.steps.tolist()
    exhausted = outcome.exhausted.tolist()
    total_messages = outcome.total_messages.tolist()
    total_bits = outcome.total_bits.tolist()
    max_message_bits = outcome.max_message_bits.tolist()
    max_edge_messages = outcome.max_edge_messages.tolist()
    max_edge_bits = outcome.max_edge_bits.tolist()
    termination_step = outcome.termination_step.tolist()
    messages_at_termination = outcome.messages_at_termination.tolist()
    bits_at_termination = outcome.bits_at_termination.tolist()
    num_vertices = network.num_vertices
    num_edges = network.num_edges
    for i, spec in enumerate(specs):
        tstep = termination_step[i]
        # Budget exhaustion wins even over a latched termination: the
        # fastpath driver declares BUDGET_EXHAUSTED at the top of the
        # loop whenever in-flight messages outlive the budget, however
        # the run latched earlier — but keeps the latched
        # ``termination_step`` and at-termination metrics in either case.
        if exhausted[i]:
            run_outcome = _EXHAUSTED
        elif tstep >= 0:
            run_outcome = _TERMINATED
        else:
            run_outcome = _QUIESCENT
        metrics = {
            "total_messages": total_messages[i],
            "total_bits": total_bits[i],
            "max_message_bits": max_message_bits[i],
            "max_edge_bits": max_edge_bits[i],
            "max_edge_messages": max_edge_messages[i],
            "termination_step": tstep if tstep >= 0 else None,
            "steps": steps[i],
            "messages_at_termination": messages_at_termination[i],
            "bits_at_termination": bits_at_termination[i],
            "max_state_bits": 0,
        }
        records.append(
            RunRecord(
                spec=spec,
                outcome=run_outcome,
                terminated=run_outcome is _TERMINATED,
                num_vertices=num_vertices,
                num_edges=num_edges,
                metrics=metrics,
                elapsed_seconds=per_run,
            )
        )
    return records


def run_many_batched(
    spec: RunSpec,
    seeds: Sequence[Any],
    fallbacks: Optional[Dict[str, int]] = None,
) -> List[RunRecord]:
    """Execute ``spec`` across ``seeds``; records aligned with ``seeds``.

    The group is subdivided by topology key first (a seed-sensitive graph
    family turns one seed-group into several same-topology subgroups),
    then each subgroup is vectorized when every precondition holds —
    stock :class:`RandomScheduler`, a protocol with a batch kernel, plain
    single-word seeds, no faults or tracing — and executed one spec at a
    time through :func:`~repro.api.spec.execute_spec` (the engine's
    fastpath ``run_one``) otherwise.

    ``fallbacks``, when given, is a mutable counter dict the function
    increments once per spec that takes the per-seed fallback, keyed by
    reason: ``faults`` / ``trace`` / ``state_bits`` (shape can't
    vectorize), ``seed_range`` (seed not a plain word), ``small_group``
    (nothing to batch with after topology subdivision), ``scheduler``
    (not a stock :class:`RandomScheduler`), ``no_kernel`` (protocol
    without a batch kernel).
    """
    specs = _seed_variants(spec, list(seeds))
    records: List[Optional[RunRecord]] = [None] * len(specs)

    def fell_back(reason: str, count: int) -> None:
        if fallbacks is not None and count:
            fallbacks[reason] = fallbacks.get(reason, 0) + count

    groups: List[List[int]] = []
    shape_reason = _shape_fallback_reason(spec)
    if shape_reason is not None:
        fell_back(shape_reason, len(specs))
    else:
        eligible = [
            i
            for i, s in enumerate(specs)
            if isinstance(s.seed, int) and 0 <= s.seed < MAX_STREAM_SEED
        ]
        fell_back("seed_range", len(specs) - len(eligible))
        if len(eligible) < 2:
            fell_back("small_group", len(eligible))
        else:
            ensure_registered()
            # The run seed reaches the topology only through injection
            # into the graph factory; when that path is closed (seed
            # pinned in graph_params, or the factory takes none) every
            # run shares one topology and the K topology-key hashes are
            # skipped wholesale.
            seed_shapes_topology = "seed" not in spec.graph_params and _accepts_param(
                GRAPHS.get(spec.graph), "seed"
            )
            if seed_shapes_topology:
                by_topology: Dict[Any, List[int]] = {}
                for i in eligible:
                    by_topology.setdefault(topology_key(specs[i]), []).append(i)
                # Singleton groups fall through: per-run fastpath is
                # strictly cheaper than a K=1 kernel set-up.
                groups = [g for g in by_topology.values() if len(g) >= 2]
                fell_back(
                    "small_group",
                    sum(len(g) for g in by_topology.values() if len(g) < 2),
                )
            else:
                groups = [eligible]

    for indices in groups:
        group = [specs[i] for i in indices]
        rep = group[0]
        scheduler_seeds = _group_scheduler_seeds(spec, group)
        if scheduler_seeds is None:
            # Not a stock RandomScheduler: fastpath fallback below.
            fell_back("scheduler", len(group))
            continue
        network = cached_network(rep)
        compiled = compiled_topology(rep, network)
        kernel = _group_kernel(rep, compiled)
        if kernel is None:
            # No batch kernel for this protocol (or a topology the
            # kernel can't express exactly): fallback below.
            fell_back("no_kernel", len(group))
            continue
        max_steps = rep.max_steps
        if max_steps is None:
            max_steps = default_step_budget(network)
        start = time.perf_counter()
        streams = MTStreams(scheduler_seeds)
        outcome = kernel.run(
            streams, max_steps, stop_at_termination=rep.stop_at_termination
        )
        elapsed = time.perf_counter() - start
        for i, record in zip(indices, _records_from_outcome(group, network, outcome, elapsed)):
            records[i] = record

    for i, s in enumerate(specs):
        if records[i] is None:
            records[i] = execute_spec(s)
    return records  # type: ignore[return-value]
