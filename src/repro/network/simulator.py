"""The asynchronous execution engine.

:func:`run_protocol` executes an :class:`~repro.core.model.AnonymousProtocol`
on a :class:`~repro.network.graph.DirectedNetwork` under a chosen
:class:`~repro.network.scheduler.Scheduler` (the asynchronous adversary).

Execution semantics, matching Section 2 of the paper:

1. Every vertex starts in the protocol's initial state ``π₀`` (which may
   depend on its degrees, as in Section 4).
2. The root's initial emissions (``σ₀`` on its outgoing edge) are injected.
3. Repeatedly, the scheduler picks one in-flight message; the simulator
   delivers it to the head of its edge, invoking the protocol's receive step
   (``f`` and ``g``); any produced messages join the in-flight set.
4. After every delivery *to the terminal*, the stopping predicate ``S`` is
   evaluated on the terminal's state; the first step at which it holds is the
   protocol's termination point.

A run ends in one of three :class:`Outcome`\\ s:

* ``TERMINATED`` — ``S`` held at some step.  The simulator keeps delivering
  until quiescence so that *total* work is measured, but the paper's
  "before termination" accounting is preserved separately in the metrics.
* ``QUIESCENT`` — no messages remain and ``S`` never held.  For the paper's
  protocols this is the *correct* outcome on graphs where some vertex is not
  connected to ``t`` (the "iff" direction of Theorems 3.1, 4.2, 5.1).
* ``BUDGET_EXHAUSTED`` — the step budget ran out; indicates either a
  diverging protocol (a bug) or a budget set too low.

The simulator is deterministic given the scheduler, so every experiment is
exactly reproducible from (graph, protocol, scheduler, seed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.model import AnonymousProtocol, VertexView
from .events import MessageEvent
from .faults import DELIVER_AFTER_RESET as _FAULT_RESET
from .faults import SWALLOW as _FAULT_SWALLOW
from .graph import DirectedNetwork
from .metrics import MetricsCollector, RunMetrics
from .scheduler import FifoScheduler, Scheduler
from .trace import Trace

__all__ = [
    "Outcome",
    "RunResult",
    "run_protocol",
    "default_step_budget",
    "SimulationError",
]


def default_step_budget(network: DirectedNetwork) -> int:
    """The default delivery budget shared by the execution engines.

    A generous bound derived from the paper's worst-case message counts —
    ``64 + 16·|E|·(|V| + 2)`` deliveries — which no correct protocol in
    this repository exceeds.  Both the reference engine and the fast path
    resolve ``max_steps=None`` through this one function, so the two can
    never drift.
    """
    return 64 + 16 * network.num_edges * (network.num_vertices + 2)


class SimulationError(RuntimeError):
    """Raised on malformed protocol behaviour (e.g. emission on a bad port)."""


class Outcome(enum.Enum):
    """How a run ended."""

    #: The terminal's stopping predicate held at some step.
    TERMINATED = "terminated"
    #: All messages drained without the stopping predicate ever holding.
    QUIESCENT = "quiescent-without-termination"
    #: The step budget was exhausted with messages still in flight.
    BUDGET_EXHAUSTED = "budget-exhausted"


@dataclass
class RunResult:
    """Everything observable from one execution."""

    outcome: Outcome
    metrics: RunMetrics
    #: Final state of every vertex, by vertex id (for white-box assertions in
    #: tests and experiments; protocols themselves never see this).
    states: Dict[int, Any]
    #: The protocol's output — the terminal's state passed through
    #: :meth:`~repro.core.model.AnonymousProtocol.output` — when terminated.
    output: Optional[Any]
    #: Full delivery trace when tracing was requested, else ``None``.
    trace: Optional[Trace]

    @property
    def terminated(self) -> bool:
        """True iff the stopping predicate held at some point."""
        return self.outcome is Outcome.TERMINATED


def run_protocol(
    network: DirectedNetwork,
    protocol: AnonymousProtocol,
    scheduler: Optional[Scheduler] = None,
    *,
    max_steps: Optional[int] = None,
    record_trace: bool = False,
    track_state_bits: bool = False,
    stop_at_termination: bool = False,
    faults: Optional[Any] = None,
    trace_sink: Optional[Any] = None,
) -> RunResult:
    """Execute ``protocol`` on ``network`` under ``scheduler``.

    Parameters
    ----------
    network:
        The directed anonymous network (with root/terminal designated).
    protocol:
        The protocol to run.
    scheduler:
        Delivery adversary; defaults to a fresh :class:`FifoScheduler`.
    max_steps:
        Delivery budget.  Defaults to :func:`default_step_budget`
        (``64 + 16·|E|·(|V| + 2)`` deliveries), which no correct protocol
        in this repository exceeds.
    record_trace:
        Record every delivery (needed by the lower-bound harnesses).
    track_state_bits:
        Query the protocol for per-vertex state sizes after every transition
        (slow; used by the state-space experiments).
    stop_at_termination:
        Stop delivering as soon as the stopping predicate holds instead of
        draining to quiescence.  Post-termination work is then not measured.
    faults:
        Optional :class:`~repro.network.faults.FaultInjector` — the fault
        model's runtime: drops/duplicates sends, defers deliveries and
        downs crashed/churned vertices (see :mod:`repro.network.faults`).
        ``None`` (the default) is the paper's reliable model; the loop is
        then exactly the pre-fault-layer loop.
    trace_sink:
        Optional durable trace capture (a
        :class:`~repro.tracing.capture.TraceCapture`): its ``record`` hook
        fires once per delivery and its ``defer`` hook once per
        fault-deferred pop, mirroring the in-memory ``record_trace`` path
        but streaming to the ``.rtrace`` format with bounded memory.

    Returns
    -------
    RunResult
        Outcome, metrics, final states, output and optional trace.
    """
    if scheduler is None:
        scheduler = FifoScheduler()
    scheduler.bind(network)
    if max_steps is None:
        max_steps = default_step_budget(network)

    views = [
        VertexView(in_degree=network.in_degree(v), out_degree=network.out_degree(v))
        for v in range(network.num_vertices)
    ]
    states: Dict[int, Any] = {
        v: protocol.create_state(views[v]) for v in range(network.num_vertices)
    }

    metrics = MetricsCollector(network.num_edges)
    trace = Trace() if record_trace else None
    seq = 0

    def emit(vertex: int, out_port: int, payload: Any, step: int) -> None:
        nonlocal seq
        out_ids = network.out_edge_ids(vertex)
        if not (0 <= out_port < len(out_ids)):
            raise SimulationError(
                f"vertex {vertex} emitted on out-port {out_port} but has "
                f"out-degree {len(out_ids)}"
            )
        copies = 1 if faults is None else faults.send_copies()
        if copies == 0:  # transport loss: the message never enters the network
            return
        bits = protocol.message_bits(payload)
        for _ in range(copies):
            scheduler.push(
                MessageEvent(
                    edge_id=out_ids[out_port], payload=payload, seq=seq, sent_step=step, bits=bits
                )
            )
            seq += 1

    # Inject the root's initial transmissions (the paper's σ₀ on s's out-edge).
    for out_port, payload in protocol.initial_emissions(views[network.root]):
        emit(network.root, out_port, payload, step=0)

    step = 0
    while len(scheduler):
        if step >= max_steps:
            return RunResult(
                outcome=Outcome.BUDGET_EXHAUSTED,
                metrics=metrics.freeze(step),
                states=states,
                output=None,
                trace=trace,
            )
        event = scheduler.pop()
        if faults is not None and faults.should_defer(len(scheduler)):
            if trace_sink is not None:
                trace_sink.defer(step)
            scheduler.push(event)  # deferred, not delivered: no step consumed
            continue
        step += 1
        head = network.edge_head(event.edge_id)
        in_port = network.in_port_of_edge(event.edge_id)
        metrics.record_delivery(event.edge_id, event.bits)
        if trace is not None:
            trace.record(step, event.edge_id, event.payload, event.bits)
        if trace_sink is not None:
            trace_sink.record(step, event.edge_id, event.payload, event.bits)

        if faults is not None:
            action = faults.on_deliver(head, step)
            if action == _FAULT_SWALLOW:
                continue  # vertex is down: message consumed, no transition
            if action == _FAULT_RESET:
                states[head] = protocol.create_state(views[head])

        new_state, emissions = protocol.on_receive(
            states[head], views[head], in_port, event.payload
        )
        states[head] = new_state
        if track_state_bits:
            metrics.record_state_bits(protocol.state_bits(new_state))
        for out_port, payload in emissions:
            emit(head, out_port, payload, step)

        if head == network.terminal and protocol.is_terminated(new_state):
            metrics.record_termination(step)
            if stop_at_termination:
                break

    terminated = metrics.termination_step is not None
    return RunResult(
        outcome=Outcome.TERMINATED if terminated else Outcome.QUIESCENT,
        metrics=metrics.freeze(step),
        states=states,
        output=protocol.output(states[network.terminal]) if terminated else None,
        trace=trace,
    )
