"""Run metrics — the paper's complexity measures, measured.

Section 2 names the quality parameters of an anonymous protocol:

* **total communication complexity** — total bits transmitted before
  termination (:attr:`RunMetrics.total_bits`),
* **required bandwidth** — the paper uses the term both for the maximal
  message length (the message-space bound) and, in the Theorem 4.2 analysis,
  for the maximal number of bits transmitted over a *single edge*; we record
  both as :attr:`RunMetrics.max_message_bits` and
  :attr:`RunMetrics.max_edge_bits`,
* **message count** — :attr:`RunMetrics.total_messages` and the per-edge
  maximum :attr:`RunMetrics.max_edge_messages`,
* **state size** — optional per-vertex state-bit high-water mark.

A :class:`MetricsCollector` accumulates these during a run and freezes them
into an immutable :class:`RunMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["RunMetrics", "MetricsCollector"]


@dataclass(frozen=True)
class RunMetrics:
    """Immutable summary of one protocol execution."""

    #: Total number of messages delivered.
    total_messages: int
    #: Total bits across all delivered messages.
    total_bits: int
    #: Largest single message, in bits.
    max_message_bits: int
    #: Largest cumulative bit count over any single edge.
    max_edge_bits: int
    #: Largest message count over any single edge.
    max_edge_messages: int
    #: Delivery step at which the terminal's stopping predicate first held,
    #: or ``None`` if it never did.
    termination_step: Optional[int]
    #: Total delivery steps executed (equals messages delivered).
    steps: int
    #: Messages delivered up to and including the termination step (the
    #: paper's "before termination" accounting); equals ``total_messages``
    #: when the run never terminates.
    messages_at_termination: int
    #: Bits delivered up to and including the termination step.
    bits_at_termination: int
    #: Per-vertex maximal state size observed, in bits (0 when not tracked).
    max_state_bits: int

    @property
    def mean_message_bits(self) -> float:
        """Average message size in bits."""
        if not self.total_messages:
            return 0.0
        return self.total_bits / self.total_messages


class MetricsCollector:
    """Mutable accumulator used by the simulator."""

    __slots__ = (
        "_num_edges",
        "_edge_bits",
        "_edge_messages",
        "total_messages",
        "total_bits",
        "max_message_bits",
        "termination_step",
        "messages_at_termination",
        "bits_at_termination",
        "max_state_bits",
    )

    def __init__(self, num_edges: int) -> None:
        self._num_edges = num_edges
        self._edge_bits = [0] * num_edges
        self._edge_messages = [0] * num_edges
        self.total_messages = 0
        self.total_bits = 0
        self.max_message_bits = 0
        self.termination_step: Optional[int] = None
        self.messages_at_termination = 0
        self.bits_at_termination = 0
        self.max_state_bits = 0

    def record_delivery(self, edge_id: int, bits: int) -> None:
        """Account one delivered message of the given encoded size."""
        self.total_messages += 1
        self.total_bits += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits
        self._edge_bits[edge_id] += bits
        self._edge_messages[edge_id] += 1

    def record_state_bits(self, bits: int) -> None:
        """Track the per-vertex state-size high-water mark."""
        if bits > self.max_state_bits:
            self.max_state_bits = bits

    def record_termination(self, step: int) -> None:
        """Mark the first step at which the stopping predicate held."""
        if self.termination_step is None:
            self.termination_step = step
            self.messages_at_termination = self.total_messages
            self.bits_at_termination = self.total_bits

    def edge_bits(self) -> List[int]:
        """Cumulative bits per edge (by edge id)."""
        return list(self._edge_bits)

    def edge_messages(self) -> List[int]:
        """Message count per edge (by edge id)."""
        return list(self._edge_messages)

    def freeze(self, steps: int) -> RunMetrics:
        """Produce the immutable summary for a finished run."""
        terminated = self.termination_step is not None
        return RunMetrics(
            total_messages=self.total_messages,
            total_bits=self.total_bits,
            max_message_bits=self.max_message_bits,
            max_edge_bits=max(self._edge_bits, default=0),
            max_edge_messages=max(self._edge_messages, default=0),
            termination_step=self.termination_step,
            steps=steps,
            messages_at_termination=(
                self.messages_at_termination if terminated else self.total_messages
            ),
            bits_at_termination=(
                self.bits_at_termination if terminated else self.total_bits
            ),
            max_state_bits=self.max_state_bits,
        )
