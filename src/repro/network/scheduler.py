"""Delivery schedulers — the asynchronous adversary.

In the asynchronous model the only guarantee is that every sent message is
eventually delivered.  Everything else — order across edges, interleaving,
reordering on a single edge — is up to an adversary.  A
:class:`Scheduler` is that adversary: the simulator pushes every emitted
message into it and asks it for the next message to deliver.

The paper's protocols are all insensitive to reordering (the tree and DAG
protocols send one message per edge; the interval protocols accumulate
monotone unions, which commute), so all schedulers here may reorder freely,
including within one edge.  Correctness claims are ∀-schedule claims; the
test suite runs every protocol under every scheduler with many seeds.

Implementations:

* :class:`FifoScheduler` — global send-order delivery (the "synchronous-ish"
  baseline).
* :class:`LifoScheduler` — newest first; maximally bursty.
* :class:`RandomScheduler` — uniformly random in-flight message (seeded).
* :class:`TerminalLastScheduler` — adversarially starves the terminal: a
  message whose edge enters ``t`` is delivered only when nothing else is in
  flight.  This maximises the interval protocols' cycle churn before ``t``
  learns anything.
* :class:`TerminalFirstScheduler` — rushes messages into ``t`` to probe for
  premature termination.
* :class:`PortBiasedScheduler` — always delivers the in-flight message whose
  edge has the highest out-port index at its tail; a deterministic "skewed"
  order that exercises asymmetric interleavings.
"""

from __future__ import annotations

import abc
import random
from collections import deque
from typing import Deque, List, Optional

from ..api.registry import SCHEDULERS
from .events import MessageEvent
from .graph import DirectedNetwork

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "LifoScheduler",
    "RandomScheduler",
    "TerminalLastScheduler",
    "TerminalFirstScheduler",
    "PortBiasedScheduler",
    "LatencyScheduler",
    "DroppingScheduler",
    "ALL_SCHEDULER_FACTORIES",
    "make_standard_schedulers",
    "standard_scheduler_specs",
]


class Scheduler(abc.ABC):
    """Chooses which in-flight message the network delivers next."""

    #: Name used in experiment reports.
    name: str = "scheduler"

    @abc.abstractmethod
    def push(self, event: MessageEvent) -> None:
        """Register a newly sent message."""

    @abc.abstractmethod
    def pop(self) -> MessageEvent:
        """Remove and return the next message to deliver.

        Raises
        ------
        IndexError
            If no message is in flight.
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of in-flight messages."""

    def bind(self, network: DirectedNetwork) -> None:
        """Give topology-aware schedulers access to the network.

        Called once by the simulator before the run starts.  The default does
        nothing; adversarial schedulers override it.  (This does not leak
        topology to the *protocol* — schedulers model the environment, which
        in the asynchronous model is exactly the entity that knows the
        network.)
        """


@SCHEDULERS.register()
class FifoScheduler(Scheduler):
    """Deliver messages in global send order."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: Deque[MessageEvent] = deque()

    def push(self, event: MessageEvent) -> None:
        self._queue.append(event)

    def pop(self) -> MessageEvent:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


@SCHEDULERS.register()
class LifoScheduler(Scheduler):
    """Deliver the most recently sent message first (depth-first surge)."""

    name = "lifo"

    def __init__(self) -> None:
        self._stack: List[MessageEvent] = []

    def push(self, event: MessageEvent) -> None:
        self._stack.append(event)

    def pop(self) -> MessageEvent:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


@SCHEDULERS.register()
class RandomScheduler(Scheduler):
    """Deliver a uniformly random in-flight message (swap-pop, O(1))."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._events: List[MessageEvent] = []
        self.seed = seed
        self.name = f"random(seed={seed})"

    def push(self, event: MessageEvent) -> None:
        self._events.append(event)

    def pop(self) -> MessageEvent:
        idx = self._rng.randrange(len(self._events))
        self._events[idx], self._events[-1] = self._events[-1], self._events[idx]
        return self._events.pop()

    def __len__(self) -> int:
        return len(self._events)


class _TerminalAwareScheduler(Scheduler):
    """Shared machinery for schedulers that treat edges into ``t`` specially."""

    def __init__(self) -> None:
        self._terminal_edges: Optional[set] = None
        self._to_terminal: Deque[MessageEvent] = deque()
        self._others: Deque[MessageEvent] = deque()

    def bind(self, network: DirectedNetwork) -> None:
        self._terminal_edges = set(network.in_edge_ids(network.terminal))

    def push(self, event: MessageEvent) -> None:
        if self._terminal_edges is not None and event.edge_id in self._terminal_edges:
            self._to_terminal.append(event)
        else:
            self._others.append(event)

    def __len__(self) -> int:
        return len(self._to_terminal) + len(self._others)


@SCHEDULERS.register()
class TerminalLastScheduler(_TerminalAwareScheduler):
    """Starve the terminal: deliver to ``t`` only when nothing else remains."""

    name = "terminal-last"

    def pop(self) -> MessageEvent:
        if self._others:
            return self._others.popleft()
        return self._to_terminal.popleft()


@SCHEDULERS.register()
class TerminalFirstScheduler(_TerminalAwareScheduler):
    """Rush the terminal: always deliver messages into ``t`` first."""

    name = "terminal-first"

    def pop(self) -> MessageEvent:
        if self._to_terminal:
            return self._to_terminal.popleft()
        return self._others.popleft()


@SCHEDULERS.register()
class PortBiasedScheduler(Scheduler):
    """Prefer in-flight messages on high out-port edges (deterministic skew)."""

    name = "port-biased"

    def __init__(self) -> None:
        self._events: List[MessageEvent] = []
        self._network: Optional[DirectedNetwork] = None

    def bind(self, network: DirectedNetwork) -> None:
        self._network = network

    def push(self, event: MessageEvent) -> None:
        self._events.append(event)

    def pop(self) -> MessageEvent:
        if self._network is None:
            return self._events.pop()
        best = max(
            range(len(self._events)),
            key=lambda i: (
                self._network.out_port_of_edge(self._events[i].edge_id),
                -self._events[i].seq,
            ),
        )
        self._events[best], self._events[-1] = self._events[-1], self._events[best]
        return self._events.pop()

    def __len__(self) -> int:
        return len(self._events)


@SCHEDULERS.register()
class LatencyScheduler(Scheduler):
    """Per-edge link latencies: deliver the in-flight message that would
    physically arrive first.

    Each edge gets a deterministic latency drawn from
    ``[min_latency, max_latency]`` (seeded); a message sent at virtual time
    ``T`` on edge ``e`` arrives at ``T + latency(e)``.  Virtual time is the
    arrival time of the last delivered message.  This models heterogeneous
    links (slow WAN hops next to fast LAN hops) — a structured adversary
    between FIFO and fully random, and the source of the
    :attr:`virtual_time` measure experiments can report.
    """

    name = "latency"

    def __init__(
        self, seed: int = 0, *, min_latency: float = 1.0, max_latency: float = 10.0
    ) -> None:
        if min_latency <= 0 or max_latency < min_latency:
            raise ValueError("need 0 < min_latency <= max_latency")
        self._rng = random.Random(seed)
        self._min = min_latency
        self._max = max_latency
        self._latencies: dict = {}
        self._heap: List[tuple] = []
        #: Arrival time of the most recently delivered message.
        self.virtual_time = 0.0

    def _latency(self, edge_id: int) -> float:
        if edge_id not in self._latencies:
            self._latencies[edge_id] = self._rng.uniform(self._min, self._max)
        return self._latencies[edge_id]

    def push(self, event: MessageEvent) -> None:
        import heapq

        arrival = self.virtual_time + self._latency(event.edge_id)
        heapq.heappush(self._heap, (arrival, event.seq, event))

    def pop(self) -> MessageEvent:
        import heapq

        arrival, _, event = heapq.heappop(self._heap)
        self.virtual_time = arrival
        return event

    def __len__(self) -> int:
        return len(self._heap)


@SCHEDULERS.register()
class DroppingScheduler(Scheduler):
    """Failure injection: silently lose a fraction of messages.

    The asynchronous model *assumes reliable delivery* — every sent message
    eventually arrives.  This scheduler deliberately violates that
    assumption (each pushed message is dropped with probability
    ``drop_probability``, seeded) so tests can document what the paper's
    protocols do **not** promise: with lost commodity, the terminal's
    accounting can never close and the protocols sit in quiescence — they
    *fail safe* (no false termination), but they do fail.  Making them
    loss-tolerant would require acknowledgements, i.e. feedback, i.e.
    exactly what directedness removes — the paper's §6 point, inverted.
    """

    name = "dropping"

    def __init__(self, seed: int = 0, *, drop_probability: float = 0.1) -> None:
        if not (0.0 <= drop_probability <= 1.0):
            raise ValueError("drop_probability must be in [0, 1]")
        self._rng = random.Random(seed)
        self._queue: Deque[MessageEvent] = deque()
        self.drop_probability = drop_probability
        #: Messages lost so far.
        self.dropped = 0

    def push(self, event: MessageEvent) -> None:
        if self._rng.random() < self.drop_probability:
            self.dropped += 1
            return
        self._queue.append(event)

    def pop(self) -> MessageEvent:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


#: Factories for one scheduler of every kind (fresh instances per run).
ALL_SCHEDULER_FACTORIES = (
    FifoScheduler,
    LifoScheduler,
    lambda: RandomScheduler(seed=0),
    TerminalLastScheduler,
    TerminalFirstScheduler,
    PortBiasedScheduler,
    lambda: LatencyScheduler(seed=0),
)


def make_standard_schedulers(random_seeds: int = 3) -> List[Scheduler]:
    """A fresh batch of schedulers covering every implemented adversary.

    Includes FIFO, LIFO, terminal-last, terminal-first, port-biased, one
    latency-model scheduler, and ``random_seeds`` seeded random schedulers.  Used by tests and experiments
    that quantify over schedules.
    """
    schedulers: List[Scheduler] = [
        FifoScheduler(),
        LifoScheduler(),
        TerminalLastScheduler(),
        TerminalFirstScheduler(),
        PortBiasedScheduler(),
        LatencyScheduler(seed=0),
    ]
    schedulers.extend(RandomScheduler(seed=s) for s in range(random_seeds))
    return schedulers


def standard_scheduler_specs(random_seeds: int = 3) -> List[tuple]:
    """The standard-adversary batch as ``(registry name, params)`` pairs.

    The spec-layer twin of :func:`make_standard_schedulers` (same adversaries
    in the same order) for experiments that quantify over schedules with
    serializable :class:`~repro.api.spec.RunSpec`\\ s.
    """
    specs: List[tuple] = [
        ("fifo", {}),
        ("lifo", {}),
        ("terminal-last", {}),
        ("terminal-first", {}),
        ("port-biased", {}),
        ("latency", {"seed": 0}),
    ]
    specs.extend(("random", {"seed": s}) for s in range(random_seeds))
    return specs
