"""Serialization: reproducibility artifacts for networks, metrics, traces.

Experiments are only reproducible if their inputs and outputs can be pinned
down.  This module round-trips the substrate objects through plain JSON:

* :func:`network_to_json` / :func:`network_from_json` — the exact topology,
  including port order (edge order **is** port order, so it is preserved
  verbatim),
* :func:`metrics_to_dict` — a :class:`~repro.network.metrics.RunMetrics`
  as a JSON-safe dict,
* :func:`trace_to_jsonl` — one delivery per line with ``repr``-rendered
  payloads (payload reprs are stable across runs because all message types
  are frozen dataclasses over exact arithmetic).

The test suite asserts graph round-trips are identity maps and that traces
re-serialize deterministically.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Dict, List

from .graph import DirectedNetwork
from .metrics import RunMetrics
from .trace import Trace

__all__ = [
    "network_to_json",
    "network_from_json",
    "metrics_to_dict",
    "trace_to_jsonl",
]


def network_to_json(network: DirectedNetwork, *, indent: int = None) -> str:
    """Serialize a network (vertices, edges in port order, s, t) to JSON."""
    payload = {
        "format": "repro.directed-network.v1",
        "num_vertices": network.num_vertices,
        "edges": [list(edge) for edge in network.edges],
        "root": network.root,
        "terminal": network.terminal,
    }
    return json.dumps(payload, indent=indent)


def network_from_json(text: str) -> DirectedNetwork:
    """Inverse of :func:`network_to_json`.

    Validation is re-applied non-strictly so that experiment artifacts
    containing the paper's relaxed variants (multi-out-degree roots,
    dead-end regions) load unchanged.
    """
    payload = json.loads(text)
    if payload.get("format") != "repro.directed-network.v1":
        raise ValueError("not a repro directed-network document")
    return DirectedNetwork(
        payload["num_vertices"],
        [tuple(edge) for edge in payload["edges"]],
        root=payload["root"],
        terminal=payload["terminal"],
        validate=False,
    )


def metrics_to_dict(metrics: RunMetrics) -> Dict[str, Any]:
    """A JSON-safe dict view of run metrics."""
    return asdict(metrics)


def trace_to_jsonl(trace: Trace) -> str:
    """One JSON object per delivery: step, edge, bits, payload repr."""
    lines: List[str] = []
    for record in trace.deliveries:
        lines.append(
            json.dumps(
                {
                    "step": record.step,
                    "edge": record.edge_id,
                    "bits": record.bits,
                    "payload": repr(record.payload),
                }
            )
        )
    return "\n".join(lines)
