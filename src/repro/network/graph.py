"""Directed anonymous networks with port semantics.

The paper's model (Section 2): a directed graph ``G = (V, E)`` with a root
``s`` (no incoming edges, a single outgoing edge) and a terminal ``t`` (no
outgoing edges).  Vertices have no identifiers and know nothing of the
topology; each vertex knows only its own in-degree and out-degree and can
*distinguish* its incident edges by local port numbers.

:class:`DirectedNetwork` stores the global topology for the simulator's use.
Protocol code never sees vertex identities — the simulator hands protocols a
:class:`~repro.core.model.VertexView` carrying only degrees, and addresses
messages by (vertex, port) internally.  Multi-edges and self-loops are
permitted (the model only requires port distinguishability).

The class also provides the structural queries the theorems quantify over:
reachability from ``s``, connectivity to ``t``, degree statistics, and DOT
export for debugging.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["DirectedNetwork", "NetworkValidationError"]

Edge = Tuple[int, int]


class NetworkValidationError(ValueError):
    """Raised when a network violates the paper's root/terminal assumptions."""


class DirectedNetwork:
    """A directed multigraph with designated root and terminal vertices.

    Vertices are the integers ``0 .. n-1``.  Edges are given as a sequence of
    ``(tail, head)`` pairs; the *port order* at each vertex is the order in
    which its edges appear in that sequence (first out-edge of ``v`` in the
    sequence is out-port 0 of ``v``, and so on).  This fixed but arbitrary
    port numbering is exactly the power the model grants vertices: they can
    tell their edges apart but learn nothing from the numbering.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``.
    edges:
        Sequence of ``(tail, head)`` pairs.
    root:
        The root vertex ``s``.
    terminal:
        The terminal vertex ``t``.
    validate:
        When true (default), enforce the paper's standing assumptions: the
        root has no incoming edges, the terminal has no outgoing edges, and
        the root has at least one outgoing edge.  The paper's base model gives
        the root exactly one out-edge but notes the multi-out-edge extension
        is easy; pass ``strict_root=True`` to demand out-degree exactly 1.
    strict_root:
        Enforce root out-degree exactly one (the base model of Section 2).
    """

    __slots__ = (
        "_n",
        "_edges",
        "_out_edges",
        "_in_edges",
        "root",
        "terminal",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Sequence[Edge],
        root: int,
        terminal: int,
        *,
        validate: bool = True,
        strict_root: bool = False,
    ) -> None:
        if num_vertices < 2:
            raise NetworkValidationError("a network needs at least root and terminal")
        if not (0 <= root < num_vertices) or not (0 <= terminal < num_vertices):
            raise NetworkValidationError("root/terminal out of range")
        if root == terminal:
            raise NetworkValidationError("root and terminal must differ")
        self._n = num_vertices
        self._edges: Tuple[Edge, ...] = tuple((int(a), int(b)) for a, b in edges)
        out_edges: List[List[int]] = [[] for _ in range(num_vertices)]
        in_edges: List[List[int]] = [[] for _ in range(num_vertices)]
        for eid, (tail, head) in enumerate(self._edges):
            if not (0 <= tail < num_vertices) or not (0 <= head < num_vertices):
                raise NetworkValidationError(f"edge {eid} endpoint out of range")
            out_edges[tail].append(eid)
            in_edges[head].append(eid)
        self._out_edges: Tuple[Tuple[int, ...], ...] = tuple(tuple(lst) for lst in out_edges)
        self._in_edges: Tuple[Tuple[int, ...], ...] = tuple(tuple(lst) for lst in in_edges)
        self.root = root
        self.terminal = terminal
        if validate:
            self._validate(strict_root=strict_root)

    def _validate(self, *, strict_root: bool) -> None:
        if self._in_edges[self.root]:
            raise NetworkValidationError("root must have no incoming edges")
        if self._out_edges[self.terminal]:
            raise NetworkValidationError("terminal must have no outgoing edges")
        if not self._out_edges[self.root]:
            raise NetworkValidationError("root must have at least one outgoing edge")
        if strict_root and len(self._out_edges[self.root]) != 1:
            raise NetworkValidationError("strict model: root out-degree must be 1")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """``|V|``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """``|E|``."""
        return len(self._edges)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges as ``(tail, head)`` pairs, indexed by edge id."""
        return self._edges

    def edge_tail(self, eid: int) -> int:
        """The tail vertex of edge ``eid``."""
        return self._edges[eid][0]

    def edge_head(self, eid: int) -> int:
        """The head vertex of edge ``eid``."""
        return self._edges[eid][1]

    def out_edge_ids(self, vertex: int) -> Tuple[int, ...]:
        """Edge ids leaving ``vertex`` in out-port order."""
        return self._out_edges[vertex]

    def in_edge_ids(self, vertex: int) -> Tuple[int, ...]:
        """Edge ids entering ``vertex`` in in-port order."""
        return self._in_edges[vertex]

    def out_degree(self, vertex: int) -> int:
        """Number of outgoing edges of ``vertex``."""
        return len(self._out_edges[vertex])

    def in_degree(self, vertex: int) -> int:
        """Number of incoming edges of ``vertex``."""
        return len(self._in_edges[vertex])

    def out_port_of_edge(self, eid: int) -> int:
        """The out-port index of edge ``eid`` at its tail."""
        return self._out_edges[self.edge_tail(eid)].index(eid)

    def in_port_of_edge(self, eid: int) -> int:
        """The in-port index of edge ``eid`` at its head."""
        return self._in_edges[self.edge_head(eid)].index(eid)

    def out_neighbors(self, vertex: int) -> List[int]:
        """Heads of the out-edges of ``vertex`` in port order."""
        return [self.edge_head(e) for e in self._out_edges[vertex]]

    def in_neighbors(self, vertex: int) -> List[int]:
        """Tails of the in-edges of ``vertex`` in port order."""
        return [self.edge_tail(e) for e in self._in_edges[vertex]]

    def max_out_degree(self) -> int:
        """``d_out`` — the maximal out-degree over all vertices."""
        return max((len(p) for p in self._out_edges), default=0)

    def internal_vertices(self) -> List[int]:
        """All vertices other than root and terminal."""
        return [v for v in range(self._n) if v != self.root and v != self.terminal]

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def reachable_from(self, start: int) -> Set[int]:
        """Vertices reachable from ``start`` along edge directions."""
        seen = {start}
        frontier = deque([start])
        while frontier:
            v = frontier.popleft()
            for eid in self._out_edges[v]:
                head = self.edge_head(eid)
                if head not in seen:
                    seen.add(head)
                    frontier.append(head)
        return seen

    def coreachable_to(self, target: int) -> Set[int]:
        """Vertices from which ``target`` is reachable."""
        seen = {target}
        frontier = deque([target])
        while frontier:
            v = frontier.popleft()
            for eid in self._in_edges[v]:
                tail = self.edge_tail(eid)
                if tail not in seen:
                    seen.add(tail)
                    frontier.append(tail)
        return seen

    def all_reachable_from_root(self) -> bool:
        """True iff every vertex is reachable from ``s`` (a standing assumption)."""
        return len(self.reachable_from(self.root)) == self._n

    def all_connected_to_terminal(self) -> bool:
        """True iff every vertex can reach ``t``.

        This is the paper's termination criterion: every protocol in the
        paper terminates iff each vertex of ``G`` is connected to ``t``.
        """
        return len(self.coreachable_to(self.terminal)) == self._n

    def vertices_not_connected_to_terminal(self) -> Set[int]:
        """Vertices (reachable or not) that cannot reach ``t``."""
        return set(range(self._n)) - self.coreachable_to(self.terminal)

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------

    def topological_order(self) -> Optional[List[int]]:
        """A topological order of the vertices, or ``None`` if cyclic."""
        indeg = [self.in_degree(v) for v in range(self._n)]
        order: List[int] = []
        frontier = deque(v for v in range(self._n) if indeg[v] == 0)
        while frontier:
            v = frontier.popleft()
            order.append(v)
            for eid in self._out_edges[v]:
                head = self.edge_head(eid)
                indeg[head] -= 1
                if indeg[head] == 0:
                    frontier.append(head)
        if len(order) != self._n:
            return None
        return order

    def is_acyclic(self) -> bool:
        """True iff the network contains no directed cycle."""
        return self.topological_order() is not None

    def edge_set_multiset(self) -> Dict[Edge, int]:
        """Multiset of ``(tail, head)`` pairs (multi-edge multiplicities)."""
        counts: Dict[Edge, int] = {}
        for edge in self._edges:
            counts[edge] = counts.get(edge, 0) + 1
        return counts

    def same_topology_under(self, other: "DirectedNetwork", vertex_map: Dict[int, int]) -> bool:
        """True iff ``vertex_map`` is an edge-multiset isomorphism onto ``other``.

        ``vertex_map`` sends this network's vertex ids to ``other``'s.  Used
        by the mapping experiments to check that a reconstructed topology
        matches the ground truth under the label-induced correspondence.
        """
        if self._n != other._n or len(vertex_map) != self._n:
            return False
        if set(vertex_map.values()) != set(range(other._n)):
            return False
        mapped: Dict[Edge, int] = {}
        for tail, head in self._edges:
            key = (vertex_map[tail], vertex_map[head])
            mapped[key] = mapped.get(key, 0) + 1
        return mapped == other.edge_set_multiset()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dot(self, *, name: str = "G") -> str:
        """GraphViz DOT rendering (root boxed, terminal double-circled)."""
        lines = [f"digraph {name} {{"]
        for v in range(self._n):
            if v == self.root:
                lines.append(f'  {v} [shape=box, label="s"];')
            elif v == self.terminal:
                lines.append(f'  {v} [shape=doublecircle, label="t"];')
            else:
                lines.append(f"  {v};")
        for tail, head in self._edges:
            lines.append(f"  {tail} -> {head};")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DirectedNetwork(|V|={self._n}, |E|={len(self._edges)}, "
            f"s={self.root}, t={self.terminal})"
        )
