"""Execution traces.

The lower-bound harnesses (:mod:`repro.lowerbounds`) need more than summary
metrics: Theorem 3.2 counts *distinct symbols* transmitted over the edges of
a graph (the set ``Σ_G``), and the linear-cut machinery (Lemmas 3.5–3.7)
inspects which symbol crossed which edge.  A :class:`Trace` records every
delivery — edge, payload, step, size — when tracing is enabled on the
simulator.

Payloads must be hashable for symbol-distinctness queries; all message types
in :mod:`repro.core.messages` are frozen/hashable for this reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Set, Tuple

__all__ = ["DeliveryRecord", "Trace"]


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivered message."""

    step: int
    edge_id: int
    payload: Any
    bits: int


@dataclass
class Trace:
    """Chronological record of every delivery in a run."""

    deliveries: List[DeliveryRecord] = field(default_factory=list)

    def record(self, step: int, edge_id: int, payload: Any, bits: int) -> None:
        """Append one delivery."""
        self.deliveries.append(DeliveryRecord(step, edge_id, payload, bits))

    def __len__(self) -> int:
        return len(self.deliveries)

    def symbols_on_edge(self, edge_id: int) -> List[Any]:
        """All payloads delivered on one edge, in delivery order."""
        return [d.payload for d in self.deliveries if d.edge_id == edge_id]

    def distinct_symbols(self) -> Set[Any]:
        """The set ``Σ_G`` of distinct symbols transmitted in this run."""
        return {d.payload for d in self.deliveries}

    def distinct_symbol_count(self) -> int:
        """``|Σ_G|`` for this run."""
        return len(self.distinct_symbols())

    def per_edge_symbols(self) -> Dict[int, List[Any]]:
        """Map edge id → payloads delivered on it, in order."""
        out: Dict[int, List[Any]] = {}
        for d in self.deliveries:
            out.setdefault(d.edge_id, []).append(d.payload)
        return out

    def messages_per_edge(self) -> Dict[int, int]:
        """Map edge id → number of deliveries on it."""
        out: Dict[int, int] = {}
        for d in self.deliveries:
            out[d.edge_id] = out.get(d.edge_id, 0) + 1
        return out

    def edge_symbol_multiset(self, edge_ids) -> Tuple[Any, ...]:
        """The multiset (as a sorted-by-repr tuple) of symbols on ``edge_ids``.

        Used by the linear-cut harness: Lemma 3.5 reasons about the multiset
        of symbols crossing a cut.  Sorting by ``repr`` gives a canonical
        multiset representation without requiring payload orderability.

        One pass over the deliveries (via :meth:`per_edge_symbols`) no
        matter how many edges the cut has; a repeated edge id contributes
        its symbols once per occurrence, as before.
        """
        per_edge = self.per_edge_symbols()
        symbols: List[Any] = []
        for eid in edge_ids:
            symbols.extend(per_edge.get(eid, ()))
        return tuple(sorted(symbols, key=repr))
