"""Network substrate: anonymous directed multigraphs and the async simulator."""

from .events import MessageEvent
from .graph import DirectedNetwork, NetworkValidationError
from .metrics import MetricsCollector, RunMetrics
from .scheduler import (
    ALL_SCHEDULER_FACTORIES,
    DroppingScheduler,
    FifoScheduler,
    LatencyScheduler,
    LifoScheduler,
    PortBiasedScheduler,
    RandomScheduler,
    Scheduler,
    TerminalFirstScheduler,
    TerminalLastScheduler,
    make_standard_schedulers,
    standard_scheduler_specs,
)
from .fastpath import CompiledNetwork, FastEvent, run_protocol_fastpath
from .faults import (
    ChurnFault,
    CrashFault,
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    OldestLastScheduler,
    StarveOneEdgeScheduler,
)
from .simulator import Outcome, RunResult, SimulationError, run_protocol
from .synchronous import SynchronousRunResult, run_protocol_synchronous
from .trace import DeliveryRecord, Trace

__all__ = [
    "DirectedNetwork",
    "NetworkValidationError",
    "MessageEvent",
    "MetricsCollector",
    "RunMetrics",
    "Scheduler",
    "FifoScheduler",
    "LifoScheduler",
    "RandomScheduler",
    "LatencyScheduler",
    "DroppingScheduler",
    "TerminalLastScheduler",
    "TerminalFirstScheduler",
    "PortBiasedScheduler",
    "ALL_SCHEDULER_FACTORIES",
    "make_standard_schedulers",
    "standard_scheduler_specs",
    "FaultSpec",
    "FaultSpecError",
    "CrashFault",
    "ChurnFault",
    "FaultInjector",
    "StarveOneEdgeScheduler",
    "OldestLastScheduler",
    "Outcome",
    "RunResult",
    "SimulationError",
    "run_protocol",
    "CompiledNetwork",
    "FastEvent",
    "run_protocol_fastpath",
    "SynchronousRunResult",
    "run_protocol_synchronous",
    "DeliveryRecord",
    "Trace",
]
