"""In-flight message events for the asynchronous simulator.

The asynchronous model places no constraints on delivery order: a message
sent on an edge arrives after an arbitrary finite delay.  The simulator
represents each undelivered transmission as a :class:`MessageEvent`; a
:class:`~repro.network.scheduler.Scheduler` chooses which in-flight event to
deliver next, which is exactly the adversary's power in the asynchronous
model.

Events carry a globally unique, monotonically increasing sequence number so
that schedulers can implement FIFO/LIFO orders and so traces are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["MessageEvent"]


@dataclass(frozen=True)
class MessageEvent:
    """One message in flight on an edge.

    Attributes
    ----------
    edge_id:
        The network edge the message travels on.
    payload:
        The protocol message (opaque to the simulator).
    seq:
        Global send order; unique per run.
    sent_step:
        The delivery step during which this message was emitted (0 for the
        root's initial emissions).
    bits:
        Encoded size of the payload, computed once at send time.
    """

    edge_id: int
    payload: Any = field(compare=False)
    seq: int
    sent_step: int
    bits: int
