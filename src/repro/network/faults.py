"""Declarative fault models: loss, duplication, delay, crashes, churn.

The paper analyses its protocols under a *reliable* asynchronous adversary:
delivery order is arbitrary, but every sent message eventually arrives and
every vertex runs forever.  The self-stabilization literature on the same
model family asks the complementary question — what do these protocols do
when those assumptions are violated?  This module makes that question a
first-class, declarative workload dimension:

* :class:`FaultSpec` — a frozen, JSON-round-trippable description of a
  fault model: message drop/duplicate/delay probabilities, per-vertex
  crash schedules (:class:`CrashFault`), join/leave churn intervals
  (:class:`ChurnFault`), and an optional adversarial scheduler strategy
  from the :data:`~repro.api.registry.FAULTS` registry.
* :class:`FaultInjector` — the runtime object both execution engines hook:
  it decides, deterministically from one seeded RNG, which sends are
  dropped or duplicated, which deliveries are deferred, and which vertices
  are down at a given step.  The async simulator and the fastpath engine
  call the same three hooks in the same order, so a faulty run is
  engine-independent the same way a fault-free run is.
* Adversarial strategies — :class:`StarveOneEdgeScheduler` and
  :class:`OldestLastScheduler`, registered in :data:`FAULTS` so fault
  specs can name them (``adversary="starve-one-edge"``).

Semantics (shared by both engines, documented in ``docs/FAULTS.md``):

* **Drop** — each emitted message is silently lost with probability
  ``drop_probability`` before it enters the scheduler.
* **Duplicate** — each surviving message is enqueued twice with
  probability ``duplicate_probability`` (the second copy gets its own
  sequence number, exactly as if the sender had emitted it again).
* **Delay** — when the scheduler picks a message and other messages remain
  in flight, the delivery is deferred (the message re-enters the
  scheduler) with probability ``delay_probability``.  A deferral does not
  consume a delivery step; progress is guaranteed by capping consecutive
  deferrals at the number of other in-flight messages.
* **Crash** — a vertex with a :class:`CrashFault` is down from delivery
  step ``step`` onward: messages delivered to it are consumed by the
  network (they count in the metrics and the step budget) but trigger no
  protocol transition and no emissions.
* **Churn** — a vertex with a :class:`ChurnFault` is down during
  ``[leave_step, rejoin_step)`` (forever when ``rejoin_step`` is
  ``None``).  On its first delivery at or after ``rejoin_step`` its state
  is reset to a fresh ``protocol.create_state`` — it rejoins with no
  memory, the self-stabilization notion of a transient node.

Determinism: all randomness comes from one ``random.Random`` seeded from
``FaultSpec.seed`` (falling back to the run's seed), so a faulty run is
exactly reproducible from ``(spec, seed)`` — the same guarantee the
simulator gives fault-free runs.

>>> spec = FaultSpec(drop_probability=0.1, crashes=(CrashFault(vertex=3, step=20),))
>>> FaultSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

import heapq
import json
import random
from collections import deque
from dataclasses import dataclass, field, fields, replace
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..api.registry import FAULTS
from .events import MessageEvent
from .graph import DirectedNetwork
from .scheduler import Scheduler

__all__ = [
    "FaultSpecError",
    "CrashFault",
    "ChurnFault",
    "FaultSpec",
    "FaultInjector",
    "DELIVER",
    "DELIVER_AFTER_RESET",
    "SWALLOW",
    "StarveOneEdgeScheduler",
    "OldestLastScheduler",
    "FAULTS",
]


class FaultSpecError(ValueError):
    """A fault spec is malformed (bad probability, bad schedule, ...)."""


@dataclass(frozen=True)
class CrashFault:
    """One permanent crash: ``vertex`` is down from delivery step ``step``.

    Steps are the simulator's 1-based delivery counter; ``step=0`` (or 1)
    means the vertex is down for the whole run.  A crashed vertex still
    *receives* deliveries from the network's point of view — they count in
    the metrics and the step budget — but its state never changes and it
    emits nothing.
    """

    vertex: int
    step: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.vertex, int) or self.vertex < 0:
            raise FaultSpecError(f"crash vertex must be a non-negative int, got {self.vertex!r}")
        if not isinstance(self.step, int) or self.step < 0:
            raise FaultSpecError(f"crash step must be a non-negative int, got {self.step!r}")


@dataclass(frozen=True)
class ChurnFault:
    """One churn interval: ``vertex`` is away during ``[leave_step, rejoin_step)``.

    ``rejoin_step=None`` means the vertex never returns (a leave without a
    join — observationally a crash, but counted as churn).  When it does
    rejoin, its first delivery at or after ``rejoin_step`` resets its state
    to a fresh ``protocol.create_state`` — the node returns with no memory.
    """

    vertex: int
    leave_step: int
    rejoin_step: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.vertex, int) or self.vertex < 0:
            raise FaultSpecError(f"churn vertex must be a non-negative int, got {self.vertex!r}")
        if not isinstance(self.leave_step, int) or self.leave_step < 0:
            raise FaultSpecError(
                f"churn leave_step must be a non-negative int, got {self.leave_step!r}"
            )
        if self.rejoin_step is not None and (
            not isinstance(self.rejoin_step, int) or self.rejoin_step <= self.leave_step
        ):
            raise FaultSpecError(
                f"churn rejoin_step must be an int > leave_step or None, "
                f"got {self.rejoin_step!r}"
            )


def _probability(name: str, value: Any) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise FaultSpecError(f"{name} must be a number in [0, 1], got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise FaultSpecError(f"{name} must be in [0, 1], got {value!r}")
    return value


def _fault_entries(kind: str, cls: type, values: Any) -> Tuple[Any, ...]:
    """Normalise a crash/churn field to a tuple of ``cls`` instances.

    Every malformed shape — a non-sequence, a non-dict entry, a typo'd or
    missing key — must surface as :class:`FaultSpecError`, never as a bare
    ``TypeError``: the CLI turns only fault-spec errors into its one-line
    messages.
    """
    if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
        raise FaultSpecError(
            f"{kind} must be a sequence of {cls.__name__} entries, "
            f"got {type(values).__name__}"
        )
    entries = []
    for entry in values:
        if isinstance(entry, cls):
            entries.append(entry)
        elif isinstance(entry, dict):
            try:
                entries.append(cls(**entry))
            except TypeError as exc:
                raise FaultSpecError(f"invalid {kind} entry {entry!r}: {exc}") from None
        else:
            raise FaultSpecError(
                f"{kind} entries must be dicts or {cls.__name__}, "
                f"got {type(entry).__name__}"
            )
    return tuple(entries)


@dataclass(frozen=True)
class FaultSpec:
    """One fault model, as plain data (the fault twin of ``RunSpec``).

    Attach it to a run via ``RunSpec(..., faults={...})`` or
    ``RunSpec(..., faults=FaultSpec(...))``; ``faults=None`` (the default)
    is the paper's reliable model and leaves the engines' fault-free fast
    paths — including the protocol kernels — completely untouched.

    Parameters
    ----------
    drop_probability / duplicate_probability / delay_probability:
        Per-message transport fault rates, each in ``[0, 1]``.
    crashes:
        :class:`CrashFault` entries (at most one per vertex).
    churn:
        :class:`ChurnFault` intervals; several per vertex are allowed as
        long as they do not overlap.
    adversary / adversary_params:
        Optional :data:`FAULTS` registry name of an adversarial scheduler
        strategy (e.g. ``"starve-one-edge"``); when set it **replaces** the
        run spec's scheduler.
    seed:
        Fault RNG seed; ``None`` (the default) falls back to the run's
        seed, so a seed sweep varies faults and topology together.

    >>> FaultSpec(drop_probability=0.25).drop_probability
    0.25
    >>> FaultSpec(drop_probability=2.0)
    Traceback (most recent call last):
        ...
    repro.network.faults.FaultSpecError: drop_probability must be in [0, 1], got 2.0
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    delay_probability: float = 0.0
    crashes: Tuple[CrashFault, ...] = ()
    churn: Tuple[ChurnFault, ...] = ()
    adversary: Optional[str] = None
    adversary_params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop_probability", "duplicate_probability", "delay_probability"):
            object.__setattr__(self, name, _probability(name, getattr(self, name)))
        crashes = _fault_entries("crashes", CrashFault, self.crashes)
        if len({entry.vertex for entry in crashes}) != len(crashes):
            raise FaultSpecError("at most one crash entry per vertex")
        object.__setattr__(self, "crashes", crashes)
        churn = _fault_entries("churn", ChurnFault, self.churn)
        by_vertex: Dict[int, List[ChurnFault]] = {}
        for entry in churn:
            by_vertex.setdefault(entry.vertex, []).append(entry)
        for vertex, entries in by_vertex.items():
            entries.sort(key=lambda e: e.leave_step)
            for previous, current in zip(entries, entries[1:]):
                if previous.rejoin_step is None or current.leave_step < previous.rejoin_step:
                    raise FaultSpecError(
                        f"overlapping churn intervals for vertex {vertex}"
                    )
        object.__setattr__(self, "churn", churn)
        if self.adversary is not None and (
            not isinstance(self.adversary, str) or not self.adversary
        ):
            raise FaultSpecError("adversary must be a FAULTS registry name or None")
        if not isinstance(self.adversary_params, dict):
            raise FaultSpecError("adversary_params must be a dict")
        try:
            object.__setattr__(
                self, "adversary_params", json.loads(json.dumps(self.adversary_params))
            )
        except (TypeError, ValueError) as exc:
            raise FaultSpecError(f"adversary_params is not JSON-serializable: {exc}") from None
        if self.seed is not None and not isinstance(self.seed, int):
            raise FaultSpecError(f"seed must be an int or None, got {self.seed!r}")

    # ------------------------------------------------------------------
    # serialization (mirrors RunSpec)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict with every field present (stable shape).

        >>> FaultSpec().to_dict()["drop_probability"]
        0.0
        """
        return {
            "drop_probability": self.drop_probability,
            "duplicate_probability": self.duplicate_probability,
            "delay_probability": self.delay_probability,
            "crashes": [
                {"vertex": entry.vertex, "step": entry.step} for entry in self.crashes
            ],
            "churn": [
                {
                    "vertex": entry.vertex,
                    "leave_step": entry.leave_step,
                    "rejoin_step": entry.rejoin_step,
                }
                for entry in self.churn
            ],
            "adversary": self.adversary,
            "adversary_params": dict(self.adversary_params),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        if not isinstance(payload, dict):
            raise FaultSpecError(
                f"fault payload must be a dict, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FaultSpecError(
                f"unknown fault field(s): {', '.join(sorted(unknown))}"
            )
        # crashes/churn arrive as lists of dicts; __post_init__ normalises
        # them (and maps every malformed shape to FaultSpecError).
        return cls(**payload)

    def with_seed(self, seed: Optional[int]) -> "FaultSpec":
        """A copy differing only in :attr:`seed` (sweep convenience)."""
        return replace(self, seed=seed)

    def build(self, network: DirectedNetwork, run_seed: Optional[int]) -> "FaultInjector":
        """The runtime :class:`FaultInjector` for one execution."""
        return FaultInjector(self, network, run_seed)


# ----------------------------------------------------------------------
# runtime injection
# ----------------------------------------------------------------------

#: :meth:`FaultInjector.on_deliver` verdicts.
DELIVER = 0
DELIVER_AFTER_RESET = 1
SWALLOW = 2


class _VertexFaults:
    """Per-vertex fault schedule, precompiled for O(1)-ish delivery checks."""

    __slots__ = ("crash_step", "intervals", "rejoins", "rejoin_idx")

    def __init__(self) -> None:
        self.crash_step: Optional[int] = None
        self.intervals: List[Tuple[int, Optional[int]]] = []
        self.rejoins: List[int] = []
        self.rejoin_idx = 0


class FaultInjector:
    """Runtime fault process for one execution, shared by both engines.

    The engines call exactly three hooks, in this order per event:

    1. :meth:`send_copies` once per emitted message (0 = dropped,
       1 = normal, 2 = duplicated);
    2. :meth:`should_defer` once per scheduler pop (``True`` re-enqueues
       the popped message without consuming a delivery step);
    3. :meth:`on_deliver` once per counted delivery (``SWALLOW`` skips the
       protocol transition, ``DELIVER_AFTER_RESET`` resets the vertex
       state first).

    Because both engines issue the same hook sequence, the injector's RNG
    makes identical choices under ``async`` and ``fastpath`` — the
    differential tests hold faulty records engine-identical.
    """

    __slots__ = (
        "spec",
        "adversary",
        "dropped",
        "duplicated",
        "delayed",
        "crashed",
        "churned",
        "rejoined",
        "_rng",
        "_drop_p",
        "_dup_p",
        "_delay_p",
        "_vertex_faults",
        "_consecutive_deferrals",
    )

    def __init__(
        self,
        spec: FaultSpec,
        network: DirectedNetwork,
        run_seed: Optional[int] = None,
    ) -> None:
        self.spec = spec
        effective_seed = spec.seed if spec.seed is not None else (run_seed or 0)
        # String seeding hashes via SHA-512 (random.seed version 2), which is
        # stable across processes and Python versions — unlike hash(tuple).
        self._rng = random.Random(f"faults:{effective_seed}")
        self._drop_p = spec.drop_probability
        self._dup_p = spec.duplicate_probability
        self._delay_p = spec.delay_probability
        self._consecutive_deferrals = 0

        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.crashed = 0
        self.churned = 0
        self.rejoined = 0

        vertex_faults: Dict[int, _VertexFaults] = {}

        def entry(vertex: int) -> _VertexFaults:
            if vertex >= network.num_vertices:
                raise FaultSpecError(
                    f"fault schedule names vertex {vertex}, but the network has "
                    f"only {network.num_vertices} vertices"
                )
            return vertex_faults.setdefault(vertex, _VertexFaults())

        for crash in spec.crashes:
            entry(crash.vertex).crash_step = crash.step
        for churn in spec.churn:
            vf = entry(churn.vertex)
            vf.intervals.append((churn.leave_step, churn.rejoin_step))
            if churn.rejoin_step is not None:
                vf.rejoins.append(churn.rejoin_step)
        for vf in vertex_faults.values():
            vf.intervals.sort()
            vf.rejoins.sort()
        self._vertex_faults = vertex_faults

        self.adversary: Optional[Scheduler] = None
        if spec.adversary is not None:
            # The same memoised signature probe RunSpec uses for graph and
            # scheduler factories (imported lazily — api.spec is not a
            # module-load-time dependency of the network layer).
            from ..api.spec import _accepts_param

            factory = FAULTS.get(spec.adversary)
            params = dict(spec.adversary_params)
            if "seed" not in params and _accepts_param(factory, "seed"):
                params["seed"] = effective_seed
            try:
                self.adversary = factory(**params)
            except TypeError as exc:
                raise FaultSpecError(
                    f"invalid adversary_params for {spec.adversary!r}: {exc}"
                ) from None
            # Bind eagerly so schedule defects (e.g. an out-of-range
            # edge_id) surface here — inside build_faults's SpecError
            # wrapping — not later inside the engine loop.  Engines bind
            # again with the same network; bind is idempotent.
            self.adversary.bind(network)

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------

    def send_copies(self) -> int:
        """How many copies of the next emitted message enter the scheduler."""
        if self._drop_p > 0.0 and self._rng.random() < self._drop_p:
            self.dropped += 1
            return 0
        if self._dup_p > 0.0 and self._rng.random() < self._dup_p:
            self.duplicated += 1
            return 2
        return 1

    def should_defer(self, remaining_in_flight: int) -> bool:
        """Whether the just-popped message is re-enqueued instead of delivered.

        ``remaining_in_flight`` is the scheduler's length *after* the pop.
        Deferral requires another message to make progress with, and at
        most ``remaining_in_flight`` consecutive deferrals are allowed, so
        a run can never livelock even at ``delay_probability=1.0``.
        """
        if self._delay_p <= 0.0 or remaining_in_flight <= 0:
            self._consecutive_deferrals = 0
            return False
        if self._consecutive_deferrals >= remaining_in_flight:
            self._consecutive_deferrals = 0
            return False
        if self._rng.random() < self._delay_p:
            self._consecutive_deferrals += 1
            self.delayed += 1
            return True
        self._consecutive_deferrals = 0
        return False

    def on_deliver(self, vertex: int, step: int) -> int:
        """Classify a counted delivery to ``vertex`` at 1-based ``step``.

        Returns :data:`DELIVER`, :data:`DELIVER_AFTER_RESET` (the vertex
        rejoined since its last transition — reset its state before the
        protocol sees the message) or :data:`SWALLOW` (the vertex is down).
        """
        vf = self._vertex_faults.get(vertex)
        if vf is None:
            return DELIVER
        if vf.crash_step is not None and step >= vf.crash_step:
            self.crashed += 1
            return SWALLOW
        for leave, rejoin in vf.intervals:
            if step >= leave and (rejoin is None or step < rejoin):
                self.churned += 1
                return SWALLOW
        reset = False
        while vf.rejoin_idx < len(vf.rejoins) and step >= vf.rejoins[vf.rejoin_idx]:
            vf.rejoin_idx += 1
            reset = True
        if reset:
            self.rejoined += 1
            return DELIVER_AFTER_RESET
        return DELIVER

    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """The fault counters folded into ``RunRecord.metrics``."""
        return {
            "fault_dropped": self.dropped,
            "fault_duplicated": self.duplicated,
            "fault_delayed": self.delayed,
            "fault_crashed": self.crashed,
            "fault_churned": self.churned,
            "fault_rejoined": self.rejoined,
        }


# ----------------------------------------------------------------------
# adversarial scheduler strategies (the FAULTS registry)
# ----------------------------------------------------------------------


@FAULTS.register()
class StarveOneEdgeScheduler(Scheduler):
    """Starve a single edge: its messages are delivered only when nothing
    else is in flight.

    Generalises the terminal-starving adversary from one vertex's in-edges
    to an arbitrary edge — the worst case for protocols whose progress
    funnels through a cut edge.  The target is ``edge_id`` when given,
    otherwise a seeded uniform choice once the network is bound.
    """

    name = "starve-one-edge"

    def __init__(self, seed: int = 0, *, edge_id: Optional[int] = None) -> None:
        self._seed = seed
        self._edge_id = edge_id
        self._starved: Deque[MessageEvent] = deque()
        self._others: Deque[MessageEvent] = deque()

    def bind(self, network: DirectedNetwork) -> None:
        if self._edge_id is None:
            self._edge_id = random.Random(f"starve:{self._seed}").randrange(
                network.num_edges
            )
        elif not 0 <= self._edge_id < network.num_edges:
            raise FaultSpecError(
                f"starve-one-edge edge_id {self._edge_id} out of range for a "
                f"network with {network.num_edges} edges"
            )

    @property
    def target_edge(self) -> Optional[int]:
        """The starved edge id (``None`` until the network is bound)."""
        return self._edge_id

    def push(self, event: MessageEvent) -> None:
        if event.edge_id == self._edge_id:
            self._starved.append(event)
        else:
            self._others.append(event)

    def pop(self) -> MessageEvent:
        if self._others:
            return self._others.popleft()
        return self._starved.popleft()

    def __len__(self) -> int:
        return len(self._starved) + len(self._others)


@FAULTS.register()
class OldestLastScheduler(Scheduler):
    """Deliver the *newest* in-flight message first, by sequence number.

    The oldest message is delivered last — maximally stale information
    keeps arriving after everything that superseded it.  Differs from LIFO
    under fault injection: deferred re-enqueues keep their original
    sequence numbers, so a delayed old message stays old.
    """

    name = "oldest-last"

    def __init__(self) -> None:
        self._heap: List[Tuple[int, MessageEvent]] = []

    def push(self, event: MessageEvent) -> None:
        heapq.heappush(self._heap, (-event.seq, event))

    def pop(self) -> MessageEvent:
        return heapq.heappop(self._heap)[1]

    def __len__(self) -> int:
        return len(self._heap)
