"""Synchronous execution — the paper's §2 time-complexity extension.

Section 2: *"In a synchronous model one may also consider the time it takes
for the protocol to terminate"*, and the results *"can be easily extended …
to the case that the communication throughout the network is synchronous."*

:func:`run_protocol_synchronous` executes an anonymous protocol in lockstep
rounds: every message in flight at the start of a round is delivered during
that round (in deterministic edge order), and everything emitted lands in
the next round's batch.  The synchronous schedule is one particular
admissible asynchronous schedule, so all safety and termination properties
carry over unchanged; what it adds is a well-defined notion of **time** —
the number of rounds until the terminal's stopping predicate first holds.

For the commodity protocols, termination time is governed by longest
relevant paths: on grounded trees and DAGs the commodity reaches ``t``
after (longest ``s → t`` path) rounds; for the interval protocol, cycle
detection and β flooding add at most another traversal per cycle layer.
Experiment E13 measures these shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.model import AnonymousProtocol, VertexView
from .graph import DirectedNetwork
from .metrics import MetricsCollector, RunMetrics
from .simulator import Outcome

__all__ = ["SynchronousRunResult", "run_protocol_synchronous"]


@dataclass
class SynchronousRunResult:
    """A :class:`RunResult` with round accounting added."""

    outcome: Outcome
    metrics: RunMetrics
    states: Dict[int, Any]
    output: Optional[Any]
    #: Number of rounds executed in total (to quiescence or budget).
    rounds: int
    #: First round at the end of which the stopping predicate held, or None.
    termination_round: Optional[int]

    @property
    def terminated(self) -> bool:
        """True iff the stopping predicate held at some round."""
        return self.outcome is Outcome.TERMINATED


def run_protocol_synchronous(
    network: DirectedNetwork,
    protocol: AnonymousProtocol,
    *,
    max_rounds: Optional[int] = None,
    stop_at_termination: bool = False,
) -> SynchronousRunResult:
    """Run ``protocol`` on ``network`` in synchronous rounds.

    Parameters
    ----------
    network / protocol:
        As for :func:`~repro.network.simulator.run_protocol`.
    max_rounds:
        Round budget; defaults to ``8·(|V| + 2)·(|E| + 2)`` — far above any
        correct protocol's round count in this repository.
    stop_at_termination:
        Stop at the end of the first round whose deliveries satisfied the
        stopping predicate, instead of draining to quiescence.
    """
    if max_rounds is None:
        max_rounds = 8 * (network.num_vertices + 2) * (network.num_edges + 2)

    views = [
        VertexView(in_degree=network.in_degree(v), out_degree=network.out_degree(v))
        for v in range(network.num_vertices)
    ]
    states: Dict[int, Any] = {
        v: protocol.create_state(views[v]) for v in range(network.num_vertices)
    }
    metrics = MetricsCollector(network.num_edges)

    # (edge_id, payload) batches; delivery order within a round is by edge
    # id then emission order — deterministic and schedule-admissible.
    current: List[Tuple[int, Any]] = []

    def emit(vertex: int, out_port: int, payload: Any, batch: List[Tuple[int, Any]]) -> None:
        out_ids = network.out_edge_ids(vertex)
        batch.append((out_ids[out_port], payload))

    for out_port, payload in protocol.initial_emissions(views[network.root]):
        emit(network.root, out_port, payload, current)

    rounds = 0
    steps = 0
    termination_round: Optional[int] = None
    while current and rounds < max_rounds:
        rounds += 1
        current.sort(key=lambda item: item[0])
        next_batch: List[Tuple[int, Any]] = []
        for edge_id, payload in current:
            steps += 1
            head = network.edge_head(edge_id)
            in_port = network.in_port_of_edge(edge_id)
            metrics.record_delivery(edge_id, protocol.message_bits(payload))
            states[head], emissions = protocol.on_receive(
                states[head], views[head], in_port, payload
            )
            for out_port, out_payload in emissions:
                emit(head, out_port, out_payload, next_batch)
        # The paper's S is evaluated on t's state; in the synchronous view
        # we check it at round boundaries.
        if termination_round is None and protocol.is_terminated(states[network.terminal]):
            termination_round = rounds
            metrics.record_termination(steps)
            if stop_at_termination:
                current = next_batch
                break
        current = next_batch

    if current and rounds >= max_rounds:
        outcome = Outcome.BUDGET_EXHAUSTED
    elif termination_round is not None:
        outcome = Outcome.TERMINATED
    else:
        outcome = Outcome.QUIESCENT
    return SynchronousRunResult(
        outcome=outcome,
        metrics=metrics.freeze(steps),
        states=states,
        output=(
            protocol.output(states[network.terminal])
            if termination_round is not None
            else None
        ),
        rounds=rounds,
        termination_round=termination_round,
    )
