"""Structural predicates and linear-cut machinery.

The paper's theorems quantify over graph classes (grounded trees, DAGs,
general digraphs) and, for the lower bounds, over *linear cuts*
(Definition 3.4): partitions ``V = V₁ ∪ V₂`` such that no vertex of ``V₁`` is
a descendant of a vertex of ``V₂``.  This module provides the class
predicates used to validate generator output and the cut enumeration used by
the Lemma 3.5 / Theorem 3.6 harness.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from ..network.graph import DirectedNetwork

__all__ = [
    "is_grounded_tree",
    "is_dag",
    "is_linear_cut",
    "linear_cuts",
    "cut_edges",
    "classify",
    "longest_path_length",
]


def is_grounded_tree(network: DirectedNetwork) -> bool:
    """True iff the network is a *grounded tree* (Section 1.1).

    Every vertex has in-degree 1, except the root ``s`` (in-degree 0) and the
    terminal ``t`` (any in-degree); the terminal has out-degree 0; and the
    graph is acyclic (which, given the in-degree condition, follows from
    reachability from ``s`` but is checked explicitly for robustness).
    """
    if network.in_degree(network.root) != 0:
        return False
    if network.out_degree(network.terminal) != 0:
        return False
    for v in network.internal_vertices():
        if network.in_degree(v) != 1:
            return False
    return network.is_acyclic()


def is_dag(network: DirectedNetwork) -> bool:
    """True iff the network has no directed cycle."""
    return network.is_acyclic()


def classify(network: DirectedNetwork) -> str:
    """``"grounded-tree"``, ``"dag"`` or ``"general"`` — the paper's three
    regimes, in increasing protocol strength required."""
    if is_grounded_tree(network):
        return "grounded-tree"
    if is_dag(network):
        return "dag"
    return "general"


def longest_path_length(network: DirectedNetwork) -> int:
    """Longest directed path (in edges) from the root, on acyclic networks.

    This is the synchronous-time yardstick: the commodity protocols on
    trees/DAGs terminate after exactly as many rounds as the longest
    root-to-terminal chain of waits (experiment E13).

    Raises
    ------
    ValueError
        If the network contains a directed cycle (the quantity is then
        unbounded).
    """
    order = network.topological_order()
    if order is None:
        raise ValueError("longest path is defined on acyclic networks")
    dist = [-1] * network.num_vertices
    dist[network.root] = 0
    best = 0
    for v in order:
        if dist[v] < 0:
            continue
        for eid in network.out_edge_ids(v):
            head = network.edge_head(eid)
            if dist[v] + 1 > dist[head]:
                dist[head] = dist[v] + 1
                if dist[head] > best:
                    best = dist[head]
    return best


def is_linear_cut(network: DirectedNetwork, v1: Set[int]) -> bool:
    """Definition 3.4: ``(V₁, V \\ V₁)`` is a linear cut.

    Both sides non-empty and no ``v₁ ∈ V₁`` is a descendant of any
    ``v₂ ∈ V₂`` — equivalently, no edge and no path leads from ``V₂`` into
    ``V₁``.  For a DAG this is exactly: ``V₁`` is closed under taking
    ancestors.
    """
    n = network.num_vertices
    if not v1 or len(v1) >= n:
        return False
    v2 = set(range(n)) - v1
    # No path from V2 into V1 ⇔ no *edge* from V2 into V1 is insufficient in
    # general; but "v1 is a descendant of v2" means a path exists, and any
    # path from V2 to V1 contains an edge crossing V2 → V1.  So the edge test
    # is exact.
    for tail, head in network.edges:
        if tail in v2 and head in v1:
            return False
    return True


def cut_edges(network: DirectedNetwork, v1: Set[int]) -> List[int]:
    """Edge ids crossing a linear cut, tail in ``V₁`` and head outside."""
    return [
        eid
        for eid, (tail, head) in enumerate(network.edges)
        if tail in v1 and head not in v1
    ]


def linear_cuts(network: DirectedNetwork, *, max_cuts: int = 10_000) -> Iterator[Set[int]]:
    """Enumerate linear cuts of an acyclic network as their ``V₁`` sides.

    A set ``V₁ ∋ s``, ``V₁ ∌ t`` is the lower side of a linear cut iff it is
    *ancestor-closed* (contains every ancestor of each member).  We enumerate
    antichains implicitly by walking prefixes of a topological order and
    extending with optional incomparable vertices; to stay tractable on big
    graphs, enumeration stops after ``max_cuts`` cuts.

    Only meaningful for DAGs (the cut lower-bound machinery of Section 3
    applies to grounded trees and DAGs).
    """
    order = network.topological_order()
    if order is None:
        raise ValueError("linear cuts are defined on acyclic networks")
    n = network.num_vertices
    # Ancestor bitmask per vertex.
    ancestors = [0] * n
    for v in order:
        mask = 0
        for eid in network.in_edge_ids(v):
            tail = network.edge_tail(eid)
            mask |= ancestors[tail] | (1 << tail)
        ancestors[v] = mask

    root_bit = 1 << network.root
    terminal = network.terminal
    emitted = 0

    # Enumerate ancestor-closed sets by DFS over vertices in topological
    # order: each vertex is either in V1 (requires all its ancestors in) or
    # out (then none of its descendants can be in).
    def rec(idx: int, chosen: int, excluded: int) -> Iterator[Set[int]]:
        nonlocal emitted
        if emitted >= max_cuts:
            return
        if idx == len(order):
            if chosen & root_bit and not (chosen >> terminal) & 1 and chosen:
                emitted += 1
                yield {v for v in range(n) if (chosen >> v) & 1}
            return
        v = order[idx]
        vbit = 1 << v
        # Include v if all its ancestors are chosen and v is not barred.
        if v != terminal and not (excluded & vbit) and (ancestors[v] & ~chosen) == 0:
            yield from rec(idx + 1, chosen | vbit, excluded)
        # Exclude v: bar all descendants (they would have v as an ancestor,
        # which the inclusion test already handles, so no extra state needed).
        yield from rec(idx + 1, chosen, excluded | vbit)

    yield from rec(0, 0, 0)
