"""Random graph families for the scaling experiments.

All generators produce :class:`~repro.network.graph.DirectedNetwork`
instances satisfying the paper's standing assumptions — root ``s`` with no
in-edges and a single out-edge, terminal ``t`` with no out-edges, every
vertex reachable from ``s`` — and, unless a generator says otherwise, every
vertex connected to ``t`` (so the protocols must terminate).  Each generator
takes an explicit ``seed``; runs are exactly reproducible.

Families:

* :func:`random_grounded_tree` — uniform-attachment grounded trees (every
  internal vertex in-degree 1; leaves wired to ``t``) for E1/E9.
* :func:`random_dag` — layered random DAGs with tunable width/density for E3.
* :func:`random_digraph` — general digraphs with tunable back-edge (cycle)
  density for E5/E6/E11.
* :func:`layered_diamond_dag` — the path-multiplicity worst case for the
  eager-splitting ablation E10.
* :func:`path_network` — a simple ``s → v₁ → … → v_n → t`` path.
* :func:`with_unreachable_terminal_region` — mutates a family into the
  non-termination regime for E8 by adding a vertex that cannot reach ``t``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..api.registry import GRAPH_TRANSFORMS, GRAPHS
from ..network.graph import DirectedNetwork

__all__ = [
    "random_grounded_tree",
    "random_dag",
    "random_digraph",
    "layered_diamond_dag",
    "path_network",
    "geometric_sensor_field",
    "with_dead_end_vertex",
    "with_stranded_cycle",
]

Edge = Tuple[int, int]


@GRAPHS.register()
def random_grounded_tree(
    num_internal: int, seed: int = 0, *, max_children: int = 4
) -> DirectedNetwork:
    """A random grounded tree with ``num_internal`` internal vertices.

    Construction: vertex 0 is the root ``s``, vertex 1 the terminal ``t``.
    Internal vertices ``2 .. num_internal+1`` attach by uniform choice of an
    existing internal parent with remaining child capacity (capacity drawn in
    ``[1, max_children]``); after attachment, every internal vertex with no
    children yet is wired to ``t``, and every internal vertex additionally
    gets a ``t`` edge with probability ½ — matching the paper's picture where
    the terminal may have many in-edges.  Every internal vertex has in-degree
    exactly 1 and is connected to ``t``.
    """
    if num_internal < 1:
        raise ValueError("need at least one internal vertex")
    rng = random.Random(seed)
    root, terminal = 0, 1
    first_internal = 2
    n = num_internal + 2
    edges: List[Edge] = []
    children_of = {v: [] for v in range(first_internal, n)}

    edges.append((root, first_internal))  # s's single out-edge
    for v in range(first_internal + 1, n):
        parent = rng.randrange(first_internal, v)
        children_of[parent].append(v)
        edges.append((parent, v))

    for v in range(first_internal, n):
        if not children_of[v] or rng.random() < 0.5:
            edges.append((v, terminal))

    return DirectedNetwork(n, edges, root=root, terminal=terminal, strict_root=True)


@GRAPHS.register()
def random_dag(
    num_internal: int,
    seed: int = 0,
    *,
    extra_edge_factor: float = 1.5,
) -> DirectedNetwork:
    """A random DAG: a grounded-tree skeleton plus random forward edges.

    The skeleton guarantees reachability from ``s`` and connectivity to
    ``t``; ``extra_edge_factor · num_internal`` additional forward edges
    (from lower- to higher-numbered internal vertices, hence acyclic) add the
    in-degree-greater-than-one structure that distinguishes DAGs from
    grounded trees.
    """
    rng = random.Random(seed)
    base = random_grounded_tree(num_internal, seed=seed)
    edges = list(base.edges)
    n = base.num_vertices
    first_internal = 2
    extra = int(extra_edge_factor * num_internal)
    for _ in range(extra):
        if num_internal < 2:
            break
        a = rng.randrange(first_internal, n - 1)
        b = rng.randrange(a + 1, n)
        edges.append((a, b))
    return DirectedNetwork(n, edges, root=base.root, terminal=base.terminal, strict_root=True)


@GRAPHS.register()
def random_digraph(
    num_internal: int,
    seed: int = 0,
    *,
    extra_edge_factor: float = 1.0,
    back_edge_factor: float = 0.5,
) -> DirectedNetwork:
    """A general digraph: a DAG plus random *back* edges creating cycles.

    ``back_edge_factor · num_internal`` edges from higher- to lower-numbered
    internal vertices close directed cycles — the regime that defeats the
    scalar-commodity protocols and requires Section 4's interval machinery.
    Connectivity to ``t`` is preserved (back edges only add paths).
    """
    rng = random.Random(seed + 7919)
    base = random_dag(num_internal, seed=seed, extra_edge_factor=extra_edge_factor)
    edges = list(base.edges)
    n = base.num_vertices
    first_internal = 2
    back = int(back_edge_factor * num_internal)
    for _ in range(back):
        if num_internal < 2:
            break
        a = rng.randrange(first_internal + 1, n)
        b = rng.randrange(first_internal, a)
        edges.append((a, b))
    return DirectedNetwork(n, edges, root=base.root, terminal=base.terminal, strict_root=True)


@GRAPHS.register()
def layered_diamond_dag(depth: int) -> DirectedNetwork:
    """The path-multiplicity worst case: ``depth`` stacked 2-diamonds.

    Layer ``i`` has two parallel vertices both feeding both vertices of layer
    ``i+1``; the number of ``s → v`` paths doubles every layer, so an eager
    per-message splitting protocol sends ``2^depth`` messages on the last
    edges while the aggregating DAG protocol sends exactly one per edge
    (ablation E10).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    root, terminal = 0, 1
    edges: List[Edge] = []
    next_id = 2
    top = next_id  # single entry vertex after the root
    edges.append((root, top))
    next_id += 1
    prev_layer = [top]
    for _ in range(depth):
        a, b = next_id, next_id + 1
        next_id += 2
        for u in prev_layer:
            edges.append((u, a))
            edges.append((u, b))
        prev_layer = [a, b]
    for u in prev_layer:
        edges.append((u, terminal))
    return DirectedNetwork(next_id, edges, root=root, terminal=terminal, strict_root=True)


@GRAPHS.register()
def path_network(length: int) -> DirectedNetwork:
    """``s → v₁ → v₂ → … → v_length → t``, the minimal grounded tree."""
    if length < 1:
        raise ValueError("length must be >= 1")
    root, terminal = 0, 1
    edges: List[Edge] = [(root, 2)]
    for i in range(length - 1):
        edges.append((2 + i, 3 + i))
    edges.append((1 + length, terminal))
    return DirectedNetwork(length + 2, edges, root=root, terminal=terminal, strict_root=True)


@GRAPHS.register()
def geometric_sensor_field(
    num_sensors: int,
    seed: int = 0,
    *,
    base_range: float = 0.35,
    range_spread: float = 0.25,
) -> DirectedNetwork:
    """A unidirectional wireless sensor field — the paper's motivating domain.

    ``num_sensors`` nodes are placed uniformly in the unit square, each with
    its own transmit range drawn from
    ``[base_range, base_range + range_spread]``.  Sensor ``i`` has a
    directed link to sensor ``j`` when ``j`` lies within ``i``'s range —
    asymmetric radio power makes links *directed*, which is exactly the
    regime the paper targets (a node may be heard by nodes it cannot hear).

    The root ``s`` is a gateway wired into the sensor nearest the origin;
    the terminal ``t`` is a sink that the sensors nearest the far corner
    report to.  Connectivity is then patched minimally so the standing model
    assumptions hold: every sensor unreachable from ``s`` gains an in-link
    from a reachable sensor (a relay deployment), and every sensor that
    cannot reach ``t`` gains an uplink to the sink.  The patching is
    deterministic given the seed.
    """
    if num_sensors < 2:
        raise ValueError("need at least two sensors")
    rng = random.Random(seed)
    root, terminal = 0, 1
    first = 2
    n = num_sensors + 2
    positions = {v: (rng.random(), rng.random()) for v in range(first, n)}
    ranges = {
        v: base_range + range_spread * rng.random() for v in range(first, n)
    }

    def dist2(a: int, b: int) -> float:
        (xa, ya), (xb, yb) = positions[a], positions[b]
        return (xa - xb) ** 2 + (ya - yb) ** 2

    edges: List[Edge] = []
    gateway_target = min(positions, key=lambda v: positions[v][0] ** 2 + positions[v][1] ** 2)
    edges.append((root, gateway_target))
    for a in range(first, n):
        for b in range(first, n):
            if a != b and dist2(a, b) <= ranges[a] ** 2:
                edges.append((a, b))
    # Sensors near the far corner report to the sink.
    for v in range(first, n):
        (x, y) = positions[v]
        if (1 - x) ** 2 + (1 - y) ** 2 <= ranges[v] ** 2:
            edges.append((v, terminal))

    def build() -> DirectedNetwork:
        return DirectedNetwork(n, edges, root=root, terminal=terminal, strict_root=True)

    # Patch reachability from s: attach stragglers to an already-reachable
    # sensor (deterministic order).
    net = build()
    while True:
        reachable = net.reachable_from(root)
        missing = [v for v in range(first, n) if v not in reachable]
        if not missing:
            break
        anchor = sorted(r for r in reachable if r not in (root, terminal))[0]
        edges.append((anchor, missing[0]))
        net = build()
    # Patch connectivity to t: give stranded sensors a long-range uplink.
    while True:
        coreach = net.coreachable_to(terminal)
        missing = [v for v in range(first, n) if v not in coreach]
        if not missing:
            break
        edges.append((missing[0], terminal))
        net = build()
    return net


@GRAPH_TRANSFORMS.register()
def with_dead_end_vertex(network: DirectedNetwork, attach_to: Optional[int] = None) -> DirectedNetwork:
    """Add a vertex reachable from ``s`` but with no path to ``t``.

    The new vertex hangs off ``attach_to`` (default: the root's unique
    successor) with out-degree 0.  On the result, every protocol in the paper
    must **not** terminate (the "iff" direction of Theorems 3.1/4.2/5.1); the
    commodity routed into the dead end can never be accounted for at ``t``.
    """
    if attach_to is None:
        attach_to = network.edge_head(network.out_edge_ids(network.root)[0])
    if attach_to in (network.root, network.terminal):
        raise ValueError("attach the dead end to an internal vertex")
    n = network.num_vertices
    edges = list(network.edges) + [(attach_to, n)]
    return DirectedNetwork(
        n + 1, edges, root=network.root, terminal=network.terminal, strict_root=False
    )


@GRAPH_TRANSFORMS.register()
def with_stranded_cycle(network: DirectedNetwork, attach_to: Optional[int] = None) -> DirectedNetwork:
    """Add a 2-cycle reachable from ``s`` with no path back to ``t``.

    Unlike :func:`with_dead_end_vertex` the stranded region is cyclic, so the
    general protocol's cycle detection *will* fire inside it — but the β
    notification also cannot reach ``t`` (no outgoing path), covering the
    subtler non-termination case for Section 4/5 protocols.
    """
    if attach_to is None:
        attach_to = network.edge_head(network.out_edge_ids(network.root)[0])
    if attach_to in (network.root, network.terminal):
        raise ValueError("attach the stranded cycle to an internal vertex")
    n = network.num_vertices
    a, b = n, n + 1
    edges = list(network.edges) + [(attach_to, a), (a, b), (b, a)]
    return DirectedNetwork(
        n + 2, edges, root=network.root, terminal=network.terminal, strict_root=False
    )
