"""Model-extension transforms — the paper's §2 generalisations, made real.

Section 2: *"Our results can be easily extended to the case in which there
are multiple root/terminal vertices, the root has multiple outgoing edges,
[and] the case in which there are vertices in G that are not reachable from
s."*  The protocols in :mod:`repro.core` already handle a multi-out-degree
root (their ``initial_emissions`` partition the injected commodity across
all root ports); this module supplies the graph surgeries for the other
extensions:

* :func:`merge_roots` — several sources collapse behind one virtual root
  whose single port fans out to all of them through zero-cost relay ports
  (each original source keeps its port structure).
* :func:`merge_terminals` — several sinks forward into one virtual
  terminal; the stopping predicate then speaks for the whole sink set.
* :func:`relax_root_degree` — drop the strict out-degree-1 root assumption
  by re-validating an existing network non-strictly (a no-op surgery kept
  for symmetry and discoverability).

Both merges preserve the standing assumptions (virtual root has no
in-edges, virtual terminal no out-edges) and, crucially, *termination
semantics*: every vertex of the original graph can reach the virtual
terminal iff it could reach some original sink.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..network.graph import DirectedNetwork

__all__ = ["merge_roots", "merge_terminals", "relax_root_degree"]

Edge = Tuple[int, int]


def merge_roots(
    num_vertices: int,
    edges: Sequence[Edge],
    roots: Sequence[int],
    terminal: int,
) -> DirectedNetwork:
    """Build a single-root network from a multi-source edge list.

    A virtual root ``r*`` (the new vertex ``num_vertices``) is added with
    one out-edge per original source.  ``r*`` satisfies the base model's
    assumptions except strict out-degree 1 (the paper's explicitly allowed
    relaxation); the original sources become ordinary internal vertices
    that happen to have in-degree 1.

    Raises
    ------
    ValueError
        If ``roots`` is empty, contains the terminal, or a listed root has
        incoming edges in ``edges`` (a source must be a source).
    """
    if not roots:
        raise ValueError("need at least one root")
    root_set = set(roots)
    if terminal in root_set:
        raise ValueError("terminal cannot be a root")
    for tail, head in edges:
        if head in root_set:
            raise ValueError(f"root {head} has an incoming edge")
    virtual = num_vertices
    new_edges: List[Edge] = [(virtual, r) for r in roots]
    new_edges.extend(edges)
    return DirectedNetwork(
        num_vertices + 1, new_edges, root=virtual, terminal=terminal, strict_root=False
    )


def merge_terminals(
    num_vertices: int,
    edges: Sequence[Edge],
    root: int,
    terminals: Sequence[int],
) -> DirectedNetwork:
    """Build a single-terminal network from a multi-sink edge list.

    A virtual terminal ``t*`` (the new vertex ``num_vertices``) is added
    with one in-edge per original sink; the original sinks become internal
    relays of out-degree 1.  A commodity protocol's stopping predicate at
    ``t*`` then certifies the union of what the original sinks would see —
    exactly the multi-terminal semantics the paper sketches.

    Raises
    ------
    ValueError
        If ``terminals`` is empty, contains the root, or a listed terminal
        has outgoing edges in ``edges``.
    """
    if not terminals:
        raise ValueError("need at least one terminal")
    sink_set = set(terminals)
    if root in sink_set:
        raise ValueError("root cannot be a terminal")
    for tail, head in edges:
        if tail in sink_set:
            raise ValueError(f"terminal {tail} has an outgoing edge")
    virtual = num_vertices
    new_edges: List[Edge] = list(edges)
    new_edges.extend((t, virtual) for t in terminals)
    return DirectedNetwork(
        num_vertices + 1, new_edges, root=root, terminal=virtual, strict_root=False
    )


def relax_root_degree(network: DirectedNetwork) -> DirectedNetwork:
    """Re-validate a network without the strict out-degree-1 root rule.

    The protocols support multi-out-degree roots natively (they partition
    the injected commodity across all root ports); this helper exists so
    call sites can state the relaxation explicitly instead of passing
    ``strict_root=False`` at construction.
    """
    return DirectedNetwork(
        network.num_vertices,
        network.edges,
        root=network.root,
        terminal=network.terminal,
        strict_root=False,
    )
