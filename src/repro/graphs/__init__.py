"""Graph families: random generators and the paper's witness constructions."""

from .constructions import (
    caterpillar_gn,
    full_tree_with_terminal,
    pruned_tree,
    skeleton_tree,
    skeleton_tree_hairs,
    truncate_at_cut,
)
from .enumerate_graphs import all_grounded_trees, all_internal_wirings
from .transforms import merge_roots, merge_terminals, relax_root_degree
from .generators import (
    geometric_sensor_field,
    layered_diamond_dag,
    path_network,
    random_dag,
    random_digraph,
    random_grounded_tree,
    with_dead_end_vertex,
    with_stranded_cycle,
)
from .properties import (
    classify,
    longest_path_length,
    cut_edges,
    is_dag,
    is_grounded_tree,
    is_linear_cut,
    linear_cuts,
)

__all__ = [
    "caterpillar_gn",
    "skeleton_tree",
    "skeleton_tree_hairs",
    "full_tree_with_terminal",
    "pruned_tree",
    "truncate_at_cut",
    "random_grounded_tree",
    "random_dag",
    "random_digraph",
    "geometric_sensor_field",
    "layered_diamond_dag",
    "path_network",
    "with_dead_end_vertex",
    "with_stranded_cycle",
    "merge_roots",
    "merge_terminals",
    "relax_root_degree",
    "all_grounded_trees",
    "all_internal_wirings",
    "is_grounded_tree",
    "is_dag",
    "is_linear_cut",
    "linear_cuts",
    "cut_edges",
    "classify",
    "longest_path_length",
]
