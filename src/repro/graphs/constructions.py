"""The paper's explicit graph constructions.

Every lower bound in the paper is proved on an explicit graph family; this
module builds each of them exactly, so the lower-bound harnesses run the
protocols on the *same* witnesses the proofs use.

* :func:`caterpillar_gn` — Figure 5 / Theorem 3.2: the grounded tree ``Gₙ``
  with ``V = {s, t, v₁ … v_n}``, edges ``(s,v₁)``, ``(v_i, v_{i+1})`` and
  ``(v_i, t)`` for all ``i`` — ``n + 2`` vertices, ``2n`` edges.  Lemma 3.7
  forces ``n + 1`` distinct symbols on it.
* :func:`skeleton_tree` — Figure 4 / Theorem 3.8: the spine
  ``v₀ → v₁ → … → v_{2n-1}`` with hairs ``u_i``, the auxiliary collector
  ``w``, and a chosen subset ``S ⊆ {u₀, u₂, …, u_{2n-2}}`` wired into ``w``;
  the ``2ⁿ`` distinct subset sums arriving at ``w`` force ``Ω(n)``-bit
  symbols out of any commodity-preserving protocol.
* :func:`full_tree_with_terminal` / :func:`pruned_tree` — Figure 6 /
  Theorem 5.2: the full ``d``-ary tree of height ``h`` (all leaves into
  ``t``) and its pruning along one root-to-leaf path, where every off-path
  edge is redirected to ``t`` *preserving port positions*, so the protocol's
  execution along the path is bitwise identical while ``|V|`` collapses from
  ``Θ(d^h)`` to ``h + 3``.
* :func:`truncate_at_cut` — the ``G*`` surgery of Figures 1–2 (Lemma 3.5 /
  Theorem 3.6): cut the graph at a linear cut and re-aim the crossing edges
  at the terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..api.registry import GRAPHS
from ..network.graph import DirectedNetwork

__all__ = [
    "caterpillar_gn",
    "skeleton_tree",
    "skeleton_tree_hairs",
    "full_tree_with_terminal",
    "pruned_tree",
    "truncate_at_cut",
]

Edge = Tuple[int, int]


@GRAPHS.register()
def caterpillar_gn(n: int) -> DirectedNetwork:
    """The Theorem 3.2 witness ``Gₙ`` (Figure 5).

    Vertices: ``0 = s``, ``1 = t``, spine ``v_i ↦ 1 + i`` for ``i = 1 … n``.
    Edges: ``(s, v₁)``; ``(v_i, v_{i+1})`` for ``i < n``; ``(v_i, t)`` for
    every ``i``.  Each spine vertex except the last has out-degree 2, so by
    Lemma 3.7 the ``n`` spine edges plus the last terminal edge must all
    carry pairwise distinct symbols.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    root, terminal = 0, 1
    v = lambda i: 1 + i  # v_1 .. v_n are vertices 2 .. n+1
    edges: List[Edge] = [(root, v(1))]
    for i in range(1, n + 1):
        # Port order at v_i: spine continuation first, then the t edge —
        # matching the figure's drawing; the protocol is port-oblivious.
        if i < n:
            edges.append((v(i), v(i + 1)))
        edges.append((v(i), terminal))
    return DirectedNetwork(n + 2, edges, root=root, terminal=terminal, strict_root=True)


@GRAPHS.register()
def skeleton_tree(n: int, subset: Iterable[int] = ()) -> DirectedNetwork:
    """The Theorem 3.8 skeleton tree (Figure 4) for a given subset wiring.

    Parameters
    ----------
    n:
        The construction parameter; the spine is ``v₀ … v_{2n-1}``.
    subset:
        Indices ``i`` (each even, ``0 <= i <= 2n-2``) of the hairs ``u_i``
        routed into the auxiliary collector ``w``; all other hairs (and all
        odd-index hairs) go straight to ``t``.

    Vertex layout: ``0 = s``, ``1 = t``, ``2 = w``, spine ``v_i ↦ 3 + i``,
    hairs ``u_i ↦ 3 + 2n + i``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    chosen: Set[int] = set(subset)
    for i in chosen:
        if i % 2 or not (0 <= i <= 2 * n - 2):
            raise ValueError(f"subset members must be even indices in [0, {2*n-2}], got {i}")
    root, terminal, w = 0, 1, 2
    v = lambda i: 3 + i
    u = lambda i: 3 + 2 * n + i
    edges: List[Edge] = [(root, v(0))]
    for i in range(2 * n - 1):
        # Port order at v_i: left (spine) then right (hair), as in the figure.
        edges.append((v(i), v(i + 1)))
        edges.append((v(i), u(i)))
    edges.append((v(2 * n - 1), terminal))
    for i in range(2 * n - 1):
        target = w if i in chosen else terminal
        edges.append((u(i), target))
    edges.append((w, terminal))
    return DirectedNetwork(3 + 4 * n - 1, edges, root=root, terminal=terminal, strict_root=True)


def skeleton_tree_hairs(n: int) -> List[int]:
    """The even hair indices ``{0, 2, …, 2n-2}`` eligible for the subset."""
    return list(range(0, 2 * n - 1, 2))


@GRAPHS.register()
def full_tree_with_terminal(degree: int, height: int) -> DirectedNetwork:
    """The Theorem 5.2 upper graph (Figure 6a): a full directed tree.

    ``0 = s`` feeds the tree root ``r``; ``r`` starts a full ``degree``-ary
    tree of height ``height`` with all edges directed away from the root; all
    ``degree^height`` leaves are wired to ``t``.  (The paper makes ``s``
    itself the tree root; we interpose the strict-model root with its single
    out-edge — the executions coincide from ``r`` down.)
    """
    if degree < 2:
        raise ValueError("degree must be >= 2")
    if height < 1:
        raise ValueError("height must be >= 1")
    root, terminal = 0, 1
    edges: List[Edge] = []
    next_id = 2
    tree_root = next_id
    next_id += 1
    edges.append((root, tree_root))
    level = [tree_root]
    for _ in range(height):
        next_level: List[int] = []
        for parent in level:
            for _ in range(degree):
                child = next_id
                next_id += 1
                edges.append((parent, child))
                next_level.append(child)
        level = next_level
    for leaf in level:
        edges.append((leaf, terminal))
    return DirectedNetwork(next_id, edges, root=root, terminal=terminal, strict_root=True)


def full_tree_path_vertices(degree: int, height: int, child_choices: Sequence[int]) -> List[int]:
    """Vertex ids of the root-to-leaf path selected by ``child_choices``
    inside :func:`full_tree_with_terminal` (length ``height + 1``, starting
    at the tree root)."""
    if len(child_choices) != height:
        raise ValueError("need one child choice per level")
    # Reconstruct the BFS numbering used by full_tree_with_terminal.
    path = []
    # Tree root is vertex 2; level k starts at id 3 + (d^1 + ... + d^(k-1)) ... easier to re-walk.
    current = 2
    path.append(current)
    level_start = 3
    level_size = degree
    index_in_level = 0
    for k, choice in enumerate(child_choices):
        if not (0 <= choice < degree):
            raise ValueError("child choice out of range")
        index_in_level = index_in_level * degree + choice
        current = level_start + index_in_level
        path.append(current)
        level_start += level_size
        level_size *= degree
    return path


@GRAPHS.register()
def pruned_tree(
    degree: int, height: int, child_choices: Optional[Sequence[int]] = None
) -> DirectedNetwork:
    """The Theorem 5.2 pruned graph (Figure 6b).

    Keeps one root-to-leaf path ``w₀ → w₁ → … → w_h`` of the full tree; at
    every path vertex the ``degree - 1`` off-path child edges are re-aimed at
    ``t`` **in their original port positions** (the chosen child stays at its
    original port), so an anonymous protocol's execution along the path is
    identical to its execution in the full tree — that is the whole point of
    the pruning argument.  The leaf keeps its single edge to ``t``.

    ``child_choices[k]`` is the port of the on-path child at level ``k``
    (default: all zeros).  Result: ``h + 3`` vertices, ``h·degree + 2``
    edges, max out-degree ``degree``.
    """
    if degree < 2:
        raise ValueError("degree must be >= 2")
    if height < 1:
        raise ValueError("height must be >= 1")
    if child_choices is None:
        child_choices = [0] * height
    if len(child_choices) != height:
        raise ValueError("need one child choice per level")
    root, terminal = 0, 1
    w = lambda k: 2 + k  # w_0 .. w_height
    edges: List[Edge] = [(root, w(0))]
    for k in range(height):
        choice = child_choices[k]
        if not (0 <= choice < degree):
            raise ValueError("child choice out of range")
        for port in range(degree):
            edges.append((w(k), w(k + 1) if port == choice else terminal))
    edges.append((w(height), terminal))
    return DirectedNetwork(height + 3, edges, root=root, terminal=terminal, strict_root=True)


def truncate_at_cut(network: DirectedNetwork, v1: Set[int]) -> DirectedNetwork:
    """The ``G*`` surgery of Lemma 3.5 (Figure 1).

    Given a linear cut ``(V₁, V₂)`` of ``network`` (``s ∈ V₁``, ``t ∈ V₂``;
    validated by :func:`repro.graphs.properties.is_linear_cut`), build the
    graph on ``V₁ ∪ {t}`` keeping all internal ``V₁`` edges and re-aiming
    every cut-crossing edge at ``t`` — preserving each tail's port order.
    Any protocol run on ``G*`` reproduces, on the ``V₁`` side, a prefix of a
    run on ``G``; the multiset of symbols entering ``t`` in ``G*`` equals the
    multiset crossing the cut in ``G``.
    """
    if network.root not in v1:
        raise ValueError("V1 must contain the root")
    if network.terminal in v1:
        raise ValueError("V1 must not contain the terminal")
    keep = sorted(v1)
    relabel = {old: new for new, old in enumerate(keep)}
    terminal_new = len(keep)
    edges: List[Edge] = []
    for eid, (tail, head) in enumerate(network.edges):
        if tail in v1:
            edges.append((relabel[tail], relabel[head] if head in v1 else terminal_new))
    return DirectedNetwork(
        len(keep) + 1,
        edges,
        root=relabel[network.root],
        terminal=terminal_new,
        strict_root=False,
    )
