"""Exhaustive enumeration of small networks.

The theorems quantify over *all* graphs; random generators sample that
space, and this module complements them by enumerating it completely at
small sizes, so the test suite can check the termination "iff", delivery,
and label uniqueness on **every** network up to a size bound rather than on
samples.

* :func:`all_grounded_trees` — every grounded tree with a given number of
  internal vertices, up to the tree isomorphism induced by the construction
  (parent choice per vertex × terminal-edge pattern).  Each internal vertex
  may or may not also feed ``t``; vertices with no children must (otherwise
  they are dead ends — those cases are covered separately by the bad-graph
  mutators).
* :func:`all_internal_wirings` — every network on ``k`` internal vertices
  where the internal adjacency runs over *all* subsets of ordered pairs
  (cycles, self-loops and all) and each vertex may feed ``t``.  This space
  contains both good graphs (all connected to ``t``) and bad ones, which is
  exactly what the iff tests need.  Sizes: ``k=2`` gives 1 024 networks,
  ``k=3`` gives 2^12·8 = 32 768 — callers pick ``k`` and optionally cap.

Every yielded network satisfies the structural model assumptions (root
in-degree 0 / out-degree 1, terminal out-degree 0, all vertices reachable
from the root); reachability is guaranteed by construction rather than
patching, so enumeration order is stable.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Tuple

from ..network.graph import DirectedNetwork

__all__ = ["all_grounded_trees", "all_internal_wirings"]

Edge = Tuple[int, int]


def all_grounded_trees(num_internal: int) -> Iterator[DirectedNetwork]:
    """Yield every grounded tree with ``num_internal`` internal vertices.

    Vertex 0 is ``s``, vertex 1 is ``t``, internal vertices are ``2 ..``.
    Vertex 2 is the root's unique child; each later internal vertex picks
    any earlier internal vertex as its parent (in-degree 1 everywhere);
    every subset of internal vertices additionally feeds ``t``, as long as
    all childless vertices do (otherwise the graph has a dead end and is
    not a grounded tree in the paper's sense — every vertex must connect to
    ``t`` for the positive theorems, and those that don't are exercised by
    the mutator-based tests instead).
    """
    if num_internal < 1:
        raise ValueError("need at least one internal vertex")
    n = num_internal + 2
    internal = list(range(2, n))
    parent_choices = [range(2, 2 + i) for i in range(1, num_internal)]
    for parents in itertools.product(*parent_choices) if parent_choices else [()]:
        base_edges: List[Edge] = [(0, 2)]
        children = {v: [] for v in internal}
        for child_index, parent in enumerate(parents):
            child = 3 + child_index
            base_edges.append((parent, child))
            children[parent].append(child)
        childless = [v for v in internal if not children[v]]
        optional = [v for v in internal if children[v]]
        for mask in range(1 << len(optional)):
            edges = list(base_edges)
            edges.extend((v, 1) for v in childless)
            edges.extend(
                (optional[i], 1) for i in range(len(optional)) if (mask >> i) & 1
            )
            yield DirectedNetwork(n, edges, root=0, terminal=1, strict_root=True)


def all_internal_wirings(
    num_internal: int, *, limit: Optional[int] = None
) -> Iterator[DirectedNetwork]:
    """Yield every network over ``num_internal`` internal vertices.

    The internal adjacency ranges over all subsets of ordered pairs
    (including self-loops); independently, every non-empty subset of
    internal vertices feeds ``t``.  Only networks where all internal
    vertices are reachable from the root survive the built-in filter.
    ``limit`` caps the yield count for use in time-boxed tests.
    """
    if num_internal < 1:
        raise ValueError("need at least one internal vertex")
    n = num_internal + 2
    internal = list(range(2, n))
    pairs = [(a, b) for a in internal for b in internal]
    count = 0
    for adj_mask in range(1 << len(pairs)):
        internal_edges = [pairs[i] for i in range(len(pairs)) if (adj_mask >> i) & 1]
        for sink_mask in range(1, 1 << num_internal):
            edges: List[Edge] = [(0, 2)]
            edges.extend(internal_edges)
            edges.extend(
                (internal[i], 1) for i in range(num_internal) if (sink_mask >> i) & 1
            )
            network = DirectedNetwork(n, edges, root=0, terminal=1, strict_root=True)
            reachable = network.reachable_from(0)
            if any(v not in reachable for v in internal):
                # A standing model assumption: every vertex reachable from s.
                continue
            yield network
            count += 1
            if limit is not None and count >= limit:
                return
