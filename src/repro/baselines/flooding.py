"""Plain flooding without termination detection (motivating baseline).

The paper's Section 1: broadcasting a message by propagation *"seems a
trivial task"* — the entire difficulty is that the protocol must *terminate
iff* all vertices received it.  This baseline is that trivial propagation:
each vertex forwards ``m`` on all out-ports the first time it hears it, and
that is all.  It delivers ``m`` to every reachable vertex with exactly one
message per edge — and the terminal can never soundly declare anything,
which the stopping predicate honestly encodes by being constant-false.

Experiments use it for the cost floor (the ``|E|·|m|`` term every broadcast
protocol pays) and to demonstrate, by contrast, what the commodity machinery
buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..core.model import AnonymousProtocol, Emission, VertexView
from ..api.registry import PROTOCOLS

__all__ = ["FloodToken", "FloodingProtocol"]


@dataclass(frozen=True)
class FloodToken:
    """Just the broadcast payload; no termination information at all."""

    payload: Any = None


@dataclass(frozen=True)
class FloodState:
    """Has the broadcast arrived yet?"""

    got_broadcast: bool = False
    payload: Any = None


@PROTOCOLS.register()
class FloodingProtocol(AnonymousProtocol[FloodState, FloodToken]):
    """Forward ``m`` once on every out-port; never terminate."""

    name = "flooding"

    def __init__(self, broadcast_payload: Any = None, payload_bits: Optional[int] = None) -> None:
        self.broadcast_payload = broadcast_payload
        if payload_bits is None:
            if isinstance(broadcast_payload, (str, bytes)):
                payload_bits = 8 * len(broadcast_payload)
            else:
                payload_bits = 0
        self.payload_bits = payload_bits

    def create_state(self, view: VertexView) -> FloodState:
        return FloodState()

    def initial_emissions(self, view: VertexView) -> List[Emission]:
        return [
            (port, FloodToken(payload=self.broadcast_payload))
            for port in range(view.out_degree)
        ]

    def on_receive(
        self, state: FloodState, view: VertexView, in_port: int, message: FloodToken
    ) -> Tuple[FloodState, List[Emission]]:
        emissions: List[Emission] = []
        if not state.got_broadcast:
            emissions = [
                (port, FloodToken(payload=message.payload))
                for port in range(view.out_degree)
            ]
        return FloodState(got_broadcast=True, payload=message.payload), emissions

    def is_terminated(self, state: FloodState) -> bool:
        # No sound stopping rule exists without termination information —
        # the point of the paper.  Honest answer: never.
        return False

    def message_bits(self, message: FloodToken) -> int:
        # One tag bit plus the payload.
        return 1 + self.payload_bits

    def output(self, state: FloodState) -> Any:
        return state.payload

    def clone_state(self, state: FloodState) -> FloodState:
        # Frozen dataclass, replaced (never mutated) on every transition.
        return state

    def clone_message(self, message: FloodToken) -> FloodToken:
        # Frozen dataclass; transitions never mutate received messages.
        return message

    def compile_fastpath(self, compiled: Any) -> Optional[Any]:
        """One-receipt-bit kernel with precompiled emission lists."""
        if type(self) is not FloodingProtocol:
            return None
        from ..core.flat_kernel import FloodingKernel

        return FloodingKernel(self, compiled)

    def compile_batch(self, compiled: Any) -> Optional[Any]:
        """Structure-of-arrays multi-run kernel (one got-bit per run × vertex)."""
        if type(self) is not FloodingProtocol:
            return None
        from ..core.batch_kernel import BatchFloodingKernel

        return BatchFloodingKernel(self, compiled)
