"""Baselines: the protocols the paper improves on or compares against."""

from .eager_dag import EagerDagBroadcastProtocol
from .flooding import FloodingProtocol, FloodToken
from .naive_tree import NaiveTreeBroadcastProtocol, RationalToken
from .undirected import (
    DfsLabelingProtocol,
    EchoBroadcastProtocol,
    UndirectedNetwork,
    UndirectedProtocol,
    UndirectedRunResult,
    run_undirected_protocol,
)

__all__ = [
    "NaiveTreeBroadcastProtocol",
    "RationalToken",
    "EagerDagBroadcastProtocol",
    "FloodingProtocol",
    "FloodToken",
    "UndirectedNetwork",
    "UndirectedProtocol",
    "UndirectedRunResult",
    "run_undirected_protocol",
    "EchoBroadcastProtocol",
    "DfsLabelingProtocol",
]
