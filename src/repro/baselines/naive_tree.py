"""The naive ``x/d`` grounded-tree protocol (ablation E9).

Section 3.1: *"A naive implementation of this protocol results in total
communication complexity bounded by ``O(|E|^{3/2}) + |E||m|``"* — the naive
rule sends ``x/d`` on each of the ``d`` out-ports, so transmitted values are
products of arbitrary ``1/d`` factors: general rationals whose encodings
grow much faster than the power-of-two rule's exponents.  The paper replaces
it with the power-of-two split to reach the optimal ``O(|E| log |E|)``.

This module implements the naive rule exactly (with
:class:`fractions.Fraction` commodity, kept exact) so the ablation can
measure both protocols on the same grounded trees and exhibit the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, List, Optional, Tuple

from ..core.encoding import signed_cost, unsigned_cost
from ..core.model import AnonymousProtocol, Emission, VertexView
from ..api.registry import PROTOCOLS

__all__ = ["RationalToken", "NaiveTreeBroadcastProtocol"]


@dataclass(frozen=True)
class RationalToken:
    """Termination information of the naive rule: an exact rational."""

    value: Fraction
    payload: Any = None

    def structure_bits(self) -> int:
        """Encoded size: numerator and denominator, self-delimiting."""
        return signed_cost(self.value.numerator) + unsigned_cost(self.value.denominator)

    def __repr__(self) -> str:
        return f"RationalToken({self.value})"


@dataclass(frozen=True)
class NaiveTreeState:
    """Accumulated rational commodity plus broadcast receipt."""

    received_sum: Fraction
    got_broadcast: bool = False
    payload: Any = None


@PROTOCOLS.register()
class NaiveTreeBroadcastProtocol(AnonymousProtocol[NaiveTreeState, RationalToken]):
    """Grounded-tree broadcast with the naive even split ``x/d``.

    Semantics are identical to
    :class:`~repro.core.tree_broadcast.TreeBroadcastProtocol` except for the
    split rule; the terminal still declares termination exactly when its
    received sum equals 1 (exact rational arithmetic).
    """

    name = "naive-tree-broadcast"

    def __init__(self, broadcast_payload: Any = None, payload_bits: Optional[int] = None) -> None:
        self.broadcast_payload = broadcast_payload
        if payload_bits is None:
            if isinstance(broadcast_payload, (str, bytes)):
                payload_bits = 8 * len(broadcast_payload)
            else:
                payload_bits = 0
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
        self.payload_bits = payload_bits

    def create_state(self, view: VertexView) -> NaiveTreeState:
        return NaiveTreeState(received_sum=Fraction(0))

    def initial_emissions(self, view: VertexView) -> List[Emission]:
        share = Fraction(1, view.out_degree)
        return [
            (port, RationalToken(value=share, payload=self.broadcast_payload))
            for port in range(view.out_degree)
        ]

    def on_receive(
        self, state: NaiveTreeState, view: VertexView, in_port: int, message: RationalToken
    ) -> Tuple[NaiveTreeState, List[Emission]]:
        new_state = NaiveTreeState(
            received_sum=state.received_sum + message.value,
            got_broadcast=True,
            payload=message.payload,
        )
        if view.out_degree == 0:
            return new_state, []
        share = message.value / view.out_degree
        emissions = [
            (port, RationalToken(value=share, payload=message.payload))
            for port in range(view.out_degree)
        ]
        return new_state, emissions

    def is_terminated(self, state: NaiveTreeState) -> bool:
        return state.received_sum == 1

    def message_bits(self, message: RationalToken) -> int:
        return message.structure_bits() + self.payload_bits

    def output(self, state: NaiveTreeState) -> Any:
        return state.payload

    def clone_state(self, state: NaiveTreeState) -> NaiveTreeState:
        # Frozen dataclass, replaced (never mutated) on every transition.
        return state

    def clone_message(self, message: RationalToken) -> RationalToken:
        # Frozen dataclass; transitions never mutate received messages.
        return message

    def compile_fastpath(self, compiled: Any) -> Optional[Any]:
        """Reduced ``(num, den)`` rational kernel (exact same semantics)."""
        if type(self) is not NaiveTreeBroadcastProtocol:
            return None
        from ..core.flat_kernel import NaiveTreeKernel

        return NaiveTreeKernel(self, compiled)

    def compile_batch(self, compiled: Any) -> Optional[Any]:
        """Structure-of-arrays multi-run kernel: the rational share
        arithmetic happens once at compile time inside the enumeration
        (see :class:`~repro.core.batch_kernel.BatchSplitKernel`), so the
        per-step loop never touches a :class:`~fractions.Fraction`."""
        if type(self) is not NaiveTreeBroadcastProtocol:
            return None
        from ..core.batch_kernel import BatchSplitKernel

        return BatchSplitKernel.build(self, compiled)
