"""The eager per-message DAG splitting variant (ablation E10).

The grounded-tree protocol splits *every* incoming commodity token
independently, without waiting for the vertex's other in-edges.  On a
grounded tree (in-degree 1 everywhere) that is the only behaviour; applied
to a DAG it remains *correct* — the terminal's sum still reaches exactly 1
iff every vertex is connected to ``t``, because splitting is commodity
preserving per token — but the number of messages on an edge equals the
number of distinct ``s → edge`` paths, which is exponential in depth on
layered DAGs (:func:`repro.graphs.generators.layered_diamond_dag` doubles
the path count every layer).

Section 3.3's protocol avoids this by aggregating all in-edges before
splitting (one message per edge), at the price of ``Θ(|E|)``-bit values.
Ablation E10 runs both on the same diamond DAGs and reports the
message-count blow-up against the bit-width growth — the trade-off the
paper's Section 2 calls out between message count and message size.
"""

from __future__ import annotations

from ..core.tree_broadcast import TreeBroadcastProtocol
from ..api.registry import PROTOCOLS

__all__ = ["EagerDagBroadcastProtocol"]


@PROTOCOLS.register()
class EagerDagBroadcastProtocol(TreeBroadcastProtocol):
    """Per-message splitting on DAGs: correct but exponentially chatty.

    Identical transition rules to the grounded-tree protocol (the split is
    applied to each received token separately); exists as a named class so
    experiment reports distinguish the two roles.
    """

    name = "eager-dag-broadcast"

    def compile_fastpath(self, compiled):
        """The tree kernel, re-guarded for this exact subclass.

        Transition rules are identical to the grounded-tree protocol, so
        the same flat kernel applies — but the parent's exact-type guard
        correctly refuses subclasses, so this class re-issues the kernel
        under its own guard.
        """
        if type(self) is not EagerDagBroadcastProtocol:
            return None
        from ..core.flat_kernel import TreeBroadcastKernel

        return TreeBroadcastKernel(self, compiled)

    def compile_batch(self, compiled):
        """The split batch kernel, re-guarded for this exact subclass.

        Eager splitting re-splits on every receipt, so the message
        multiset grows with path multiplicity; the enumeration cap makes
        ``build`` return ``None`` (→ per-seed fastpath) on dense shapes
        rather than materialising an oversized table.
        """
        if type(self) is not EagerDagBroadcastProtocol:
            return None
        from ..core.batch_kernel import BatchSplitKernel

        return BatchSplitKernel.build(self, compiled)
