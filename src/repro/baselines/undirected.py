"""Undirected-network baselines: the feedback the directed model lacks.

Section 6 attributes the paper's high costs — especially the
``Ω(|V| log d_out)`` labels versus ``O(log |V|)`` in undirected anonymous
networks — to *"the problem of termination, and the possible lack of
feedback due to the directionality of edges"*.  To make that comparison
concrete (experiment E12), this module implements the classical
feedback-based protocols on an undirected substrate:

* :class:`EchoBroadcastProtocol` — broadcast with acknowledgement (PIF,
  propagation of information with feedback): the initiator learns that every
  vertex received ``m`` after exactly ``2·|links|`` constant-size messages.
  This is the termination technique the paper notes *cannot* be used on
  directed non-strongly-connected graphs.
* :class:`DfsLabelingProtocol` — a single depth-first token that hands out
  the labels ``0, 1, 2, …`` in visit order; each label costs
  ``O(log |V|)`` bits, the undirected comparison point for Theorem 5.2's
  exponential gap.

The substrate is deliberately separate from :mod:`repro.network`: an
undirected link is a *pair* of half-duplex channels on which a vertex can
reply on the port it received from — a capability the directed model
structurally rules out, which is the entire point of the baseline.  The
runner mirrors the directed simulator's semantics (asynchronous, adversarial
delivery order via a seed) and metric accounting.
"""

from __future__ import annotations

import abc
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.encoding import unsigned_cost
from ..network.graph import DirectedNetwork

__all__ = [
    "UndirectedNetwork",
    "UndirectedProtocol",
    "UndirectedRunResult",
    "run_undirected_protocol",
    "EchoBroadcastProtocol",
    "DfsLabelingProtocol",
]


class UndirectedNetwork:
    """An undirected multigraph with per-vertex port numbering.

    Vertex ``initiator`` plays the role the root plays in the directed
    model: the one distinguished vertex where the computation starts and
    where termination is detected (undirected anonymous protocols need an
    initiator for symmetry breaking, cf. the paper's references [4, 6]).
    """

    def __init__(self, num_vertices: int, links: Sequence[Tuple[int, int]], initiator: int = 0) -> None:
        if num_vertices < 1:
            raise ValueError("need at least one vertex")
        if not (0 <= initiator < num_vertices):
            raise ValueError("initiator out of range")
        self._n = num_vertices
        self._links = [(int(a), int(b)) for a, b in links]
        self.initiator = initiator
        self._ports: List[List[Tuple[int, int]]] = [[] for _ in range(num_vertices)]
        for lid, (a, b) in enumerate(self._links):
            if not (0 <= a < num_vertices and 0 <= b < num_vertices):
                raise ValueError(f"link {lid} endpoint out of range")
            if a == b:
                raise ValueError("self-links are not supported")
            self._ports[a].append((b, lid))
            self._ports[b].append((a, lid))

    @classmethod
    def from_directed(cls, network: DirectedNetwork) -> "UndirectedNetwork":
        """The undirected shadow of a directed network (one link per
        unordered adjacent pair), with the root as initiator.  This is the
        fair comparison object for E12: same vertices, same adjacency,
        direction constraint removed."""
        seen: Set[Tuple[int, int]] = set()
        links: List[Tuple[int, int]] = []
        for tail, head in network.edges:
            if tail == head:
                continue
            key = (min(tail, head), max(tail, head))
            if key not in seen:
                seen.add(key)
                links.append(key)
        return cls(network.num_vertices, links, initiator=network.root)

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_links(self) -> int:
        """Number of undirected links."""
        return len(self._links)

    def degree(self, vertex: int) -> int:
        """Number of links at ``vertex``."""
        return len(self._ports[vertex])

    def neighbor(self, vertex: int, port: int) -> int:
        """The vertex at the far end of ``vertex``'s ``port``."""
        return self._ports[vertex][port][0]

    def peer_port(self, vertex: int, port: int) -> int:
        """The far end's port number for the same link."""
        other, lid = self._ports[vertex][port]
        for p, (back, other_lid) in enumerate(self._ports[other]):
            if other_lid == lid:
                return p
        raise AssertionError("inconsistent port tables")

    def is_connected(self) -> bool:
        """True iff the graph is connected (ignoring isolated = no)."""
        seen = {self.initiator}
        frontier = deque([self.initiator])
        while frontier:
            v = frontier.popleft()
            for other, _ in self._ports[v]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == self._n


@dataclass(frozen=True)
class UVertexView:
    """What an anonymous undirected vertex knows: degree and initiator-ness."""

    degree: int
    is_initiator: bool


class UndirectedProtocol(abc.ABC):
    """Protocol interface for the undirected substrate."""

    name = "undirected-protocol"

    @abc.abstractmethod
    def create_state(self, view: UVertexView) -> Any:
        """Initial state of a vertex."""

    @abc.abstractmethod
    def initial_emissions(self, state: Any, view: UVertexView) -> List[Tuple[int, Any]]:
        """The initiator's first transmissions (``(port, payload)`` pairs)."""

    @abc.abstractmethod
    def on_receive(
        self, state: Any, view: UVertexView, port: int, payload: Any
    ) -> Tuple[Any, List[Tuple[int, Any]]]:
        """Process one delivery; return new state and emissions."""

    @abc.abstractmethod
    def is_finished(self, initiator_state: Any) -> bool:
        """Termination predicate, evaluated at the initiator."""

    @abc.abstractmethod
    def message_bits(self, payload: Any) -> int:
        """Encoded payload size for accounting."""


@dataclass
class UndirectedRunResult:
    """Outcome of an undirected run (mirrors the directed RunResult)."""

    finished: bool
    total_messages: int
    total_bits: int
    max_message_bits: int
    states: Dict[int, Any]


def run_undirected_protocol(
    network: UndirectedNetwork,
    protocol: UndirectedProtocol,
    *,
    seed: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> UndirectedRunResult:
    """Asynchronous execution on the undirected substrate.

    ``seed=None`` delivers FIFO; otherwise delivery order is uniformly
    random (the asynchronous adversary, as in the directed simulator).
    """
    if max_steps is None:
        max_steps = 64 + 32 * network.num_links * (network.num_vertices + 2)
    views = [
        UVertexView(degree=network.degree(v), is_initiator=(v == network.initiator))
        for v in range(network.num_vertices)
    ]
    states: Dict[int, Any] = {v: protocol.create_state(views[v]) for v in range(network.num_vertices)}
    rng = random.Random(seed) if seed is not None else None
    pending: deque = deque()
    bag: List[Tuple[int, int, Any]] = []

    total_messages = 0
    total_bits = 0
    max_message_bits = 0
    finished = False

    def emit(vertex: int, port: int, payload: Any) -> None:
        target = network.neighbor(vertex, port)
        target_port = network.peer_port(vertex, port)
        if rng is None:
            pending.append((target, target_port, payload))
        else:
            bag.append((target, target_port, payload))

    init = network.initiator
    for port, payload in protocol.initial_emissions(states[init], views[init]):
        emit(init, port, payload)

    steps = 0
    while (pending or bag) and steps < max_steps:
        steps += 1
        if rng is None:
            target, port, payload = pending.popleft()
        else:
            idx = rng.randrange(len(bag))
            bag[idx], bag[-1] = bag[-1], bag[idx]
            target, port, payload = bag.pop()
        bits = protocol.message_bits(payload)
        total_messages += 1
        total_bits += bits
        max_message_bits = max(max_message_bits, bits)
        states[target], emissions = protocol.on_receive(states[target], views[target], port, payload)
        for out_port, out_payload in emissions:
            emit(target, out_port, out_payload)
        if target == init and protocol.is_finished(states[init]):
            finished = True
    return UndirectedRunResult(
        finished=finished or protocol.is_finished(states[init]),
        total_messages=total_messages,
        total_bits=total_bits,
        max_message_bits=max_message_bits,
        states=states,
    )


# ----------------------------------------------------------------------
# Echo / PIF broadcast with acknowledgement
# ----------------------------------------------------------------------


@dataclass
class _EchoState:
    """PIF per-vertex state."""

    degree: int
    informed: bool = False
    parent_port: Optional[int] = None
    heard_ports: Set[int] = field(default_factory=set)
    acked: bool = False
    payload: Any = None


class EchoBroadcastProtocol(UndirectedProtocol):
    """Propagation of information with feedback (wave + echo).

    The initiator sends the wave on all ports.  A vertex adopts the first
    wave sender as parent, forwards the wave everywhere else, and sends its
    echo to the parent once it has heard (wave or echo) on every other port.
    The initiator finishes once it has heard on all ports — at which point
    every connected vertex provably holds ``m``.  Messages: exactly two per
    link (one each way); each is one tag bit plus ``|m|``.
    """

    name = "echo-broadcast"

    _WAVE = "wave"
    _ECHO = "echo"

    def __init__(self, broadcast_payload: Any = None, payload_bits: Optional[int] = None) -> None:
        self.broadcast_payload = broadcast_payload
        if payload_bits is None:
            if isinstance(broadcast_payload, (str, bytes)):
                payload_bits = 8 * len(broadcast_payload)
            else:
                payload_bits = 0
        self.payload_bits = payload_bits

    def create_state(self, view: UVertexView) -> _EchoState:
        return _EchoState(degree=view.degree, informed=view.is_initiator)

    def initial_emissions(self, state: _EchoState, view: UVertexView) -> List[Tuple[int, Any]]:
        state.payload = self.broadcast_payload
        return [(port, (self._WAVE, self.broadcast_payload)) for port in range(view.degree)]

    def on_receive(
        self, state: _EchoState, view: UVertexView, port: int, payload: Any
    ) -> Tuple[_EchoState, List[Tuple[int, Any]]]:
        kind, message = payload
        emissions: List[Tuple[int, Any]] = []
        state.heard_ports.add(port)
        if not state.informed:
            state.informed = True
            state.payload = message
            state.parent_port = port
            emissions.extend(
                (p, (self._WAVE, message)) for p in range(view.degree) if p != port
            )
        if (
            not view.is_initiator
            and not state.acked
            and state.parent_port is not None
            and len(state.heard_ports | {state.parent_port}) == view.degree
        ):
            state.acked = True
            emissions.append((state.parent_port, (self._ECHO, message)))
        return state, emissions

    def is_finished(self, initiator_state: _EchoState) -> bool:
        return initiator_state.informed and len(initiator_state.heard_ports) == initiator_state.degree

    def message_bits(self, payload: Any) -> int:
        return 1 + self.payload_bits


class DfsLabelingProtocol(UndirectedProtocol):
    """Single-token depth-first labeling with ``O(log |V|)``-bit labels.

    The token carries the next free label.  A vertex takes the current
    counter as its label on first visit and then forwards the token port by
    port; a token arriving at an already-visited vertex bounces straight
    back.  When the initiator has exhausted its ports the traversal is
    complete: every connected vertex holds a distinct label from
    ``0 … |V|-1``, each of ``⌈log₂ |V|⌉`` bits — the undirected comparison
    point for the paper's exponential gap (Theorem 5.2 / E12).
    """

    name = "dfs-labeling"

    _FWD = "fwd"
    _BACK = "back"

    def create_state(self, view: UVertexView) -> Dict[str, Any]:
        return {
            "label": 0 if view.is_initiator else None,
            "parent_port": None,
            "next_port": 0,
            "done": False,
        }

    def initial_emissions(self, state: Dict[str, Any], view: UVertexView) -> List[Tuple[int, Any]]:
        if view.degree == 0:
            state["done"] = True
            return []
        state["next_port"] = 1
        return [(0, (self._FWD, 1))]

    def on_receive(
        self, state: Dict[str, Any], view: UVertexView, port: int, payload: Any
    ) -> Tuple[Dict[str, Any], List[Tuple[int, Any]]]:
        kind, counter = payload
        if kind == self._FWD:
            if state["label"] is not None:
                # Already visited: bounce the token back unchanged.
                return state, [(port, (self._BACK, counter))]
            state["label"] = counter
            counter += 1
            state["parent_port"] = port
            return self._advance(state, view, counter, skip=port)
        # BACK: resume exploration from where we left off.
        return self._advance(state, view, counter, skip=state["parent_port"])

    def _advance(
        self, state: Dict[str, Any], view: UVertexView, counter: int, skip: Optional[int]
    ) -> Tuple[Dict[str, Any], List[Tuple[int, Any]]]:
        port = state["next_port"]
        while port < view.degree and port == skip:
            port += 1
        if port < view.degree:
            state["next_port"] = port + 1
            return state, [(port, (self._FWD, counter))]
        state["done"] = True
        if state["parent_port"] is not None:
            return state, [(state["parent_port"], (self._BACK, counter))]
        return state, []

    def is_finished(self, initiator_state: Dict[str, Any]) -> bool:
        return bool(initiator_state["done"])

    def message_bits(self, payload: Any) -> int:
        _, counter = payload
        return 1 + unsigned_cost(counter)
