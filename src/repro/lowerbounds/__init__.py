"""Lower-bound harnesses: the paper's proofs, made executable."""

from .alphabet import (
    AlphabetRow,
    alphabet_on_gn,
    huffman_floor_bits,
    run_traced,
    verify_cut_incomparability,
    verify_cut_incomparability_cross,
    verify_lemma_3_7,
    verify_single_message_per_edge,
)
from .commodity import (
    BandwidthRow,
    bandwidth_growth,
    collect_subset_sums,
    hair_quantities,
    quantity_of,
    verify_inequality_chain,
)
from .schedules import ScheduleExploration, explore_all_schedules
from .labels import (
    PrunedLabelRow,
    label_growth_on_pruned,
    leaf_labels,
    pruning_preserves_label,
)

__all__ = [
    "AlphabetRow",
    "alphabet_on_gn",
    "huffman_floor_bits",
    "run_traced",
    "verify_cut_incomparability",
    "verify_cut_incomparability_cross",
    "verify_lemma_3_7",
    "verify_single_message_per_edge",
    "BandwidthRow",
    "bandwidth_growth",
    "collect_subset_sums",
    "hair_quantities",
    "quantity_of",
    "verify_inequality_chain",
    "PrunedLabelRow",
    "label_growth_on_pruned",
    "leaf_labels",
    "pruning_preserves_label",
    "ScheduleExploration",
    "explore_all_schedules",
]
