"""Replayable worst-case schedule certificates.

A :class:`ScheduleCertificate` is the guided search's output made
*independently checkable*: a JSON document carrying the workload (a
:class:`~repro.api.spec.RunSpec` restricted to its graph/protocol
fields), the objective searched under, the claimed execution aggregates
(steps, bits, outcome, objective value) and — the part that makes the
claim falsifiable — the full delivery script, one ``(edge_id, canonical
payload repr)`` pair per delivery.

The checker, :func:`verify_certificate`, never trusts the search: it
rebuilds the workload from the registries, hands the script to a
:class:`~repro.tracing.replay.ReplayScheduler` and re-executes it on the
reference ``async`` engine (:func:`~repro.network.simulator.run_protocol`).
The scheduler delivers *exactly* the scripted sequence and raises
:class:`~repro.tracing.replay.ReplayError` the moment the live execution
diverges from it; afterwards the replayed step count, delivered bits and
outcome are compared against the claims.  Any tampering — an edited
payload, a reordered delivery, an inflated step count, even a corrected
digest — either breaks the replay or breaks the claim comparison, so a
verified certificate is bit-for-bit evidence that the claimed execution
exists.

Certificates produced by campaign ``e19`` land under
``<store>/schedules/<cert_id>.json`` next to the store's ``traces/``
artifacts; ``repro schedule search|info|replay`` is the CLI surface.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .guided import GuidedSearchResult, extract_schedule, get_objective, search_spec_schedules

__all__ = [
    "CERTIFICATE_VERSION",
    "CertificateError",
    "CertificateReport",
    "ScheduleCertificate",
    "certificate_path",
    "load_certificate",
    "search_and_certify",
    "store_certificate",
    "verify_certificate",
]

CERTIFICATE_VERSION = 1


class CertificateError(ValueError):
    """A certificate is structurally unusable (not merely unverified)."""


def _canonical_json(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ScheduleCertificate:
    """A worst-case schedule claim plus the script that proves it."""

    #: The workload, as a :class:`~repro.api.spec.RunSpec` dict reduced to
    #: its graph/protocol/seed identity (scheduler/engine are irrelevant —
    #: the certificate's schedule *is* the scheduler).
    workload: Dict[str, Any]
    #: The :data:`~repro.lowerbounds.guided.OBJECTIVES` name searched under.
    objective: str
    #: Claimed objective value of the certified execution.
    value: float
    #: Claimed delivery count (== len(deliveries)).
    steps: int
    #: Claimed total delivered bits.
    total_bits: int
    #: Claimed outcome: "terminated" or "quiescent".
    outcome: str
    #: The delivery script: (edge_id, canonical payload repr) per step.
    deliveries: Tuple[Tuple[int, str], ...]
    #: Search provenance (nodes, truncation, walk mode, table counters…).
    search: Dict[str, Any] = field(default_factory=dict)
    #: Format version.
    version: int = CERTIFICATE_VERSION
    #: The digest recorded in the serialized form this object was loaded
    #: from; None for freshly built certificates.  Compared against the
    #: recomputed digest during verification.
    stored_digest: Optional[str] = None

    def payload_dict(self) -> Dict[str, Any]:
        """The digest-covered content (everything except the digest)."""
        return {
            "version": self.version,
            "workload": self.workload,
            "objective": self.objective,
            "value": self.value,
            "steps": self.steps,
            "total_bits": self.total_bits,
            "outcome": self.outcome,
            "deliveries": [[edge, text] for edge, text in self.deliveries],
            "search": self.search,
        }

    def digest(self) -> str:
        """sha256 over the canonical JSON of :meth:`payload_dict`."""
        return hashlib.sha256(
            _canonical_json(self.payload_dict()).encode("utf-8")
        ).hexdigest()

    @property
    def cert_id(self) -> str:
        """Short content id (first 16 hex chars of the digest)."""
        return self.digest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        payload = self.payload_dict()
        payload["digest"] = self.digest()
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScheduleCertificate":
        try:
            deliveries = tuple(
                (int(edge), str(text)) for edge, text in payload["deliveries"]
            )
            return cls(
                workload=dict(payload["workload"]),
                objective=str(payload["objective"]),
                value=float(payload["value"]),
                steps=int(payload["steps"]),
                total_bits=int(payload["total_bits"]),
                outcome=str(payload["outcome"]),
                deliveries=deliveries,
                search=dict(payload.get("search", {})),
                version=int(payload.get("version", CERTIFICATE_VERSION)),
                stored_digest=payload.get("digest"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CertificateError(f"malformed schedule certificate: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "ScheduleCertificate":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CertificateError(f"certificate is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise CertificateError("certificate JSON must be an object")
        return cls.from_dict(payload)


@dataclass
class CertificateReport:
    """Outcome of one certificate verification."""

    ok: bool
    cert_id: str
    objective: str
    claimed_steps: int
    claimed_outcome: str
    failures: List[str] = field(default_factory=list)
    replayed_steps: Optional[int] = None
    replayed_bits: Optional[int] = None
    replayed_outcome: Optional[str] = None

    def summary(self) -> str:
        """One line for the CLI."""
        if self.ok:
            return (
                f"CERTIFICATE OK [{self.objective}] id={self.cert_id} "
                f"steps={self.replayed_steps} outcome={self.replayed_outcome} "
                f"bits={self.replayed_bits}"
            )
        return (
            f"CERTIFICATE FAILED [{self.objective}] id={self.cert_id}: "
            + "; ".join(self.failures)
        )


def _workload_dict(spec: Any) -> Dict[str, Any]:
    """Reduce a RunSpec to the fields a certificate's claim depends on."""
    from ..api.spec import RunSpec

    return RunSpec(
        graph=spec.graph,
        graph_params=dict(spec.graph_params),
        graph_transforms=tuple(spec.graph_transforms),
        protocol=spec.protocol,
        protocol_params=dict(spec.protocol_params),
        seed=spec.seed,
    ).to_dict()


def search_and_certify(
    spec: Any,
    *,
    objective: str = "max-steps",
    max_nodes: int = 200_000,
    max_workers: Optional[int] = None,
    use_kernel: Optional[bool] = None,
    digest: Optional[Any] = None,
) -> Tuple[GuidedSearchResult, Optional[ScheduleCertificate]]:
    """Run the guided search and package the incumbent as a certificate.

    Returns ``(result, certificate)``; the certificate is ``None`` when
    the search observed no complete execution (nothing to certify).  The
    certified aggregates come from re-walking the incumbent path through
    the live protocol objects (:func:`~repro.lowerbounds.guided.extract_schedule`),
    not from the search bookkeeping — a kernel/object divergence would
    surface here as a :class:`CertificateError` instead of an unreplayable
    artifact.
    """
    chosen = get_objective(objective)
    result = search_spec_schedules(
        spec,
        objective=objective,
        max_nodes=max_nodes,
        max_workers=max_workers,
        use_kernel=use_kernel,
        digest=digest,
    )
    if result.best_path is None:
        return result, None
    network = spec.build_graph()
    extracted = extract_schedule(network, spec.build_protocol, result.best_path)
    if extracted.steps != result.best_depth or extracted.outcome != result.best_outcome:
        raise CertificateError(
            "incumbent path does not re-execute to the searched leaf "
            f"(searched depth={result.best_depth} outcome={result.best_outcome}, "
            f"extracted steps={extracted.steps} outcome={extracted.outcome}); "
            "kernel and object walks disagree — this is a bug, not a bad input"
        )
    certificate = ScheduleCertificate(
        workload=_workload_dict(spec),
        objective=objective,
        value=chosen.leaf_value(
            extracted.steps, extracted.total_bits, extracted.outcome
        ),
        steps=extracted.steps,
        total_bits=extracted.total_bits,
        outcome=extracted.outcome,
        deliveries=tuple(extracted.deliveries),
        search={
            "nodes": result.nodes,
            "nodes_at_best": result.nodes_at_best,
            "executions": result.executions,
            "truncated": result.truncated,
            "mode": result.mode,
            "shards": result.shards,
            "outcomes": sorted(result.outcomes),
            "table": dict(result.table),
        },
    )
    return result, certificate


def verify_certificate(certificate: ScheduleCertificate) -> CertificateReport:
    """Independently re-execute a certificate and check every claim.

    The replay is driven by the reference ``async`` engine under a
    :class:`~repro.tracing.replay.ReplayScheduler` carrying the
    certificate's delivery script; divergence, an unconsumed script, a
    digest mismatch, or any claim/replay disagreement fails the report.
    """
    report = CertificateReport(
        ok=False,
        cert_id=certificate.cert_id,
        objective=certificate.objective,
        claimed_steps=certificate.steps,
        claimed_outcome=certificate.outcome,
    )
    if certificate.stored_digest is not None:
        recomputed = certificate.digest()
        if certificate.stored_digest != recomputed:
            report.failures.append(
                "digest mismatch: the certificate was modified after issue"
            )
    if certificate.outcome not in ("terminated", "quiescent"):
        report.failures.append(
            f"unknown claimed outcome {certificate.outcome!r}"
        )
        return report
    if certificate.steps != len(certificate.deliveries):
        report.failures.append(
            f"claimed steps={certificate.steps} but the script holds "
            f"{len(certificate.deliveries)} deliveries"
        )

    from ..api.spec import RunSpec, ensure_registered
    from ..network.simulator import Outcome, run_protocol
    from ..tracing.replay import ReplayError, ReplayScheduler

    ensure_registered()
    try:
        spec = RunSpec.from_dict(certificate.workload)
        network = spec.build_graph()
        protocol = spec.build_protocol()
    except Exception as exc:  # registry/param errors are verification failures
        report.failures.append(f"workload does not rebuild: {exc}")
        return report

    edges = [edge for edge, _text in certificate.deliveries]
    texts = [text for _edge, text in certificate.deliveries]
    scheduler = ReplayScheduler(edges, texts)
    try:
        result = run_protocol(
            network,
            protocol,
            scheduler,
            max_steps=len(edges) + 8,
            stop_at_termination=certificate.outcome == "terminated",
        )
    except ReplayError as exc:
        report.failures.append(str(exc))
        return report

    if not scheduler.script_consumed:
        report.failures.append(
            f"execution ended after {scheduler._pos} of "
            f"{len(edges)} scripted deliveries"
        )
    outcome_names = {
        Outcome.TERMINATED: "terminated",
        Outcome.QUIESCENT: "quiescent",
    }
    replayed_outcome = outcome_names.get(result.outcome, result.outcome.value)
    report.replayed_steps = result.metrics.steps
    report.replayed_bits = result.metrics.total_bits
    report.replayed_outcome = replayed_outcome
    if replayed_outcome != certificate.outcome:
        report.failures.append(
            f"claimed outcome {certificate.outcome!r} but the replay "
            f"reached {replayed_outcome!r}"
        )
    if result.metrics.steps != certificate.steps:
        report.failures.append(
            f"claimed {certificate.steps} steps but the replay delivered "
            f"{result.metrics.steps}"
        )
    if result.metrics.total_bits != certificate.total_bits:
        report.failures.append(
            f"claimed {certificate.total_bits} total bits but the replay "
            f"delivered {result.metrics.total_bits}"
        )
    report.ok = not report.failures
    return report


# ----------------------------------------------------------------------
# store layout
# ----------------------------------------------------------------------


def _store_root(store_or_root: Any) -> str:
    root = getattr(store_or_root, "root", store_or_root)
    if not isinstance(root, str):
        raise TypeError(
            "expected a ResultStore or a directory path, got "
            f"{type(store_or_root).__name__}"
        )
    return root


def certificate_path(store_or_root: Any, certificate: ScheduleCertificate) -> str:
    """Where a certificate lives under a result store: ``<store>/schedules/``."""
    return os.path.join(
        _store_root(store_or_root), "schedules", f"{certificate.cert_id}.json"
    )


def store_certificate(store_or_root: Any, certificate: ScheduleCertificate) -> str:
    """Write a certificate under ``<store>/schedules/``; return its path.

    Content-addressed like the rest of the store: the filename is the
    certificate's ``cert_id``, so re-running a campaign re-writes the
    identical file instead of accumulating duplicates.
    """
    path = certificate_path(store_or_root, certificate)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(certificate.to_json() + "\n")
    os.replace(tmp, path)
    return path


def load_certificate(path: str) -> ScheduleCertificate:
    """Read a certificate JSON file (:class:`CertificateError` on junk)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise CertificateError(f"cannot read certificate {path!r}: {exc}") from exc
    return ScheduleCertificate.from_json(text)
