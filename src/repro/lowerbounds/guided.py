"""Guided adversarial schedule search: best-first over the schedule tree.

:func:`repro.lowerbounds.schedules.explore_all_schedules` walks the
collapsed schedule tree depth-first and can only *verify* small
instances.  This module walks the same quotient graph (same distinct-
choice collapsing, same :class:`~repro.lowerbounds.schedules.TranspositionTable`
keys) **best-first under a pluggable objective**, so it *finds* bad
schedules — longest executions, costliest executions, or a witness for a
target outcome — long before an exhaustive sweep would, and keeps
searching usefully on instances far beyond exhaustive reach.

Three pieces:

* :class:`SearchObjective` / :data:`OBJECTIVES` — the objective contract:
  a leaf valuation, a frontier priority, and a branch-and-bound *rank*
  used to re-open transposition entries reached along a better path (a
  maximizing search must re-expand a known configuration found deeper,
  or it would under-report the worst case the exhaustive DFS can reach).
* :func:`search_schedules` — the serial best-first loop, with a
  forced-chain fast path that dives through single-choice configurations
  without heap churn.  Run with a large budget it is *exhaustive*: the
  frontier drains, the outcome set equals the DFS's, and the incumbent
  dominates every DFS leaf — the differential suite in
  ``tests/lowerbounds/test_guided.py`` asserts exactly that on every
  enumerated small topology.
* :func:`search_spec_schedules` — the spec-level entry with an optional
  **parallel frontier**: the serial loop expands until it holds enough
  frontier nodes, then shards those subtree roots across
  :meth:`~repro.api.runner.BatchRunner.map_payloads` workers in waves,
  threading the incumbent between waves (periodic incumbent exchange) so
  later shards inherit the bound found by earlier ones.

Every result carries ``best_path`` — the sequence of distinct-choice
ranks from the initial configuration to the incumbent leaf.  Paths are
mode-independent (kernel and object walks enumerate choices in the same
first-occurrence order), so :func:`extract_schedule` can replay a path
found on the fast kernel through the live protocol objects and emit the
canonical delivery script a
:class:`~repro.lowerbounds.certificates.ScheduleCertificate` needs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.model import AnonymousProtocol, VertexView
from ..network.graph import DirectedNetwork
from .schedules import (
    TranspositionTable,
    _distinct_choice_indices,
    _pending_sig,
)

__all__ = [
    "OBJECTIVES",
    "ExtractedSchedule",
    "GuidedSearchResult",
    "SearchObjective",
    "extract_schedule",
    "get_objective",
    "register_objective",
    "search_schedules",
    "search_spec_schedules",
]


# ----------------------------------------------------------------------
# objectives
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SearchObjective:
    """The pluggable objective contract for the guided search.

    All three hooks see only schedule-level aggregates, never protocol
    state, so objectives compose with every protocol:

    ``leaf_value(depth, bits, outcome)``
        Value of a *complete* execution (``depth`` deliveries, ``bits``
        total delivered bits, ``outcome`` in {"terminated", "quiescent"}).
        The search maximizes this; the incumbent is the best leaf found.
    ``priority(depth, bits, pending)``
        Frontier ordering for a *partial* configuration — larger is
        expanded first.  An optimistic estimate of reachable leaf value
        steers the search; it does not need to be admissible for the
        exhaustive guarantee (a drained frontier is exhaustive no matter
        the order), only for how quickly good incumbents appear.
    ``rank(depth, bits)``
        Branch-and-bound re-open rank for the transposition table: a
        configuration reached again at a strictly higher rank is
        re-expanded.  Maximizing objectives rank by their accumulated
        quantity; witness searches use a constant (pure visited-set).
    ``satisfied(best_value)``
        Early-exit predicate on the incumbent value; reach-objectives
        stop the search at the first witness.
    """

    name: str
    description: str
    leaf_value: Callable[[int, int, str], float]
    priority: Callable[[int, int, int], float]
    rank: Callable[[int, int], int]
    satisfied: Callable[[float], bool] = lambda best: False


#: Registered objectives, by name (the CLI's ``--objective`` choices).
OBJECTIVES: Dict[str, SearchObjective] = {}


def register_objective(objective: SearchObjective) -> SearchObjective:
    """Add ``objective`` to :data:`OBJECTIVES` (name collisions are errors)."""
    if objective.name in OBJECTIVES:
        raise ValueError(f"objective {objective.name!r} already registered")
    OBJECTIVES[objective.name] = objective
    return objective


def get_objective(name: str) -> SearchObjective:
    """Look up an objective by name with a helpful error."""
    try:
        return OBJECTIVES[name]
    except KeyError:
        known = ", ".join(sorted(OBJECTIVES))
        raise KeyError(f"unknown objective {name!r}; known: {known}") from None


register_objective(
    SearchObjective(
        name="max-steps",
        description="longest execution: maximize delivery steps",
        leaf_value=lambda depth, bits, outcome: float(depth),
        # Optimistic: every in-flight message is at least one more delivery.
        priority=lambda depth, bits, pending: float(depth + pending),
        rank=lambda depth, bits: depth,
    )
)
register_objective(
    SearchObjective(
        name="max-bits",
        description="costliest execution: maximize total delivered bits",
        leaf_value=lambda depth, bits, outcome: float(bits),
        priority=lambda depth, bits, pending: float(bits + pending),
        rank=lambda depth, bits: bits,
    )
)
register_objective(
    SearchObjective(
        name="reach-termination",
        description="shortest witness schedule that reaches termination",
        leaf_value=lambda depth, bits, outcome: 1.0 if outcome == "terminated" else 0.0,
        # Shallow-first: the first witness found is a shortest one.
        priority=lambda depth, bits, pending: -float(depth),
        rank=lambda depth, bits: 0,
        satisfied=lambda best: best >= 1.0,
    )
)
register_objective(
    SearchObjective(
        name="reach-quiescence",
        description="shortest witness schedule that drains without termination",
        leaf_value=lambda depth, bits, outcome: 1.0 if outcome == "quiescent" else 0.0,
        priority=lambda depth, bits, pending: -float(depth),
        rank=lambda depth, bits: 0,
        satisfied=lambda best: best >= 1.0,
    )
)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class GuidedSearchResult:
    """Everything a guided search learned about the schedule space.

    When ``truncated`` is False and the objective has no early exit, the
    search drained its frontier: ``outcomes`` is the complete reachable
    set (identical to the exhaustive DFS's) and ``best_value`` dominates
    every execution of the collapsed schedule tree.
    """

    #: The objective searched under.
    objective: str
    #: Distinct leaf outcomes observed so far.
    outcomes: Set[str]
    #: Deliveries performed (search effort; comparable to DFS ``steps``).
    nodes: int
    #: Complete executions observed (confluent leaves may recount).
    executions: int
    #: True iff the node budget cut the search short.
    truncated: bool
    #: "kernel" or "object".
    mode: str
    #: Incumbent leaf value under the objective; None if no leaf was seen.
    best_value: Optional[float]
    #: Incumbent leaf's delivery count / total bits / outcome.
    best_depth: int
    best_bits: int
    best_outcome: Optional[str]
    #: Distinct-choice ranks from the initial configuration to the
    #: incumbent leaf; replayable in either walk mode.
    best_path: Optional[Tuple[int, ...]]
    #: Node count at the moment the incumbent was found (time-to-best).
    nodes_at_best: int
    #: Transposition-table counters.
    table: Dict[str, int] = field(default_factory=dict)
    #: Subtree shards dispatched by the parallel frontier (0 = serial).
    shards: int = 0

    def summary(self) -> str:
        """One line for the CLI."""
        best = "none" if self.best_value is None else f"{self.best_value:g}"
        return (
            f"SEARCH [{self.objective}] best={best} depth={self.best_depth} "
            f"bits={self.best_bits} outcome={self.best_outcome} "
            f"nodes={self.nodes} (best@{self.nodes_at_best}) "
            f"outcomes={sorted(self.outcomes)} mode={self.mode}"
            + (f" shards={self.shards}" if self.shards else "")
            + (" TRUNCATED" if self.truncated else "")
        )


@dataclass
class ExtractedSchedule:
    """A concrete delivery script recovered from a search path."""

    #: ``(edge_id, canonical payload repr)`` per delivery, in order.
    deliveries: List[Tuple[int, str]]
    #: Number of deliveries (== len(deliveries)).
    steps: int
    #: Total bits across the delivered messages.
    total_bits: int
    #: "terminated" or "quiescent".
    outcome: str


# ----------------------------------------------------------------------
# walkers: one delivery step in either snapshot regime
# ----------------------------------------------------------------------
#
# Pending items here are (edge_id, payload, payload_repr, bits) — the
# repr and bit size are computed once at emission time and shared across
# every branch that carries the message.


class _KernelWalker:
    """Flat-kernel stepping: restore + deliver + snapshot."""

    mode = "kernel"

    def __init__(self, network: DirectedNetwork, kernel: Any) -> None:
        self.kernel = kernel
        self.root = network.root
        self.terminal = network.terminal
        self.out_edge_ids = [
            network.out_edge_ids(v) for v in range(network.num_vertices)
        ]
        self.edge_head = [network.edge_head(e) for e in range(network.num_edges)]
        self.in_port_of = [
            network.in_port_of_edge(e) for e in range(network.num_edges)
        ]

    def initial(self) -> Tuple[Any, List[Tuple[int, Any, str, int]]]:
        root_ports = self.out_edge_ids[self.root]
        pending = [
            (root_ports[out_port], payload, repr(payload), bits)
            for out_port, payload, bits in self.kernel.initial_emissions(self.root)
        ]
        return self.kernel.snapshot(), pending

    def deliver(
        self, ctx: Any, edge_id: int, payload: Any
    ) -> Tuple[List[Tuple[int, Any, str, int]], bool]:
        kernel = self.kernel
        kernel.restore(ctx)
        head = self.edge_head[edge_id]
        emissions = kernel.deliver(head, self.in_port_of[edge_id], payload)
        out_ids = self.out_edge_ids[head]
        out = [
            (out_ids[out_port], out_payload, repr(out_payload), bits)
            for out_port, out_payload, bits in emissions
        ]
        terminated = head == self.terminal and kernel.check_terminal(self.terminal)
        return out, terminated

    def capture(self) -> Tuple[Any, Any]:
        """The just-delivered configuration as (frontier ctx, exact state key)."""
        snap = self.kernel.snapshot()
        return snap, snap


class _ObjectWalker:
    """Live-protocol stepping: clone_state + on_receive."""

    mode = "object"

    def __init__(self, network: DirectedNetwork, protocol: AnonymousProtocol) -> None:
        self.protocol = protocol
        self.network = network
        self.terminal = network.terminal
        self.views = [
            VertexView(
                in_degree=network.in_degree(v), out_degree=network.out_degree(v)
            )
            for v in range(network.num_vertices)
        ]
        self._last_states: Optional[Dict[int, Any]] = None

    def initial(self) -> Tuple[Dict[int, Any], List[Tuple[int, Any, str, int]]]:
        network, protocol = self.network, self.protocol
        states = {
            v: protocol.create_state(self.views[v])
            for v in range(network.num_vertices)
        }
        pending = []
        root_ports = network.out_edge_ids(network.root)
        for out_port, payload in protocol.initial_emissions(self.views[network.root]):
            pending.append(
                (
                    root_ports[out_port],
                    payload,
                    repr(payload),
                    protocol.message_bits(payload),
                )
            )
        return states, pending

    def deliver(
        self, ctx: Dict[int, Any], edge_id: int, payload: Any
    ) -> Tuple[List[Tuple[int, Any, str, int]], bool]:
        network, protocol = self.network, self.protocol
        branch = {v: protocol.clone_state(s) for v, s in ctx.items()}
        head = network.edge_head(edge_id)
        in_port = network.in_port_of_edge(edge_id)
        new_state, emissions = protocol.on_receive(
            branch[head], self.views[head], in_port, protocol.clone_message(payload)
        )
        branch[head] = new_state
        out_ids = network.out_edge_ids(head)
        out = [
            (
                out_ids[out_port],
                out_payload,
                repr(out_payload),
                protocol.message_bits(out_payload),
            )
            for out_port, out_payload in emissions
        ]
        terminated = head == self.terminal and protocol.is_terminated(new_state)
        self._last_states = branch
        return out, terminated

    def capture(self) -> Tuple[Dict[int, Any], Tuple[str, ...]]:
        states = self._last_states
        assert states is not None, "capture() before deliver()"
        key = tuple(
            repr(states[v]) for v in range(self.network.num_vertices)
        )
        return states, key


def _make_walker(
    network: DirectedNetwork,
    protocol_factory: Callable[[], AnonymousProtocol],
    use_kernel: Optional[bool],
    compiled: Optional[Any],
) -> Any:
    """Mode selection, mirroring ``explore_all_schedules``."""
    protocol = protocol_factory()
    kernel = None
    if use_kernel is not False:
        from ..network.fastpath import CompiledNetwork

        if compiled is None or getattr(compiled, "network", None) is not network:
            compiled = CompiledNetwork(network)
        candidate = protocol.compile_fastpath(compiled)
        if (
            candidate is not None
            and callable(getattr(candidate, "snapshot", None))
            and callable(getattr(candidate, "restore", None))
        ):
            kernel = candidate
    if use_kernel is True and kernel is None:
        raise ValueError(
            "use_kernel=True but the protocol offers no snapshot-capable kernel"
        )
    if kernel is not None:
        return _KernelWalker(network, kernel)
    return _ObjectWalker(network, protocol)


def _sig4(pending: Sequence[Tuple[int, Any, str, int]]) -> Tuple[Tuple[int, str], ...]:
    # _pending_sig reads items [0] and [2], so 4-tuples pass through fine.
    return _pending_sig(pending)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# the best-first loop
# ----------------------------------------------------------------------


def _descend(
    walker: Any,
    path: Sequence[int],
) -> Tuple[Any, List[Tuple[int, Any, str, int]], int, int, Optional[str]]:
    """Replay a distinct-choice path from the initial configuration.

    Returns ``(ctx, pending, depth, bits, outcome)`` where outcome is the
    leaf outcome if the path ends in a leaf, else None.  Raises
    ``ValueError`` when the path does not fit the tree (a corrupted or
    cross-instance path).
    """
    ctx, pending = walker.initial()
    depth = 0
    bits = 0
    for rank in path:
        if not pending:
            raise ValueError(
                f"path step {depth}: configuration is already quiescent"
            )
        choices = _distinct_choice_indices(pending)  # type: ignore[arg-type]
        if rank < 0 or rank >= len(choices):
            raise ValueError(
                f"path step {depth}: choice rank {rank} out of range "
                f"({len(choices)} distinct deliveries available)"
            )
        index = choices[rank]
        edge_id, payload, _text, mbits = pending[index]
        emissions, terminated = walker.deliver(ctx, edge_id, payload)
        depth += 1
        bits += mbits
        pending = pending[:index] + pending[index + 1 :] + emissions
        if terminated:
            if depth != len(path):
                raise ValueError(
                    f"path step {depth}: execution terminated with "
                    f"{len(path) - depth} path steps left"
                )
            return ctx, pending, depth, bits, "terminated"
        ctx, _key = walker.capture()
    return ctx, pending, depth, bits, ("quiescent" if not pending else None)


def _best_first(
    walker: Any,
    objective: SearchObjective,
    max_nodes: int,
    table: TranspositionTable,
    *,
    root: Tuple[Any, List[Tuple[int, Any, str, int]], int, int, Tuple[int, ...]],
    incumbent: Optional[float] = None,
    frontier_target: Optional[int] = None,
) -> Tuple[GuidedSearchResult, List[Tuple[Any, ...]]]:
    """The serial best-first loop shared by all entry points.

    ``root`` is ``(ctx, pending, depth, bits, path)``.  ``incumbent``
    seeds the best value (parallel shards inherit the bound found by
    earlier waves — only strictly better leaves update the incumbent).
    With ``frontier_target`` set, the loop stops expanding as soon as the
    frontier holds that many nodes and returns them (the parallel
    frontier's shard roots); the returned result is then *partial*.
    """
    outcomes: Set[str] = set()
    executions = 0
    nodes = 0
    truncated = False
    best_value = incumbent
    best_depth = 0
    best_bits = 0
    best_outcome: Optional[str] = None
    best_path: Optional[Tuple[int, ...]] = None
    nodes_at_best = 0

    counter = itertools.count()
    frontier: List[Tuple[Any, ...]] = []

    def record_leaf(depth: int, bits: int, outcome: str, path: Tuple[int, ...]) -> None:
        nonlocal best_value, best_depth, best_bits, best_outcome, best_path
        nonlocal nodes_at_best, executions
        outcomes.add(outcome)
        executions += 1
        value = objective.leaf_value(depth, bits, outcome)
        if best_value is None or value > best_value:
            best_value = value
            best_depth = depth
            best_bits = bits
            best_outcome = outcome
            best_path = path
            nodes_at_best = nodes

    def push(
        ctx: Any,
        pending: List[Tuple[int, Any, str, int]],
        depth: int,
        bits: int,
        path: Tuple[int, ...],
    ) -> None:
        heapq.heappush(
            frontier,
            (
                -objective.priority(depth, bits, len(pending)),
                next(counter),
                ctx,
                pending,
                depth,
                bits,
                path,
            ),
        )

    ctx, pending, depth, bits, path = root
    if not pending:
        record_leaf(depth, bits, "quiescent", path)
    else:
        push(ctx, pending, depth, bits, path)

    while frontier:
        if best_value is not None and objective.satisfied(best_value):
            break
        if frontier_target is not None and len(frontier) >= frontier_target:
            break
        if nodes >= max_nodes:
            truncated = True
            break
        _, _, ctx, pending, depth, bits, path = heapq.heappop(frontier)
        # Greedy dive: expand the node, keep walking the best surviving
        # child inline (pushing the siblings) until a leaf or a dead end.
        # Every pop therefore completes at least one execution, so the
        # incumbent improves steadily even on spaces far beyond the
        # budget — exactly what a *search* (vs. a sweep) is for.
        diving = True
        while diving:
            diving = False
            choices = _distinct_choice_indices(pending)  # type: ignore[arg-type]
            best_child: Optional[Tuple[Any, ...]] = None
            for rank, index in enumerate(choices):
                edge_id, payload, _text, mbits = pending[index]
                emissions, terminated = walker.deliver(ctx, edge_id, payload)
                nodes += 1
                child_depth = depth + 1
                child_bits = bits + mbits
                child_path = path + (rank,)
                if terminated:
                    record_leaf(child_depth, child_bits, "terminated", child_path)
                    continue
                child_pending = pending[:index] + pending[index + 1 :] + emissions
                if not child_pending:
                    record_leaf(child_depth, child_bits, "quiescent", child_path)
                    continue
                child_ctx, state_key = walker.capture()
                key = (_sig4(child_pending), state_key)
                if not table.visit(key, objective.rank(child_depth, child_bits)):
                    continue
                child = (
                    objective.priority(child_depth, child_bits, len(child_pending)),
                    child_ctx,
                    child_pending,
                    child_depth,
                    child_bits,
                    child_path,
                )
                if best_child is None:
                    best_child = child
                elif child[0] > best_child[0]:
                    push(*best_child[1:])
                    best_child = child
                else:
                    push(*child[1:])
            if best_child is not None:
                if nodes < max_nodes:
                    _, ctx, pending, depth, bits, path = best_child
                    diving = True
                else:
                    push(*best_child[1:])

    if nodes >= max_nodes and frontier:
        truncated = True

    result = GuidedSearchResult(
        objective=objective.name,
        outcomes=outcomes,
        nodes=nodes,
        executions=executions,
        truncated=truncated,
        mode=walker.mode,
        best_value=best_value,
        best_depth=best_depth,
        best_bits=best_bits,
        best_outcome=best_outcome,
        best_path=best_path,
        nodes_at_best=nodes_at_best,
        table=table.stats(),
    )
    return result, frontier


def search_schedules(
    network: DirectedNetwork,
    protocol_factory: Callable[[], AnonymousProtocol],
    *,
    objective: str = "max-steps",
    max_nodes: int = 200_000,
    use_kernel: Optional[bool] = None,
    compiled: Optional[Any] = None,
    digest: Optional[Callable[[Any], int]] = None,
    root_path: Sequence[int] = (),
    incumbent: Optional[float] = None,
) -> GuidedSearchResult:
    """Best-first search for a worst-case schedule of ``protocol`` on ``network``.

    Parameters mirror :func:`~repro.lowerbounds.schedules.explore_all_schedules`
    (``use_kernel``/``compiled``/``digest``) plus:

    objective:
        An :data:`OBJECTIVES` name; see :class:`SearchObjective`.
    max_nodes:
        Delivery budget.  An undrained frontier marks the result
        ``truncated``; a drained one makes the search exhaustive.
    root_path:
        Start from the configuration this distinct-choice path reaches
        instead of the initial one (parallel shards resume subtrees this
        way).  Recorded ``best_path`` values stay global, i.e. they
        include the prefix.
    incumbent:
        Seed incumbent value; only strictly better leaves are recorded
        as the new best (the parallel frontier's bound exchange).
    """
    chosen = get_objective(objective)
    walker = _make_walker(network, protocol_factory, use_kernel, compiled)
    table = TranspositionTable(digest)
    ctx, pending, depth, bits, outcome = _descend(walker, tuple(root_path))
    if outcome is not None and tuple(root_path):
        # The shard root itself is a leaf; report it and stop.
        result = GuidedSearchResult(
            objective=chosen.name,
            outcomes={outcome},
            nodes=0,
            executions=1,
            truncated=False,
            mode=walker.mode,
            best_value=chosen.leaf_value(depth, bits, outcome),
            best_depth=depth,
            best_bits=bits,
            best_outcome=outcome,
            best_path=tuple(root_path),
            nodes_at_best=0,
            table=table.stats(),
        )
        return result
    result, _frontier = _best_first(
        walker,
        chosen,
        max_nodes,
        table,
        root=(ctx, pending, depth, bits, tuple(root_path)),
        incumbent=incumbent,
    )
    return result


# ----------------------------------------------------------------------
# schedule extraction (certificate material)
# ----------------------------------------------------------------------


def extract_schedule(
    network: DirectedNetwork,
    protocol_factory: Callable[[], AnonymousProtocol],
    path: Sequence[int],
) -> ExtractedSchedule:
    """Replay a search path through the live protocol; emit the delivery script.

    Always runs in object mode so payload texts are the
    :func:`~repro.tracing.format.canonical_repr` of the very objects the
    reference engine will put in flight — the format
    :class:`~repro.tracing.replay.ReplayScheduler` matches on.  Paths are
    mode-independent (both walkers enumerate distinct choices in the same
    first-occurrence order), so kernel-found paths replay here unchanged.
    """
    from ..tracing.format import canonical_repr

    walker = _ObjectWalker(network, protocol_factory())
    ctx, pending = walker.initial()
    deliveries: List[Tuple[int, str]] = []
    total_bits = 0
    outcome: Optional[str] = None
    for step, rank in enumerate(path):
        choices = _distinct_choice_indices(pending)  # type: ignore[arg-type]
        if rank < 0 or rank >= len(choices):
            raise ValueError(
                f"schedule path step {step}: choice rank {rank} out of "
                f"range ({len(choices)} distinct deliveries available)"
            )
        index = choices[rank]
        edge_id, payload, _text, mbits = pending[index]
        deliveries.append((edge_id, canonical_repr(payload)))
        total_bits += mbits
        emissions, terminated = walker.deliver(ctx, edge_id, payload)
        pending = pending[:index] + pending[index + 1 :] + emissions
        if terminated:
            if step + 1 != len(path):
                raise ValueError(
                    f"schedule path step {step}: execution terminated with "
                    f"{len(path) - step - 1} path steps left"
                )
            outcome = "terminated"
            break
        ctx, _key = walker.capture()
    if outcome is None:
        if pending:
            raise ValueError(
                "schedule path ends before quiescence or termination "
                f"({len(pending)} messages still in flight)"
            )
        outcome = "quiescent"
    return ExtractedSchedule(
        deliveries=deliveries,
        steps=len(deliveries),
        total_bits=total_bits,
        outcome=outcome,
    )


# ----------------------------------------------------------------------
# spec-level entry + parallel frontier
# ----------------------------------------------------------------------


def _search_shard_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry for one subtree shard (dict in / dict out, picklable)."""
    from ..api.spec import RunSpec

    spec = RunSpec.from_dict(payload["spec"])
    network = spec.build_graph()
    result = search_schedules(
        network,
        spec.build_protocol,
        objective=payload["objective"],
        max_nodes=payload["max_nodes"],
        use_kernel=payload.get("use_kernel"),
        root_path=tuple(payload["root_path"]),
        incumbent=payload.get("incumbent"),
    )
    return {
        "outcomes": sorted(result.outcomes),
        "nodes": result.nodes,
        "executions": result.executions,
        "truncated": result.truncated,
        "best_value": result.best_value,
        "best_depth": result.best_depth,
        "best_bits": result.best_bits,
        "best_outcome": result.best_outcome,
        "best_path": list(result.best_path) if result.best_path is not None else None,
        "nodes_at_best": result.nodes_at_best,
        "table": result.table,
    }


def search_spec_schedules(
    spec: Any,
    *,
    objective: str = "max-steps",
    max_nodes: int = 200_000,
    max_workers: Optional[int] = None,
    shard_target: Optional[int] = None,
    use_kernel: Optional[bool] = None,
    digest: Optional[Callable[[Any], int]] = None,
) -> GuidedSearchResult:
    """Guided search for a :class:`~repro.api.spec.RunSpec` workload.

    Only the spec's graph/protocol fields matter (the search *is* the
    scheduler).  With ``max_workers`` ≥ 2 the **parallel frontier**
    engages: the serial loop expands until it holds ``shard_target``
    frontier nodes (default ``4 × max_workers``), then those subtree
    roots — serialized as distinct-choice paths, so nothing
    protocol-specific crosses the process boundary — are dispatched in
    waves across :class:`~repro.api.runner.BatchRunner` workers.  Between
    waves the incumbent is merged and handed to the next wave as the
    seed bound (periodic incumbent/bound exchange), so later shards skip
    recording leaves an earlier wave already dominated.
    """
    chosen = get_objective(objective)
    network = spec.build_graph()
    if max_workers is None or max_workers <= 1:
        return search_schedules(
            network,
            spec.build_protocol,
            objective=objective,
            max_nodes=max_nodes,
            use_kernel=use_kernel,
            digest=digest,
        )

    from ..api.runner import BatchRunner

    walker = _make_walker(network, spec.build_protocol, use_kernel, None)
    table = TranspositionTable(digest)
    ctx, pending = walker.initial()
    target = shard_target if shard_target is not None else 4 * max_workers
    partial, frontier = _best_first(
        walker,
        chosen,
        max_nodes,
        table,
        root=(ctx, pending, 0, 0, ()),
        frontier_target=max(2, target),
    )

    outcomes = set(partial.outcomes)
    executions = partial.executions
    nodes = partial.nodes
    truncated = partial.truncated
    best = {
        "value": partial.best_value,
        "depth": partial.best_depth,
        "bits": partial.best_bits,
        "outcome": partial.best_outcome,
        "path": partial.best_path,
        "at": partial.nodes_at_best,
    }
    table_stats = dict(partial.table)
    shards = 0

    # Expansion-order frontier: best-priority subtrees dispatch first, so
    # the first wave already produces a strong incumbent for later waves.
    roots = [entry[-1] for entry in sorted(frontier)]
    if roots and not truncated and not (
        best["value"] is not None and chosen.satisfied(best["value"])
    ):
        budget_pool = max(0, max_nodes - nodes)
        # Deep budgets sized for ~`target` shards; a flood of shallow
        # subtree roots shrinks later waves' budgets rather than starving
        # every shard equally.
        per_shard = max(1, budget_pool // max(1, target))
        runner = BatchRunner(max_workers=max_workers, parallel=True)
        spec_dict = spec.to_dict()
        # At most ~8 waves: each wave is one pool dispatch and one
        # incumbent exchange, so exchange stays periodic without paying a
        # pool spin-up per handful of subtrees.
        wave_size = max(max_workers, -(-len(roots) // 8))
        for start in range(0, len(roots), wave_size):
            if nodes >= max_nodes:
                truncated = True
                break
            if best["value"] is not None and chosen.satisfied(best["value"]):
                break
            wave = roots[start : start + wave_size]
            wave_budget = min(per_shard, max(1, (max_nodes - nodes) // len(wave)))
            payloads = [
                {
                    "spec": spec_dict,
                    "objective": objective,
                    "root_path": list(path),
                    "max_nodes": wave_budget,
                    "use_kernel": use_kernel,
                    "incumbent": best["value"],
                }
                for path in wave
            ]
            for shard in runner.map_payloads(_search_shard_payload, payloads):
                shards += 1
                outcomes.update(shard["outcomes"])
                executions += shard["executions"]
                truncated = truncated or shard["truncated"]
                for key, count in shard["table"].items():
                    table_stats[key] = table_stats.get(key, 0) + count
                if shard["best_path"] is not None and (
                    best["value"] is None or shard["best_value"] > best["value"]
                ):
                    best = {
                        "value": shard["best_value"],
                        "depth": shard["best_depth"],
                        "bits": shard["best_bits"],
                        "outcome": shard["best_outcome"],
                        "path": tuple(shard["best_path"]),
                        "at": nodes + shard["nodes_at_best"],
                    }
                nodes += shard["nodes"]

    return GuidedSearchResult(
        objective=objective,
        outcomes=outcomes,
        nodes=nodes,
        executions=executions,
        truncated=truncated,
        mode=walker.mode,
        best_value=best["value"],
        best_depth=best["depth"],
        best_bits=best["bits"],
        best_outcome=best["outcome"],
        best_path=best["path"],
        nodes_at_best=best["at"],
        table=table_stats,
        shards=shards,
    )
