"""Theorem 3.2 machinery: alphabet lower bounds for grounded-tree broadcast.

The proof structure (Section 3.2, Appendix A):

* Lemma 3.3 — on a grounded tree every vertex transmits once, so each edge
  carries exactly one symbol (checked by :func:`verify_single_message_per_edge`).
* Lemma 3.5 / Theorem 3.6 — the symbol multisets crossing two distinct
  linear cuts are never strict sub-multisets of one another
  (checked exhaustively on small trees by :func:`verify_cut_incomparability`).
* Lemma 3.7 — ancestor edges separated by an out-degree-≥2 vertex carry
  different symbols (:func:`verify_lemma_3_7`).
* The family ``Gₙ`` (Figure 5) then forces ``Ω(n)`` distinct symbols —
  measured by :func:`alphabet_on_gn` — and the information-theoretic floor
  turns symbol counts into bits: with the measured per-symbol usage counts,
  *no* prefix-free encoding can spend fewer total bits than the Huffman
  optimum computed by :func:`huffman_floor_bits`.  This is how the harness
  produces an encoding-independent lower bound to place next to the
  protocol's measured cost.

Note on the constant: the paper claims ``n + 1`` distinct symbols on ``Gₙ``;
since the last spine vertex has out-degree 1, Lemma 3.7 actually forces only
``n`` pairwise-distinct spine symbols (see DESIGN.md §4) — the harness
asserts ``≥ n``, which is what the ``Ω(|E| log |E|)`` consequence needs.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from ..core.model import AnonymousProtocol
from ..graphs.constructions import caterpillar_gn
from ..graphs.properties import cut_edges, is_grounded_tree, linear_cuts
from ..network.graph import DirectedNetwork
from ..network.simulator import run_protocol
from ..network.trace import Trace

__all__ = [
    "run_traced",
    "verify_single_message_per_edge",
    "verify_lemma_3_7",
    "verify_cut_incomparability",
    "verify_cut_incomparability_cross",
    "alphabet_on_gn",
    "huffman_floor_bits",
    "AlphabetRow",
]


def run_traced(network: DirectedNetwork, protocol: AnonymousProtocol) -> Trace:
    """Run the protocol (FIFO order) and return the delivery trace.

    Raises if the protocol fails to terminate — every graph these harnesses
    build has all vertices connected to ``t``.
    """
    result = run_protocol(network, protocol, record_trace=True)
    if not result.terminated:
        raise AssertionError(f"{protocol.name} failed to terminate on {network!r}")
    assert result.trace is not None
    return result.trace


def verify_single_message_per_edge(network: DirectedNetwork, protocol: AnonymousProtocol) -> bool:
    """Lemma 3.3: on grounded trees, exactly one message crosses each edge."""
    if not is_grounded_tree(network):
        raise ValueError("Lemma 3.3 applies to grounded trees")
    trace = run_traced(network, protocol)
    per_edge = trace.messages_per_edge()
    return all(per_edge.get(eid, 0) == 1 for eid in range(network.num_edges))


def _edge_symbol(trace: Trace, edge_id: int):
    symbols = trace.symbols_on_edge(edge_id)
    if len(symbols) != 1:
        raise AssertionError(f"edge {edge_id} carried {len(symbols)} symbols, expected 1")
    return symbols[0]


def _ancestor_pairs_with_branching(network: DirectedNetwork) -> Iterable[Tuple[int, int]]:
    """Edge pairs ``(e', e'')`` where ``e'`` is an ancestor of ``e''`` and some
    vertex on the path between them (``head(e')`` … ``tail(e'')`` inclusive,
    per Lemma 3.7) has out-degree ≥ 2.

    On a grounded tree the path between two vertices is unique, so a plain
    DFS from ``head(e')`` with a "passed a branching vertex yet" flag is
    exact.
    """
    for e1 in range(network.num_edges):
        head1 = network.edge_head(e1)
        frontier: List[Tuple[int, bool]] = [(head1, False)]
        seen: Set[int] = set()
        while frontier:
            vertex, branched = frontier.pop()
            if vertex in seen:
                continue
            seen.add(vertex)
            branched_here = branched or network.out_degree(vertex) >= 2
            for e2 in network.out_edge_ids(vertex):
                if branched_here:
                    yield (e1, e2)
                frontier.append((network.edge_head(e2), branched_here))


def verify_lemma_3_7(network: DirectedNetwork, protocol: AnonymousProtocol) -> int:
    """Check Lemma 3.7 on every qualifying edge pair; return pairs checked.

    Raises :class:`AssertionError` on the first violated pair.
    """
    trace = run_traced(network, protocol)
    checked = 0
    for e1, e2 in _ancestor_pairs_with_branching(network):
        s1, s2 = _edge_symbol(trace, e1), _edge_symbol(trace, e2)
        if s1 == s2:
            raise AssertionError(
                f"Lemma 3.7 violated: edges {e1} and {e2} both carry {s1!r}"
            )
        checked += 1
    return checked


def verify_cut_incomparability(
    network: DirectedNetwork, protocol: AnonymousProtocol, *, max_cuts: int = 200
) -> int:
    """Theorem 3.6 within one tree: for distinct linear cuts, neither symbol
    multiset is a strict sub-multiset of the other.  Returns pairs checked."""
    trace = run_traced(network, protocol)
    multisets: List[Tuple] = []
    for v1 in linear_cuts(network, max_cuts=max_cuts):
        edges = cut_edges(network, v1)
        multisets.append(trace.edge_symbol_multiset(edges))
    checked = 0
    for a, b in itertools.combinations(multisets, 2):
        if a != b:
            if _is_strict_submultiset(a, b) or _is_strict_submultiset(b, a):
                raise AssertionError(
                    f"Theorem 3.6 violated: cut multisets {a!r} ⊂ {b!r}"
                )
        checked += 1
    return checked


def verify_cut_incomparability_cross(
    networks_and_protocols, *, max_cuts: int = 100
) -> int:
    """Theorem 3.6, full strength: cuts from *different* grounded trees.

    The theorem quantifies over pairs of linear cuts "not necessarily even
    in the same grounded tree".  Given ``[(network, protocol), …]``, collect
    the cut-crossing symbol multisets of every tree and check strict
    sub-multiset freedom across the whole collection.  Returns the number
    of pairs checked.
    """
    multisets: List[Tuple] = []
    for network, protocol in networks_and_protocols:
        trace = run_traced(network, protocol)
        for v1 in linear_cuts(network, max_cuts=max_cuts):
            multisets.append(trace.edge_symbol_multiset(cut_edges(network, v1)))
    checked = 0
    for a, b in itertools.combinations(multisets, 2):
        if a != b:
            if _is_strict_submultiset(a, b) or _is_strict_submultiset(b, a):
                raise AssertionError(
                    f"Theorem 3.6 (cross-tree) violated: {a!r} ⊂ {b!r}"
                )
        checked += 1
    return checked


def _is_strict_submultiset(a: Tuple, b: Tuple) -> bool:
    """True iff multiset ``a`` is a strict sub-multiset of ``b``."""
    if len(a) >= len(b):
        return False
    counts: Dict[str, int] = {}
    for item in b:
        counts[repr(item)] = counts.get(repr(item), 0) + 1
    for item in a:
        key = repr(item)
        if counts.get(key, 0) == 0:
            return False
        counts[key] -= 1
    return True


def huffman_floor_bits(symbol_counts: Dict[object, int]) -> int:
    """Minimal total bits any prefix-free symbol encoding can achieve.

    Huffman coding is optimal among prefix-free codes for given usage
    counts; its total cost is therefore a valid lower bound on the total
    communication of *any* re-encoding of the same symbol stream — the
    encoding-independence step of Theorem 3.2's argument.  A single distinct
    symbol still costs one bit per use (a message must be distinguishable
    from silence on an asynchronous channel).
    """
    counts = [c for c in symbol_counts.values() if c > 0]
    if not counts:
        return 0
    if len(counts) == 1:
        return counts[0]
    heap: List[Tuple[int, int, int]] = [(c, i, 0) for i, c in enumerate(counts)]
    heapq.heapify(heap)
    total = 0
    tick = len(counts)
    while len(heap) > 1:
        c1, _, _ = heapq.heappop(heap)
        c2, _, _ = heapq.heappop(heap)
        total += c1 + c2
        heapq.heappush(heap, (c1 + c2, tick, 0))
        tick += 1
    return total


@dataclass(frozen=True)
class AlphabetRow:
    """One measurement row of the E2 experiment."""

    n: int
    num_edges: int
    distinct_symbols: int
    floor_bits: int
    measured_bits: int

    @property
    def floor_per_edge_log_e(self) -> float:
        """``floor_bits / (|E| · log₂ |E|)`` — flat ⇔ the Θ(E log E) shape."""
        return self.floor_bits / (self.num_edges * math.log2(self.num_edges))


def alphabet_on_gn(
    protocol_factory: Callable[[], AnonymousProtocol], ns: Sequence[int]
) -> List[AlphabetRow]:
    """Run a grounded-tree protocol over the family ``Gₙ`` (Figure 5).

    For each ``n``: the number of distinct symbols observed (must be
    ``≥ n``), the Huffman floor in bits for that symbol stream, and the
    protocol's actually measured total bits.
    """
    rows: List[AlphabetRow] = []
    for n in ns:
        network = caterpillar_gn(n)
        protocol = protocol_factory()
        result = run_protocol(network, protocol, record_trace=True)
        if not result.terminated:
            raise AssertionError(f"protocol failed to terminate on G_{n}")
        trace = result.trace
        assert trace is not None
        counts: Dict[object, int] = {}
        for record in trace.deliveries:
            counts[record.payload] = counts.get(record.payload, 0) + 1
        rows.append(
            AlphabetRow(
                n=n,
                num_edges=network.num_edges,
                distinct_symbols=len(counts),
                floor_bits=huffman_floor_bits(counts),
                measured_bits=result.metrics.total_bits,
            )
        )
    return rows
