"""Theorem 5.2 machinery: the label-length lower bound via pruning.

The proof (Figure 6): on a full ``d``-ary tree of height ``h`` (all leaves
into ``t``), a unique-labeling protocol must hand out ``d^h`` distinct leaf
labels, so some leaf gets a label of ``Ω(h log d)`` bits.  Because a
vertex's label depends only on the messages along the path from the root —
in-degree 1 everywhere, no cycles — the tree can be *pruned* to a single
root-to-leaf path with all off-path edges re-aimed at ``t`` (ports
preserved) without changing the execution along the path.  The pruned graph
has only ``h + 3`` vertices yet still produces the ``Ω(h log d)``-bit label,
i.e. ``Ω(|V| log d_out)`` on that graph.

This harness verifies all three steps against the concrete Section 5
protocol:

* :func:`leaf_labels` — distinct labels for all ``d^h`` leaves,
* :func:`pruning_preserves_label` — the deep vertex's label is *identical*
  (exact interval equality) in the full and pruned runs,
* :func:`label_growth_on_pruned` — label bits grow ``Θ(h log d)`` while
  ``|V| = h + 3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.intervals import IntervalUnion, union_cost
from ..core.labeling import LabelAssignmentProtocol, extract_labels
from ..graphs.constructions import (
    full_tree_path_vertices,
    full_tree_with_terminal,
    pruned_tree,
)
from ..network.simulator import run_protocol

__all__ = [
    "leaf_labels",
    "pruning_preserves_label",
    "label_growth_on_pruned",
    "PrunedLabelRow",
]


def _run_labeling(network, protocol_factory):
    protocol = protocol_factory() if protocol_factory is not None else LabelAssignmentProtocol()
    result = run_protocol(network, protocol)
    if not result.terminated:
        raise AssertionError("labeling failed to terminate")
    return result


def leaf_labels(
    degree: int, height: int, protocol_factory: Optional[Callable] = None
) -> Dict[int, IntervalUnion]:
    """Labels of all ``degree^height`` leaves of the full tree.

    The caller asserts pairwise distinctness (Theorem 5.1) and uses the
    maximal bit length as the ``Ω(h log d)`` witness.
    """
    network = full_tree_with_terminal(degree, height)
    result = _run_labeling(network, protocol_factory)
    labels = extract_labels(result.states)
    leaves = [
        v
        for v in network.internal_vertices()
        if network.out_degree(v) == 1
        and network.edge_head(network.out_edge_ids(v)[0]) == network.terminal
    ]
    return {leaf: labels[leaf] for leaf in leaves}


def pruning_preserves_label(
    degree: int,
    height: int,
    child_choices: Optional[Sequence[int]] = None,
    protocol_factory: Optional[Callable] = None,
) -> bool:
    """The pruning step: the chosen leaf's label is bit-identical in the
    full tree and the pruned path graph."""
    if child_choices is None:
        child_choices = [0] * height
    full = full_tree_with_terminal(degree, height)
    full_result = _run_labeling(full, protocol_factory)
    path = full_tree_path_vertices(degree, height, child_choices)
    full_leaf_label = full_result.states[path[-1]].label

    pruned = pruned_tree(degree, height, child_choices)
    pruned_result = _run_labeling(pruned, protocol_factory)
    # In the pruned graph the path vertices are w_0 .. w_h = 2 .. h+2.
    pruned_leaf_label = pruned_result.states[2 + height].label

    if full_leaf_label is None or pruned_leaf_label is None:
        return False
    return full_leaf_label == pruned_leaf_label


@dataclass(frozen=True)
class PrunedLabelRow:
    """One row of the E7 scaling measurement."""

    degree: int
    height: int
    num_vertices_pruned: int
    leaf_label_bits: int

    @property
    def bits_per_h_log_d(self) -> float:
        """``label bits / (h·log₂ d)`` — flat ⇔ the Θ(h log d) shape."""
        import math

        return self.leaf_label_bits / (self.height * math.log2(self.degree))


def label_growth_on_pruned(
    cases: Sequence[tuple], protocol_factory: Optional[Callable] = None
) -> List[PrunedLabelRow]:
    """Leaf-label size on pruned trees for ``(degree, height)`` cases.

    The pruned graph has ``h + 3`` vertices, so a label of ``Θ(h log d)``
    bits on it is a label of ``Θ(|V| log d_out)`` bits — the exponential gap
    against the ``O(log |V|)`` undirected baseline of E12.
    """
    rows: List[PrunedLabelRow] = []
    for degree, height in cases:
        network = pruned_tree(degree, height)
        result = _run_labeling(network, protocol_factory)
        label = result.states[2 + height].label
        if label is None:
            raise AssertionError("pruned leaf did not receive a label")
        rows.append(
            PrunedLabelRow(
                degree=degree,
                height=height,
                num_vertices_pruned=network.num_vertices,
                leaf_label_bits=union_cost(label),
            )
        )
    return rows
