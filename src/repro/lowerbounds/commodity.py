"""Theorem 3.8 machinery: the skeleton-tree bandwidth lower bound.

Appendix B proves that any *commodity-preserving* protocol needs ``Ω(|E|)``
bits of bandwidth on DAGs: on the skeleton tree of Figure 4 the quantities
``q(u₀), q(u₂), …`` decay along the inequality chain

    q(u_{2i+2}) < q(v_{2i+2}) ≤ ½·q(v_{2i+1}) ≤ ½·q(u_{2i})        (1)

so the ``2ⁿ`` possible subsets ``S ⊆ {u₀, u₂, …}`` wired into the collector
``w`` produce ``2ⁿ`` pairwise distinct sums flowing from ``w`` to ``t`` —
``2ⁿ`` distinct symbols, hence ``Ω(n)`` bits for some symbol on a graph with
only ``O(n)`` edges.

This harness makes the argument executable against any
commodity-preserving :class:`~repro.core.model.AnonymousProtocol` whose
messages expose a scalar quantity:

* :func:`hair_quantities` extracts the ``q(u_i)`` from a traced run,
* :func:`verify_inequality_chain` checks chain (1),
* :func:`collect_subset_sums` runs the protocol on every (or a sampled set
  of) subset wiring and checks all ``w → t`` quantities are distinct,
* :func:`bandwidth_growth` measures how the maximal message size grows with
  ``n`` when all even hairs feed ``w`` (the fattest-sum instance).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.dyadic import Dyadic
from ..core.model import AnonymousProtocol
from ..graphs.constructions import skeleton_tree, skeleton_tree_hairs
from ..network.simulator import run_protocol

__all__ = [
    "quantity_of",
    "hair_quantities",
    "verify_inequality_chain",
    "collect_subset_sums",
    "bandwidth_growth",
    "BandwidthRow",
]


def quantity_of(message) -> Fraction:
    """The commodity ``q(σ)`` of a message, as an exact fraction.

    Works for the scalar-token protocols of this repository
    (:class:`~repro.core.messages.ScalarToken`,
    :class:`~repro.baselines.naive_tree.RationalToken` and tree tokens).
    """
    value = getattr(message, "value", None)
    if isinstance(value, Dyadic):
        return value.as_fraction()
    if isinstance(value, Fraction):
        return value
    raise TypeError(f"message {message!r} does not expose a scalar commodity")


def _traced_run(network, protocol):
    result = run_protocol(network, protocol, record_trace=True)
    if not result.terminated:
        raise AssertionError(f"{protocol.name} failed to terminate on skeleton tree")
    assert result.trace is not None
    return result


def hair_quantities(
    n: int, protocol_factory: Callable[[], AnonymousProtocol]
) -> Dict[int, Fraction]:
    """``q(u_i)`` for every hair of the ``n``-skeleton (all hairs to ``t``).

    Measured on the subset-free wiring so all hairs exist identically; the
    quantity entering ``u_i`` is the symbol on the unique edge ``v_i → u_i``.
    """
    network = skeleton_tree(n, subset=())
    result = _traced_run(network, protocol_factory())
    trace = result.trace
    quantities: Dict[int, Fraction] = {}
    # Hair u_i is vertex 3 + 2n + i with a single in-edge from v_i.
    for i in range(2 * n - 1):
        hair = 3 + 2 * n + i
        in_edges = network.in_edge_ids(hair)
        assert len(in_edges) == 1
        symbols = trace.symbols_on_edge(in_edges[0])
        assert len(symbols) == 1, "skeleton tree hairs receive exactly one message"
        quantities[i] = quantity_of(symbols[0])
    return quantities


def verify_inequality_chain(quantities: Dict[int, Fraction], n: int) -> bool:
    """Check the strict-decay consequence of chain (1):
    ``q(u_{2i+2}) ≤ ½·q(u_{2i})`` for all valid ``i`` — which is what makes
    the subset sums distinct (binary representation argument)."""
    for i in range(0, 2 * n - 4, 2):
        if not quantities[i + 2] <= quantities[i] / 2:
            return False
    return True


def collect_subset_sums(
    n: int,
    protocol_factory: Callable[[], AnonymousProtocol],
    *,
    max_subsets: Optional[int] = None,
    seed: int = 0,
) -> Dict[frozenset, Fraction]:
    """Run the protocol over subset wirings; return each ``w → t`` quantity.

    Enumerates all ``2ⁿ`` subsets of the even hairs when feasible, otherwise
    samples ``max_subsets`` of them (always including ∅ and the full set).
    The caller asserts distinctness — Theorem 3.8's core step.
    """
    hairs = skeleton_tree_hairs(n)
    all_subsets: Iterable[Tuple[int, ...]]
    total = 1 << len(hairs)
    if max_subsets is None or total <= max_subsets:
        all_subsets = itertools.chain.from_iterable(
            itertools.combinations(hairs, k) for k in range(len(hairs) + 1)
        )
    else:
        rng = random.Random(seed)
        sampled: Set[Tuple[int, ...]] = {(), tuple(hairs)}
        while len(sampled) < max_subsets:
            sampled.add(tuple(sorted(h for h in hairs if rng.random() < 0.5)))
        all_subsets = sorted(sampled)

    sums: Dict[frozenset, Fraction] = {}
    for subset in all_subsets:
        network = skeleton_tree(n, subset=subset)
        w = 2
        if not subset:
            # w has in-degree 0: it never fires and contributes quantity 0.
            sums[frozenset()] = Fraction(0)
            continue
        result = _traced_run(network, protocol_factory())
        trace = result.trace
        w_out = network.out_edge_ids(w)
        assert len(w_out) == 1
        symbols = trace.symbols_on_edge(w_out[0])
        assert len(symbols) == 1, "w sends exactly one aggregated message"
        sums[frozenset(subset)] = quantity_of(symbols[0])
    return sums


@dataclass(frozen=True)
class BandwidthRow:
    """One row of the E4 bandwidth-growth measurement."""

    n: int
    num_edges: int
    max_message_bits: int
    distinct_possible_sums: int


def bandwidth_growth(
    ns: Sequence[int], protocol_factory: Callable[[], AnonymousProtocol]
) -> List[BandwidthRow]:
    """Max message size on the full-subset skeleton tree as ``n`` grows.

    The full subset maximises the collector's aggregated sum's bit length;
    Theorem 3.8 predicts growth linear in ``n`` (and hence in ``|E|``) for
    any commodity-preserving protocol.
    """
    rows: List[BandwidthRow] = []
    for n in ns:
        hairs = skeleton_tree_hairs(n)
        network = skeleton_tree(n, subset=hairs)
        result = _traced_run(network, protocol_factory())
        rows.append(
            BandwidthRow(
                n=n,
                num_edges=network.num_edges,
                max_message_bits=result.metrics.max_message_bits,
                distinct_possible_sums=1 << len(hairs),
            )
        )
    return rows
