"""Bounded model checking over *all* delivery schedules.

The correctness theorems are ∀-schedule statements.  Seeded random and
adversarial schedulers sample the schedule space; this module *exhausts* it
on small instances: :func:`explore_all_schedules` walks the tree of every
possible delivery order (at each step, any in-flight message may be the
next delivered) and reports the set of reachable final outcomes.

Branching no longer deep-copies anything.  Two snapshot/restore regimes
share one DFS:

* **Kernel mode** (the fast default): when the protocol compiles a
  fast-path kernel (:meth:`~repro.core.model.AnonymousProtocol.compile_fastpath`)
  that supports ``snapshot()``/``restore()``, the walk runs on the
  kernel's flat state — a branch point captures the whole-network state
  as nested tuples sharing the immutable leaves, and branching is a
  restore + one delivery.  This turns E14's exhaustive search from
  allocation-bound into tuple-copy-bound.
* **Object mode** (the general fallback, and always used when an
  ``invariant`` hook needs live vertex states): per-branch state forks go
  through :meth:`~repro.core.model.AnonymousProtocol.clone_state`
  (deepcopy by default; the shipped protocols override it with cheap
  immutable-sharing copies) and in-flight payloads through
  :meth:`~repro.core.model.AnonymousProtocol.clone_message`.

Both modes explore the identical schedule tree with identical confluence
collapsing (configurations are fingerprinted by exact state), so
outcome/execution/step counts agree — ``tests/lowerbounds/test_schedules.py``
asserts mode equivalence on enumerated topologies.  The schedule tree is
exponential in the number of concurrent messages; callers bound the
instance size (≤ ~10 messages in flight is comfortable) and/or pass a node
budget.  The integration tests run it over every ≤-4-internal-vertex
network from :mod:`repro.graphs.enumerate_graphs`, which machine-checks the
termination "iff" against *every* schedule on *every* small topology —
about as close to the theorem as testing can get.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.model import AnonymousProtocol, VertexView
from ..network.graph import DirectedNetwork

__all__ = ["ScheduleExploration", "explore_all_schedules"]


@dataclass
class ScheduleExploration:
    """Aggregate result of walking the schedule tree."""

    #: Distinct terminal outcomes reached: "terminated" / "quiescent".
    outcomes: Set[str]
    #: Complete executions explored (leaves of the schedule tree).
    executions: int
    #: Delivery steps across all branches (search effort).
    steps: int
    #: True iff the walk was cut short by the node budget.
    truncated: bool

    @property
    def always_terminates(self) -> bool:
        """Every explored schedule reached termination."""
        return self.outcomes == {"terminated"}

    @property
    def never_terminates(self) -> bool:
        """No explored schedule reached termination."""
        return self.outcomes == {"quiescent"}


def explore_all_schedules(
    network: DirectedNetwork,
    protocol_factory: Callable[[], AnonymousProtocol],
    *,
    max_steps_total: int = 200_000,
    invariant: Optional[Callable[[Dict[int, Any]], bool]] = None,
    use_kernel: Optional[bool] = None,
) -> ScheduleExploration:
    """Explore every delivery order of ``protocol`` on ``network``.

    Parameters
    ----------
    network / protocol_factory:
        The instance under check; a fresh protocol is created once (its
        transition functions are shared; per-branch state is snapshotted).
    max_steps_total:
        Global budget on delivered messages across all branches; when
        exceeded the result is marked ``truncated`` (assertions should then
        be treated as inconclusive).
    invariant:
        Optional predicate over the vertex-state dict, checked after every
        delivery on every branch; a ``False`` return raises
        :class:`AssertionError` with the offending branch's depth.
        Providing an invariant forces object mode (the hook needs live
        per-vertex states).
    use_kernel:
        Force (``True``) or forbid (``False``) the flat-kernel walk;
        ``None`` (default) uses the kernel whenever the protocol offers a
        snapshot-capable one and no invariant was given.  Forcing ``True``
        raises :class:`ValueError` if the protocol cannot satisfy it.

    Notes
    -----
    Branches that reach the stopping predicate still continue to quiescence
    conceptually, but for outcome classification it suffices to record that
    termination was reached; the branch is closed at that point ("terminated"
    is absorbing for the paper's semantics — ``S`` is checked on ``t``'s
    monotone state).
    """
    protocol = protocol_factory()

    kernel = None
    if use_kernel is not False and invariant is None:
        from ..network.fastpath import CompiledNetwork

        compiled = CompiledNetwork(network)
        candidate = protocol.compile_fastpath(compiled)
        if (
            candidate is not None
            and callable(getattr(candidate, "snapshot", None))
            and callable(getattr(candidate, "restore", None))
        ):
            kernel = candidate
    if use_kernel is True and kernel is None:
        raise ValueError(
            "use_kernel=True but the protocol offers no snapshot-capable "
            "kernel (or an invariant hook forced object mode)"
        )

    if kernel is not None:
        return _explore_kernel(network, kernel, max_steps_total)
    return _explore_object(network, protocol, max_steps_total, invariant)


def _explore_object(
    network: DirectedNetwork,
    protocol: AnonymousProtocol,
    max_steps_total: int,
    invariant: Optional[Callable[[Dict[int, Any]], bool]],
) -> ScheduleExploration:
    """The general walk over live protocol states (clone_state branching)."""
    views = [
        VertexView(in_degree=network.in_degree(v), out_degree=network.out_degree(v))
        for v in range(network.num_vertices)
    ]
    init_states: Dict[int, Any] = {
        v: protocol.create_state(views[v]) for v in range(network.num_vertices)
    }
    initial_msgs: List[Tuple[int, Any]] = []
    for out_port, payload in protocol.initial_emissions(views[network.root]):
        initial_msgs.append((network.out_edge_ids(network.root)[out_port], payload))

    outcomes: Set[str] = set()
    executions = 0
    steps = 0
    truncated = False
    clone_state = protocol.clone_state
    clone_message = protocol.clone_message

    def fingerprint(states: Dict[int, Any], pending: List[Tuple[int, Any]]) -> str:
        # Reprs are complete for the shipped protocols' state types (the
        # GeneralState repr is kept exhaustive for exactly this purpose), so
        # equal fingerprints really are confluent configurations.
        return repr(
            (
                sorted((repr(p) for p in pending)),
                [repr(states[v]) for v in range(network.num_vertices)],
            )
        )

    # Explicit DFS over (states, in-flight multiset) to avoid recursion
    # limits; each frame owns its copies.  Configurations are deduplicated
    # at push time, collapsing confluent schedule branches.
    stack: List[Tuple[Dict[int, Any], List[Tuple[int, Any]]]] = [
        (init_states, initial_msgs)
    ]
    seen: Set[str] = {fingerprint(init_states, initial_msgs)}

    while stack:
        states, pending = stack.pop()
        if not pending:
            outcomes.add("quiescent")
            executions += 1
            continue
        if steps >= max_steps_total:
            truncated = True
            break

        # Deliveries of equal payloads on the same edge are interchangeable;
        # enumerate distinct (edge, payload) choices only.
        distinct_choices = {}
        for index in range(len(pending)):
            distinct_choices.setdefault(repr(pending[index]), index)
        for index in distinct_choices.values():
            edge_id, payload = pending[index]
            branch_states = {v: clone_state(s) for v, s in states.items()}
            branch_pending = pending[:index] + pending[index + 1 :]
            head = network.edge_head(edge_id)
            in_port = network.in_port_of_edge(edge_id)
            steps += 1
            new_state, emissions = protocol.on_receive(
                branch_states[head], views[head], in_port, clone_message(payload)
            )
            branch_states[head] = new_state
            if invariant is not None and not invariant(branch_states):
                raise AssertionError(
                    f"invariant violated after delivering edge {edge_id}"
                )
            for out_port, out_payload in emissions:
                branch_pending.append(
                    (network.out_edge_ids(head)[out_port], out_payload)
                )
            if head == network.terminal and protocol.is_terminated(new_state):
                outcomes.add("terminated")
                executions += 1
                continue
            key = fingerprint(branch_states, branch_pending)
            if key not in seen:
                seen.add(key)
                stack.append((branch_states, branch_pending))

    return ScheduleExploration(
        outcomes=outcomes, executions=executions, steps=steps, truncated=truncated
    )


def _explore_kernel(
    network: DirectedNetwork,
    kernel: Any,
    max_steps_total: int,
) -> ScheduleExploration:
    """The flat walk: restore-snapshot-deliver on the compiled kernel.

    Structurally identical to :func:`_explore_object` — same frame order,
    same distinct-choice collapsing, same exact-state fingerprints — so
    both modes report identical counts; only the cost of a branch differs
    (a tuple restore instead of a state-dict deepcopy/clone).
    """
    root = network.root
    terminal = network.terminal
    root_ports = network.out_edge_ids(root)
    out_edge_ids = [network.out_edge_ids(v) for v in range(network.num_vertices)]
    edge_head = [network.edge_head(e) for e in range(network.num_edges)]
    in_port_of = [network.in_port_of_edge(e) for e in range(network.num_edges)]

    initial_msgs: List[Tuple[int, Any]] = [
        (root_ports[out_port], payload)
        for out_port, payload, _bits in kernel.initial_emissions(root)
    ]
    init_snap = kernel.snapshot()

    outcomes: Set[str] = set()
    executions = 0
    steps = 0
    truncated = False

    def fingerprint(snap: Any, pending: List[Tuple[int, Any]]) -> str:
        # Kernel snapshots are the exact state (flat tuples over immutable
        # leaves), so their reprs fingerprint configurations precisely.
        return repr((sorted(repr(p) for p in pending), snap))

    stack: List[Tuple[Any, List[Tuple[int, Any]]]] = [(init_snap, initial_msgs)]
    seen: Set[str] = {fingerprint(init_snap, initial_msgs)}

    while stack:
        snap, pending = stack.pop()
        if not pending:
            outcomes.add("quiescent")
            executions += 1
            continue
        if steps >= max_steps_total:
            truncated = True
            break

        distinct_choices = {}
        for index in range(len(pending)):
            distinct_choices.setdefault(repr(pending[index]), index)
        for index in distinct_choices.values():
            edge_id, payload = pending[index]
            kernel.restore(snap)
            branch_pending = pending[:index] + pending[index + 1 :]
            head = edge_head[edge_id]
            steps += 1
            emissions = kernel.deliver(head, in_port_of[edge_id], payload)
            for out_port, out_payload, _bits in emissions:
                branch_pending.append((out_edge_ids[head][out_port], out_payload))
            if head == terminal and kernel.check_terminal(terminal):
                outcomes.add("terminated")
                executions += 1
                continue
            branch_snap = kernel.snapshot()
            key = fingerprint(branch_snap, branch_pending)
            if key not in seen:
                seen.add(key)
                stack.append((branch_snap, branch_pending))

    return ScheduleExploration(
        outcomes=outcomes, executions=executions, steps=steps, truncated=truncated
    )
