"""Bounded model checking over *all* delivery schedules.

The correctness theorems are ∀-schedule statements.  Seeded random and
adversarial schedulers sample the schedule space; this module *exhausts* it
on small instances: :func:`explore_all_schedules` walks the tree of every
possible delivery order (at each step, any in-flight message may be the
next delivered) and reports the set of reachable final outcomes.

Branching no longer deep-copies anything.  Two snapshot/restore regimes
share one DFS:

* **Kernel mode** (the fast default): when the protocol compiles a
  fast-path kernel (:meth:`~repro.core.model.AnonymousProtocol.compile_fastpath`)
  that supports ``snapshot()``/``restore()``, the walk runs on the
  kernel's flat state — a branch point captures the whole-network state
  as nested tuples sharing the immutable leaves, and branching is a
  restore + one delivery.  This turns E14's exhaustive search from
  allocation-bound into tuple-copy-bound.
* **Object mode** (the general fallback, and always used when an
  ``invariant`` hook needs live vertex states): per-branch state forks go
  through :meth:`~repro.core.model.AnonymousProtocol.clone_state`
  (deepcopy by default; the shipped protocols override it with cheap
  immutable-sharing copies) and in-flight payloads through
  :meth:`~repro.core.model.AnonymousProtocol.clone_message`.

Confluent configurations are collapsed through a
:class:`TranspositionTable`: configurations are keyed by a compact digest
of the exact (in-flight multiset, state) pair, with an exact-compare
bucket behind every digest so a hash collision can never merge two
genuinely different configurations.  Payload reprs are computed once at
emission time and reused across every branch that carries the message,
replacing the old per-node re-``repr`` of the whole pending list.

Both modes explore the identical schedule tree with identical confluence
collapsing, so outcome/execution/step counts agree —
``tests/lowerbounds/test_schedules.py`` asserts mode equivalence on
enumerated topologies.  The schedule tree is exponential in the number of
concurrent messages; callers bound the instance size (≤ ~10 messages in
flight is comfortable) and/or pass a node budget.  The integration tests
run it over every ≤-4-internal-vertex network from
:mod:`repro.graphs.enumerate_graphs`, which machine-checks the
termination "iff" against *every* schedule on *every* small topology —
about as close to the theorem as testing can get.

The best-first *guided* search over the same collapsed configuration
graph lives in :mod:`repro.lowerbounds.guided`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.model import AnonymousProtocol, VertexView
from ..network.graph import DirectedNetwork

__all__ = [
    "ScheduleExploration",
    "TranspositionTable",
    "explore_all_schedules",
]


def _freeze(obj: Any) -> Any:
    """Recursively tuple-ify lists so any exact key becomes hashable.

    Kernel snapshots share flat unions (plain lists) by reference; those
    make the snapshot unhashable even though equality compares fine.  The
    default digest freezes on demand — only when ``hash`` refuses.
    """
    if isinstance(obj, (list, tuple)):
        return tuple(_freeze(item) for item in obj)
    return obj


def _config_digest(key: Any) -> int:
    """The default compact digest: Python's tuple hash, freezing if needed."""
    try:
        return hash(key)
    except TypeError:
        return hash(_freeze(key))


class TranspositionTable:
    """Digest-keyed visited-set with a collision-safe exact-compare fallback.

    Every configuration key (an exact ``(pending multiset, state)`` pair)
    maps to a compact integer digest; behind each digest sits a bucket of
    the exact keys (with their best *rank*, see below) that produced it.
    A digest hit therefore never suffices on its own — membership is
    decided by comparing the exact keys — so two different configurations
    that collide in the digest are both explored (tallied under
    :attr:`collisions`) instead of silently merged.

    ``rank`` supports branch-and-bound re-opening: a maximizing search
    that reaches a known configuration along a *deeper/costlier* path
    must re-expand it, because its subtree now yields longer executions.
    The exhaustive DFS passes a constant rank, which reduces the table to
    a plain visited-set.

    Parameters
    ----------
    digest:
        Optional override for the digest function (``key -> int``).
        Exists for fault injection in tests: a constant digest forces
        every lookup through the exact-compare fallback, proving the
        table degrades to correct (if slower) behaviour under collisions.
    """

    __slots__ = ("_buckets", "_digest", "entries", "hits", "collisions", "reopened")

    def __init__(self, digest: Optional[Callable[[Any], int]] = None) -> None:
        self._buckets: Dict[int, List[List[Any]]] = {}
        self._digest = digest if digest is not None else _config_digest
        #: Distinct configurations stored.
        self.entries = 0
        #: Lookups that found the configuration already present (≥ rank).
        self.hits = 0
        #: Distinct configurations sharing a digest with an earlier one.
        self.collisions = 0
        #: Re-openings: a known configuration reached at a better rank.
        self.reopened = 0

    def visit(self, key: Any, rank: int = 0) -> bool:
        """Record ``key`` at ``rank``; return True iff it should be expanded.

        True means the configuration is new, collided into a fresh bucket
        slot, or was re-opened at a strictly better rank; False means it
        was already visited at an equal-or-better rank.
        """
        digest = self._digest(key)
        bucket = self._buckets.get(digest)
        if bucket is None:
            self._buckets[digest] = [[key, rank]]
            self.entries += 1
            return True
        for entry in bucket:
            if entry[0] == key:
                if rank > entry[1]:
                    entry[1] = rank
                    self.reopened += 1
                    return True
                self.hits += 1
                return False
        self.collisions += 1
        self.entries += 1
        bucket.append([key, rank])
        return True

    def stats(self) -> Dict[str, int]:
        """The counters as a plain dict (for results and artifacts)."""
        return {
            "entries": self.entries,
            "hits": self.hits,
            "collisions": self.collisions,
            "reopened": self.reopened,
        }


def _pending_sig(pending: List[Tuple[int, Any, str]]) -> Tuple[Tuple[int, str], ...]:
    """Order-free exact signature of the in-flight multiset.

    Items carry their payload repr from emission time, so the signature
    never re-``repr``\\ s a payload; sorting on (edge, text) makes equal
    multisets produce equal signatures regardless of delivery history.
    """
    return tuple(sorted((item[0], item[2]) for item in pending))


def _distinct_choice_indices(pending: List[Tuple[int, Any, str]]) -> List[int]:
    """First-occurrence index of every distinct (edge, payload) delivery.

    Deliveries of equal payloads on the same edge are interchangeable;
    collapsing them here is what keeps the walk over the *quotient*
    schedule tree.  First-occurrence order is emission order, which both
    walk modes share — the guided search's certificate paths rely on it.
    """
    seen: Dict[Tuple[int, str], int] = {}
    for index, item in enumerate(pending):
        seen.setdefault((item[0], item[2]), index)
    return list(seen.values())


@dataclass
class ScheduleExploration:
    """Aggregate result of walking the schedule tree."""

    #: Distinct terminal outcomes reached: "terminated" / "quiescent".
    outcomes: Set[str]
    #: Complete executions explored (leaves of the schedule tree).
    executions: int
    #: Delivery steps across all branches (search effort).
    steps: int
    #: True iff the walk was cut short by the node budget.
    truncated: bool
    #: Longest single execution explored, in delivery steps.
    max_depth: int = 0
    #: Transposition-table counters for the walk (entries/hits/collisions).
    table: Optional[Dict[str, int]] = None

    @property
    def always_terminates(self) -> bool:
        """Every schedule reached termination — only claimed on full walks.

        A truncated walk has unexplored schedules, so it cannot support a
        ∀-schedule claim; both properties then report False (inconclusive)
        rather than a silently over-confident answer.
        """
        return not self.truncated and self.outcomes == {"terminated"}

    @property
    def never_terminates(self) -> bool:
        """No schedule reached termination — only claimed on full walks."""
        return not self.truncated and self.outcomes == {"quiescent"}


def explore_all_schedules(
    network: DirectedNetwork,
    protocol_factory: Callable[[], AnonymousProtocol],
    *,
    max_steps_total: int = 200_000,
    invariant: Optional[Callable[[Dict[int, Any]], bool]] = None,
    use_kernel: Optional[bool] = None,
    compiled: Optional[Any] = None,
    digest: Optional[Callable[[Any], int]] = None,
) -> ScheduleExploration:
    """Explore every delivery order of ``protocol`` on ``network``.

    Parameters
    ----------
    network / protocol_factory:
        The instance under check; a fresh protocol is created once (its
        transition functions are shared; per-branch state is snapshotted).
    max_steps_total:
        Global budget on delivered messages across all branches; when
        exceeded the result is marked ``truncated`` and the
        ``always_terminates``/``never_terminates`` verdicts report
        inconclusive (False).
    invariant:
        Optional predicate over the vertex-state dict, checked after every
        delivery on every branch; a ``False`` return raises
        :class:`AssertionError` with the offending branch's depth.
        Providing an invariant forces object mode (the hook needs live
        per-vertex states).
    use_kernel:
        Force (``True``) or forbid (``False``) the flat-kernel walk;
        ``None`` (default) uses the kernel whenever the protocol offers a
        snapshot-capable one and no invariant was given.  Forcing ``True``
        raises :class:`ValueError` if the protocol cannot satisfy it.
    compiled:
        Optional pre-built :class:`~repro.network.fastpath.CompiledNetwork`
        for ``network`` — callers that explore many protocols on one
        topology (E14, the guided differential suite) compile once and
        pass it here, exactly like ``run_protocol_fastpath(compiled=...)``.
        Ignored (and recompiled) unless it wraps this very ``network``.
    digest:
        Optional override of the transposition-table digest function; see
        :class:`TranspositionTable`.  Testing/diagnostic hook.

    Notes
    -----
    Branches that reach the stopping predicate still continue to quiescence
    conceptually, but for outcome classification it suffices to record that
    termination was reached; the branch is closed at that point ("terminated"
    is absorbing for the paper's semantics — ``S`` is checked on ``t``'s
    monotone state).
    """
    protocol = protocol_factory()

    kernel = None
    if use_kernel is not False and invariant is None:
        from ..network.fastpath import CompiledNetwork

        if compiled is None or getattr(compiled, "network", None) is not network:
            compiled = CompiledNetwork(network)
        candidate = protocol.compile_fastpath(compiled)
        if (
            candidate is not None
            and callable(getattr(candidate, "snapshot", None))
            and callable(getattr(candidate, "restore", None))
        ):
            kernel = candidate
    if use_kernel is True and kernel is None:
        raise ValueError(
            "use_kernel=True but the protocol offers no snapshot-capable "
            "kernel (or an invariant hook forced object mode)"
        )

    if kernel is not None:
        return _explore_kernel(network, kernel, max_steps_total, digest)
    return _explore_object(network, protocol, max_steps_total, invariant, digest)


def _explore_object(
    network: DirectedNetwork,
    protocol: AnonymousProtocol,
    max_steps_total: int,
    invariant: Optional[Callable[[Dict[int, Any]], bool]],
    digest: Optional[Callable[[Any], int]],
) -> ScheduleExploration:
    """The general walk over live protocol states (clone_state branching)."""
    views = [
        VertexView(in_degree=network.in_degree(v), out_degree=network.out_degree(v))
        for v in range(network.num_vertices)
    ]
    init_states: Dict[int, Any] = {
        v: protocol.create_state(views[v]) for v in range(network.num_vertices)
    }
    # Pending items are (edge_id, payload, payload_repr): the repr is
    # computed once at emission and shared by every branch carrying it.
    initial_msgs: List[Tuple[int, Any, str]] = []
    for out_port, payload in protocol.initial_emissions(views[network.root]):
        edge = network.out_edge_ids(network.root)[out_port]
        initial_msgs.append((edge, payload, repr(payload)))

    outcomes: Set[str] = set()
    executions = 0
    steps = 0
    max_depth = 0
    truncated = False
    clone_state = protocol.clone_state
    clone_message = protocol.clone_message
    num_vertices = network.num_vertices

    def state_key(states: Dict[int, Any]) -> Tuple[str, ...]:
        # Reprs are complete for the shipped protocols' state types (the
        # GeneralState repr is kept exhaustive for exactly this purpose), so
        # equal keys really are confluent configurations.
        return tuple(repr(states[v]) for v in range(num_vertices))

    # Explicit DFS over (states, in-flight multiset) to avoid recursion
    # limits; each frame owns its copies.  Configurations are deduplicated
    # at push time, collapsing confluent schedule branches.
    table = TranspositionTable(digest)
    stack: List[Tuple[Dict[int, Any], List[Tuple[int, Any, str]], int]] = [
        (init_states, initial_msgs, 0)
    ]
    table.visit((_pending_sig(initial_msgs), state_key(init_states)))

    while stack:
        states, pending, depth = stack.pop()
        if not pending:
            outcomes.add("quiescent")
            executions += 1
            max_depth = max(max_depth, depth)
            continue
        if steps >= max_steps_total:
            truncated = True
            break

        for index in _distinct_choice_indices(pending):
            edge_id, payload, _text = pending[index]
            branch_states = {v: clone_state(s) for v, s in states.items()}
            branch_pending = pending[:index] + pending[index + 1 :]
            head = network.edge_head(edge_id)
            in_port = network.in_port_of_edge(edge_id)
            steps += 1
            new_state, emissions = protocol.on_receive(
                branch_states[head], views[head], in_port, clone_message(payload)
            )
            branch_states[head] = new_state
            if invariant is not None and not invariant(branch_states):
                raise AssertionError(
                    f"invariant violated after delivering edge {edge_id}"
                )
            for out_port, out_payload in emissions:
                out_edge = network.out_edge_ids(head)[out_port]
                branch_pending.append((out_edge, out_payload, repr(out_payload)))
            if head == network.terminal and protocol.is_terminated(new_state):
                outcomes.add("terminated")
                executions += 1
                max_depth = max(max_depth, depth + 1)
                continue
            key = (_pending_sig(branch_pending), state_key(branch_states))
            if table.visit(key):
                stack.append((branch_states, branch_pending, depth + 1))

    return ScheduleExploration(
        outcomes=outcomes,
        executions=executions,
        steps=steps,
        truncated=truncated,
        max_depth=max_depth,
        table=table.stats(),
    )


def _explore_kernel(
    network: DirectedNetwork,
    kernel: Any,
    max_steps_total: int,
    digest: Optional[Callable[[Any], int]],
) -> ScheduleExploration:
    """The flat walk: restore-snapshot-deliver on the compiled kernel.

    Structurally identical to :func:`_explore_object` — same frame order,
    same distinct-choice collapsing, same exact-configuration keys — so
    both modes report identical counts; only the cost of a branch differs
    (a tuple restore instead of a state-dict deepcopy/clone).
    """
    root = network.root
    terminal = network.terminal
    root_ports = network.out_edge_ids(root)
    out_edge_ids = [network.out_edge_ids(v) for v in range(network.num_vertices)]
    edge_head = [network.edge_head(e) for e in range(network.num_edges)]
    in_port_of = [network.in_port_of_edge(e) for e in range(network.num_edges)]

    initial_msgs: List[Tuple[int, Any, str]] = [
        (root_ports[out_port], payload, repr(payload))
        for out_port, payload, _bits in kernel.initial_emissions(root)
    ]
    init_snap = kernel.snapshot()

    outcomes: Set[str] = set()
    executions = 0
    steps = 0
    max_depth = 0
    truncated = False

    table = TranspositionTable(digest)
    stack: List[Tuple[Any, List[Tuple[int, Any, str]], int]] = [
        (init_snap, initial_msgs, 0)
    ]
    # Kernel snapshots are the exact state (flat tuples over immutable
    # leaves), so they key configurations precisely — no repr needed.
    table.visit((_pending_sig(initial_msgs), init_snap))

    while stack:
        snap, pending, depth = stack.pop()
        if not pending:
            outcomes.add("quiescent")
            executions += 1
            max_depth = max(max_depth, depth)
            continue
        if steps >= max_steps_total:
            truncated = True
            break

        for index in _distinct_choice_indices(pending):
            edge_id, payload, _text = pending[index]
            kernel.restore(snap)
            branch_pending = pending[:index] + pending[index + 1 :]
            head = edge_head[edge_id]
            steps += 1
            emissions = kernel.deliver(head, in_port_of[edge_id], payload)
            for out_port, out_payload, _bits in emissions:
                out_edge = out_edge_ids[head][out_port]
                branch_pending.append((out_edge, out_payload, repr(out_payload)))
            if head == terminal and kernel.check_terminal(terminal):
                outcomes.add("terminated")
                executions += 1
                max_depth = max(max_depth, depth + 1)
                continue
            branch_snap = kernel.snapshot()
            key = (_pending_sig(branch_pending), branch_snap)
            if table.visit(key):
                stack.append((branch_snap, branch_pending, depth + 1))

    return ScheduleExploration(
        outcomes=outcomes,
        executions=executions,
        steps=steps,
        truncated=truncated,
        max_depth=max_depth,
        table=table.stats(),
    )
