"""Multi-seed sweep statistics.

The experiment drivers report worst-seed numbers (bounds are worst-case
claims); for exploration and for EXPERIMENTS.md's narrative it is also
useful to see spread.  Two entry points share the aggregation:

* :func:`sweep_spec_metrics` — the spec-native form: clone one
  :class:`~repro.api.spec.RunSpec` across seeds, execute through a
  :class:`~repro.api.runner.BatchRunner`, aggregate the record metrics.
  Because the workload is a spec, a sweep can also be persisted, resumed
  and parallelised exactly like any other batch.
* :func:`sweep_metrics` — the original callable-based form for ad-hoc
  workloads that are not (yet) registry-addressable.

Both aggregate every numeric metric into (min, mean, max);
:func:`summarize` renders the aggregate for reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..api import BatchRunner, RunSpec
from ..core.model import AnonymousProtocol
from ..network.graph import DirectedNetwork
from ..network.simulator import run_protocol

__all__ = ["MetricSummary", "sweep_metrics", "sweep_spec_metrics", "summarize"]

#: Metrics every sweep aggregates, in report order.
SWEEP_METRICS = (
    "total_messages",
    "total_bits",
    "max_message_bits",
    "max_edge_bits",
    "termination_step",
)


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric over a sweep."""

    name: str
    minimum: float
    mean: float
    maximum: float
    samples: int

    @property
    def spread(self) -> float:
        """``max / min`` (∞-safe: 0 when the minimum is 0)."""
        if self.minimum == 0:
            return 0.0
        return self.maximum / self.minimum


def _aggregate(samples: Dict[str, List[float]]) -> Dict[str, MetricSummary]:
    return {
        name: MetricSummary(
            name=name,
            minimum=min(values),
            mean=sum(values) / len(values),
            maximum=max(values),
            samples=len(values),
        )
        for name, values in samples.items()
    }


def sweep_spec_metrics(
    base_spec: RunSpec,
    seeds: Sequence[int],
    *,
    require_termination: bool = True,
    runner: Optional[BatchRunner] = None,
    output_path: Optional[str] = None,
) -> Dict[str, MetricSummary]:
    """Sweep ``base_spec`` across ``seeds`` and aggregate the run metrics.

    Each seed yields ``base_spec.with_seed(seed)``; the batch executes on
    ``runner`` (default: in-process) and may be persisted/resumed through
    ``output_path`` like any other batch.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    specs = [base_spec.with_seed(seed) for seed in seeds]
    records = (runner or BatchRunner(parallel=False)).run(specs, output_path=output_path)
    samples: Dict[str, List[float]] = {name: [] for name in SWEEP_METRICS}
    for spec, record in zip(specs, records):
        if require_termination and not record.terminated:
            raise AssertionError(f"run for seed {spec.seed} did not terminate")
        for name in SWEEP_METRICS:
            value = record.metrics.get(name)
            samples[name].append(value if value is not None else 0)
    return _aggregate(samples)


def sweep_metrics(
    network_factory: Callable[[int], DirectedNetwork],
    protocol_factory: Callable[[], AnonymousProtocol],
    seeds: Sequence[int],
    *,
    require_termination: bool = True,
) -> Dict[str, MetricSummary]:
    """Run the workload across ``seeds`` and aggregate the run metrics.

    ``network_factory(seed)`` builds the per-seed input.  Metrics collected:
    ``total_messages``, ``total_bits``, ``max_message_bits``,
    ``max_edge_bits`` and ``termination_step``.  For registry-addressable
    workloads prefer :func:`sweep_spec_metrics`, which gains persistence,
    resume and parallelism for free.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: Dict[str, List[float]] = {name: [] for name in SWEEP_METRICS}
    for seed in seeds:
        network = network_factory(seed)
        result = run_protocol(network, protocol_factory())
        if require_termination and not result.terminated:
            raise AssertionError(f"run for seed {seed} did not terminate")
        metrics = result.metrics
        samples["total_messages"].append(metrics.total_messages)
        samples["total_bits"].append(metrics.total_bits)
        samples["max_message_bits"].append(metrics.max_message_bits)
        samples["max_edge_bits"].append(metrics.max_edge_bits)
        samples["termination_step"].append(
            metrics.termination_step if metrics.termination_step is not None else 0
        )
    return _aggregate(samples)


def summarize(summaries: Dict[str, MetricSummary]) -> List[Dict]:
    """Rows (for :func:`repro.analysis.report.render_table`) from a sweep."""
    return [
        {
            "metric": s.name,
            "min": s.minimum,
            "mean": round(s.mean, 2),
            "max": s.maximum,
            "spread": round(s.spread, 3),
            "n": s.samples,
        }
        for s in summaries.values()
    ]
