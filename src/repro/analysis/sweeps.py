"""Multi-seed sweep statistics.

The experiment drivers report worst-seed numbers (bounds are worst-case
claims); for exploration and for EXPERIMENTS.md's narrative it is also
useful to see spread.  :func:`sweep_metrics` runs a (graph, protocol)
workload across seeds and aggregates every numeric metric into
(min, mean, max); :func:`summarize` renders the aggregate for reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..core.model import AnonymousProtocol
from ..network.graph import DirectedNetwork
from ..network.simulator import run_protocol

__all__ = ["MetricSummary", "sweep_metrics", "summarize"]


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric over a sweep."""

    name: str
    minimum: float
    mean: float
    maximum: float
    samples: int

    @property
    def spread(self) -> float:
        """``max / min`` (∞-safe: 0 when the minimum is 0)."""
        if self.minimum == 0:
            return 0.0
        return self.maximum / self.minimum


def sweep_metrics(
    network_factory: Callable[[int], DirectedNetwork],
    protocol_factory: Callable[[], AnonymousProtocol],
    seeds: Sequence[int],
    *,
    require_termination: bool = True,
) -> Dict[str, MetricSummary]:
    """Run the workload across ``seeds`` and aggregate the run metrics.

    ``network_factory(seed)`` builds the per-seed input.  Metrics collected:
    ``total_messages``, ``total_bits``, ``max_message_bits``,
    ``max_edge_bits`` and ``termination_step``.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: Dict[str, List[float]] = {
        "total_messages": [],
        "total_bits": [],
        "max_message_bits": [],
        "max_edge_bits": [],
        "termination_step": [],
    }
    for seed in seeds:
        network = network_factory(seed)
        result = run_protocol(network, protocol_factory())
        if require_termination and not result.terminated:
            raise AssertionError(f"run for seed {seed} did not terminate")
        metrics = result.metrics
        samples["total_messages"].append(metrics.total_messages)
        samples["total_bits"].append(metrics.total_bits)
        samples["max_message_bits"].append(metrics.max_message_bits)
        samples["max_edge_bits"].append(metrics.max_edge_bits)
        samples["termination_step"].append(
            metrics.termination_step if metrics.termination_step is not None else 0
        )
    return {
        name: MetricSummary(
            name=name,
            minimum=min(values),
            mean=sum(values) / len(values),
            maximum=max(values),
            samples=len(values),
        )
        for name, values in samples.items()
    }


def summarize(summaries: Dict[str, MetricSummary]) -> List[Dict]:
    """Rows (for :func:`repro.analysis.report.render_table`) from a sweep."""
    return [
        {
            "metric": s.name,
            "min": s.minimum,
            "mean": round(s.mean, 2),
            "max": s.maximum,
            "spread": round(s.spread, 3),
            "n": s.samples,
        }
        for s in summaries.values()
    ]
