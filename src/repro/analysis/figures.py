"""Regenerate the paper's figures as GraphViz DOT artifacts.

The paper's Figures 4–6 are graph constructions (its Figures 1–3 illustrate
proof surgeries on generic trees).  :func:`generate_figures` writes one
annotated ``.dot`` file per figure into a directory so the witness graphs
can be rendered and compared with the paper's drawings; each entry also
returns the constructed :class:`~repro.network.graph.DirectedNetwork` for
programmatic use.  The cut-surgery illustration (Figure 1's ``G*``) is
produced by applying :func:`repro.graphs.constructions.truncate_at_cut` to
a concrete caterpillar cut.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Tuple

from ..graphs.constructions import (
    caterpillar_gn,
    full_tree_with_terminal,
    pruned_tree,
    skeleton_tree,
    truncate_at_cut,
)
from ..network.graph import DirectedNetwork

__all__ = ["paper_figures", "generate_figures"]


def paper_figures() -> Dict[str, Tuple[str, DirectedNetwork]]:
    """The figure id → (caption, witness graph) map."""
    caterpillar = caterpillar_gn(6)
    return {
        "figure1_cut_surgery": (
            "Figure 1: the G* surgery — a linear cut of a grounded tree with "
            "the crossing edges re-aimed at the terminal (shown on G_6, "
            "V1 = {s, v1, v2, v3}).",
            truncate_at_cut(caterpillar, {0, 2, 3, 4}),
        ),
        "figure4_skeleton_tree": (
            "Figure 4: the Theorem 3.8 skeleton tree for n = 3 with subset "
            "S = {u0, u4} wired into the collector w.",
            skeleton_tree(3, subset=[0, 4]),
        ),
        "figure5_caterpillar": (
            "Figure 5: the Theorem 3.2 witness G_6 — spine v1..v6, every "
            "spine vertex wired to t.",
            caterpillar,
        ),
        "figure6a_full_tree": (
            "Figure 6(a): the full binary tree of height 3, all leaves into t.",
            full_tree_with_terminal(2, 3),
        ),
        "figure6b_pruned_tree": (
            "Figure 6(b): the same tree pruned to one root-to-leaf path, "
            "off-path edges re-aimed at t with ports preserved.",
            pruned_tree(2, 3),
        ),
    }


def generate_figures(directory) -> Dict[str, pathlib.Path]:
    """Write every figure's DOT file into ``directory``; return the paths."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: Dict[str, pathlib.Path] = {}
    for name, (caption, network) in paper_figures().items():
        path = out_dir / f"{name}.dot"
        dot = network.to_dot(name=name)
        path.write_text(f"// {caption}\n{dot}\n", encoding="utf-8")
        written[name] = path
    return written
