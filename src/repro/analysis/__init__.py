"""Analysis layer: scaling fits, experiment drivers, and report rendering."""

from .experiments import ALL_EXPERIMENTS
from .report import format_value, render_table
from .figures import generate_figures, paper_figures
from .sweeps import MetricSummary, summarize, sweep_metrics
from .visualize import render_label_map, render_union
from .scaling import bound_ratios, is_flat, loglog_slope, ratio_band, semilog_slope

__all__ = [
    "ALL_EXPERIMENTS",
    "render_table",
    "format_value",
    "loglog_slope",
    "semilog_slope",
    "bound_ratios",
    "ratio_band",
    "is_flat",
    "MetricSummary",
    "sweep_metrics",
    "summarize",
    "render_union",
    "render_label_map",
    "paper_figures",
    "generate_figures",
]
