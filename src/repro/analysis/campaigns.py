"""The registered experiment campaigns ``e01`` … ``e18``.

Importing this module populates :data:`~repro.api.registry.EXPERIMENTS`
(:func:`repro.api.ensure_registered` does it for you): every paper
experiment becomes a registry entry, so ``repro list``, ``repro experiment``
and the benches all draw from one source of truth and a registered
experiment can never be missing from a listing.

Three kinds of entry:

* **Grid campaigns** — :class:`~repro.api.campaign.ExperimentSpec` whose
  axes expand to :class:`~repro.api.spec.RunSpec` lists and whose rows come
  from a records-level aggregator (E1, E3, E5, E8, E9, E10, E13, E15, E16,
  and the fault campaign E17, whose axes sweep ``faults`` payloads).
  These are pure data: serializable, resumable, engine-overridable.
* **White-box campaigns** — the same grid expansion, but the aggregator
  (registered here with ``white_box = True``) consumes live engine results
  because the rows inspect per-vertex states or protocol output
  (E6 labeling, E11 mapping, E12 label gap, E18 churn safety).
* **Driver experiments** — :class:`~repro.api.campaign.DriverExperiment`
  wrapping the lower-bound/exhaustive harnesses that do not execute specs
  at all (E2, E4, E7, E14), referenced lazily by dotted name so this
  module never imports :mod:`repro.analysis.experiments` (which imports
  us back).

Row shapes are frozen interfaces — they are compared verbatim against the
pre-campaign imperative drivers in
``tests/analysis/test_campaign_differential.py``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence, Tuple

from ..api.aggregators import grouped_by_spec_path
from ..api.campaign import DriverExperiment, ExperimentSpec, WhiteBoxRun, register_experiment
from ..api.registry import AGGREGATORS
from ..network.scheduler import standard_scheduler_specs

__all__ = [
    "scheduler_patches",
    "round_complexity_cases",
    "loss_rate_axis",
    "churn_scenarios",
    "STATE_SPACE_WORKLOADS",
    "labeling_quality",
    "mapping_accuracy",
    "label_gap",
    "churn_labeling",
    "trace_profile",
]


def scheduler_patches(random_seeds: int) -> List[Dict[str, Any]]:
    """The standard adversary batch as ``@scheduler`` patch-axis values."""
    return [
        {"scheduler": name, "scheduler_params": params}
        for name, params in standard_scheduler_specs(random_seeds=random_seeds)
    ]


def round_complexity_cases(sizes: Sequence[int]) -> List[Dict[str, Any]]:
    """E13's (tree, dag, general) workload triples as one patch axis.

    The general interval protocol is capped at 60 internal vertices per the
    original driver — its synchronous runs grow superlinearly — so the
    size relation is baked into the enumerated patches.
    """
    cases: List[Dict[str, Any]] = []
    for n in sizes:
        cases.append(
            {
                "graph": "random-grounded-tree",
                "graph_params": {"num_internal": n},
                "protocol": "tree-broadcast",
            }
        )
        cases.append(
            {
                "graph": "random-dag",
                "graph_params": {"num_internal": n},
                "protocol": "dag-broadcast",
            }
        )
        cases.append(
            {
                "graph": "random-digraph",
                "graph_params": {"num_internal": min(n, 60)},
                "protocol": "general-broadcast",
            }
        )
    return cases


def loss_rate_axis(rates: Sequence[float]) -> List[Dict[str, Any]]:
    """E17's ``faults`` axis: one fault payload per message-loss rate.

    ``FaultSpec.seed`` stays unset, so each run's fault RNG follows the
    run seed — a seed sweep varies topology and loss pattern together.
    """
    return [{"drop_probability": rate} for rate in rates]


def churn_scenarios(heavy: bool = True) -> List[Dict[str, Any]]:
    """E18's ``@scenario`` patch-axis values: named churn fault payloads.

    Vertex ids follow the generator convention (root 0, terminal 1,
    internal vertices from 2); steps are delivery steps.  The baseline
    scenario runs fault-free (``faults=None``) so every E18 table carries
    its own reliable-model control row.  ``heavy=False`` drops the
    heaviest scenario (the quick scale).
    """
    scenarios: List[Dict[str, Any]] = [
        {"label": "baseline", "faults": None},
        {
            "label": "brief-leave",
            "faults": {"churn": [{"vertex": 3, "leave_step": 10, "rejoin_step": 60}]},
        },
        {
            "label": "permanent-leave",
            "faults": {"churn": [{"vertex": 4, "leave_step": 15, "rejoin_step": None}]},
        },
    ]
    if heavy:
        scenarios.append(
            {
                "label": "double-churn",
                "faults": {
                    "churn": [
                        {"vertex": 2, "leave_step": 5, "rejoin_step": 40},
                        {"vertex": 5, "leave_step": 20, "rejoin_step": 90},
                    ]
                },
            }
        )
    return scenarios


#: E15's per-protocol workloads, in row-column order (tree/dag/general/labeling).
STATE_SPACE_WORKLOADS: List[Dict[str, str]] = [
    {"graph": "random-grounded-tree", "protocol": "tree-broadcast"},
    {"graph": "random-dag", "protocol": "dag-broadcast"},
    {"graph": "random-digraph", "protocol": "general-broadcast"},
    {"graph": "random-digraph", "protocol": "label-assignment"},
]


# ----------------------------------------------------------------------
# white-box aggregators (need live states, not just records)
# ----------------------------------------------------------------------


def _grouped_runs(
    runs: Sequence[WhiteBoxRun], path: str = "graph_params.num_internal"
) -> List[Tuple[Any, List[WhiteBoxRun]]]:
    return grouped_by_spec_path(runs, path, record_of=lambda run: run.record)


@AGGREGATORS.register("labeling-quality")
def labeling_quality(runs: Sequence[WhiteBoxRun]) -> List[Dict]:
    """E6: label uniqueness and size vs the ``|V| log d_out`` bound."""
    from ..core.complexity import label_length_bits_bound
    from ..core.intervals import union_cost
    from ..core.labeling import extract_labels, labels_pairwise_disjoint

    rows: List[Dict] = []
    for record, result, net in runs:
        assert record.terminated
        labels = extract_labels(result.states)
        label_list = list(labels.values())
        disjoint = labels_pairwise_disjoint(label_list)
        max_bits = max(union_cost(label) for label in label_list)
        bound = label_length_bits_bound(net)
        rows.append(
            {
                "n_internal": record.spec.graph_params["num_internal"],
                "V": record.num_vertices,
                "all_labeled": set(labels) == set(net.internal_vertices()),
                "labels_disjoint": disjoint,
                "max_label_bits": max_bits,
                "bound_VlogD": round(bound),
                "ratio": max_bits / bound,
            }
        )
    return rows


labeling_quality.white_box = True


@AGGREGATORS.register("mapping-accuracy")
def mapping_accuracy(runs: Sequence[WhiteBoxRun]) -> List[Dict]:
    """E11: exact topology reconstructions and worst-case cost per size."""
    from ..core.mapping import ROOT_MARKER, TERMINAL_MARKER

    rows: List[Dict] = []
    for n, group in _grouped_runs(runs):
        successes = 0
        count = 0
        messages = 0
        bits = 0
        for record, result, net in group:
            count += 1
            if record.terminated and result.output is not None:
                ident = {net.root: ROOT_MARKER, net.terminal: TERMINAL_MARKER}
                for v in net.internal_vertices():
                    ident[v] = result.states[v].base.label
                if result.output.matches_network(net, ident):
                    successes += 1
            messages = max(messages, record.metrics["total_messages"])
            bits = max(bits, record.metrics["total_bits"])
        rows.append(
            {
                "n_internal": n,
                "runs": count,
                "exact_reconstructions": successes,
                "messages_max": messages,
                "total_bits_max": bits,
            }
        )
    return rows


mapping_accuracy.white_box = True


@AGGREGATORS.register("label-gap")
def label_gap(runs: Sequence[WhiteBoxRun]) -> List[Dict]:
    """E12: directed Θ(|V|) vs undirected Θ(log |V|) label length."""
    from ..baselines.undirected import (
        DfsLabelingProtocol,
        UndirectedNetwork,
        run_undirected_protocol,
    )
    from ..core.intervals import union_cost

    rows: List[Dict] = []
    for record, directed, net in runs:
        assert record.terminated
        height = record.spec.graph_params["height"]
        label = directed.states[2 + height].label
        assert label is not None
        directed_bits = union_cost(label)

        undirected = UndirectedNetwork.from_directed(net)
        dfs = run_undirected_protocol(undirected, DfsLabelingProtocol(), seed=0)
        assert dfs.finished
        max_label = max(state["label"] for state in dfs.states.values())
        undirected_bits = max(1, math.ceil(math.log2(max_label + 1)))
        rows.append(
            {
                "V": record.num_vertices,
                "directed_label_bits": directed_bits,
                "undirected_label_bits": undirected_bits,
                "gap_factor": directed_bits / undirected_bits,
            }
        )
    return rows


label_gap.white_box = True


@AGGREGATORS.register("churn-labeling")
def churn_labeling(runs: Sequence[WhiteBoxRun]) -> List[Dict]:
    """E18: label uniqueness under node churn (white-box safety check).

    Churn breaks liveness — a vertex that leaves mid-run takes received
    commodity with it, so the terminal's accounting usually never closes —
    but it must never break *safety*: the labels held by live vertices
    stay pairwise disjoint even across state resets, because a reset only
    discards commodity and can never mint overlapping intervals.
    """
    from ..core.invariants import coverage_within_unit, labels_disjoint_globally

    rows: List[Dict] = []
    for record, result, net in runs:
        faults = record.spec.faults
        rows.append(
            {
                "scenario": record.spec.label or "baseline",
                "seed": record.spec.seed,
                "churn_events": len(faults.churn) if faults is not None else 0,
                "terminated": record.terminated,
                "labels_disjoint": labels_disjoint_globally(result.states),
                "coverage_safe": coverage_within_unit(result.states),
                "messages": record.metrics["total_messages"],
                "churned_deliveries": record.metrics.get("fault_churned", 0),
                "rejoins": record.metrics.get("fault_rejoined", 0),
            }
        )
    return rows


churn_labeling.white_box = True


@AGGREGATORS.register("trace-profile")
def trace_profile(runs: Sequence[WhiteBoxRun]) -> List[Dict]:
    """Per-run trace histogramming (message sizes, loads, termination).

    White-box: profiles the live in-memory :class:`~repro.network.trace.
    Trace` of each run (the campaign's specs must set ``record_trace``),
    so no ``.rtrace`` artifact is needed — the same
    :class:`~repro.tracing.profiler.TraceProfiler` also reads recorded
    files for ``repro trace profile``.  Rows carry the scalar profile
    plus the histogram spreads that summarize the distributions.
    """
    from ..tracing.profiler import TraceProfiler

    rows: List[Dict] = []
    for record, result, net in runs:
        trace = getattr(result, "trace", None)
        if trace is None:
            raise ValueError(
                "trace-profile is white-box over recorded traces: spec "
                f"{record.spec.spec_id} must set record_trace=True"
            )
        profile = TraceProfiler.from_trace(
            trace, net, termination_step=record.metrics.get("termination_step")
        ).profile()
        rows.append(
            {
                "protocol": record.spec.protocol,
                "graph": record.spec.graph,
                "seed": record.spec.seed,
                "V": record.num_vertices,
                "E": record.num_edges,
                "events": profile.events,
                "total_bits": profile.total_bits,
                "max_message_bits": profile.max_message_bits,
                "mean_message_bits": round(profile.mean_message_bits, 2),
                "distinct_sizes": len(profile.message_size_histogram),
                "max_edge_messages": profile.max_edge_messages,
                "max_vertex_load": profile.max_vertex_load,
                "termination_step": profile.termination_step,
            }
        )
    return rows


trace_profile.white_box = True


# ----------------------------------------------------------------------
# grid campaigns
# ----------------------------------------------------------------------

register_experiment(
    ExperimentSpec(
        name="e01",
        title="Thm 3.1  grounded-tree broadcast upper bound",
        base={"graph": "random-grounded-tree", "protocol": "tree-broadcast"},
        axes={
            "graph_params.num_internal": [50, 100, 200, 400, 800],
            "seed": [0, 1, 2],
        },
        aggregator="worst-seed",
        aggregator_params={"bound": "tree", "bound_key": "bound_E_logE"},
        scales={"quick": {"graph_params.num_internal": [50, 100, 200], "seed": [0]}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e03",
        title="§3.3     DAG broadcast upper bound",
        base={"graph": "random-dag", "protocol": "dag-broadcast"},
        axes={"graph_params.num_internal": [25, 50, 100, 200], "seed": [0]},
        aggregator="bound-ratio",
        aggregator_params={
            "bound": "dag",
            "bound_key": "bound_E2",
            "columns": [
                "n_internal",
                "E",
                "messages",
                "one_msg_per_edge",
                "total_bits",
                "max_msg_bits",
            ],
        },
        scales={"quick": {"graph_params.num_internal": [20, 40]}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e05",
        title="Thm 4.2  general-graph broadcast upper bound",
        base={"graph": "random-digraph", "protocol": "general-broadcast"},
        axes={"graph_params.num_internal": [10, 20, 40, 80], "seed": [0]},
        aggregator="bound-ratio",
        aggregator_params={
            "bound": "general",
            "bound_key": "bound_E2VlogD",
            "columns": [
                "n_internal",
                "V",
                "E",
                "messages",
                "total_bits",
                "max_msg_bits",
                "max_edge_bits",
            ],
        },
        scales={"quick": {"graph_params.num_internal": [10, 20]}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e06",
        title="Thm 5.1  unique labeling upper bound",
        base={"graph": "random-digraph", "protocol": "label-assignment"},
        axes={"graph_params.num_internal": [10, 20, 40, 80], "seed": [0]},
        aggregator="labeling-quality",
        scales={"quick": {"graph_params.num_internal": [10, 20]}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e08",
        title="iff      non-termination on disconnected graphs",
        base={"graph": "random-digraph"},
        axes={
            "protocol": ["general-broadcast", "label-assignment", "topology-mapping"],
            "graph_params.num_internal": [8, 14],
            "seed": [0, 1],
            "graph_transforms": [["with-dead-end-vertex"], ["with-stranded-cycle"]],
            "@scheduler": scheduler_patches(random_seeds=1),
        },
        aggregator="false-terminations",
        aggregator_params={"rename": {"topology-mapping": "mapping"}},
        scales={"quick": {"graph_params.num_internal": [8], "seed": [0]}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e09",
        title="§3.1     ablation: naive vs power-of-two split",
        base={"graph": "random-grounded-tree", "seed": 0},
        axes={
            "graph_params.num_internal": [50, 100, 200, 400],
            "protocol": ["naive-tree-broadcast", "tree-broadcast"],
        },
        aggregator="split-ablation",
        scales={"quick": {"graph_params.num_internal": [50, 100]}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e10",
        title="§3.3     ablation: eager vs aggregated commodity",
        base={"graph": "layered-diamond-dag"},
        axes={
            "graph_params.depth": [2, 4, 6, 8, 10, 12],
            "protocol": ["eager-dag-broadcast", "dag-broadcast"],
        },
        aggregator="eager-ablation",
        scales={"quick": {"graph_params.depth": [2, 4, 6]}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e11",
        title="§6       topology mapping",
        base={"graph": "random-digraph", "protocol": "topology-mapping"},
        axes={"graph_params.num_internal": [10, 20, 40], "seed": [0, 1, 2]},
        aggregator="mapping-accuracy",
        scales={"quick": {"graph_params.num_internal": [10], "seed": [0, 1]}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e12",
        title="§6       directed/undirected label gap",
        base={
            "graph": "pruned-tree",
            "graph_params": {"degree": 2},
            "protocol": "label-assignment",
        },
        axes={"graph_params.height": [4, 8, 16, 32, 64]},
        aggregator="label-gap",
        scales={"quick": {"graph_params.height": [4, 8]}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e13",
        title="§2       synchronous round complexity",
        base={"engine": "synchronous", "seed": 0},
        axes={"seed": [0], "@case": round_complexity_cases([25, 50, 100, 200])},
        aggregator="round-complexity",
        engine_locked=True,
        scales={"quick": {"@case": round_complexity_cases([25, 50])}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e15",
        title="§2       per-vertex state-space (memory) measure",
        base={"seed": 0, "track_state_bits": True},
        axes={
            "graph_params.num_internal": [10, 20, 40],
            "@workload": STATE_SPACE_WORKLOADS,
        },
        aggregator="state-space",
        scales={"quick": {"graph_params.num_internal": [10, 20]}},
    )
)

register_experiment(
    ExperimentSpec(
        name="e16",
        title="ablation scheduler (adversary) cost sensitivity",
        base={
            "graph": "random-digraph",
            "graph_params": {"num_internal": 30},
            "protocol": "general-broadcast",
            "seed": 0,
        },
        axes={"@scheduler": scheduler_patches(random_seeds=2)},
        aggregator="scheduler-spread",
        scales={"quick": {"@scheduler": scheduler_patches(random_seeds=1)}},
    )
)


register_experiment(
    ExperimentSpec(
        name="e17",
        title="faults   broadcast termination vs. message-loss rate",
        base={
            "graph": "random-digraph",
            "graph_params": {"num_internal": 16},
            "protocol": "general-broadcast",
        },
        axes={
            "faults": loss_rate_axis([0.0, 0.02, 0.05, 0.1, 0.2, 0.4]),
            "seed": [0, 1, 2, 3, 4, 5, 6, 7],
        },
        aggregator="loss-termination",
        scales={
            "quick": {
                "faults": loss_rate_axis([0.0, 0.1, 0.3]),
                "seed": [0, 1, 2],
            }
        },
    )
)

register_experiment(
    ExperimentSpec(
        name="e18",
        title="faults   labeling uniqueness under node churn",
        base={
            "graph": "random-digraph",
            "graph_params": {"num_internal": 12},
            "protocol": "label-assignment",
        },
        axes={
            "@scenario": churn_scenarios(),
            "seed": [0, 1, 2],
        },
        aggregator="churn-labeling",
        scales={
            "quick": {
                "@scenario": churn_scenarios(heavy=False),
                "seed": [0, 1],
            }
        },
    )
)


# ----------------------------------------------------------------------
# driver experiments (no RunSpec grid: lower-bound / exhaustive harnesses)
# ----------------------------------------------------------------------

register_experiment(
    DriverExperiment(
        name="e02",
        title="Thm 3.2  G_n alphabet lower bound (Fig 5)",
        driver="repro.analysis.experiments:experiment_e02_tree_lowerbound",
        scales={"quick": {"ns": [4, 8, 16]}},
    )
)

register_experiment(
    DriverExperiment(
        name="e04",
        title="Thm 3.8  commodity bandwidth lower bound (Fig 4)",
        driver="repro.analysis.experiments:experiment_e04_commodity_lowerbound",
        scales={"quick": {"ns": [2, 4], "subset_n": 4}},
    )
)

register_experiment(
    DriverExperiment(
        name="e07",
        title="Thm 5.2  label-length lower bound (Fig 6)",
        driver="repro.analysis.experiments:experiment_e07_label_lowerbound",
        scales={"quick": {"cases": [[2, 4], [2, 8]]}},
    )
)

register_experiment(
    DriverExperiment(
        name="e14",
        title="beyond   exhaustive ∀-schedule ∀-topology verification",
        driver="repro.analysis.experiments:experiment_e14_exhaustive_verification",
        scales={"quick": {"max_wiring_edges": 4, "tree_internal": 2}},
    )
)

register_experiment(
    DriverExperiment(
        name="e19",
        title="beyond   guided worst-case schedule search + certificates",
        driver="repro.analysis.experiments:experiment_e19_schedule_search",
        scales={"quick": {"ns": [2, 3], "max_nodes": 6000}},
    )
)
