"""Scaling-shape analysis.

The paper's claims are asymptotic; the reproduction checks *shapes*:

* an upper bound ``f(G)`` has the right shape for measured costs ``c(G)``
  when the ratio ``c/f`` stays within a constant band as the family grows
  (:func:`bound_ratios`, :func:`ratio_band`);
* growth exponents are estimated by least-squares in log-log space
  (:func:`loglog_slope`) — e.g. total bits vs ``|E|`` on grounded trees
  should fit a slope just above 1 (the ``E log E`` shape), and the eager
  ablation's message count vs diamond depth should fit slope ≈ ``log 2`` in
  semi-log space (:func:`semilog_slope`).

Pure Python on purpose: a handful of regressions does not justify a numpy
dependency in the core analysis path (numpy remains an optional extra for
notebook-style exploration).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = [
    "loglog_slope",
    "semilog_slope",
    "bound_ratios",
    "ratio_band",
    "is_flat",
]


def _least_squares_slope(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Slope and intercept of the least-squares line through (xs, ys)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denom = sum((x - mean_x) ** 2 for x in xs)
    if denom == 0:
        raise ValueError("degenerate x values")
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denom
    return slope, mean_y - slope * mean_x


def loglog_slope(sizes: Sequence[float], costs: Sequence[float]) -> float:
    """Growth exponent: the slope of ``log cost`` against ``log size``.

    A cost of ``Θ(size^k)`` fits slope ``k``; ``Θ(size log size)`` fits a
    slope slightly above 1 that decreases toward 1 as sizes grow.
    """
    return _least_squares_slope(
        [math.log(s) for s in sizes], [math.log(max(c, 1e-12)) for c in costs]
    )[0]


def semilog_slope(sizes: Sequence[float], costs: Sequence[float]) -> float:
    """Exponential-growth rate: slope of ``log₂ cost`` against ``size``.

    A cost of ``Θ(2^size)`` fits slope ≈ 1; polynomial costs fit slopes that
    shrink toward 0 as sizes grow.
    """
    return _least_squares_slope(list(sizes), [math.log2(max(c, 1e-12)) for c in costs])[0]


def bound_ratios(costs: Sequence[float], bounds: Sequence[float]) -> List[float]:
    """Pointwise ``cost / bound`` (the bound-shape diagnostic)."""
    if len(costs) != len(bounds):
        raise ValueError("length mismatch")
    return [c / b for c, b in zip(costs, bounds)]


def ratio_band(ratios: Sequence[float]) -> Tuple[float, float]:
    """The (min, max) of the ratios — the constant band."""
    return min(ratios), max(ratios)


def is_flat(ratios: Sequence[float], *, tolerance: float = 4.0) -> bool:
    """True iff max/min ratio stays within ``tolerance``.

    ``tolerance=4`` is deliberately generous: small-size boundary effects
    (encoding overheads, the ``log`` clamps) wash out slowly.  The tests
    that assert shape use growing families where a genuinely wrong shape
    (e.g. an extra ``|E|`` factor) blows past any constant band quickly.
    """
    lo, hi = ratio_band(ratios)
    if lo <= 0:
        return False
    return hi / lo <= tolerance
