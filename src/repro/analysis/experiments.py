"""Experiment drivers E1–E18 — the paper's objects plus the fault axis.

Each ``experiment_eNN`` function runs the full workload for its experiment
and returns a list of dict rows; the matching bench in ``benchmarks/``
prints the rows and asserts the expected shape, and EXPERIMENTS.md records a
snapshot.  Sizes default to values that keep a full sweep comfortably inside
a laptop run; every driver takes explicit parameters so larger sweeps are a
call away.

Since the campaign redesign, the simulation-backed drivers are thin
keyword-argument veneers over the *registered experiment campaigns* in
:mod:`repro.analysis.campaigns`: each one looks up its
:class:`~repro.api.campaign.ExperimentSpec` in
:data:`~repro.api.registry.EXPERIMENTS`, swaps in the caller's grid axes
via :meth:`~repro.api.campaign.ExperimentSpec.with_overrides`, and executes
it with an in-process :class:`~repro.api.campaign.CampaignRunner` — so
``experiment_e05_general_broadcast()`` and
``repro experiment e05`` run the *same* declarative campaign.  The
white-box experiments (E6, E11, E12) wrap the same grid expansion with
``white_box`` aggregators that inspect live per-vertex states.  Only the
lower-bound and exhaustive-verification harnesses (E2, E4, E7, E14) remain
imperative here; they are registered as
:class:`~repro.api.campaign.DriverExperiment` entries.

Engine selection is an explicit ``engine=...`` keyword on the
simulation-backed drivers (or ``CampaignRunner(engine=...)``); the old
mutable ``_ENGINE_STACK`` global is gone and :func:`experiments_engine`
survives only as a deprecated shim for one release.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

from ..api import EXPERIMENTS, PROTOCOLS
from ..api.campaign import CampaignRunner, ExperimentSpec
from ..graphs.enumerate_graphs import all_grounded_trees, all_internal_wirings
from ..lowerbounds.alphabet import alphabet_on_gn
from ..lowerbounds.commodity import (
    bandwidth_growth,
    collect_subset_sums,
    hair_quantities,
    verify_inequality_chain,
)
from ..lowerbounds.labels import label_growth_on_pruned, pruning_preserves_label
from ..lowerbounds.schedules import explore_all_schedules
from . import campaigns as _campaigns  # noqa: F401  (registers EXPERIMENTS)

__all__ = [
    "experiment_e01_tree_broadcast",
    "experiment_e02_tree_lowerbound",
    "experiment_e03_dag_broadcast",
    "experiment_e04_commodity_lowerbound",
    "experiment_e05_general_broadcast",
    "experiment_e06_labeling",
    "experiment_e07_label_lowerbound",
    "experiment_e08_nontermination",
    "experiment_e09_split_ablation",
    "experiment_e10_eager_ablation",
    "experiment_e11_mapping",
    "experiment_e12_gap",
    "experiment_e13_round_complexity",
    "experiment_e14_exhaustive_verification",
    "experiment_e15_state_space",
    "experiment_e16_scheduler_sensitivity",
    "experiment_e17_loss_termination",
    "experiment_e18_churn_labeling",
    "experiment_e19_schedule_search",
    "experiments_engine",
    "ALL_EXPERIMENTS",
]

#: Deprecated engine-override stack backing :func:`experiments_engine`.
#: New code passes ``engine=...`` explicitly; this exists only so the shim
#: can keep working for one release.
_DEPRECATED_ENGINE_OVERRIDE: List[str] = []


@contextmanager
def experiments_engine(engine: str):
    """Deprecated: run the enclosed drivers under a different engine.

    .. deprecated:: 1.2
        Pass ``engine=...`` to the experiment functions, or use
        :class:`repro.api.CampaignRunner` with an ``engine`` override
        (CLI: ``repro experiment e05 --engine fastpath``).  This shim will
        be removed in the next release.
    """
    warnings.warn(
        "experiments_engine() is deprecated; pass engine=... to the experiment "
        "functions or use repro.api.CampaignRunner(engine=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    _DEPRECATED_ENGINE_OVERRIDE.append(engine)
    try:
        yield
    finally:
        _DEPRECATED_ENGINE_OVERRIDE.pop()


def _experiment(name: str) -> ExperimentSpec:
    spec = EXPERIMENTS.get(name)
    assert isinstance(spec, ExperimentSpec), name
    return spec


def _campaign_rows(experiment: ExperimentSpec, engine: Optional[str]) -> List[Dict]:
    """Execute a campaign serially in-process and return its rows.

    Serial on purpose — process-level parallelism belongs to the CLI
    (``repro experiment``/``repro batch``), and nesting pools inside
    drivers would oversubscribe it.
    """
    if engine is None and _DEPRECATED_ENGINE_OVERRIDE:
        engine = _DEPRECATED_ENGINE_OVERRIDE[-1]
    return CampaignRunner(engine=engine, parallel=False).run(experiment).rows


def experiment_e01_tree_broadcast(
    sizes: Sequence[int] = (50, 100, 200, 400, 800),
    seeds: Sequence[int] = (0, 1, 2),
    engine: Optional[str] = None,
) -> List[Dict]:
    """E1 / Theorem 3.1: grounded-tree broadcast cost vs ``|E| log |E|``."""
    exp = _experiment("e01").with_overrides(
        axes={"graph_params.num_internal": list(sizes), "seed": list(seeds)}
    )
    return _campaign_rows(exp, engine)


def experiment_e02_tree_lowerbound(ns: Sequence[int] = (4, 8, 16, 32, 64, 128, 256)) -> List[Dict]:
    """E2 / Theorem 3.2, Figure 5: alphabet growth and bit floor on ``Gₙ``."""
    rows: List[Dict] = []
    for row in alphabet_on_gn(PROTOCOLS.get("tree-broadcast"), ns):
        rows.append(
            {
                "n": row.n,
                "E": row.num_edges,
                "distinct_symbols": row.distinct_symbols,
                "at_least_n": row.distinct_symbols >= row.n,
                "huffman_floor_bits": row.floor_bits,
                "measured_bits": row.measured_bits,
                "floor/(E·logE)": row.floor_per_edge_log_e,
            }
        )
    return rows


def experiment_e03_dag_broadcast(
    sizes: Sequence[int] = (25, 50, 100, 200),
    seeds: Sequence[int] = (0, 1, 2),
    engine: Optional[str] = None,
) -> List[Dict]:
    """E3 / Section 3.3: DAG broadcast; one message per edge, dyadic widths."""
    exp = _experiment("e03").with_overrides(
        axes={"graph_params.num_internal": list(sizes), "seed": list(seeds[:1])}
    )
    return _campaign_rows(exp, engine)


def experiment_e04_commodity_lowerbound(
    ns: Sequence[int] = (2, 4, 6, 8, 12, 16), subset_n: int = 6
) -> List[Dict]:
    """E4 / Theorem 3.8, Figure 4: skeleton-tree subset sums and bandwidth."""
    dag_protocol = PROTOCOLS.get("dag-broadcast")
    sums = collect_subset_sums(subset_n, dag_protocol)
    distinct = len(set(sums.values()))
    chain_ok = verify_inequality_chain(hair_quantities(subset_n, dag_protocol), subset_n)
    rows: List[Dict] = []
    for row in bandwidth_growth(ns, dag_protocol):
        rows.append(
            {
                "n": row.n,
                "E": row.num_edges,
                "max_msg_bits": row.max_message_bits,
                "bits_per_E": row.max_message_bits / row.num_edges,
                "subset_count": len(sums) if row.n == subset_n else "",
                "distinct_sums": distinct if row.n == subset_n else "",
                "chain_(1)_holds": chain_ok if row.n == subset_n else "",
            }
        )
    return rows


def experiment_e05_general_broadcast(
    sizes: Sequence[int] = (10, 20, 40, 80),
    seeds: Sequence[int] = (0, 1),
    engine: Optional[str] = None,
) -> List[Dict]:
    """E5 / Theorems 4.2–4.3: interval broadcast on cyclic digraphs."""
    exp = _experiment("e05").with_overrides(
        axes={"graph_params.num_internal": list(sizes), "seed": list(seeds[:1])}
    )
    return _campaign_rows(exp, engine)


def experiment_e06_labeling(
    sizes: Sequence[int] = (10, 20, 40, 80),
    seeds: Sequence[int] = (0, 1),
    engine: Optional[str] = None,
) -> List[Dict]:
    """E6 / Theorem 5.1: label uniqueness and size vs ``|V| log d_out``."""
    exp = _experiment("e06").with_overrides(
        axes={"graph_params.num_internal": list(sizes), "seed": list(seeds[:1])}
    )
    return _campaign_rows(exp, engine)


def experiment_e07_label_lowerbound(
    cases: Sequence[tuple] = ((2, 4), (2, 8), (2, 16), (2, 32), (3, 8), (4, 8))
) -> List[Dict]:
    """E7 / Theorem 5.2, Figure 6: pruning preserves labels; size grows
    ``Θ(h log d)`` on an ``(h+3)``-vertex graph."""
    rows: List[Dict] = []
    preserved = {
        (d, h): pruning_preserves_label(d, h)
        for d, h in cases
        if d ** h <= 4096  # full-tree runs stay tractable
    }
    for row in label_growth_on_pruned(cases):
        key = (row.degree, row.height)
        rows.append(
            {
                "degree": row.degree,
                "height": row.height,
                "V_pruned": row.num_vertices_pruned,
                "leaf_label_bits": row.leaf_label_bits,
                "bits/(h·logd)": row.bits_per_h_log_d,
                "pruning_identical": preserved.get(key, ""),
            }
        )
    return rows


def experiment_e08_nontermination(
    sizes: Sequence[int] = (8, 14),
    seeds: Sequence[int] = (0, 1),
    engine: Optional[str] = None,
) -> List[Dict]:
    """E8: the "iff" direction — zero false terminations on bad graphs."""
    exp = _experiment("e08").with_overrides(
        axes={"graph_params.num_internal": list(sizes), "seed": list(seeds)}
    )
    return _campaign_rows(exp, engine)


def experiment_e09_split_ablation(
    sizes: Sequence[int] = (50, 100, 200, 400),
    seed: int = 0,
    engine: Optional[str] = None,
) -> List[Dict]:
    """E9 / Section 3.1 ablation: naive ``x/d`` split vs power-of-two split."""
    exp = _experiment("e09").with_overrides(
        axes={"graph_params.num_internal": list(sizes)}, base={"seed": seed}
    )
    return _campaign_rows(exp, engine)


def experiment_e10_eager_ablation(
    depths: Sequence[int] = (2, 4, 6, 8, 10, 12), engine: Optional[str] = None
) -> List[Dict]:
    """E10 / Section 3.3 ablation: eager vs aggregating DAG commodity."""
    exp = _experiment("e10").with_overrides(axes={"graph_params.depth": list(depths)})
    return _campaign_rows(exp, engine)


def experiment_e11_mapping(
    sizes: Sequence[int] = (10, 20, 40),
    seeds: Sequence[int] = (0, 1, 2),
    engine: Optional[str] = None,
) -> List[Dict]:
    """E11 / Section 6: topology reconstruction success and cost."""
    exp = _experiment("e11").with_overrides(
        axes={"graph_params.num_internal": list(sizes), "seed": list(seeds)}
    )
    return _campaign_rows(exp, engine)


def experiment_e12_gap(
    heights: Sequence[int] = (4, 8, 16, 32, 64), engine: Optional[str] = None
) -> List[Dict]:
    """E12 / Section 6: the exponential gap, directed vs undirected labels.

    Both protocols label the *same* topology: the Figure-6 pruned tree (the
    directed lower-bound witness) and its undirected shadow.  Directed
    labels must grow ``Θ(|V|)``; undirected DFS labels ``Θ(log |V|)``.
    """
    exp = _experiment("e12").with_overrides(axes={"graph_params.height": list(heights)})
    return _campaign_rows(exp, engine)


def experiment_e13_round_complexity(
    sizes: Sequence[int] = (25, 50, 100, 200), seeds: Sequence[int] = (0, 1)
) -> List[Dict]:
    """E13 / §2 synchronous extension: rounds-to-termination vs path depth.

    In lockstep rounds the commodity protocols terminate after exactly the
    longest root-to-terminal chain of waits: on trees and DAGs that is the
    longest directed path; on cyclic digraphs the interval protocol adds
    cycle-detection and β-flood traversals on top (reported as a multiple
    of |V| for scale).  The engine is part of the experiment's semantics
    (``engine_locked``), so there is no ``engine`` parameter here.
    """
    exp = _experiment("e13").with_overrides(
        axes={
            "seed": list(seeds[:1]),
            "@case": _campaigns.round_complexity_cases(sizes),
        }
    )
    return _campaign_rows(exp, None)


def experiment_e14_exhaustive_verification(
    max_wiring_edges: int = 5, tree_internal: int = 3
) -> List[Dict]:
    """E14 (beyond the paper): exhaustive ∀-schedule, ∀-topology checking.

    Model-checks the termination "iff" over *every* delivery schedule on
    *every* small topology: all grounded trees with ``tree_internal``
    internal vertices under the tree protocol, and all 2-internal-vertex
    wirings (cycles and self-loops included) with at most
    ``max_wiring_edges`` edges under the general interval protocol.  The
    state spaces are exhausted (no truncation permitted), so on these
    instances the theorem holds with certainty rather than confidence.
    """
    rows: List[Dict] = []

    tree_count = 0
    tree_steps = 0
    tree_protocol = PROTOCOLS.get("tree-broadcast")
    for net in all_grounded_trees(tree_internal):
        result = explore_all_schedules(net, tree_protocol)
        assert not result.truncated
        assert result.always_terminates
        tree_count += 1
        tree_steps += result.steps
    rows.append(
        {
            "family": f"all grounded trees (k={tree_internal})",
            "protocol": "tree-broadcast",
            "topologies": tree_count,
            "delivered_msgs_explored": tree_steps,
            "iff_violations": 0,
        }
    )

    wiring_count = 0
    wiring_steps = 0
    violations = 0
    general_protocol = PROTOCOLS.get("general-broadcast")
    for net in all_internal_wirings(2):
        if net.num_edges > max_wiring_edges:
            continue
        result = explore_all_schedules(net, general_protocol, max_steps_total=400_000)
        assert not result.truncated
        expected = net.all_connected_to_terminal()
        ok = result.always_terminates if expected else result.never_terminates
        if not ok:
            violations += 1
        wiring_count += 1
        wiring_steps += result.steps
    rows.append(
        {
            "family": f"all 2-internal wirings (|E|<={max_wiring_edges})",
            "protocol": "general-broadcast",
            "topologies": wiring_count,
            "delivered_msgs_explored": wiring_steps,
            "iff_violations": violations,
        }
    )
    return rows


def experiment_e15_state_space(
    sizes: Sequence[int] = (10, 20, 40), seed: int = 0, engine: Optional[str] = None
) -> List[Dict]:
    """E15 / §2: the state-space quality measure, measured.

    Section 2 lists "the size of the state space … related to the amount of
    memory needed at each vertex" among the quality parameters but proves
    nothing about it.  We measure the per-vertex state high-water mark (in
    encoded bits) for each protocol on a common graph family: the scalar
    protocols need O(|E|)-bit states at most, while the interval protocols'
    states grow with the commodity fragmentation — the memory price of
    cycle detection.
    """
    exp = _experiment("e15").with_overrides(
        axes={"graph_params.num_internal": list(sizes)}, base={"seed": seed}
    )
    return _campaign_rows(exp, engine)


def experiment_e16_scheduler_sensitivity(
    n_internal: int = 30, seed: int = 0, engine: Optional[str] = None
) -> List[Dict]:
    """E16 (ablation): how much the asynchronous adversary costs.

    Same graph, same protocol, every scheduler: correctness (termination,
    delivery) is identical by the ∀-schedule theorems, but the *cost* of the
    interval protocol varies — adversaries that starve the terminal or
    deliver depth-first maximise cycle churn (β re-floods) before the
    accounting can close.  This quantifies the spread the upper bounds must
    absorb.
    """
    exp = _experiment("e16").with_overrides(
        base={"graph_params.num_internal": n_internal, "seed": seed}
    )
    return _campaign_rows(exp, engine)


def experiment_e17_loss_termination(
    rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2, 0.4),
    seeds: Sequence[int] = (0, 1, 2, 3, 4, 5, 6, 7),
    n_internal: int = 16,
    engine: Optional[str] = None,
) -> List[Dict]:
    """E17 (faults): broadcast termination rate vs. message-loss rate.

    The paper's protocols assume reliable delivery; under seeded message
    loss they must fail *safe* — the termination rate decays toward zero
    as the loss rate rises, and every non-terminating run ends quiescent,
    never falsely terminated (lost commodity can only delay the terminal's
    accounting forever, not complete it spuriously).
    """
    from .campaigns import loss_rate_axis

    exp = _experiment("e17").with_overrides(
        axes={"faults": loss_rate_axis(rates), "seed": list(seeds)},
        base={"graph_params.num_internal": n_internal},
    )
    return _campaign_rows(exp, engine)


def experiment_e18_churn_labeling(
    seeds: Sequence[int] = (0, 1, 2),
    n_internal: int = 12,
    engine: Optional[str] = None,
) -> List[Dict]:
    """E18 (faults): label uniqueness under node churn.

    Vertices leave mid-run (their deliveries are swallowed) and rejoin
    with reset state — the self-stabilization notion of a transient node.
    Liveness goes (the runs usually end quiescent), but the white-box rows
    check that *safety* holds: live vertices' labels stay pairwise
    disjoint and coverage stays within the unit interval across resets.
    """
    exp = _experiment("e18").with_overrides(
        axes={"seed": list(seeds)},
        base={"graph_params.num_internal": n_internal},
    )
    return _campaign_rows(exp, engine)


def experiment_e19_schedule_search(
    ns: Sequence[int] = (2, 3, 4),
    objective: str = "max-steps",
    max_nodes: int = 20_000,
    seed: int = 0,
    store=None,
    max_workers: Optional[int] = None,
) -> List[Dict]:
    """E19 (beyond the paper): guided adversarial schedule search vs. n.

    The ∀-schedule theorems say the protocols terminate under *every*
    adversary; E14 exhausts tiny schedule trees to confirm it.  E19 asks
    the complementary worst-case question at sizes exhaustion cannot
    reach: *how bad* can an adversary make the execution?  A best-first
    branch-and-bound search (:mod:`repro.lowerbounds.guided`) drives the
    general protocol on random digraphs toward the objective's worst
    leaf, and each row's incumbent is emitted as a replayable
    :class:`~repro.lowerbounds.certificates.ScheduleCertificate` — an
    artifact any third party can check bit-for-bit without trusting the
    search.  When a result store is attached (``repro experiment e19
    --store``), certificates also land under ``<store>/schedules/``.
    """
    from ..api.spec import RunSpec
    from ..lowerbounds.certificates import search_and_certify, store_certificate

    rows: List[Dict] = []
    for n in ns:
        spec = RunSpec(
            graph="random-digraph",
            graph_params={"num_internal": n, "seed": seed},
            protocol="general-broadcast",
            seed=seed,
        )
        network = spec.build_graph()
        result, certificate = search_and_certify(
            spec, objective=objective, max_nodes=max_nodes, max_workers=max_workers
        )
        row = {
            "n": n,
            "vertices": network.num_vertices,
            "edges": network.num_edges,
            "protocol": spec.protocol,
            "objective": objective,
            "worst_steps": result.best_depth,
            "worst_bits": result.best_bits,
            "outcome": result.best_outcome,
            "nodes": result.nodes,
            "nodes_at_best": result.nodes_at_best,
            "executions": result.executions,
            "exhausted": not result.truncated,
            "mode": result.mode,
            "shards": result.shards,
            "certificate": certificate.cert_id if certificate is not None else None,
        }
        if certificate is not None and store is not None:
            row["certificate_path"] = store_certificate(store, certificate)
        rows.append(row)
    return rows


#: Name → driver, used by the report CLI and the EXPERIMENTS.md generator.
#: ``repro list`` derives from the EXPERIMENTS registry instead; a parity
#: test keeps the two views identical.
ALL_EXPERIMENTS = {
    "E1": experiment_e01_tree_broadcast,
    "E2": experiment_e02_tree_lowerbound,
    "E3": experiment_e03_dag_broadcast,
    "E4": experiment_e04_commodity_lowerbound,
    "E5": experiment_e05_general_broadcast,
    "E6": experiment_e06_labeling,
    "E7": experiment_e07_label_lowerbound,
    "E8": experiment_e08_nontermination,
    "E9": experiment_e09_split_ablation,
    "E10": experiment_e10_eager_ablation,
    "E11": experiment_e11_mapping,
    "E12": experiment_e12_gap,
    "E13": experiment_e13_round_complexity,
    "E14": experiment_e14_exhaustive_verification,
    "E15": experiment_e15_state_space,
    "E16": experiment_e16_scheduler_sensitivity,
    "E17": experiment_e17_loss_termination,
    "E18": experiment_e18_churn_labeling,
    "E19": experiment_e19_schedule_search,
}
