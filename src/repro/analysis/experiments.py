"""Experiment drivers E1–E16 — one per paper object (DESIGN.md §6).

Each ``experiment_eNN`` function runs the full workload for its experiment
and returns a list of dict rows; the matching bench in ``benchmarks/``
prints the rows and asserts the expected shape, and EXPERIMENTS.md records a
snapshot.  Sizes default to values that keep a full sweep comfortably inside
a laptop run; every driver takes explicit parameters so larger sweeps are a
call away.

Every simulated run is expressed as a :class:`~repro.api.spec.RunSpec` and
executed through the :mod:`repro.api` layer: drivers that only consume
metrics go through a shared in-process :class:`~repro.api.runner.BatchRunner`
(:data:`_RUNNER`), and white-box drivers that inspect per-vertex states or
protocol output use :func:`~repro.api.spec.execute_spec_full`.  Protocol
*classes* handed to the lower-bound harnesses are resolved through
:data:`~repro.api.registry.PROTOCOLS`, so every experiment is addressable
by the same registry names a spec file would use.  The drivers run their
specs serially on purpose — process-level parallelism belongs to the CLI
(``repro batch``), and nesting pools inside drivers would oversubscribe it.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Dict, List, Sequence, Tuple

from ..api import PROTOCOLS, BatchRunner, RunSpec, execute_spec_full
from ..baselines.undirected import (
    DfsLabelingProtocol,
    UndirectedNetwork,
    run_undirected_protocol,
)
from ..core.complexity import (
    dag_broadcast_total_bits_bound,
    general_broadcast_total_bits_bound,
    label_length_bits_bound,
    tree_broadcast_total_bits_bound,
)
from ..core.intervals import union_cost
from ..core.labeling import extract_labels, labels_pairwise_disjoint
from ..core.mapping import ROOT_MARKER, TERMINAL_MARKER
from ..graphs.enumerate_graphs import all_grounded_trees, all_internal_wirings
from ..graphs.properties import longest_path_length
from ..lowerbounds.alphabet import alphabet_on_gn
from ..lowerbounds.commodity import (
    bandwidth_growth,
    collect_subset_sums,
    hair_quantities,
    verify_inequality_chain,
)
from ..lowerbounds.labels import label_growth_on_pruned, pruning_preserves_label
from ..lowerbounds.schedules import explore_all_schedules
from ..network.scheduler import standard_scheduler_specs

__all__ = [
    "experiment_e01_tree_broadcast",
    "experiment_e02_tree_lowerbound",
    "experiment_e03_dag_broadcast",
    "experiment_e04_commodity_lowerbound",
    "experiment_e05_general_broadcast",
    "experiment_e06_labeling",
    "experiment_e07_label_lowerbound",
    "experiment_e08_nontermination",
    "experiment_e09_split_ablation",
    "experiment_e10_eager_ablation",
    "experiment_e11_mapping",
    "experiment_e12_gap",
    "experiment_e13_round_complexity",
    "experiment_e14_exhaustive_verification",
    "experiment_e15_state_space",
    "experiment_e16_scheduler_sensitivity",
    "experiments_engine",
    "ALL_EXPERIMENTS",
]

#: Shared in-process batch runner for the metrics-only drivers.
_RUNNER = BatchRunner(parallel=False)

#: Engine stack for spec-construction sites that do not pin one; drivers
#: that *require* a specific engine (E13's synchronous runs) set it
#: explicitly and are unaffected.
_ENGINE_STACK = ["async"]


@contextmanager
def experiments_engine(engine: str):
    """Run the enclosed experiment drivers under a different engine.

    The benchmark suites use this to measure every experiment under each
    execution engine (``with experiments_engine("fastpath"): driver()``)
    without threading an ``engine`` parameter through sixteen drivers.
    Results are engine-independent by the differential-equivalence
    contract; only the wall-clock changes.
    """
    _ENGINE_STACK.append(engine)
    try:
        yield
    finally:
        _ENGINE_STACK.pop()


def _engine() -> str:
    return _ENGINE_STACK[-1]


def _tree_spec(n: int, seed: int, protocol: str = "tree-broadcast", **kw) -> RunSpec:
    kw.setdefault("engine", _engine())
    return RunSpec(
        graph="random-grounded-tree",
        graph_params={"num_internal": n},
        protocol=protocol,
        seed=seed,
        **kw,
    )


def _digraph_spec(n: int, seed: int, protocol: str, **kw) -> RunSpec:
    kw.setdefault("engine", _engine())
    return RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": n},
        protocol=protocol,
        seed=seed,
        **kw,
    )


def experiment_e01_tree_broadcast(
    sizes: Sequence[int] = (50, 100, 200, 400, 800), seeds: Sequence[int] = (0, 1, 2)
) -> List[Dict]:
    """E1 / Theorem 3.1: grounded-tree broadcast cost vs ``|E| log |E|``."""
    rows: List[Dict] = []
    for n in sizes:
        specs = [_tree_spec(n, seed) for seed in seeds]
        records = _RUNNER.run(specs)
        assert all(record.terminated for record in records)
        bits = [record.metrics["total_bits"] for record in records]
        msgs = [record.metrics["total_messages"] for record in records]
        maxmsg = [record.metrics["max_message_bits"] for record in records]
        bound = tree_broadcast_total_bits_bound(specs[-1].build_graph())
        rows.append(
            {
                "n_internal": n,
                "E": records[-1].num_edges,
                "messages": max(msgs),
                "total_bits": max(bits),
                "max_msg_bits": max(maxmsg),
                "bound_E_logE": round(bound),
                "ratio": max(bits) / bound,
            }
        )
    return rows


def experiment_e02_tree_lowerbound(ns: Sequence[int] = (4, 8, 16, 32, 64, 128, 256)) -> List[Dict]:
    """E2 / Theorem 3.2, Figure 5: alphabet growth and bit floor on ``Gₙ``."""
    rows: List[Dict] = []
    for row in alphabet_on_gn(PROTOCOLS.get("tree-broadcast"), ns):
        rows.append(
            {
                "n": row.n,
                "E": row.num_edges,
                "distinct_symbols": row.distinct_symbols,
                "at_least_n": row.distinct_symbols >= row.n,
                "huffman_floor_bits": row.floor_bits,
                "measured_bits": row.measured_bits,
                "floor/(E·logE)": row.floor_per_edge_log_e,
            }
        )
    return rows


def experiment_e03_dag_broadcast(
    sizes: Sequence[int] = (25, 50, 100, 200), seeds: Sequence[int] = (0, 1, 2)
) -> List[Dict]:
    """E3 / Section 3.3: DAG broadcast; one message per edge, dyadic widths."""
    specs = [
        RunSpec(
            graph="random-dag",
            graph_params={"num_internal": n},
            protocol="dag-broadcast",
            seed=seed,
            engine=_engine(),
        )
        for n in sizes
        for seed in seeds[:1]
    ]
    rows: List[Dict] = []
    for spec, record in zip(specs, _RUNNER.run(specs)):
        assert record.terminated
        bound = dag_broadcast_total_bits_bound(spec.build_graph())
        rows.append(
            {
                "n_internal": spec.graph_params["num_internal"],
                "E": record.num_edges,
                "messages": record.metrics["total_messages"],
                "one_msg_per_edge": record.metrics["total_messages"] == record.num_edges,
                "total_bits": record.metrics["total_bits"],
                "max_msg_bits": record.metrics["max_message_bits"],
                "bound_E2": round(bound),
                "ratio": record.metrics["total_bits"] / bound,
            }
        )
    return rows


def experiment_e04_commodity_lowerbound(
    ns: Sequence[int] = (2, 4, 6, 8, 12, 16), subset_n: int = 6
) -> List[Dict]:
    """E4 / Theorem 3.8, Figure 4: skeleton-tree subset sums and bandwidth."""
    dag_protocol = PROTOCOLS.get("dag-broadcast")
    sums = collect_subset_sums(subset_n, dag_protocol)
    distinct = len(set(sums.values()))
    chain_ok = verify_inequality_chain(hair_quantities(subset_n, dag_protocol), subset_n)
    rows: List[Dict] = []
    for row in bandwidth_growth(ns, dag_protocol):
        rows.append(
            {
                "n": row.n,
                "E": row.num_edges,
                "max_msg_bits": row.max_message_bits,
                "bits_per_E": row.max_message_bits / row.num_edges,
                "subset_count": len(sums) if row.n == subset_n else "",
                "distinct_sums": distinct if row.n == subset_n else "",
                "chain_(1)_holds": chain_ok if row.n == subset_n else "",
            }
        )
    return rows


def experiment_e05_general_broadcast(
    sizes: Sequence[int] = (10, 20, 40, 80), seeds: Sequence[int] = (0, 1)
) -> List[Dict]:
    """E5 / Theorems 4.2–4.3: interval broadcast on cyclic digraphs."""
    specs = [
        _digraph_spec(n, seed, "general-broadcast")
        for n in sizes
        for seed in seeds[:1]
    ]
    rows: List[Dict] = []
    for spec, record in zip(specs, _RUNNER.run(specs)):
        assert record.terminated
        bound = general_broadcast_total_bits_bound(spec.build_graph())
        rows.append(
            {
                "n_internal": spec.graph_params["num_internal"],
                "V": record.num_vertices,
                "E": record.num_edges,
                "messages": record.metrics["total_messages"],
                "total_bits": record.metrics["total_bits"],
                "max_msg_bits": record.metrics["max_message_bits"],
                "max_edge_bits": record.metrics["max_edge_bits"],
                "bound_E2VlogD": round(bound),
                "ratio": record.metrics["total_bits"] / bound,
            }
        )
    return rows


def experiment_e06_labeling(
    sizes: Sequence[int] = (10, 20, 40, 80), seeds: Sequence[int] = (0, 1)
) -> List[Dict]:
    """E6 / Theorem 5.1: label uniqueness and size vs ``|V| log d_out``."""
    rows: List[Dict] = []
    for n in sizes:
        for seed in seeds[:1]:
            spec = _digraph_spec(n, seed, "label-assignment")
            record, result, net = execute_spec_full(spec)
            assert record.terminated
            labels = extract_labels(result.states)
            label_list = list(labels.values())
            disjoint = labels_pairwise_disjoint(label_list)
            max_bits = max(union_cost(l) for l in label_list)
            bound = label_length_bits_bound(net)
            rows.append(
                {
                    "n_internal": n,
                    "V": record.num_vertices,
                    "all_labeled": set(labels) == set(net.internal_vertices()),
                    "labels_disjoint": disjoint,
                    "max_label_bits": max_bits,
                    "bound_VlogD": round(bound),
                    "ratio": max_bits / bound,
                }
            )
    return rows


def experiment_e07_label_lowerbound(
    cases: Sequence[tuple] = ((2, 4), (2, 8), (2, 16), (2, 32), (3, 8), (4, 8))
) -> List[Dict]:
    """E7 / Theorem 5.2, Figure 6: pruning preserves labels; size grows
    ``Θ(h log d)`` on an ``(h+3)``-vertex graph."""
    rows: List[Dict] = []
    preserved = {
        (d, h): pruning_preserves_label(d, h)
        for d, h in cases
        if d ** h <= 4096  # full-tree runs stay tractable
    }
    for row in label_growth_on_pruned(cases):
        key = (row.degree, row.height)
        rows.append(
            {
                "degree": row.degree,
                "height": row.height,
                "V_pruned": row.num_vertices_pruned,
                "leaf_label_bits": row.leaf_label_bits,
                "bits/(h·logd)": row.bits_per_h_log_d,
                "pruning_identical": preserved.get(key, ""),
            }
        )
    return rows


def experiment_e08_nontermination(
    sizes: Sequence[int] = (8, 14), seeds: Sequence[int] = (0, 1)
) -> List[Dict]:
    """E8: the "iff" direction — zero false terminations on bad graphs."""
    protocols: Sequence[Tuple[str, str]] = (
        ("general-broadcast", "general-broadcast"),
        ("label-assignment", "label-assignment"),
        ("mapping", "topology-mapping"),
    )
    rows: List[Dict] = []
    for display_name, protocol in protocols:
        specs = [
            _digraph_spec(
                n,
                seed,
                protocol,
                graph_transforms=(transform,),
                scheduler=sched_name,
                scheduler_params=sched_params,
            )
            for n in sizes
            for seed in seeds
            for transform in ("with-dead-end-vertex", "with-stranded-cycle")
            for sched_name, sched_params in standard_scheduler_specs(random_seeds=1)
        ]
        records = _RUNNER.run(specs)
        rows.append(
            {
                "protocol": display_name,
                "bad_graph_runs": len(records),
                "false_terminations": sum(1 for r in records if r.terminated),
            }
        )
    return rows


def experiment_e09_split_ablation(
    sizes: Sequence[int] = (50, 100, 200, 400), seed: int = 0
) -> List[Dict]:
    """E9 / Section 3.1 ablation: naive ``x/d`` split vs power-of-two split."""
    rows: List[Dict] = []
    for n in sizes:
        naive, pow2 = _RUNNER.run(
            [_tree_spec(n, seed, "naive-tree-broadcast"), _tree_spec(n, seed)]
        )
        assert naive.terminated and pow2.terminated
        rows.append(
            {
                "n_internal": n,
                "E": naive.num_edges,
                "naive_bits": naive.metrics["total_bits"],
                "pow2_bits": pow2.metrics["total_bits"],
                "naive_max_msg": naive.metrics["max_message_bits"],
                "pow2_max_msg": pow2.metrics["max_message_bits"],
                "bits_ratio": naive.metrics["total_bits"] / pow2.metrics["total_bits"],
            }
        )
    return rows


def experiment_e10_eager_ablation(depths: Sequence[int] = (2, 4, 6, 8, 10, 12)) -> List[Dict]:
    """E10 / Section 3.3 ablation: eager vs aggregating DAG commodity."""
    rows: List[Dict] = []
    for depth in depths:
        specs = [
            RunSpec(
                graph="layered-diamond-dag",
                graph_params={"depth": depth},
                protocol=protocol,
                engine=_engine(),
            )
            for protocol in ("eager-dag-broadcast", "dag-broadcast")
        ]
        eager, waiting = _RUNNER.run(specs)
        assert eager.terminated and waiting.terminated
        rows.append(
            {
                "depth": depth,
                "E": eager.num_edges,
                "eager_messages": eager.metrics["total_messages"],
                "waiting_messages": waiting.metrics["total_messages"],
                "waiting_is_E": waiting.metrics["total_messages"] == waiting.num_edges,
                "eager_max_msg_bits": eager.metrics["max_message_bits"],
                "waiting_max_msg_bits": waiting.metrics["max_message_bits"],
            }
        )
    return rows


def experiment_e11_mapping(
    sizes: Sequence[int] = (10, 20, 40), seeds: Sequence[int] = (0, 1, 2)
) -> List[Dict]:
    """E11 / Section 6: topology reconstruction success and cost."""
    rows: List[Dict] = []
    for n in sizes:
        successes = 0
        runs = 0
        messages = 0
        bits = 0
        for seed in seeds:
            spec = _digraph_spec(n, seed, "topology-mapping")
            record, result, net = execute_spec_full(spec)
            runs += 1
            if record.terminated and result.output is not None:
                ident = {net.root: ROOT_MARKER, net.terminal: TERMINAL_MARKER}
                for v in net.internal_vertices():
                    ident[v] = result.states[v].base.label
                if result.output.matches_network(net, ident):
                    successes += 1
            messages = max(messages, record.metrics["total_messages"])
            bits = max(bits, record.metrics["total_bits"])
        rows.append(
            {
                "n_internal": n,
                "runs": runs,
                "exact_reconstructions": successes,
                "messages_max": messages,
                "total_bits_max": bits,
            }
        )
    return rows


def experiment_e12_gap(heights: Sequence[int] = (4, 8, 16, 32, 64)) -> List[Dict]:
    """E12 / Section 6: the exponential gap, directed vs undirected labels.

    Both protocols label the *same* topology: the Figure-6 pruned tree (the
    directed lower-bound witness) and its undirected shadow.  Directed
    labels must grow ``Θ(|V|)``; undirected DFS labels ``Θ(log |V|)``.
    """
    degree = 2
    rows: List[Dict] = []
    for h in heights:
        spec = RunSpec(
            graph="pruned-tree",
            graph_params={"degree": degree, "height": h},
            protocol="label-assignment",
            engine=_engine(),
        )
        record, directed, net = execute_spec_full(spec)
        assert record.terminated
        label = directed.states[2 + h].label
        assert label is not None
        directed_bits = union_cost(label)

        undirected = UndirectedNetwork.from_directed(net)
        dfs = run_undirected_protocol(undirected, DfsLabelingProtocol(), seed=0)
        assert dfs.finished
        max_label = max(s["label"] for s in dfs.states.values())
        undirected_bits = max(1, math.ceil(math.log2(max_label + 1)))
        rows.append(
            {
                "V": record.num_vertices,
                "directed_label_bits": directed_bits,
                "undirected_label_bits": undirected_bits,
                "gap_factor": directed_bits / undirected_bits,
            }
        )
    return rows


def experiment_e13_round_complexity(
    sizes: Sequence[int] = (25, 50, 100, 200), seeds: Sequence[int] = (0, 1)
) -> List[Dict]:
    """E13 / §2 synchronous extension: rounds-to-termination vs path depth.

    In lockstep rounds the commodity protocols terminate after exactly the
    longest root-to-terminal chain of waits: on trees and DAGs that is the
    longest directed path; on cyclic digraphs the interval protocol adds
    cycle-detection and β-flood traversals on top (reported as a multiple
    of |V| for scale).
    """
    rows: List[Dict] = []
    for n in sizes:
        for seed in seeds[:1]:
            tree_spec = _tree_spec(n, seed, engine="synchronous")
            dag_spec = RunSpec(
                graph="random-dag",
                graph_params={"num_internal": n},
                protocol="dag-broadcast",
                seed=seed,
                engine="synchronous",
            )
            dig_spec = _digraph_spec(
                min(n, 60), seed, "general-broadcast", engine="synchronous"
            )
            specs = [tree_spec, dag_spec, dig_spec]
            tree_run, dag_run, dig_run = _RUNNER.run(specs)
            assert tree_run.terminated and dag_run.terminated and dig_run.terminated
            rows.append(
                {
                    "n_internal": n,
                    "tree_rounds": tree_run.metrics["termination_round"],
                    "tree_longest_path": longest_path_length(tree_spec.build_graph()),
                    "dag_rounds": dag_run.metrics["termination_round"],
                    "dag_longest_path": longest_path_length(dag_spec.build_graph()),
                    "general_rounds": dig_run.metrics["termination_round"],
                    "general_V": dig_run.num_vertices,
                    "general_rounds/V": dig_run.metrics["termination_round"]
                    / dig_run.num_vertices,
                }
            )
    return rows


def experiment_e14_exhaustive_verification(
    max_wiring_edges: int = 5, tree_internal: int = 3
) -> List[Dict]:
    """E14 (beyond the paper): exhaustive ∀-schedule, ∀-topology checking.

    Model-checks the termination "iff" over *every* delivery schedule on
    *every* small topology: all grounded trees with ``tree_internal``
    internal vertices under the tree protocol, and all 2-internal-vertex
    wirings (cycles and self-loops included) with at most
    ``max_wiring_edges`` edges under the general interval protocol.  The
    state spaces are exhausted (no truncation permitted), so on these
    instances the theorem holds with certainty rather than confidence.
    """
    rows: List[Dict] = []

    tree_count = 0
    tree_steps = 0
    tree_protocol = PROTOCOLS.get("tree-broadcast")
    for net in all_grounded_trees(tree_internal):
        result = explore_all_schedules(net, tree_protocol)
        assert not result.truncated
        assert result.always_terminates
        tree_count += 1
        tree_steps += result.steps
    rows.append(
        {
            "family": f"all grounded trees (k={tree_internal})",
            "protocol": "tree-broadcast",
            "topologies": tree_count,
            "delivered_msgs_explored": tree_steps,
            "iff_violations": 0,
        }
    )

    wiring_count = 0
    wiring_steps = 0
    violations = 0
    general_protocol = PROTOCOLS.get("general-broadcast")
    for net in all_internal_wirings(2):
        if net.num_edges > max_wiring_edges:
            continue
        result = explore_all_schedules(net, general_protocol, max_steps_total=400_000)
        assert not result.truncated
        expected = net.all_connected_to_terminal()
        ok = result.always_terminates if expected else result.never_terminates
        if not ok:
            violations += 1
        wiring_count += 1
        wiring_steps += result.steps
    rows.append(
        {
            "family": f"all 2-internal wirings (|E|<={max_wiring_edges})",
            "protocol": "general-broadcast",
            "topologies": wiring_count,
            "delivered_msgs_explored": wiring_steps,
            "iff_violations": violations,
        }
    )
    return rows


def experiment_e15_state_space(
    sizes: Sequence[int] = (10, 20, 40), seed: int = 0
) -> List[Dict]:
    """E15 / §2: the state-space quality measure, measured.

    Section 2 lists "the size of the state space … related to the amount of
    memory needed at each vertex" among the quality parameters but proves
    nothing about it.  We measure the per-vertex state high-water mark (in
    encoded bits) for each protocol on a common graph family: the scalar
    protocols need O(|E|)-bit states at most, while the interval protocols'
    states grow with the commodity fragmentation — the memory price of
    cycle detection.
    """
    workloads = (
        ("tree", "random-grounded-tree", "tree-broadcast"),
        ("dag", "random-dag", "dag-broadcast"),
        ("general", "random-digraph", "general-broadcast"),
        ("labeling", "random-digraph", "label-assignment"),
    )
    rows: List[Dict] = []
    for n in sizes:
        specs = [
            RunSpec(
                graph=graph,
                graph_params={"num_internal": n},
                protocol=protocol,
                seed=seed,
                track_state_bits=True,
                engine=_engine(),
            )
            for _, graph, protocol in workloads
        ]
        records = _RUNNER.run(specs)
        assert all(record.terminated for record in records)
        measurements = {
            name: record.metrics["max_state_bits"]
            for (name, _, _), record in zip(workloads, records)
        }
        rows.append(
            {
                "n_internal": n,
                "tree_state_bits": measurements["tree"],
                "dag_state_bits": measurements["dag"],
                "general_state_bits": measurements["general"],
                "labeling_state_bits": measurements["labeling"],
                "general/dag_ratio": round(measurements["general"] / max(1, measurements["dag"]), 1),
            }
        )
    return rows


def experiment_e16_scheduler_sensitivity(
    n_internal: int = 30, seed: int = 0
) -> List[Dict]:
    """E16 (ablation): how much the asynchronous adversary costs.

    Same graph, same protocol, every scheduler: correctness (termination,
    delivery) is identical by the ∀-schedule theorems, but the *cost* of the
    interval protocol varies — adversaries that starve the terminal or
    deliver depth-first maximise cycle churn (β re-floods) before the
    accounting can close.  This quantifies the spread the upper bounds must
    absorb.
    """
    specs = [
        _digraph_spec(
            n_internal,
            seed,
            "general-broadcast",
            scheduler=sched_name,
            scheduler_params=sched_params,
        )
        for sched_name, sched_params in standard_scheduler_specs(random_seeds=2)
    ]
    rows: List[Dict] = []
    for spec, record in zip(specs, _RUNNER.run(specs)):
        assert record.terminated, spec.scheduler
        rows.append(
            {
                "scheduler": spec.build_scheduler().name,
                "terminated": record.terminated,
                "messages": record.metrics["total_messages"],
                "total_bits": record.metrics["total_bits"],
                "msgs_at_termination": record.metrics["messages_at_termination"],
                "max_msg_bits": record.metrics["max_message_bits"],
            }
        )
    baseline = min(row["messages"] for row in rows)
    for row in rows:
        row["vs_best"] = round(row["messages"] / baseline, 2)
    return rows


#: Name → driver, used by the report CLI and the EXPERIMENTS.md generator.
ALL_EXPERIMENTS = {
    "E1": experiment_e01_tree_broadcast,
    "E2": experiment_e02_tree_lowerbound,
    "E3": experiment_e03_dag_broadcast,
    "E4": experiment_e04_commodity_lowerbound,
    "E5": experiment_e05_general_broadcast,
    "E6": experiment_e06_labeling,
    "E7": experiment_e07_label_lowerbound,
    "E8": experiment_e08_nontermination,
    "E9": experiment_e09_split_ablation,
    "E10": experiment_e10_eager_ablation,
    "E11": experiment_e11_mapping,
    "E12": experiment_e12_gap,
    "E13": experiment_e13_round_complexity,
    "E14": experiment_e14_exhaustive_verification,
    "E15": experiment_e15_state_space,
    "E16": experiment_e16_scheduler_sensitivity,
}
