"""Experiment drivers E1–E12 — one per paper object (DESIGN.md §6).

Each ``experiment_eNN`` function runs the full workload for its experiment
and returns a list of dict rows; the matching bench in ``benchmarks/``
prints the rows and asserts the expected shape, and EXPERIMENTS.md records a
snapshot.  Sizes default to values that keep a full sweep comfortably inside
a laptop run; every driver takes explicit parameters so larger sweeps are a
call away.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..baselines.eager_dag import EagerDagBroadcastProtocol
from ..baselines.naive_tree import NaiveTreeBroadcastProtocol
from ..baselines.undirected import (
    DfsLabelingProtocol,
    UndirectedNetwork,
    run_undirected_protocol,
)
from ..core.complexity import (
    dag_broadcast_total_bits_bound,
    general_broadcast_total_bits_bound,
    label_length_bits_bound,
    tree_broadcast_total_bits_bound,
)
from ..core.dag_broadcast import DagBroadcastProtocol
from ..core.general_broadcast import GeneralBroadcastProtocol
from ..core.intervals import union_cost
from ..core.labeling import (
    LabelAssignmentProtocol,
    extract_labels,
    labels_pairwise_disjoint,
)
from ..core.mapping import ROOT_MARKER, TERMINAL_MARKER, MappingProtocol
from ..core.tree_broadcast import TreeBroadcastProtocol
from ..graphs.constructions import pruned_tree
from ..graphs.generators import (
    layered_diamond_dag,
    random_dag,
    random_digraph,
    random_grounded_tree,
    with_dead_end_vertex,
    with_stranded_cycle,
)
from ..lowerbounds.alphabet import alphabet_on_gn
from ..lowerbounds.commodity import (
    bandwidth_growth,
    collect_subset_sums,
    hair_quantities,
    verify_inequality_chain,
)
from ..lowerbounds.labels import label_growth_on_pruned, pruning_preserves_label
from ..lowerbounds.schedules import explore_all_schedules
from ..graphs.enumerate_graphs import all_grounded_trees, all_internal_wirings
from ..graphs.properties import longest_path_length
from ..network.scheduler import make_standard_schedulers
from ..network.simulator import run_protocol
from ..network.synchronous import run_protocol_synchronous

__all__ = [
    "experiment_e01_tree_broadcast",
    "experiment_e02_tree_lowerbound",
    "experiment_e03_dag_broadcast",
    "experiment_e04_commodity_lowerbound",
    "experiment_e05_general_broadcast",
    "experiment_e06_labeling",
    "experiment_e07_label_lowerbound",
    "experiment_e08_nontermination",
    "experiment_e09_split_ablation",
    "experiment_e10_eager_ablation",
    "experiment_e11_mapping",
    "experiment_e12_gap",
    "experiment_e13_round_complexity",
    "experiment_e14_exhaustive_verification",
    "experiment_e15_state_space",
    "experiment_e16_scheduler_sensitivity",
    "ALL_EXPERIMENTS",
]


def experiment_e01_tree_broadcast(
    sizes: Sequence[int] = (50, 100, 200, 400, 800), seeds: Sequence[int] = (0, 1, 2)
) -> List[Dict]:
    """E1 / Theorem 3.1: grounded-tree broadcast cost vs ``|E| log |E|``."""
    rows: List[Dict] = []
    for n in sizes:
        bits = []
        msgs = []
        maxmsg = []
        edges = 0
        for seed in seeds:
            net = random_grounded_tree(n, seed=seed)
            edges = net.num_edges
            result = run_protocol(net, TreeBroadcastProtocol())
            assert result.terminated
            bits.append(result.metrics.total_bits)
            msgs.append(result.metrics.total_messages)
            maxmsg.append(result.metrics.max_message_bits)
        bound = tree_broadcast_total_bits_bound(net)
        rows.append(
            {
                "n_internal": n,
                "E": edges,
                "messages": max(msgs),
                "total_bits": max(bits),
                "max_msg_bits": max(maxmsg),
                "bound_E_logE": round(bound),
                "ratio": max(bits) / bound,
            }
        )
    return rows


def experiment_e02_tree_lowerbound(ns: Sequence[int] = (4, 8, 16, 32, 64, 128, 256)) -> List[Dict]:
    """E2 / Theorem 3.2, Figure 5: alphabet growth and bit floor on ``Gₙ``."""
    rows: List[Dict] = []
    for row in alphabet_on_gn(TreeBroadcastProtocol, ns):
        rows.append(
            {
                "n": row.n,
                "E": row.num_edges,
                "distinct_symbols": row.distinct_symbols,
                "at_least_n": row.distinct_symbols >= row.n,
                "huffman_floor_bits": row.floor_bits,
                "measured_bits": row.measured_bits,
                "floor/(E·logE)": row.floor_per_edge_log_e,
            }
        )
    return rows


def experiment_e03_dag_broadcast(
    sizes: Sequence[int] = (25, 50, 100, 200), seeds: Sequence[int] = (0, 1, 2)
) -> List[Dict]:
    """E3 / Section 3.3: DAG broadcast; one message per edge, dyadic widths."""
    rows: List[Dict] = []
    for n in sizes:
        for seed in seeds[:1]:
            net = random_dag(n, seed=seed)
            result = run_protocol(net, DagBroadcastProtocol())
            assert result.terminated
            bound = dag_broadcast_total_bits_bound(net)
            rows.append(
                {
                    "n_internal": n,
                    "E": net.num_edges,
                    "messages": result.metrics.total_messages,
                    "one_msg_per_edge": result.metrics.total_messages == net.num_edges,
                    "total_bits": result.metrics.total_bits,
                    "max_msg_bits": result.metrics.max_message_bits,
                    "bound_E2": round(bound),
                    "ratio": result.metrics.total_bits / bound,
                }
            )
    return rows


def experiment_e04_commodity_lowerbound(
    ns: Sequence[int] = (2, 4, 6, 8, 12, 16), subset_n: int = 6
) -> List[Dict]:
    """E4 / Theorem 3.8, Figure 4: skeleton-tree subset sums and bandwidth."""
    sums = collect_subset_sums(subset_n, DagBroadcastProtocol)
    distinct = len(set(sums.values()))
    chain_ok = verify_inequality_chain(hair_quantities(subset_n, DagBroadcastProtocol), subset_n)
    rows: List[Dict] = []
    for row in bandwidth_growth(ns, DagBroadcastProtocol):
        rows.append(
            {
                "n": row.n,
                "E": row.num_edges,
                "max_msg_bits": row.max_message_bits,
                "bits_per_E": row.max_message_bits / row.num_edges,
                "subset_count": len(sums) if row.n == subset_n else "",
                "distinct_sums": distinct if row.n == subset_n else "",
                "chain_(1)_holds": chain_ok if row.n == subset_n else "",
            }
        )
    return rows


def experiment_e05_general_broadcast(
    sizes: Sequence[int] = (10, 20, 40, 80), seeds: Sequence[int] = (0, 1)
) -> List[Dict]:
    """E5 / Theorems 4.2–4.3: interval broadcast on cyclic digraphs."""
    rows: List[Dict] = []
    for n in sizes:
        for seed in seeds[:1]:
            net = random_digraph(n, seed=seed)
            result = run_protocol(net, GeneralBroadcastProtocol())
            assert result.terminated
            bound = general_broadcast_total_bits_bound(net)
            rows.append(
                {
                    "n_internal": n,
                    "V": net.num_vertices,
                    "E": net.num_edges,
                    "messages": result.metrics.total_messages,
                    "total_bits": result.metrics.total_bits,
                    "max_msg_bits": result.metrics.max_message_bits,
                    "max_edge_bits": result.metrics.max_edge_bits,
                    "bound_E2VlogD": round(bound),
                    "ratio": result.metrics.total_bits / bound,
                }
            )
    return rows


def experiment_e06_labeling(
    sizes: Sequence[int] = (10, 20, 40, 80), seeds: Sequence[int] = (0, 1)
) -> List[Dict]:
    """E6 / Theorem 5.1: label uniqueness and size vs ``|V| log d_out``."""
    rows: List[Dict] = []
    for n in sizes:
        for seed in seeds[:1]:
            net = random_digraph(n, seed=seed)
            result = run_protocol(net, LabelAssignmentProtocol())
            assert result.terminated
            labels = extract_labels(result.states)
            label_list = list(labels.values())
            disjoint = labels_pairwise_disjoint(label_list)
            max_bits = max(union_cost(l) for l in label_list)
            bound = label_length_bits_bound(net)
            rows.append(
                {
                    "n_internal": n,
                    "V": net.num_vertices,
                    "all_labeled": set(labels) == set(net.internal_vertices()),
                    "labels_disjoint": disjoint,
                    "max_label_bits": max_bits,
                    "bound_VlogD": round(bound),
                    "ratio": max_bits / bound,
                }
            )
    return rows


def experiment_e07_label_lowerbound(
    cases: Sequence[tuple] = ((2, 4), (2, 8), (2, 16), (2, 32), (3, 8), (4, 8))
) -> List[Dict]:
    """E7 / Theorem 5.2, Figure 6: pruning preserves labels; size grows
    ``Θ(h log d)`` on an ``(h+3)``-vertex graph."""
    rows: List[Dict] = []
    preserved = {
        (d, h): pruning_preserves_label(d, h)
        for d, h in cases
        if d ** h <= 4096  # full-tree runs stay tractable
    }
    for row in label_growth_on_pruned(cases):
        key = (row.degree, row.height)
        rows.append(
            {
                "degree": row.degree,
                "height": row.height,
                "V_pruned": row.num_vertices_pruned,
                "leaf_label_bits": row.leaf_label_bits,
                "bits/(h·logd)": row.bits_per_h_log_d,
                "pruning_identical": preserved.get(key, ""),
            }
        )
    return rows


def experiment_e08_nontermination(
    sizes: Sequence[int] = (8, 14), seeds: Sequence[int] = (0, 1)
) -> List[Dict]:
    """E8: the "iff" direction — zero false terminations on bad graphs."""
    protocols = {
        "tree(general-graph-input)": None,  # tree protocol is only sound on grounded trees
        "general-broadcast": GeneralBroadcastProtocol,
        "label-assignment": LabelAssignmentProtocol,
        "mapping": MappingProtocol,
    }
    rows: List[Dict] = []
    for name, factory in protocols.items():
        if factory is None:
            continue
        runs = 0
        false_terminations = 0
        for n in sizes:
            for seed in seeds:
                base = random_digraph(n, seed=seed)
                for bad in (with_dead_end_vertex(base), with_stranded_cycle(base)):
                    for scheduler in make_standard_schedulers(random_seeds=1):
                        result = run_protocol(bad, factory(), scheduler)
                        runs += 1
                        if result.terminated:
                            false_terminations += 1
        rows.append(
            {
                "protocol": name,
                "bad_graph_runs": runs,
                "false_terminations": false_terminations,
            }
        )
    return rows


def experiment_e09_split_ablation(
    sizes: Sequence[int] = (50, 100, 200, 400), seed: int = 0
) -> List[Dict]:
    """E9 / Section 3.1 ablation: naive ``x/d`` split vs power-of-two split."""
    rows: List[Dict] = []
    for n in sizes:
        net = random_grounded_tree(n, seed=seed)
        naive = run_protocol(net, NaiveTreeBroadcastProtocol())
        pow2 = run_protocol(net, TreeBroadcastProtocol())
        assert naive.terminated and pow2.terminated
        rows.append(
            {
                "n_internal": n,
                "E": net.num_edges,
                "naive_bits": naive.metrics.total_bits,
                "pow2_bits": pow2.metrics.total_bits,
                "naive_max_msg": naive.metrics.max_message_bits,
                "pow2_max_msg": pow2.metrics.max_message_bits,
                "bits_ratio": naive.metrics.total_bits / pow2.metrics.total_bits,
            }
        )
    return rows


def experiment_e10_eager_ablation(depths: Sequence[int] = (2, 4, 6, 8, 10, 12)) -> List[Dict]:
    """E10 / Section 3.3 ablation: eager vs aggregating DAG commodity."""
    rows: List[Dict] = []
    for depth in depths:
        net = layered_diamond_dag(depth)
        eager = run_protocol(net, EagerDagBroadcastProtocol())
        waiting = run_protocol(net, DagBroadcastProtocol())
        assert eager.terminated and waiting.terminated
        rows.append(
            {
                "depth": depth,
                "E": net.num_edges,
                "eager_messages": eager.metrics.total_messages,
                "waiting_messages": waiting.metrics.total_messages,
                "waiting_is_E": waiting.metrics.total_messages == net.num_edges,
                "eager_max_msg_bits": eager.metrics.max_message_bits,
                "waiting_max_msg_bits": waiting.metrics.max_message_bits,
            }
        )
    return rows


def experiment_e11_mapping(
    sizes: Sequence[int] = (10, 20, 40), seeds: Sequence[int] = (0, 1, 2)
) -> List[Dict]:
    """E11 / Section 6: topology reconstruction success and cost."""
    rows: List[Dict] = []
    for n in sizes:
        successes = 0
        runs = 0
        messages = 0
        bits = 0
        for seed in seeds:
            net = random_digraph(n, seed=seed)
            result = run_protocol(net, MappingProtocol())
            runs += 1
            if result.terminated and result.output is not None:
                ident = {net.root: ROOT_MARKER, net.terminal: TERMINAL_MARKER}
                for v in net.internal_vertices():
                    ident[v] = result.states[v].base.label
                if result.output.matches_network(net, ident):
                    successes += 1
            messages = max(messages, result.metrics.total_messages)
            bits = max(bits, result.metrics.total_bits)
        rows.append(
            {
                "n_internal": n,
                "runs": runs,
                "exact_reconstructions": successes,
                "messages_max": messages,
                "total_bits_max": bits,
            }
        )
    return rows


def experiment_e12_gap(heights: Sequence[int] = (4, 8, 16, 32, 64)) -> List[Dict]:
    """E12 / Section 6: the exponential gap, directed vs undirected labels.

    Both protocols label the *same* topology: the Figure-6 pruned tree (the
    directed lower-bound witness) and its undirected shadow.  Directed
    labels must grow ``Θ(|V|)``; undirected DFS labels ``Θ(log |V|)``.
    """
    degree = 2
    rows: List[Dict] = []
    for h in heights:
        net = pruned_tree(degree, h)
        directed = run_protocol(net, LabelAssignmentProtocol())
        assert directed.terminated
        label = directed.states[2 + h].label
        assert label is not None
        directed_bits = union_cost(label)

        undirected = UndirectedNetwork.from_directed(net)
        dfs = run_undirected_protocol(undirected, DfsLabelingProtocol(), seed=0)
        assert dfs.finished
        max_label = max(s["label"] for s in dfs.states.values())
        undirected_bits = max(1, math.ceil(math.log2(max_label + 1)))
        rows.append(
            {
                "V": net.num_vertices,
                "directed_label_bits": directed_bits,
                "undirected_label_bits": undirected_bits,
                "gap_factor": directed_bits / undirected_bits,
            }
        )
    return rows


def experiment_e13_round_complexity(
    sizes: Sequence[int] = (25, 50, 100, 200), seeds: Sequence[int] = (0, 1)
) -> List[Dict]:
    """E13 / §2 synchronous extension: rounds-to-termination vs path depth.

    In lockstep rounds the commodity protocols terminate after exactly the
    longest root-to-terminal chain of waits: on trees and DAGs that is the
    longest directed path; on cyclic digraphs the interval protocol adds
    cycle-detection and β-flood traversals on top (reported as a multiple
    of |V| for scale).
    """
    rows: List[Dict] = []
    for n in sizes:
        for seed in seeds[:1]:
            tree = random_grounded_tree(n, seed=seed)
            tree_run = run_protocol_synchronous(tree, TreeBroadcastProtocol())
            assert tree_run.terminated
            dag = random_dag(n, seed=seed)
            dag_run = run_protocol_synchronous(dag, DagBroadcastProtocol())
            assert dag_run.terminated
            dig = random_digraph(min(n, 60), seed=seed)
            dig_run = run_protocol_synchronous(dig, GeneralBroadcastProtocol())
            assert dig_run.terminated
            rows.append(
                {
                    "n_internal": n,
                    "tree_rounds": tree_run.termination_round,
                    "tree_longest_path": longest_path_length(tree),
                    "dag_rounds": dag_run.termination_round,
                    "dag_longest_path": longest_path_length(dag),
                    "general_rounds": dig_run.termination_round,
                    "general_V": dig.num_vertices,
                    "general_rounds/V": dig_run.termination_round / dig.num_vertices,
                }
            )
    return rows


def experiment_e14_exhaustive_verification(
    max_wiring_edges: int = 5, tree_internal: int = 3
) -> List[Dict]:
    """E14 (beyond the paper): exhaustive ∀-schedule, ∀-topology checking.

    Model-checks the termination "iff" over *every* delivery schedule on
    *every* small topology: all grounded trees with ``tree_internal``
    internal vertices under the tree protocol, and all 2-internal-vertex
    wirings (cycles and self-loops included) with at most
    ``max_wiring_edges`` edges under the general interval protocol.  The
    state spaces are exhausted (no truncation permitted), so on these
    instances the theorem holds with certainty rather than confidence.
    """
    rows: List[Dict] = []

    tree_count = 0
    tree_steps = 0
    for net in all_grounded_trees(tree_internal):
        result = explore_all_schedules(net, TreeBroadcastProtocol)
        assert not result.truncated
        assert result.always_terminates
        tree_count += 1
        tree_steps += result.steps
    rows.append(
        {
            "family": f"all grounded trees (k={tree_internal})",
            "protocol": "tree-broadcast",
            "topologies": tree_count,
            "delivered_msgs_explored": tree_steps,
            "iff_violations": 0,
        }
    )

    wiring_count = 0
    wiring_steps = 0
    violations = 0
    for net in all_internal_wirings(2):
        if net.num_edges > max_wiring_edges:
            continue
        result = explore_all_schedules(net, GeneralBroadcastProtocol, max_steps_total=400_000)
        assert not result.truncated
        expected = net.all_connected_to_terminal()
        ok = result.always_terminates if expected else result.never_terminates
        if not ok:
            violations += 1
        wiring_count += 1
        wiring_steps += result.steps
    rows.append(
        {
            "family": f"all 2-internal wirings (|E|<={max_wiring_edges})",
            "protocol": "general-broadcast",
            "topologies": wiring_count,
            "delivered_msgs_explored": wiring_steps,
            "iff_violations": violations,
        }
    )
    return rows


def experiment_e15_state_space(
    sizes: Sequence[int] = (10, 20, 40), seed: int = 0
) -> List[Dict]:
    """E15 / §2: the state-space quality measure, measured.

    Section 2 lists "the size of the state space … related to the amount of
    memory needed at each vertex" among the quality parameters but proves
    nothing about it.  We measure the per-vertex state high-water mark (in
    encoded bits) for each protocol on a common graph family: the scalar
    protocols need O(|E|)-bit states at most, while the interval protocols'
    states grow with the commodity fragmentation — the memory price of
    cycle detection.
    """
    rows: List[Dict] = []
    for n in sizes:
        digraph = random_digraph(n, seed=seed)
        tree = random_grounded_tree(n, seed=seed)
        dag = random_dag(n, seed=seed)
        measurements = {}
        for name, net, protocol in (
            ("tree", tree, TreeBroadcastProtocol()),
            ("dag", dag, DagBroadcastProtocol()),
            ("general", digraph, GeneralBroadcastProtocol()),
            ("labeling", digraph, LabelAssignmentProtocol()),
        ):
            result = run_protocol(net, protocol, track_state_bits=True)
            assert result.terminated
            measurements[name] = result.metrics.max_state_bits
        rows.append(
            {
                "n_internal": n,
                "tree_state_bits": measurements["tree"],
                "dag_state_bits": measurements["dag"],
                "general_state_bits": measurements["general"],
                "labeling_state_bits": measurements["labeling"],
                "general/dag_ratio": round(measurements["general"] / max(1, measurements["dag"]), 1),
            }
        )
    return rows


def experiment_e16_scheduler_sensitivity(
    n_internal: int = 30, seed: int = 0
) -> List[Dict]:
    """E16 (ablation): how much the asynchronous adversary costs.

    Same graph, same protocol, every scheduler: correctness (termination,
    delivery) is identical by the ∀-schedule theorems, but the *cost* of the
    interval protocol varies — adversaries that starve the terminal or
    deliver depth-first maximise cycle churn (β re-floods) before the
    accounting can close.  This quantifies the spread the upper bounds must
    absorb.
    """
    net = random_digraph(n_internal, seed=seed)
    rows: List[Dict] = []
    for scheduler in make_standard_schedulers(random_seeds=2):
        result = run_protocol(net, GeneralBroadcastProtocol(), scheduler)
        assert result.terminated, scheduler.name
        rows.append(
            {
                "scheduler": scheduler.name,
                "terminated": result.terminated,
                "messages": result.metrics.total_messages,
                "total_bits": result.metrics.total_bits,
                "msgs_at_termination": result.metrics.messages_at_termination,
                "max_msg_bits": result.metrics.max_message_bits,
            }
        )
    baseline = min(row["messages"] for row in rows)
    for row in rows:
        row["vs_best"] = round(row["messages"] / baseline, 2)
    return rows


#: Name → driver, used by the report CLI and the EXPERIMENTS.md generator.
ALL_EXPERIMENTS = {
    "E1": experiment_e01_tree_broadcast,
    "E2": experiment_e02_tree_lowerbound,
    "E3": experiment_e03_dag_broadcast,
    "E4": experiment_e04_commodity_lowerbound,
    "E5": experiment_e05_general_broadcast,
    "E6": experiment_e06_labeling,
    "E7": experiment_e07_label_lowerbound,
    "E8": experiment_e08_nontermination,
    "E9": experiment_e09_split_ablation,
    "E10": experiment_e10_eager_ablation,
    "E11": experiment_e11_mapping,
    "E12": experiment_e12_gap,
    "E13": experiment_e13_round_complexity,
    "E14": experiment_e14_exhaustive_verification,
    "E15": experiment_e15_state_space,
    "E16": experiment_e16_scheduler_sensitivity,
}
