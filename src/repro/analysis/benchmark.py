"""Engine throughput benchmarks with machine-readable output and floors.

This is the harness behind ``repro bench`` and the CI perf gate.  It
measures *delivery steps per second* — the simulator-native throughput
unit — for each execution engine on the E5 general-broadcast workload
(the paper's main protocol, and the heaviest per-step transition in the
repository) across graph sizes, then emits a JSON document
(``BENCH_engines.json``) of the shape::

    {
      "suite": "engines",
      "workload": {"graph": "random-digraph", "protocol": "general-broadcast", ...},
      "environment": {"python": "3.11.7", "platform": "..."},
      "results": [
        {"engine": "fastpath", "n": 64, "steps": 7472, "best_seconds": ...,
         "steps_per_sec": ..., "outcome": "terminated", ...},
        ...
      ],
      "comparisons": [
        {"n": 64, "fastpath_vs_async": 9.1, "fastpath_vs_synchronous": ...},
        ...
      ]
    }

Floors (``benchmarks/floors.json``) gate regressions in CI: an absolute
steps/sec floor catches catastrophic slowdowns without being flaky across
heterogeneous runners (it is set an order of magnitude below a laptop
run), and a fastpath-vs-async *ratio* floor — machine-independent, both
engines run on the same box — enforces that the fast path stays genuinely
fast (the PR acceptance bar is 2× at n = 64).
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Dict, List, Optional, Sequence

from ..api import PROTOCOLS, RunSpec, ensure_registered, execute_spec

__all__ = [
    "BENCH_ENGINES",
    "QUICK_SIZES",
    "FULL_SIZES",
    "PROTOCOL_BENCH_GRAPHS",
    "PROTOCOL_MATRIX_N",
    "STORE_BENCH_RECORDS",
    "BATCH_BENCH_KS",
    "BATCH_BENCH_GATED_K",
    "BATCH_PROTOCOL_GRAPH_SEED",
    "bench_spec",
    "protocol_bench_spec",
    "batch_bench_spec",
    "batch_protocol_spec",
    "measure_spec",
    "synthetic_store_records",
    "run_engine_benchmarks",
    "run_protocol_matrix",
    "run_store_benchmarks",
    "run_batch_benchmarks",
    "run_batch_protocol_matrix",
    "run_trace_benchmarks",
    "run_schedule_benchmarks",
    "SCHEDULE_BENCH_GRAPH",
    "SCHEDULE_BENCH_PARAMS",
    "SCHEDULE_BENCH_PROTOCOL",
    "TRACE_BENCH_N",
    "TRACE_BENCH_SAMPLE_K",
    "write_benchmarks",
    "load_floors",
    "check_floors",
    "render_bench_table",
]

#: Engines the suite compares, in report order.
BENCH_ENGINES = ("async", "fastpath", "synchronous")

#: Graph sizes (|V|) for `repro bench --quick` — must include the gated n=64.
QUICK_SIZES = (16, 64)

#: Graph sizes for a full `repro bench`.
FULL_SIZES = (16, 32, 64, 128)

#: The graph family each protocol is benchmarked on (its natural habitat:
#: the family where the protocol terminates and does representative work).
#: Protocols not listed run on the general ``random-digraph`` workload.
PROTOCOL_BENCH_GRAPHS: Dict[str, str] = {
    "tree-broadcast": "random-grounded-tree",
    "naive-tree-broadcast": "random-grounded-tree",
    "dag-broadcast": "random-dag",
    "eager-dag-broadcast": "random-dag",
}

#: The size at which the per-protocol kernel coverage matrix is measured
#: (and at which the per-protocol ratio floors are gated).
PROTOCOL_MATRIX_N = 64

#: Record count for the result-store micro-benchmark in a full
#: ``repro bench`` (``--quick`` uses a fifth of it; the per-record cost is
#: flat well past this point, so quick runs measure the same thing).
STORE_BENCH_RECORDS = 10_000

#: Seed-group sizes for the batch-engine suite.  K=16 shows the break-even
#: region, K=64 is the gated size, K=256 the asymptotic regime.
BATCH_BENCH_KS = (16, 64, 256)

#: The group size at which ``batch_vs_fastpath_min_ratio`` is gated.
BATCH_BENCH_GATED_K = 64

#: The pinned *graph* seed for the per-protocol batch coverage matrix.
#: Pinning it in ``graph_params`` makes all K runs share one topology, so
#: the whole seed-group reaches the vectorized kernel (an unpinned graph
#: seed would shatter the group into K singleton topologies and measure
#: nothing but fallback dispatch).  Seed 1 also keeps the eager-DAG
#: split's compile-time message enumeration under the kernel's cap at the
#: gated size.
BATCH_PROTOCOL_GRAPH_SEED = 1

#: Graph size for the trace-capture overhead suite (the gated workload).
TRACE_BENCH_N = 64

#: Sampling rate for the suite's ``sample:k`` arm.
TRACE_BENCH_SAMPLE_K = 8


def bench_spec(
    n: int,
    engine: str,
    *,
    protocol: str = "general-broadcast",
    seed: int = 1,
) -> RunSpec:
    """The canonical benchmark workload at ``|V| = n`` for one engine.

    ``random-digraph`` with ``num_internal = n - 2`` yields exactly ``n``
    vertices; seed 1 terminates at every benchmarked size, so all engines
    do the full drain-to-quiescence work.
    """
    return RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": n - 2},
        protocol=protocol,
        engine=engine,
        seed=seed,
        label=f"bench-{protocol}-n{n}-{engine}",
    )


def protocol_bench_spec(
    protocol: str,
    n: int,
    engine: str,
    *,
    seed: int = 1,
    max_steps: int = 200_000,
) -> RunSpec:
    """The coverage-matrix workload for one protocol × engine at ``|V| = n``.

    Each protocol runs on its :data:`PROTOCOL_BENCH_GRAPHS` family; the
    explicit ``max_steps`` cap bounds intentionally explosive baselines
    (the eager-DAG split's path multiplicity) without affecting the
    well-matched protocols, and applies identically to every engine.
    """
    return RunSpec(
        graph=PROTOCOL_BENCH_GRAPHS.get(protocol, "random-digraph"),
        graph_params={"num_internal": n - 2},
        protocol=protocol,
        engine=engine,
        seed=seed,
        max_steps=max_steps,
        label=f"bench-{protocol}-n{n}-{engine}",
    )


def measure_spec(
    spec: RunSpec, *, repeats: int = 3, inner_loops: int = 1
) -> Dict[str, Any]:
    """Execute ``spec`` ``repeats`` times; report best-time throughput.

    Best-of-N is the standard noise filter for single-process CPU-bound
    benchmarks: the minimum is the run least disturbed by the OS.
    ``inner_loops`` amortises timer resolution for sub-millisecond runs:
    each timed sample executes the spec that many times and reports the
    mean per-execution time (the work is deterministic, so every inner
    execution is identical).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if inner_loops < 1:
        raise ValueError("inner_loops must be >= 1")
    best = float("inf")
    record = None
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner_loops):
            record = execute_spec(spec)
        elapsed = (time.perf_counter() - start) / inner_loops
        if elapsed < best:
            best = elapsed
    assert record is not None
    steps = int(record.metrics["steps"])
    return {
        "engine": spec.engine,
        "protocol": spec.protocol,
        "graph": spec.graph,
        "n": record.num_vertices,
        "num_edges": record.num_edges,
        "seed": spec.seed,
        "outcome": record.outcome,
        "steps": steps,
        "repeats": repeats,
        "inner_loops": inner_loops,
        "best_seconds": best,
        "steps_per_sec": steps / best if best > 0 else 0.0,
    }


def run_engine_benchmarks(
    *,
    sizes: Sequence[int] = FULL_SIZES,
    engines: Sequence[str] = BENCH_ENGINES,
    repeats: int = 3,
    protocol: str = "general-broadcast",
    seed: int = 1,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Measure every engine × size; return the BENCH_engines payload."""
    results: List[Dict[str, Any]] = []
    for n in sizes:
        for engine in engines:
            spec = bench_spec(n, engine, protocol=protocol, seed=seed)
            row = measure_spec(spec, repeats=repeats)
            results.append(row)
            if progress is not None:
                progress(row)
    comparisons: List[Dict[str, Any]] = []
    for n in sizes:
        by_engine = {row["engine"]: row for row in results if row["n"] == n}
        comparison: Dict[str, Any] = {"n": n}
        base = by_engine.get("async")
        for engine in engines:
            if engine == "async" or base is None or engine not in by_engine:
                continue
            if base["steps_per_sec"] > 0:
                comparison[f"{engine}_vs_async"] = (
                    by_engine[engine]["steps_per_sec"] / base["steps_per_sec"]
                )
        comparisons.append(comparison)
    return {
        "suite": "engines",
        "workload": {
            "graph": "random-digraph",
            "protocol": protocol,
            "seed": seed,
            "sizes": list(sizes),
            "repeats": repeats,
        },
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "results": results,
        "comparisons": comparisons,
    }


def run_protocol_matrix(
    *,
    n: int = PROTOCOL_MATRIX_N,
    engines: Sequence[str] = ("async", "fastpath"),
    repeats: int = 2,
    min_seconds: float = 0.05,
    seed: int = 1,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Measure every *registered* protocol under each engine at ``|V| = n``.

    The matrix is registry-driven — :data:`~repro.api.registry.PROTOCOLS`
    is enumerated at run time, so a newly registered protocol is benched
    automatically and the ``require_protocol_coverage`` floor (see
    :func:`check_floors`) fails CI if one were ever skipped.  Each
    protocol × engine cell gets one uncounted warmup/calibration run
    (which also primes the topology cache, as campaign traffic would),
    and sub-``min_seconds`` runs are amortised over inner loops.
    """
    ensure_registered()
    results: List[Dict[str, Any]] = []
    comparisons: List[Dict[str, Any]] = []
    for protocol in sorted(PROTOCOLS.names()):
        by_engine: Dict[str, Dict[str, Any]] = {}
        for engine in engines:
            spec = protocol_bench_spec(protocol, n, engine, seed=seed)
            start = time.perf_counter()
            execute_spec(spec)  # warmup / calibration (uncounted)
            calibration = time.perf_counter() - start
            inner_loops = 1
            if calibration < min_seconds:
                inner_loops = min(
                    256, max(1, int(min_seconds / max(calibration, 1e-7)))
                )
            row = measure_spec(spec, repeats=repeats, inner_loops=inner_loops)
            by_engine[engine] = row
            results.append(row)
            if progress is not None:
                progress(row)
        comparison: Dict[str, Any] = {"protocol": protocol, "n": n}
        base = by_engine.get("async")
        for engine in engines:
            if engine == "async" or base is None or engine not in by_engine:
                continue
            if base["steps_per_sec"] > 0:
                comparison[f"{engine}_vs_async"] = (
                    by_engine[engine]["steps_per_sec"] / base["steps_per_sec"]
                )
        comparisons.append(comparison)
    return {
        "n": n,
        "seed": seed,
        "repeats": repeats,
        "engines": list(engines),
        "results": results,
        "comparisons": comparisons,
    }


def batch_bench_spec() -> RunSpec:
    """The seed-group template the batch suite sweeps K seeds over.

    Flooding on a dense geometric sensor field: the heaviest stock
    random-scheduler workload per spec (every edge floods once, ~30 steps
    per vertex), and — critically — the graph seed is **pinned** in
    ``graph_params``, so every run in the group shares one compiled
    topology and the whole group reaches the kernel as a single state
    tensor.  An unpinned graph seed would shatter the group into K
    singleton topologies and measure nothing but fallback dispatch.
    """
    return RunSpec(
        graph="geometric-sensor-field",
        graph_params={"num_sensors": 48, "seed": 0, "base_range": 0.5},
        protocol="flooding",
        scheduler="random",
        engine="batch",
        label="bench-batch-flooding",
    )


def run_batch_benchmarks(
    *,
    ks: Sequence[int] = BATCH_BENCH_KS,
    repeats: int = 3,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Measure ``run_many`` seed-groups against per-seed fastpath runs.

    For each group size K, the same (spec, seed) pairs execute once
    through the batch engine's ``run_many`` and once as K individual
    fastpath runs.  The two timings are *interleaved* round by round and
    the best round of each is kept — engine A must never get the
    thermally-throttled half of the measurement window — and the floor
    gates the ratio, which is machine-independent (both engines run on
    the same box, same workload, same records).
    """
    from dataclasses import replace

    from ..api import ENGINES

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    template = batch_bench_spec()
    run_many = ENGINES.get(template.engine).run_many
    rounds = repeats + 2
    results: List[Dict[str, Any]] = []
    for k in ks:
        seeds = list(range(k))
        fast_specs = [
            replace(template, engine="fastpath", seed=seed) for seed in seeds
        ]
        records = run_many(template, seeds)  # warmup (compiles everything)
        execute_spec(fast_specs[0])
        total_steps = sum(int(record.metrics["steps"]) for record in records)
        best_batch = best_fast = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            run_many(template, seeds)
            best_batch = min(best_batch, time.perf_counter() - start)
            start = time.perf_counter()
            for spec in fast_specs:
                execute_spec(spec)
            best_fast = min(best_fast, time.perf_counter() - start)
        row = {
            "k": k,
            "steps": total_steps,
            "batch_seconds": best_batch,
            "fastpath_seconds": best_fast,
            "batch_steps_per_sec": (
                total_steps / best_batch if best_batch > 0 else 0.0
            ),
            "fastpath_steps_per_sec": (
                total_steps / best_fast if best_fast > 0 else 0.0
            ),
            "ratio": best_fast / best_batch if best_batch > 0 else 0.0,
        }
        results.append(row)
        if progress is not None:
            progress(row)
    return {
        "workload": {
            "graph": template.graph,
            "graph_params": dict(template.graph_params),
            "protocol": template.protocol,
            "scheduler": template.scheduler,
        },
        "ks": list(ks),
        "rounds": rounds,
        "results": results,
    }


def batch_protocol_spec(protocol: str, n: int = PROTOCOL_MATRIX_N) -> RunSpec:
    """The seed-group template for one protocol's batch coverage row.

    Same natural-habitat graph family as :func:`protocol_bench_spec`, but
    with the *graph* seed pinned to :data:`BATCH_PROTOCOL_GRAPH_SEED` in
    ``graph_params`` (see that constant's rationale) and the ``batch``
    engine selected.  The explicit ``max_steps`` cap bounds the eager-DAG
    split's path multiplicity identically on both engines.
    """
    return RunSpec(
        graph=PROTOCOL_BENCH_GRAPHS.get(protocol, "random-digraph"),
        graph_params={"num_internal": n - 2, "seed": BATCH_PROTOCOL_GRAPH_SEED},
        protocol=protocol,
        scheduler="random",
        engine="batch",
        max_steps=200_000,
        label=f"bench-batch-{protocol}-n{n}",
    )


def run_batch_protocol_matrix(
    *,
    n: int = PROTOCOL_MATRIX_N,
    k: int = BATCH_BENCH_GATED_K,
    repeats: int = 3,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Measure every *batchable* protocol's ``run_many`` speedup at K=``k``.

    The registry-driven companion of :func:`run_protocol_matrix` for the
    batch engine: every protocol registered in
    :data:`~repro.api.registry.PROTOCOLS` and not listed in
    :data:`~repro.network.batchpath.BATCH_KERNEL_EXEMPT` gets one row
    comparing a K-seed ``run_many`` group against K per-seed fastpath
    runs of the identical (spec, seed) pairs, interleaved round by round
    with the best round of each kept (same discipline as
    :func:`run_batch_benchmarks`).  Each row also records the group's
    ``fallbacks`` counters — a non-empty dict means the workload silently
    degraded to per-seed execution and the measured ratio is dispatch
    overhead, not kernel speedup, so it shows up next to the number it
    explains.  The ``require_batch_protocol_coverage`` floor (see
    :func:`check_floors`) fails CI if a registered batchable protocol
    were ever missing from this matrix.
    """
    from dataclasses import replace

    from ..api import ENGINES
    from ..network.batchpath import BATCH_KERNEL_EXEMPT

    ensure_registered()
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    run_many = ENGINES.get("batch").run_many
    rounds = repeats + 2
    seeds = list(range(k))
    results: List[Dict[str, Any]] = []
    for protocol in sorted(PROTOCOLS.names()):
        if protocol in BATCH_KERNEL_EXEMPT:
            continue
        template = batch_protocol_spec(protocol, n)
        fast_specs = [
            replace(template, engine="fastpath", seed=seed) for seed in seeds
        ]
        fallbacks: Dict[str, int] = {}
        records = run_many(template, seeds, fallbacks)  # warmup + probe
        execute_spec(fast_specs[0])
        total_steps = sum(int(record.metrics["steps"]) for record in records)
        best_batch = best_fast = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            run_many(template, seeds)
            best_batch = min(best_batch, time.perf_counter() - start)
            start = time.perf_counter()
            for spec in fast_specs:
                execute_spec(spec)
            best_fast = min(best_fast, time.perf_counter() - start)
        row = {
            "protocol": protocol,
            "graph": template.graph,
            "n": n,
            "k": k,
            "steps": total_steps,
            "batch_seconds": best_batch,
            "fastpath_seconds": best_fast,
            "batch_steps_per_sec": (
                total_steps / best_batch if best_batch > 0 else 0.0
            ),
            "fastpath_steps_per_sec": (
                total_steps / best_fast if best_fast > 0 else 0.0
            ),
            "ratio": best_fast / best_batch if best_batch > 0 else 0.0,
            "fallbacks": dict(fallbacks),
        }
        results.append(row)
        if progress is not None:
            progress(row)
    return {
        "n": n,
        "k": k,
        "rounds": rounds,
        "graph_seed": BATCH_PROTOCOL_GRAPH_SEED,
        "results": results,
    }


class _NoKernel:
    """Protocol proxy that never offers a compiled kernel.

    Trace capture forces the fastpath engine onto the generic protocol
    machine (kernels flatten payloads; the trace format must see the real
    objects), so the fair overhead baseline is the *same* generic machine
    without a sink — not the kernel, which would fold the whole
    kernel-vs-generic gap into the "trace overhead" number.  The kernel
    arm is still measured for context.
    """

    def __init__(self, protocol: Any) -> None:
        self._protocol = protocol

    def compile_fastpath(self, compiled: Any) -> None:
        return None

    def __getattr__(self, name: str) -> Any:
        return getattr(self._protocol, name)


def run_trace_benchmarks(
    *,
    n: int = TRACE_BENCH_N,
    sample_k: int = TRACE_BENCH_SAMPLE_K,
    repeats: int = 3,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Measure trace-capture overhead on the fastpath engine at ``|V| = n``.

    Four arms over the canonical benchmark workload, interleaved round by
    round with the best round kept per arm (no arm gets the
    thermally-throttled half of the window):

    * ``kernel`` — the compiled kernel, no sink (context: what an
      untraced production run costs);
    * ``untraced`` — the generic machine, no sink (the baseline trace
      overhead is measured against, since capture always runs generic);
    * ``traced-full`` — the generic machine recording every event to a
      real ``.rtrace`` file, capture setup and finalize included;
    * ``traced-sample:k`` — the same with 1-in-``sample_k`` sampling.

    The gated number is ``overhead.traced_full_vs_untraced`` — wall time
    of the traced arm over the untraced generic arm — which the
    ``trace_overhead_max_ratio`` *ceiling* in ``benchmarks/floors.json``
    bounds (machine-independent: both arms run on the same box).
    """
    import shutil
    import tempfile
    from dataclasses import replace

    from ..api.spec import compiled_topology
    from ..network.fastpath import run_protocol_fastpath
    from ..tracing.capture import TraceCapture

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    template = bench_spec(n, "fastpath")
    network = template.build_graph()
    protocol = template.build_protocol()
    compiled = compiled_topology(template, network)
    no_kernel = _NoKernel(protocol)
    full_spec = replace(template, trace="full")
    sample_spec = replace(template, trace=f"sample:{sample_k}")

    def execute(protocol_obj: Any, sink: Optional[Any]) -> Any:
        result = run_protocol_fastpath(
            network,
            protocol_obj,
            template.build_scheduler(),
            max_steps=template.max_steps,
            stop_at_termination=template.stop_at_termination,
            compiled=compiled,
            trace_sink=sink,
        )
        if sink is not None:
            sink.finalize(result)
        return result

    tmp = tempfile.mkdtemp(prefix="repro-trace-bench-")
    try:
        full_path = f"{tmp}/full.rtrace"
        sample_path = f"{tmp}/sample.rtrace"
        arms = [
            ("kernel", lambda: execute(protocol, None)),
            ("untraced", lambda: execute(no_kernel, None)),
            (
                "traced-full",
                lambda: execute(
                    no_kernel, TraceCapture(full_spec, network, full_path)
                ),
            ),
            (
                f"traced-sample:{sample_k}",
                lambda: execute(
                    no_kernel, TraceCapture(sample_spec, network, sample_path)
                ),
            ),
        ]
        # warmup (also yields the step count — tracing never changes it)
        steps = None
        trace_bytes: Dict[str, int] = {}
        for name, run in arms:
            result = run()
            if steps is None:
                steps = int(result.metrics.steps)
        import os

        trace_bytes["full"] = os.path.getsize(full_path)
        trace_bytes["sample"] = os.path.getsize(sample_path)
        assert steps is not None
        rounds = repeats + 2
        best: Dict[str, float] = {name: float("inf") for name, _ in arms}
        for _ in range(rounds):
            for name, run in arms:
                start = time.perf_counter()
                run()
                best[name] = min(best[name], time.perf_counter() - start)
        results = []
        for name, _ in arms:
            row = {
                "arm": name,
                "n": n,
                "steps": steps,
                "best_seconds": best[name],
                "steps_per_sec": steps / best[name] if best[name] > 0 else 0.0,
            }
            results.append(row)
            if progress is not None:
                progress(row)
        untraced = best["untraced"]
        overhead = {
            "traced_full_vs_untraced": (
                best["traced-full"] / untraced if untraced > 0 else float("inf")
            ),
            f"traced_sample{sample_k}_vs_untraced": (
                best[f"traced-sample:{sample_k}"] / untraced
                if untraced > 0
                else float("inf")
            ),
            "untraced_vs_kernel": (
                untraced / best["kernel"] if best["kernel"] > 0 else float("inf")
            ),
            "trace_bytes_full": trace_bytes["full"],
            "trace_bytes_sample": trace_bytes["sample"],
        }
        return {
            "workload": {
                "graph": template.graph,
                "protocol": template.protocol,
                "seed": template.seed,
            },
            "n": n,
            "sample_k": sample_k,
            "rounds": rounds,
            "results": results,
            "overhead": overhead,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


#: The pinned workload for the schedule-search suite: the largest random
#: DAG whose schedule tree the exhaustive explorer drains in well under a
#: second (1 877 nodes, worst execution 13 deliveries deep), so the gate
#: compares a *completed* enumeration against the guided search's
#: time-to-incumbent rather than two truncation artifacts.
SCHEDULE_BENCH_GRAPH = "random-dag"
SCHEDULE_BENCH_PARAMS = {"num_internal": 3, "seed": 0}
SCHEDULE_BENCH_PROTOCOL = "general-broadcast"


def run_schedule_benchmarks(
    *, repeats: int = 3, progress: Optional[Any] = None
) -> Dict[str, Any]:
    """Guided vs. exhaustive schedule search on the pinned workload.

    Both searches run to completion on the same schedule tree (best of
    ``repeats`` timed rounds each).  The gated number is
    ``node_speedup`` — exhaustive nodes expanded over guided nodes
    expanded *when the incumbent reached the true worst* — which the
    ``schedule_search_min_speedup`` floor bounds.  Node counts are
    deterministic, so the gate is machine-independent like the other
    ratio floors; wall-clock times ride along for context.  ``agrees``
    asserts the searches saw the same outcome set and the guided
    incumbent matched the exhaustive maximum — a bench that gated a
    speedup while the answers diverged would reward a broken search.
    """
    from ..lowerbounds.guided import search_schedules
    from ..lowerbounds.schedules import explore_all_schedules

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    ensure_registered()
    spec = RunSpec(
        graph=SCHEDULE_BENCH_GRAPH,
        graph_params=dict(SCHEDULE_BENCH_PARAMS),
        protocol=SCHEDULE_BENCH_PROTOCOL,
        seed=0,
    )
    network = spec.build_graph()

    best_exhaustive = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        exhaustive = explore_all_schedules(
            network, spec.build_protocol, max_steps_total=2_000_000
        )
        best_exhaustive = min(best_exhaustive, time.perf_counter() - start)
    best_guided = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        guided = search_schedules(
            network, spec.build_protocol, objective="max-steps", max_nodes=2_000_000
        )
        best_guided = min(best_guided, time.perf_counter() - start)

    agrees = (
        not exhaustive.truncated
        and not guided.truncated
        and guided.outcomes == exhaustive.outcomes
        and guided.best_depth == exhaustive.max_depth
    )
    nodes_at_best = max(1, guided.nodes_at_best or 0)
    # Per-node cost is flat across the walk, so time-to-incumbent is the
    # full guided wall time prorated by the node counter at the incumbent.
    seconds_to_best = best_guided * nodes_at_best / max(1, guided.nodes)
    block = {
        "workload": {
            "graph": SCHEDULE_BENCH_GRAPH,
            "graph_params": dict(SCHEDULE_BENCH_PARAMS),
            "protocol": SCHEDULE_BENCH_PROTOCOL,
        },
        "rounds": repeats,
        "exhaustive_nodes": exhaustive.steps,
        "exhaustive_seconds": best_exhaustive,
        "worst_steps": exhaustive.max_depth,
        "guided_nodes": guided.nodes,
        "guided_nodes_to_best": guided.nodes_at_best,
        "guided_seconds": best_guided,
        "guided_seconds_to_best": seconds_to_best,
        "node_speedup": exhaustive.steps / nodes_at_best,
        "agrees": agrees,
    }
    if progress is not None:
        progress(block)
    return block


def synthetic_store_records(n_records: int) -> List[Any]:
    """``n_records`` distinct, cheap :class:`~repro.api.spec.RunRecord`\\ s.

    Synthesized rather than executed — the store bench measures store
    throughput, not engine throughput — but shaped exactly like real
    records (a full RunSpec with a distinct seed per record), so hashing,
    serialization and shard fan-out costs are representative.
    """
    from dataclasses import replace

    from ..api.spec import RunRecord

    base = RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": 8},
        protocol="general-broadcast",
        label="store-bench",
    )
    return [
        RunRecord(
            spec=replace(base, seed=i),
            outcome="terminated",
            terminated=True,
            num_vertices=10,
            num_edges=27,
            metrics={"steps": 100 + i, "total_messages": 300, "total_bits": 8000},
            elapsed_seconds=0.001,
        )
        for i in range(n_records)
    ]


def run_store_benchmarks(
    *,
    n_records: int = STORE_BENCH_RECORDS,
    root: Optional[str] = None,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Measure result-store put/contains/get throughput at ``n_records``.

    Populates a fresh :class:`~repro.store.store.ResultStore` (a temp
    directory unless ``root`` is given) with synthetic records, then times
    the three operations a warm campaign resume exercises: ``put_many``
    (publishing), ``contains_many`` (index probes) and ``get_many`` (full
    record retrieval with hash verification).  ``cache_hit_rate`` is the
    fraction of just-stored records ``get_many`` returned intact — 1.0 on
    a healthy store, and the number the ``store_min_cache_hit_rate`` floor
    gates (a retrieval or quarantine bug shows up here, not as a perf
    regression).
    """
    import shutil
    import tempfile

    from ..store import ResultStore

    records = synthetic_store_records(n_records)
    specs = [record.spec for record in records]
    tmp = None
    if root is None:
        tmp = root = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        store = ResultStore(root)
        start = time.perf_counter()
        store.put_many(records)
        put_seconds = time.perf_counter() - start
        start = time.perf_counter()
        found = store.contains_many(specs)
        contains_seconds = time.perf_counter() - start
        start = time.perf_counter()
        got = store.get_many(specs)
        get_seconds = time.perf_counter() - start
        block = {
            "n_records": n_records,
            "put_seconds": put_seconds,
            "contains_seconds": contains_seconds,
            "get_seconds": get_seconds,
            "put_per_sec": n_records / put_seconds if put_seconds > 0 else 0.0,
            "contains_per_sec": (
                n_records / contains_seconds if contains_seconds > 0 else 0.0
            ),
            "get_per_sec": n_records / get_seconds if get_seconds > 0 else 0.0,
            "indexed": len(found),
            "retrieved": len(got),
            "cache_hit_rate": len(got) / n_records if n_records else 0.0,
        }
        if progress is not None:
            progress(block)
        return block
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


def write_benchmarks(payload: Dict[str, Any], path: str) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_floors(path: str) -> Dict[str, Any]:
    """Read a floors file (see ``benchmarks/floors.json``)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_floors(payload: Dict[str, Any], floors: Dict[str, Any]) -> List[str]:
    """Return every floor violation (empty list = gate passes).

    Floors file shape::

        {
          "fastpath_min_steps_per_sec": {"64": 4000},
          "fastpath_vs_async_min_ratio": {"64": 2.0},
          "protocol_vs_async_min_ratio": {"tree-broadcast": 2.0, ...},
          "require_protocol_coverage": true,
          "store_min_put_per_sec": 300,
          "store_min_get_per_sec": 400,
          "store_min_contains_per_sec": 1500,
          "store_min_cache_hit_rate": 0.95,
          "batch_vs_fastpath_min_ratio": {"16": 1.2, "64": 3.0},
          "batch_protocol_vs_fastpath_min_ratio": {"tree-broadcast": 2.0, ...},
          "require_batch_protocol_coverage": true,
          "trace_overhead_max_ratio": 1.5,
          "schedule_search_min_speedup": 3.0
        }

    ``trace_overhead_max_ratio`` is the one *ceiling*: full trace capture
    may cost at most that multiple of the equivalent untraced run.

    Keys of the size-indexed floors are sizes as strings (JSON objects);
    ``protocol_vs_async_min_ratio`` is keyed by protocol registry name and
    checked against the ``protocols`` coverage matrix.  Measurements
    missing from the current payload are reported as violations — a gate
    that silently skips is no gate.  With ``require_protocol_coverage``
    set, every protocol registered in
    :data:`~repro.api.registry.PROTOCOLS` must appear in the coverage
    matrix, so registering a protocol without extending the bench matrix
    fails CI.

    ``batch_protocol_vs_fastpath_min_ratio`` is keyed by protocol registry
    name and checked against the ``batch.protocols`` coverage matrix
    (measured at ``K = BATCH_BENCH_GATED_K``); with
    ``require_batch_protocol_coverage`` set, every registered protocol not
    listed in :data:`~repro.network.batchpath.BATCH_KERNEL_EXEMPT` must
    appear in that matrix, so shipping a ``compile_batch`` kernel without
    benching it (or silently losing one) fails CI.
    """
    violations: List[str] = []
    by_size = {
        row["n"]: row for row in payload.get("results", []) if row["engine"] == "fastpath"
    }
    for size_text, minimum in floors.get("fastpath_min_steps_per_sec", {}).items():
        n = int(size_text)
        row = by_size.get(n)
        if row is None:
            violations.append(f"no fastpath measurement at n={n} to check against floor")
            continue
        if row["steps_per_sec"] < minimum:
            violations.append(
                f"fastpath steps/sec at n={n} is {row['steps_per_sec']:.0f}, "
                f"below the floor of {minimum}"
            )
    ratios = {c["n"]: c for c in payload.get("comparisons", [])}
    for size_text, minimum in floors.get("fastpath_vs_async_min_ratio", {}).items():
        n = int(size_text)
        comparison = ratios.get(n, {})
        ratio = comparison.get("fastpath_vs_async")
        if ratio is None:
            violations.append(f"no fastpath-vs-async ratio at n={n} to check against floor")
            continue
        if ratio < minimum:
            violations.append(
                f"fastpath vs async at n={n} is {ratio:.2f}x, "
                f"below the floor of {minimum}x"
            )

    protocols_block = payload.get("protocols") or {}
    protocol_ratios = {
        c["protocol"]: c for c in protocols_block.get("comparisons", [])
    }
    protocol_floors = floors.get("protocol_vs_async_min_ratio", {})
    matrix_n = protocols_block.get("n")
    if protocol_floors and matrix_n is not None and matrix_n != PROTOCOL_MATRIX_N:
        # The per-protocol floors are calibrated at the gated size; ratios
        # measured elsewhere (e.g. --protocols-n experiments) must fail
        # loudly rather than gate the wrong numbers either way.
        violations.append(
            f"protocol coverage matrix was measured at n={matrix_n} but the "
            f"per-protocol ratio floors are calibrated at n={PROTOCOL_MATRIX_N}"
        )
    else:
        for name, minimum in protocol_floors.items():
            ratio = protocol_ratios.get(name, {}).get("fastpath_vs_async")
            if ratio is None:
                violations.append(
                    f"no fastpath-vs-async ratio for protocol {name!r} in the "
                    "coverage matrix to check against floor"
                )
                continue
            if ratio < minimum:
                violations.append(
                    f"fastpath vs async for {name} is {ratio:.2f}x, "
                    f"below the floor of {minimum}x"
                )
    if floors.get("require_protocol_coverage"):
        ensure_registered()
        benched = {row["protocol"] for row in protocols_block.get("results", [])}
        for name in sorted(PROTOCOLS.names()):
            if name not in benched:
                violations.append(
                    f"registered protocol {name!r} is missing from the bench "
                    "matrix (protocols coverage)"
                )

    store_block = payload.get("store")
    store_floor_keys = [
        ("store_min_put_per_sec", "put_per_sec", "store put/sec"),
        ("store_min_get_per_sec", "get_per_sec", "store get/sec"),
        ("store_min_contains_per_sec", "contains_per_sec", "store contains/sec"),
        ("store_min_cache_hit_rate", "cache_hit_rate", "store cache hit rate"),
    ]
    for floor_key, metric_key, label in store_floor_keys:
        minimum = floors.get(floor_key)
        if minimum is None:
            continue
        if store_block is None:
            violations.append(
                f"no store benchmark block to check against {floor_key} "
                "(run repro bench without --no-store-bench)"
            )
            break
        value = store_block.get(metric_key)
        if value is None:
            violations.append(f"store benchmark block lacks {metric_key!r}")
        elif value < minimum:
            violations.append(
                f"{label} is {value:.4g}, below the floor of {minimum}"
            )

    batch_floors = floors.get("batch_vs_fastpath_min_ratio", {})
    if batch_floors:
        batch_block = payload.get("batch")
        if batch_block is None:
            violations.append(
                "no batch benchmark block to check against "
                "batch_vs_fastpath_min_ratio "
                "(run repro bench without --no-batch-bench)"
            )
        else:
            batch_rows = {
                row["k"]: row for row in batch_block.get("results", [])
            }
            for k_text, minimum in batch_floors.items():
                k = int(k_text)
                row = batch_rows.get(k)
                if row is None:
                    violations.append(
                        f"no batch-vs-fastpath measurement at K={k} to "
                        "check against floor"
                    )
                    continue
                if row["ratio"] < minimum:
                    violations.append(
                        f"batch vs fastpath at K={k} is {row['ratio']:.2f}x, "
                        f"below the floor of {minimum}x"
                    )

    batch_protocol_floors = floors.get("batch_protocol_vs_fastpath_min_ratio", {})
    if batch_protocol_floors or floors.get("require_batch_protocol_coverage"):
        batch_matrix = (payload.get("batch") or {}).get("protocols")
        if batch_matrix is None:
            violations.append(
                "no per-protocol batch coverage matrix to check against "
                "batch_protocol_vs_fastpath_min_ratio "
                "(run repro bench without --no-batch-bench)"
            )
        else:
            matrix_rows = {
                row["protocol"]: row for row in batch_matrix.get("results", [])
            }
            matrix_k = batch_matrix.get("k")
            if batch_protocol_floors and matrix_k != BATCH_BENCH_GATED_K:
                # Same discipline as the per-protocol fastpath floors: the
                # ratios are calibrated at the gated group size, so numbers
                # measured elsewhere must fail loudly instead of gating.
                violations.append(
                    f"batch coverage matrix was measured at K={matrix_k} but "
                    "the per-protocol batch ratio floors are calibrated at "
                    f"K={BATCH_BENCH_GATED_K}"
                )
            else:
                for name, minimum in batch_protocol_floors.items():
                    row = matrix_rows.get(name)
                    if row is None:
                        violations.append(
                            f"no batch-vs-fastpath ratio for protocol {name!r} "
                            "in the batch coverage matrix to check against floor"
                        )
                        continue
                    if row["ratio"] < minimum:
                        violations.append(
                            f"batch vs fastpath for {name} is "
                            f"{row['ratio']:.2f}x, below the floor of {minimum}x"
                        )
            if floors.get("require_batch_protocol_coverage"):
                from ..network.batchpath import BATCH_KERNEL_EXEMPT

                ensure_registered()
                for name in sorted(PROTOCOLS.names()):
                    if name in BATCH_KERNEL_EXEMPT or name in matrix_rows:
                        continue
                    violations.append(
                        f"registered protocol {name!r} is missing from the "
                        "batch coverage matrix (batch protocols coverage)"
                    )

    schedule_minimum = floors.get("schedule_search_min_speedup")
    if schedule_minimum is not None:
        schedule_block = payload.get("schedules")
        if schedule_block is None:
            violations.append(
                "no schedule-search benchmark block to check against "
                "schedule_search_min_speedup "
                "(run repro bench without --no-schedule-bench)"
            )
        else:
            speedup = schedule_block.get("node_speedup")
            if speedup is None:
                violations.append(
                    "schedule-search benchmark block lacks 'node_speedup'"
                )
            elif speedup < schedule_minimum:
                violations.append(
                    f"guided schedule search reached the worst case in "
                    f"{speedup:.2f}x fewer nodes than exhaustion, below the "
                    f"floor of {schedule_minimum}x"
                )
            if not schedule_block.get("agrees", False):
                violations.append(
                    "guided schedule search disagreed with exhaustive "
                    "enumeration on the pinned workload (outcome set or "
                    "worst step count)"
                )

    trace_maximum = floors.get("trace_overhead_max_ratio")
    if trace_maximum is not None:
        # A *ceiling*, not a floor: trace capture may cost at most this
        # multiple of the untraced generic-machine run.
        trace_block = payload.get("trace")
        if trace_block is None:
            violations.append(
                "no trace benchmark block to check against "
                "trace_overhead_max_ratio "
                "(run repro bench without --no-trace-bench)"
            )
        else:
            ratio = trace_block.get("overhead", {}).get(
                "traced_full_vs_untraced"
            )
            if ratio is None:
                violations.append(
                    "trace benchmark block lacks 'traced_full_vs_untraced'"
                )
            elif ratio > trace_maximum:
                violations.append(
                    f"full trace capture costs {ratio:.2f}x the untraced "
                    f"run, above the ceiling of {trace_maximum}x"
                )
    return violations


def render_bench_table(payload: Dict[str, Any]) -> str:
    """Human-readable summary of a benchmark payload."""
    lines = [
        f"{'engine':<12} {'n':>5} {'steps':>8} {'best_s':>9} {'steps/sec':>12}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['engine']:<12} {row['n']:>5} {row['steps']:>8} "
            f"{row['best_seconds']:>9.4f} {row['steps_per_sec']:>12.0f}"
        )
    for comparison in payload["comparisons"]:
        ratios = ", ".join(
            f"{key} = {value:.2f}x"
            for key, value in comparison.items()
            if key != "n"
        )
        if ratios:
            lines.append(f"n={comparison['n']}: {ratios}")
    protocols_block = payload.get("protocols")
    if protocols_block:
        lines.append("")
        lines.append(
            f"protocol kernel coverage at n={protocols_block['n']} "
            "(fastpath vs async):"
        )
        ratios_by_protocol = {
            c["protocol"]: c.get("fastpath_vs_async")
            for c in protocols_block.get("comparisons", [])
        }
        for protocol, ratio in sorted(ratios_by_protocol.items()):
            shown = f"{ratio:.2f}x" if ratio is not None else "n/a"
            lines.append(f"  {protocol:<24} {shown:>8}")
    store_block = payload.get("store")
    if store_block:
        lines.append("")
        lines.append(
            f"result store at {store_block['n_records']} records: "
            f"put {store_block['put_per_sec']:.0f}/s, "
            f"contains {store_block['contains_per_sec']:.0f}/s, "
            f"get {store_block['get_per_sec']:.0f}/s, "
            f"hit rate {store_block['cache_hit_rate']:.3f}"
        )
    batch_block = payload.get("batch")
    if batch_block:
        lines.append("")
        workload = batch_block.get("workload", {})
        lines.append(
            "batch engine seed-groups on "
            f"{workload.get('graph', '?')}/{workload.get('protocol', '?')} "
            "(run_many vs per-seed fastpath):"
        )
        lines.append(
            f"{'K':>6} {'steps':>9} {'batch/s':>12} {'fastpath/s':>12} "
            f"{'ratio':>8}"
        )
        for row in batch_block.get("results", []):
            lines.append(
                f"{row['k']:>6} {row['steps']:>9} "
                f"{row['batch_steps_per_sec']:>12.0f} "
                f"{row['fastpath_steps_per_sec']:>12.0f} "
                f"{row['ratio']:>7.2f}x"
            )
        batch_matrix = batch_block.get("protocols")
        if batch_matrix:
            lines.append("")
            lines.append(
                f"batch kernel coverage at n={batch_matrix['n']}, "
                f"K={batch_matrix['k']} (run_many vs per-seed fastpath):"
            )
            for row in batch_matrix.get("results", []):
                note = ""
                if row.get("fallbacks"):
                    tally = ", ".join(
                        f"{reason}={count}"
                        for reason, count in sorted(row["fallbacks"].items())
                    )
                    note = f"  [fell back: {tally}]"
                lines.append(
                    f"  {row['protocol']:<24} {row['ratio']:>7.2f}x{note}"
                )
    trace_block = payload.get("trace")
    if trace_block:
        lines.append("")
        lines.append(
            f"trace capture overhead at n={trace_block['n']} "
            "(fastpath, generic machine):"
        )
        lines.append(f"{'arm':<20} {'steps':>8} {'best_s':>9} {'steps/sec':>12}")
        for row in trace_block.get("results", []):
            lines.append(
                f"{row['arm']:<20} {row['steps']:>8} "
                f"{row['best_seconds']:>9.4f} {row['steps_per_sec']:>12.0f}"
            )
        overhead = trace_block.get("overhead", {})
        ratio = overhead.get("traced_full_vs_untraced")
        if ratio is not None:
            lines.append(
                f"full capture overhead: {ratio:.2f}x untraced "
                f"({overhead.get('trace_bytes_full', '?')} bytes written)"
            )
    schedule_block = payload.get("schedules")
    if schedule_block:
        lines.append("")
        workload = schedule_block.get("workload", {})
        lines.append(
            "schedule search on "
            f"{workload.get('graph', '?')}/{workload.get('protocol', '?')} "
            f"(worst execution: {schedule_block.get('worst_steps', '?')} steps):"
        )
        lines.append(
            f"  exhaustive: {schedule_block['exhaustive_nodes']} nodes in "
            f"{schedule_block['exhaustive_seconds']:.3f}s; guided incumbent "
            f"at node {schedule_block['guided_nodes_to_best']} "
            f"(~{schedule_block['guided_seconds_to_best']:.4f}s) — "
            f"{schedule_block['node_speedup']:.1f}x fewer nodes"
            + ("" if schedule_block.get("agrees") else "  [DISAGREES]")
        )
    return "\n".join(lines)
