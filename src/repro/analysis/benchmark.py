"""Engine throughput benchmarks with machine-readable output and floors.

This is the harness behind ``repro bench`` and the CI perf gate.  It
measures *delivery steps per second* — the simulator-native throughput
unit — for each execution engine on the E5 general-broadcast workload
(the paper's main protocol, and the heaviest per-step transition in the
repository) across graph sizes, then emits a JSON document
(``BENCH_engines.json``) of the shape::

    {
      "suite": "engines",
      "workload": {"graph": "random-digraph", "protocol": "general-broadcast", ...},
      "environment": {"python": "3.11.7", "platform": "..."},
      "results": [
        {"engine": "fastpath", "n": 64, "steps": 7472, "best_seconds": ...,
         "steps_per_sec": ..., "outcome": "terminated", ...},
        ...
      ],
      "comparisons": [
        {"n": 64, "fastpath_vs_async": 9.1, "fastpath_vs_synchronous": ...},
        ...
      ]
    }

Floors (``benchmarks/floors.json``) gate regressions in CI: an absolute
steps/sec floor catches catastrophic slowdowns without being flaky across
heterogeneous runners (it is set an order of magnitude below a laptop
run), and a fastpath-vs-async *ratio* floor — machine-independent, both
engines run on the same box — enforces that the fast path stays genuinely
fast (the PR acceptance bar is 2× at n = 64).
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Dict, List, Optional, Sequence

from ..api import RunSpec, execute_spec

__all__ = [
    "BENCH_ENGINES",
    "QUICK_SIZES",
    "FULL_SIZES",
    "bench_spec",
    "measure_spec",
    "run_engine_benchmarks",
    "write_benchmarks",
    "load_floors",
    "check_floors",
    "render_bench_table",
]

#: Engines the suite compares, in report order.
BENCH_ENGINES = ("async", "fastpath", "synchronous")

#: Graph sizes (|V|) for `repro bench --quick` — must include the gated n=64.
QUICK_SIZES = (16, 64)

#: Graph sizes for a full `repro bench`.
FULL_SIZES = (16, 32, 64, 128)


def bench_spec(
    n: int,
    engine: str,
    *,
    protocol: str = "general-broadcast",
    seed: int = 1,
) -> RunSpec:
    """The canonical benchmark workload at ``|V| = n`` for one engine.

    ``random-digraph`` with ``num_internal = n - 2`` yields exactly ``n``
    vertices; seed 1 terminates at every benchmarked size, so all engines
    do the full drain-to-quiescence work.
    """
    return RunSpec(
        graph="random-digraph",
        graph_params={"num_internal": n - 2},
        protocol=protocol,
        engine=engine,
        seed=seed,
        label=f"bench-{protocol}-n{n}-{engine}",
    )


def measure_spec(spec: RunSpec, *, repeats: int = 3) -> Dict[str, Any]:
    """Execute ``spec`` ``repeats`` times; report best-time throughput.

    Best-of-N is the standard noise filter for single-process CPU-bound
    benchmarks: the minimum is the run least disturbed by the OS.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    record = None
    for _ in range(repeats):
        start = time.perf_counter()
        record = execute_spec(spec)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    assert record is not None
    steps = int(record.metrics["steps"])
    return {
        "engine": spec.engine,
        "protocol": spec.protocol,
        "graph": spec.graph,
        "n": record.num_vertices,
        "num_edges": record.num_edges,
        "seed": spec.seed,
        "outcome": record.outcome,
        "steps": steps,
        "repeats": repeats,
        "best_seconds": best,
        "steps_per_sec": steps / best if best > 0 else 0.0,
    }


def run_engine_benchmarks(
    *,
    sizes: Sequence[int] = FULL_SIZES,
    engines: Sequence[str] = BENCH_ENGINES,
    repeats: int = 3,
    protocol: str = "general-broadcast",
    seed: int = 1,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Measure every engine × size; return the BENCH_engines payload."""
    results: List[Dict[str, Any]] = []
    for n in sizes:
        for engine in engines:
            spec = bench_spec(n, engine, protocol=protocol, seed=seed)
            row = measure_spec(spec, repeats=repeats)
            results.append(row)
            if progress is not None:
                progress(row)
    comparisons: List[Dict[str, Any]] = []
    for n in sizes:
        by_engine = {row["engine"]: row for row in results if row["n"] == n}
        comparison: Dict[str, Any] = {"n": n}
        base = by_engine.get("async")
        for engine in engines:
            if engine == "async" or base is None or engine not in by_engine:
                continue
            if base["steps_per_sec"] > 0:
                comparison[f"{engine}_vs_async"] = (
                    by_engine[engine]["steps_per_sec"] / base["steps_per_sec"]
                )
        comparisons.append(comparison)
    return {
        "suite": "engines",
        "workload": {
            "graph": "random-digraph",
            "protocol": protocol,
            "seed": seed,
            "sizes": list(sizes),
            "repeats": repeats,
        },
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "results": results,
        "comparisons": comparisons,
    }


def write_benchmarks(payload: Dict[str, Any], path: str) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_floors(path: str) -> Dict[str, Any]:
    """Read a floors file (see ``benchmarks/floors.json``)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_floors(payload: Dict[str, Any], floors: Dict[str, Any]) -> List[str]:
    """Return every floor violation (empty list = gate passes).

    Floors file shape::

        {
          "fastpath_min_steps_per_sec": {"64": 4000},
          "fastpath_vs_async_min_ratio": {"64": 2.0}
        }

    Keys are sizes as strings (JSON objects), values are the minimum
    acceptable measurement at that size.  Sizes missing from the current
    payload are reported as violations — a gate that silently skips is no
    gate.
    """
    violations: List[str] = []
    by_size = {
        row["n"]: row for row in payload.get("results", []) if row["engine"] == "fastpath"
    }
    for size_text, minimum in floors.get("fastpath_min_steps_per_sec", {}).items():
        n = int(size_text)
        row = by_size.get(n)
        if row is None:
            violations.append(f"no fastpath measurement at n={n} to check against floor")
            continue
        if row["steps_per_sec"] < minimum:
            violations.append(
                f"fastpath steps/sec at n={n} is {row['steps_per_sec']:.0f}, "
                f"below the floor of {minimum}"
            )
    ratios = {c["n"]: c for c in payload.get("comparisons", [])}
    for size_text, minimum in floors.get("fastpath_vs_async_min_ratio", {}).items():
        n = int(size_text)
        comparison = ratios.get(n, {})
        ratio = comparison.get("fastpath_vs_async")
        if ratio is None:
            violations.append(f"no fastpath-vs-async ratio at n={n} to check against floor")
            continue
        if ratio < minimum:
            violations.append(
                f"fastpath vs async at n={n} is {ratio:.2f}x, "
                f"below the floor of {minimum}x"
            )
    return violations


def render_bench_table(payload: Dict[str, Any]) -> str:
    """Human-readable summary of a benchmark payload."""
    lines = [
        f"{'engine':<12} {'n':>5} {'steps':>8} {'best_s':>9} {'steps/sec':>12}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['engine']:<12} {row['n']:>5} {row['steps']:>8} "
            f"{row['best_seconds']:>9.4f} {row['steps_per_sec']:>12.0f}"
        )
    for comparison in payload["comparisons"]:
        ratios = ", ".join(
            f"{key} = {value:.2f}x"
            for key, value in comparison.items()
            if key != "n"
        )
        if ratios:
            lines.append(f"n={comparison['n']}: {ratios}")
    return "\n".join(lines)
