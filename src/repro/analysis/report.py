"""Plain-text table rendering for experiment output.

Each experiment driver returns a list of dict rows; the benches print them
through :func:`render_table` so that ``pytest benchmarks/ --benchmark-only``
reproduces, in one place, every number cited in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value) -> str:
    """Human-compact cell formatting."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    rows: Sequence[Dict], *, title: Optional[str] = None, columns: Optional[List[str]] = None
) -> str:
    """Render dict rows as an aligned fixed-width table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table)) for i, col in enumerate(columns)
    ]
    out_lines = []
    if title:
        out_lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    out_lines.append(header)
    out_lines.append("  ".join("-" * w for w in widths))
    for line in table:
        out_lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(out_lines)
