"""ASCII visualisation of interval commodities and label maps.

The Section 4/5 protocols are easiest to understand by *looking* at how
``[0, 1)`` gets carved up.  :func:`render_union` draws one interval-union as
a fixed-width bar; :func:`render_label_map` stacks the labels of a finished
labeling run so the disjoint-slices structure of Theorem 5.1 is visible at a
glance::

    vertex  2 |████████                        | [0, 1/2^2)
    vertex  3 |        ████                    | [1/2^2, 3/2^3)
    ...

Used by the examples and handy in a REPL; rendering is resolution-limited
(cells are rounded to the bar width) and clearly marked as approximate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.intervals import IntervalUnion

__all__ = ["render_union", "render_label_map"]


def render_union(union: IntervalUnion, *, width: int = 48, fill: str = "█") -> str:
    """Draw an interval-union of ``[0, 1)`` as a ``width``-cell ASCII bar.

    Each cell covers ``1/width`` of the unit interval and is filled when its
    midpoint lies in the union (midpoint sampling keeps thin slivers from
    vanishing entirely at the left edge of a cell).
    """
    if width < 1:
        raise ValueError("width must be positive")
    from fractions import Fraction

    cells: List[str] = []
    for i in range(width):
        # Midpoint of cell i is (2i+1)/(2·width); width need not be a power
        # of two, so the comparison goes through exact fractions.
        mid = Fraction(2 * i + 1, 2 * width)
        inside = any(
            ival.lo.as_fraction() <= mid < ival.hi.as_fraction() for ival in union
        )
        cells.append(fill if inside else " ")
    return "|" + "".join(cells) + "|"


def render_label_map(
    labels: Dict[int, IntervalUnion],
    *,
    width: int = 48,
    names: Optional[Dict[int, str]] = None,
) -> str:
    """Stack one bar per labeled vertex, sorted by label position.

    ``names`` optionally overrides the per-vertex row headers.
    """
    def sort_key(item):
        vertex, label = item
        first = label.intervals[0] if label.intervals else None
        return (first.lo.as_fraction() if first else 2, vertex)

    lines: List[str] = []
    for vertex, label in sorted(labels.items(), key=sort_key):
        name = names.get(vertex, f"vertex {vertex:3d}") if names else f"vertex {vertex:3d}"
        lines.append(f"{name} {render_union(label, width=width)} {label}")
    return "\n".join(lines)
