"""Topology mapping — the Section 6 programme, made concrete.

The paper's conclusion: *"By showing how to broadcast and assign labels on
such networks, we can transform anonymous networks to labeled networks and
even map the whole topology by flooding local information available to
nodes."*  It gives no protocol; this module supplies one, as an explicitly
marked extension (DESIGN.md §4/§5).

**Protocol.**  Run the Section 5 label-assignment protocol unchanged, and
piggyback on every message:

* the sender's identity (its label once assigned; the distinguished markers
  ``"s"``/``"t"`` for root and terminal, which the model already singles
  out) and the out-port the message leaves on,
* a monotonically growing set of *facts*: :class:`VertexFact` — "a vertex
  with label L has out-degree d" — and :class:`EdgeFact` — "out-port p of
  the vertex labeled L_tail is wired to in-port q of the vertex labeled
  L_head".

A vertex learns the tail of each of its in-edges from the first labeled
message on that in-port, records the corresponding :class:`EdgeFact` once it
knows its own label, and floods every fact it holds on all out-ports
whenever its fact set grows (fact growth alone triggers messages — without
this, a fact acquired after a vertex's last commodity change would be
stranded).

**Sound termination.**  The terminal declares the map complete when

1. the labeling protocol's own stopping predicate holds
   (``α ∪ β = [0, 1)``), and
2. the collected fact set is *closed*: starting from the root's
   :class:`VertexFact` and following recorded edges, every reached vertex
   has a known out-degree and all of its out-ports accounted for by edge
   facts.

Closure is sound because every vertex of the network is reachable from the
root (a standing model assumption): a closed fact set reached from the root
therefore covers the whole network, and each saturated out-degree certifies
that no edge is missing.  It is live because every edge eventually carries a
labeled message (the canonical-partition repair guarantees every out-port
non-empty commodity) and facts flood monotonically along paths to ``t``.

The reconstructed :class:`NetworkMap` is checked against the ground truth by
:meth:`~repro.network.graph.DirectedNetwork.same_topology_under` in the E11
experiment — 100% of runs must reconstruct an edge-multiset-isomorphic
topology, with out-port wiring exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple, Union

from .encoding import unsigned_cost
from .general_broadcast import GeneralState
from .intervals import EMPTY_UNION, IntervalUnion, union_cost
from .labeling import LabelAssignmentProtocol
from .messages import IntervalMessage
from .model import AnonymousProtocol, Emission, VertexView
from ..api.registry import PROTOCOLS

__all__ = [
    "ROOT_MARKER",
    "TERMINAL_MARKER",
    "VertexFact",
    "EdgeFact",
    "MappingMessage",
    "MappingState",
    "NetworkMap",
    "MappingProtocol",
]

#: Identity of the root in facts and maps (the model distinguishes ``s``).
ROOT_MARKER = "s"
#: Identity of the terminal in facts and maps (the model distinguishes ``t``).
TERMINAL_MARKER = "t"

#: A vertex identity: the root/terminal marker or an assigned label.
Identity = Union[str, IntervalUnion]


@dataclass(frozen=True)
class VertexFact:
    """Fact: the vertex with this identity has this out-degree."""

    label: Identity
    out_degree: int

    def bits(self) -> int:
        """Encoded size used in message accounting."""
        return _identity_cost(self.label) + unsigned_cost(self.out_degree)


@dataclass(frozen=True)
class EdgeFact:
    """Fact: out-port ``tail_port`` of ``tail`` feeds in-port ``head_port``
    of ``head``."""

    tail: Identity
    tail_port: int
    head: Identity
    head_port: int

    def bits(self) -> int:
        """Encoded size used in message accounting."""
        return (
            _identity_cost(self.tail)
            + _identity_cost(self.head)
            + unsigned_cost(self.tail_port)
            + unsigned_cost(self.head_port)
        )


def _identity_cost(identity: Identity) -> int:
    """Bit cost of an identity: 2 tag bits plus the label encoding."""
    if isinstance(identity, str):
        return 2
    return 2 + union_cost(identity)


@dataclass(frozen=True)
class MappingMessage:
    """A labeling-protocol message with mapping piggyback."""

    alpha: IntervalUnion
    beta: IntervalUnion
    payload: Any
    sender: Optional[Identity]
    sender_port: int
    facts: FrozenSet

    def structure_bits(self) -> int:
        """Encoded size of everything except the broadcast payload."""
        total = union_cost(self.alpha) + union_cost(self.beta)
        total += unsigned_cost(self.sender_port)
        total += _identity_cost(self.sender) if self.sender is not None else 2
        for fact in self.facts:
            total += fact.bits()
        return total


class MappingState:
    """Wrapper state: the labeling state plus fact bookkeeping."""

    __slots__ = ("base", "facts", "in_info", "recorded_ports", "identity", "out_degree")

    def __init__(self, base: GeneralState, out_degree: int) -> None:
        self.base = base
        self.facts: Set = set()
        #: First labeled sender seen per in-port: port → (identity, tail_port).
        self.in_info: Dict[int, Tuple[Identity, int]] = {}
        #: In-ports whose EdgeFact has been recorded.
        self.recorded_ports: Set[int] = set()
        #: Own identity once known (terminal knows immediately; internal
        #: vertices learn it with their label).
        self.identity: Optional[Identity] = None
        self.out_degree = out_degree


@dataclass
class NetworkMap:
    """The terminal's output: a fully reconstructed topology.

    ``vertices`` maps each identity to its out-degree (the terminal has
    out-degree 0 by the model).  ``edges`` is the full port-level wiring.
    """

    vertices: Dict[Identity, int]
    edges: List[EdgeFact]

    def edge_multiset(self) -> Dict[Tuple[Identity, Identity], int]:
        """Multiset of (tail identity, head identity) pairs."""
        counts: Dict[Tuple[Identity, Identity], int] = {}
        for e in self.edges:
            key = (e.tail, e.head)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def to_network(self):
        """Materialise the map as a :class:`~repro.network.graph.DirectedNetwork`.

        Vertices are numbered deterministically (root first, terminal last,
        labeled vertices in label order); edges are emitted per tail in
        out-port order, so the result's **out-port structure is exact**.
        In-port numbering at multi-in-degree vertices may differ from the
        ground truth (the map records head ports, but a single edge list
        cannot always realise both port orders simultaneously); topology
        comparisons should use
        :meth:`~repro.network.graph.DirectedNetwork.same_topology_under`.

        Returns the network and the identity→vertex-id assignment.
        """
        from ..network.graph import DirectedNetwork

        def sort_key(identity: Identity):
            if identity == ROOT_MARKER:
                return (0, "")
            if identity == TERMINAL_MARKER:
                return (2, "")
            return (1, repr(identity))

        ordered = sorted(self.vertices, key=sort_key)
        ids = {identity: index for index, identity in enumerate(ordered)}
        edges = []
        for identity in ordered:
            port_map = {
                fact.tail_port: fact for fact in self.edges if fact.tail == identity
            }
            for port in range(self.vertices[identity]):
                fact = port_map[port]
                edges.append((ids[identity], ids[fact.head]))
        network = DirectedNetwork(
            len(ordered),
            edges,
            root=ids[ROOT_MARKER],
            terminal=ids[TERMINAL_MARKER],
            validate=False,
        )
        return network, ids

    def matches_network(self, network, vertex_identity: Dict[int, Identity]) -> bool:
        """True iff this map is exactly the ground-truth topology under the
        given vertex→identity correspondence (white-box check for tests)."""
        if len(vertex_identity) != network.num_vertices:
            return False
        if set(vertex_identity.values()) != set(self.vertices):
            return False
        for v in range(network.num_vertices):
            if self.vertices[vertex_identity[v]] != network.out_degree(v):
                return False
        truth: Dict[Tuple[Identity, Identity], int] = {}
        for tail, head in network.edges:
            key = (vertex_identity[tail], vertex_identity[head])
            truth[key] = truth.get(key, 0) + 1
        return truth == self.edge_multiset()


def _closure(facts: Set) -> Optional[NetworkMap]:
    """Check fact-set closure from the root; return the map if complete.

    Performs the BFS described in the module docs: every reached identity
    must have a :class:`VertexFact` and edge facts for *all* of its
    out-ports.  Returns ``None`` while any of that is missing.
    """
    out_degree: Dict[Identity, int] = {}
    out_edges: Dict[Identity, Dict[int, EdgeFact]] = {}
    for fact in facts:
        if isinstance(fact, VertexFact):
            out_degree[fact.label] = fact.out_degree
        else:
            out_edges.setdefault(fact.tail, {})[fact.tail_port] = fact

    if ROOT_MARKER not in out_degree:
        return None
    seen: Set[Identity] = {ROOT_MARKER}
    frontier: List[Identity] = [ROOT_MARKER]
    edges: List[EdgeFact] = []
    while frontier:
        ident = frontier.pop()
        if ident == TERMINAL_MARKER:
            continue
        if ident not in out_degree:
            return None
        ports = out_edges.get(ident, {})
        if len(ports) != out_degree[ident]:
            return None
        for port in range(out_degree[ident]):
            fact = ports.get(port)
            if fact is None:
                return None
            edges.append(fact)
            if fact.head not in seen:
                seen.add(fact.head)
                frontier.append(fact.head)
    vertices = {ident: out_degree.get(ident, 0) for ident in seen}
    return NetworkMap(vertices=vertices, edges=sorted(edges, key=repr))


@PROTOCOLS.register()
class MappingProtocol(AnonymousProtocol[MappingState, MappingMessage]):
    """Label assignment + fact flooding = verified topology extraction.

    Parameters mirror :class:`~repro.core.labeling.LabelAssignmentProtocol`;
    the underlying labeling protocol runs with the paper-default endpoint
    handling (root and terminal identified by their distinguished roles, not
    by interval labels).
    """

    name = "topology-mapping"

    def __init__(self, broadcast_payload: Any = None, payload_bits: Optional[int] = None) -> None:
        self._inner = LabelAssignmentProtocol(broadcast_payload, payload_bits)
        self.broadcast_payload = broadcast_payload
        self.payload_bits = self._inner.payload_bits

    # ------------------------------------------------------------------
    # AnonymousProtocol interface
    # ------------------------------------------------------------------

    def create_state(self, view: VertexView) -> MappingState:
        state = MappingState(self._inner.create_state(view), view.out_degree)
        if view.out_degree == 0:
            # Out-degree 0 plays the terminal's role in the model; dead ends
            # mis-identifying as "t" is harmless — their facts can never
            # reach the real terminal (no outgoing edges), and their
            # unreachable commodity already blocks termination.
            state.identity = TERMINAL_MARKER
        return state

    def initial_emissions(self, view: VertexView) -> List[Emission]:
        facts = frozenset({VertexFact(ROOT_MARKER, view.out_degree)})
        emissions: List[Emission] = []
        for port, message in self._inner.initial_emissions(view):
            emissions.append(
                (
                    port,
                    MappingMessage(
                        alpha=message.alpha,
                        beta=message.beta,
                        payload=message.payload,
                        sender=ROOT_MARKER,
                        sender_port=port,
                        facts=facts,
                    ),
                )
            )
        return emissions

    def on_receive(
        self, state: MappingState, view: VertexView, in_port: int, message: MappingMessage
    ) -> Tuple[MappingState, List[Emission]]:
        facts_before = len(state.facts)

        # 1. Run the underlying labeling transition.
        inner_msg = IntervalMessage(
            alpha=message.alpha, beta=message.beta, payload=message.payload
        )
        _, inner_emissions = self._inner.on_receive(state.base, view, in_port, inner_msg)

        # 2. Learn our own identity when the label arrives.
        if state.identity is None and state.base.label is not None:
            state.identity = state.base.label
            state.facts.add(VertexFact(state.identity, view.out_degree))

        # 3. Record the in-edge's tail (first labeled message per in-port).
        if message.sender is not None and in_port not in state.in_info:
            state.in_info[in_port] = (message.sender, message.sender_port)
        if state.identity is not None:
            for port, (tail, tail_port) in state.in_info.items():
                if port not in state.recorded_ports:
                    state.recorded_ports.add(port)
                    state.facts.add(
                        EdgeFact(tail=tail, tail_port=tail_port, head=state.identity, head_port=port)
                    )

        # 4. Adopt the sender's facts.
        state.facts.update(message.facts)

        # 5. Emit: wrap the labeling emissions; if the fact set grew, flood
        #    facts on the remaining ports too.
        facts_grew = len(state.facts) != facts_before
        snapshot = frozenset(state.facts)
        emissions: List[Emission] = []
        ports_covered = set()
        for port, inner_out in inner_emissions:
            ports_covered.add(port)
            emissions.append((port, self._wrap(inner_out, state, port, snapshot)))
        if facts_grew:
            for port in range(view.out_degree):
                if port not in ports_covered:
                    emissions.append(
                        (
                            port,
                            MappingMessage(
                                alpha=EMPTY_UNION,
                                beta=EMPTY_UNION,
                                payload=message.payload,
                                sender=state.identity,
                                sender_port=port,
                                facts=snapshot,
                            ),
                        )
                    )
        return state, emissions

    def _wrap(
        self, inner: IntervalMessage, state: MappingState, port: int, facts: FrozenSet
    ) -> MappingMessage:
        return MappingMessage(
            alpha=inner.alpha,
            beta=inner.beta,
            payload=inner.payload,
            sender=state.identity,
            sender_port=port,
            facts=facts,
        )

    def is_terminated(self, state: MappingState) -> bool:
        if not state.base.covered().is_unit():
            return False
        return _closure(state.facts) is not None

    def clone_message(self, message: MappingMessage) -> MappingMessage:
        # Frozen dataclass (identities and fact sets immutable).
        return message

    def clone_state(self, state: MappingState) -> MappingState:
        """Shallow-container copy: facts and identities are immutable."""
        clone = MappingState(state.base.clone(), state.out_degree)
        clone.facts = set(state.facts)
        clone.in_info = dict(state.in_info)
        clone.recorded_ports = set(state.recorded_ports)
        clone.identity = state.identity
        return clone

    def compile_fastpath(self, compiled: Any) -> Optional[Any]:
        """Flat fact-flooding kernel over the interval labeling kernel."""
        if type(self) is not MappingProtocol:
            return None
        from .mapping_kernel import MappingKernel

        return MappingKernel(self, compiled)

    def message_bits(self, message: MappingMessage) -> int:
        return message.structure_bits() + self.payload_bits

    def output(self, state: MappingState) -> Optional[NetworkMap]:
        """The reconstructed topology (``None`` before closure)."""
        return _closure(state.facts)

    def state_bits(self, state: MappingState) -> int:
        total = self._inner.state_bits(state.base)
        for fact in state.facts:
            total += fact.bits()
        return total
