"""The paper's complexity bounds as executable formulas.

Each function returns the *bound expression* (without the hidden constant)
for a given graph's parameters; the analysis layer divides measured costs by
these expressions — a bound of the right shape makes the ratio flat (bounded
above and below by constants) as the family grows.  Keeping the formulas in
one place means every bench and every EXPERIMENTS.md row cites the same
expression as the paper's theorem.
"""

from __future__ import annotations

import math

from ..network.graph import DirectedNetwork

__all__ = [
    "tree_broadcast_total_bits_bound",
    "tree_broadcast_bandwidth_bound",
    "dag_broadcast_total_bits_bound",
    "dag_broadcast_bandwidth_bound",
    "general_broadcast_total_bits_bound",
    "general_broadcast_symbol_bits_bound",
    "label_length_bits_bound",
    "undirected_label_length_bound",
    "graph_parameters",
]


def _log2(x: float) -> float:
    """``log₂`` clamped below at 1 so bounds never vanish on tiny graphs."""
    return max(1.0, math.log2(max(2.0, x)))


def graph_parameters(network: DirectedNetwork) -> dict:
    """The parameter tuple every theorem is stated in: |V|, |E|, d_out."""
    return {
        "V": network.num_vertices,
        "E": network.num_edges,
        "d_out": network.max_out_degree(),
    }


def tree_broadcast_total_bits_bound(network: DirectedNetwork, payload_bits: int = 0) -> float:
    """Theorem 3.1: ``O(|E| log |E|) + |E|·|m|`` total communication."""
    e = network.num_edges
    return e * _log2(e) + e * payload_bits


def tree_broadcast_bandwidth_bound(network: DirectedNetwork, payload_bits: int = 0) -> float:
    """Theorem 3.1 / Section 1.1: ``O(log |E|) + |m|`` per-message bits."""
    return _log2(network.num_edges) + payload_bits


def dag_broadcast_total_bits_bound(network: DirectedNetwork, payload_bits: int = 0) -> float:
    """Section 3.3: ``O(|E|²) + |E|·|m|`` total communication on DAGs."""
    e = network.num_edges
    return float(e * e) + e * payload_bits


def dag_broadcast_bandwidth_bound(network: DirectedNetwork, payload_bits: int = 0) -> float:
    """Section 3.3 / Theorem 3.8: ``O(|E|) + |m|`` bits per message, tight
    for commodity-preserving protocols."""
    return float(network.num_edges) + payload_bits


def general_broadcast_total_bits_bound(network: DirectedNetwork, payload_bits: int = 0) -> float:
    """Theorem 4.2: ``O(|E|²·|V|·log d_out) + |E|·|m|``."""
    e = network.num_edges
    v = network.num_vertices
    return e * e * v * _log2(network.max_out_degree()) + e * payload_bits


def general_broadcast_symbol_bits_bound(network: DirectedNetwork, payload_bits: int = 0) -> float:
    """Theorem 4.3: ``O(|E|·|V|·log d_out) + |m|`` bits per symbol (and per
    edge in total, by the once-per-point carrying argument)."""
    return (
        network.num_edges * network.num_vertices * _log2(network.max_out_degree())
        + payload_bits
    )


def label_length_bits_bound(network: DirectedNetwork) -> float:
    """Theorems 5.1 / 5.2: ``Θ(|V| log d_out)`` bits per label."""
    return network.num_vertices * _log2(network.max_out_degree())


def undirected_label_length_bound(num_vertices: int) -> float:
    """The Section 6 comparison point: ``O(log |V|)`` label bits achievable in
    undirected (or strongly connected) anonymous networks."""
    return _log2(num_vertices)
