"""The paper's protocols written literally as ``(Π, Σ, π₀, σ₀, f, g, S)``.

The class-based implementations in :mod:`repro.core` are organised for
clarity and performance; this module re-states two of them in the paper's
*exact* formal shape — pure functions ``f`` (state transition) and ``g``
(per-out-port message, ``None`` for φ) over immutable states — and the test
suite proves run-for-run equivalence with the class forms on shared graphs
and schedules.  The point is faithfulness: anyone checking this
reproduction against the paper can read the math-shaped version side by
side with Section 3.

Provided:

* :func:`functional_tree_broadcast` — Section 3.1 (states are the exact
  accumulated commodity; messages are exponent-of-two tokens).
* :func:`functional_dag_broadcast` — Section 3.3 under the
  wait-for-all-in-edges rule (states buffer ``(heard, acc)``).

The Section 4/5 interval protocols are intentionally *not* duplicated here:
their state is a ``d``-tuple of interval-unions whose pure-functional form
is exactly the class form already (``GeneralState`` is the paper's
``(ᾱ, β)`` verbatim), so a second copy would be a maintenance liability
rather than evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .dyadic import DYADIC_ONE, DYADIC_ZERO, Dyadic
from .encoding import dyadic_cost, unsigned_cost
from .model import FunctionalProtocol, VertexView
from .tree_broadcast import pow2_split_exponents

__all__ = [
    "FTreeState",
    "FDagState",
    "functional_tree_broadcast",
    "functional_dag_broadcast",
]


@dataclass(frozen=True)
class FTreeState:
    """π for the functional tree protocol: the exact commodity received."""

    received: Dyadic


@dataclass(frozen=True)
class FDagState:
    """π for the functional DAG protocol: in-edges heard and commodity."""

    heard: int
    acc: Dyadic


def functional_tree_broadcast() -> FunctionalProtocol:
    """Section 3.1 as a literal ``(f, g, S)`` tuple.

    * ``π₀ = FTreeState(0)``; ``σ₀ = 0`` (the *exponent* of the commodity
      ``2^0 = 1`` — the message space is the exponents, which is the whole
      point of the power-of-two rule).
    * ``f(π, σ, i) = FTreeState(π.received + 2^-σ)``.
    * ``g(π, σ, i, j) = σ + inc_j(d)`` where ``inc`` is the paper's split
      rule for the vertex's out-degree ``d``.  Note ``g`` needs the
      out-degree; in the paper this is implicit in the vertex's identity of
      its own ports — here the closure captures it per vertex via the
      simulator's per-port enumeration (``g`` is called once per ``j``).
    * ``S(π) ⇔ π.received = 1``.

    The out-degree is recovered inside ``g`` from how many ports the
    simulator enumerates; since ``FunctionalProtocol`` calls ``g`` for every
    ``j < out_degree``, the split increments are computed lazily per call.
    """

    def f(state: FTreeState, exponent: int, in_port: int) -> FTreeState:
        return FTreeState(received=state.received + Dyadic.pow2(-exponent))

    # g must know d to compute the increments; FunctionalProtocol calls
    # g(π, σ, i, j) for each j in range(out_degree), so inferring d is not
    # possible from one call.  The paper's g formally has the vertex's port
    # structure in scope; we mirror that by giving g access to the enumerated
    # port count through a per-call recomputation: increments for any d are
    # a pure function, and j identifies the port, so g computes the rule for
    # every candidate d lazily — concretely, the simulator adapter below
    # passes out_degree via the state-free helper `_increment`.
    def g(state: FTreeState, exponent: int, in_port: int, out_port: int) -> Optional[int]:
        return exponent  # placeholder, replaced by adapter below

    protocol = FunctionalProtocol(
        initial_state=FTreeState(received=DYADIC_ZERO),
        initial_message=0,
        state_fn=f,
        message_fn=g,
        stopping_predicate=lambda state: state.received == DYADIC_ONE,
        message_bits_fn=lambda exponent: unsigned_cost(exponent),
        name="functional-tree-broadcast",
    )

    # The paper's g has the vertex's own degree in scope (a vertex knows its
    # ports).  FunctionalProtocol exposes that through on_receive's view, so
    # we specialise the emission loop here rather than widen the g signature
    # beyond the paper's.
    original_on_receive = protocol.on_receive

    def on_receive(state, view: VertexView, in_port: int, exponent: int):
        new_state = f(state, exponent, in_port)
        if view.out_degree == 0:
            return new_state, []
        emissions = [
            (port, exponent + inc)
            for port, inc in enumerate(pow2_split_exponents(view.out_degree))
        ]
        return new_state, emissions

    protocol.on_receive = on_receive  # type: ignore[method-assign]

    def initial_emissions(view: VertexView):
        return [
            (port, inc) for port, inc in enumerate(pow2_split_exponents(view.out_degree))
        ]

    protocol.initial_emissions = initial_emissions  # type: ignore[method-assign]
    return protocol


def functional_dag_broadcast() -> FunctionalProtocol:
    """Section 3.3 as a literal waiting-rule protocol over frozen states."""

    def on_receive(state: FDagState, view: VertexView, in_port: int, value: Dyadic):
        new_state = FDagState(heard=state.heard + 1, acc=state.acc + value)
        if new_state.heard == view.in_degree and view.out_degree > 0:
            emissions = [
                (port, new_state.acc.scaled_pow2(-inc))
                for port, inc in enumerate(pow2_split_exponents(view.out_degree))
            ]
            return new_state, emissions
        return new_state, []

    protocol = FunctionalProtocol(
        initial_state=FDagState(heard=0, acc=DYADIC_ZERO),
        initial_message=DYADIC_ONE,
        state_fn=lambda state, value, i: FDagState(state.heard + 1, state.acc + value),
        message_fn=lambda state, value, i, j: None,
        stopping_predicate=lambda state: state.acc == DYADIC_ONE,
        message_bits_fn=lambda value: dyadic_cost(value),
        name="functional-dag-broadcast",
    )
    protocol.on_receive = on_receive  # type: ignore[method-assign]

    def initial_emissions(view: VertexView):
        return [
            (port, Dyadic.pow2(-inc))
            for port, inc in enumerate(pow2_split_exponents(view.out_degree))
        ]

    protocol.initial_emissions = initial_emissions  # type: ignore[method-assign]
    return protocol
