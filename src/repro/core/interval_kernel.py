"""Compiled fast-path kernel for the Section 4/5 interval protocols.

The general-broadcast and label-assignment protocols spend nearly all of
their time in :class:`~repro.core.intervals.IntervalUnion` algebra: every
transition allocates ``Interval``/``Dyadic``/``IntervalUnion`` objects and
every ``union`` re-canonicalises by sorting, and the terminal re-computes
``α ∪ β`` from scratch for every stopping-predicate evaluation.  This
module re-implements exactly the same protocol semantics on flat data:

* an endpoint is a normalised dyadic ``(num, exp)`` pair of plain ints
  (``num`` odd or ``exp == 0`` — the same canonical form as
  :class:`~repro.core.dyadic.Dyadic`, so encoded bit costs agree exactly);
* an interval is a 4-tuple ``(lo_num, lo_exp, hi_num, hi_exp)``;
* an interval union is a Python list of such tuples in canonical form
  (sorted, disjoint, non-adjacent) — all set algebra is done by linear
  merges/sweeps over already-canonical operands, never by sorting;
* messages between kernel vertices are ``(alpha, beta)`` pairs of such
  lists (the broadcast payload is a run-constant, carried implicitly);
* the terminal maintains its covered set ``α ∪ β`` *incrementally*, so
  the stopping predicate is an ``O(1)`` structural check instead of a
  fresh union per delivery.

Bit accounting replicates :mod:`repro.core.encoding` arithmetic
(Elias-delta lengths) on the int pairs, so ``total_bits`` and friends are
identical to the reference engine — the differential test suite asserts
this for every graph family and scheduler.  Real
:class:`~repro.core.general_broadcast.GeneralState` objects (and
:class:`~repro.core.intervals.IntervalUnion` labels) are materialised only
once, at the end of the run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .dyadic import Dyadic
from .flat_kernel import _add, _dcost, _le, _lt, _norm, _sub, _ucost
from .intervals import EMPTY_UNION, Interval, IntervalUnion

__all__ = ["IntervalKernel"]

#: A canonical interval: (lo_num, lo_exp, hi_num, hi_exp), endpoints normalised.
_FlatInterval = Tuple[int, int, int, int]
#: A canonical union: list of flat intervals, sorted/disjoint/non-adjacent.
_FlatUnion = List[_FlatInterval]

#: The unit interval [0, 1) in flat form.
_UNIT: _FlatUnion = [(0, 0, 1, 0)]

#: Encoded size of an empty union (length prefix only).
_EMPTY_COST = 1  # _ucost(0)

# The dyadic-pair arithmetic (_norm/_add/_sub/_lt/_le) and scalar bit costs
# (_ucost/_dcost) are shared with the scalar-protocol kernels; they live in
# :mod:`repro.core.flat_kernel` and are re-exported here for the union
# algebra below (and for existing imports of this module).


def _cost(union: _FlatUnion) -> int:
    """``union_cost``: length prefix plus two dyadics per interval."""
    total = _ucost(len(union))
    for ln, le, hn, he in union:
        total += _dcost(ln, le) + _dcost(hn, he)
    return total


# ----------------------------------------------------------------------
# Canonical-union set algebra (linear merges over canonical operands)
# ----------------------------------------------------------------------


def _union(a: _FlatUnion, b: _FlatUnion) -> _FlatUnion:
    """Set union of two canonical unions by a single merge sweep."""
    if not a:
        return b
    if not b:
        return a
    out: _FlatUnion = []
    i = j = 0
    la, lb = len(a), len(b)
    # Seed the accumulator with the leftmost interval.
    if _le(a[0][0], a[0][1], b[0][0], b[0][1]):
        clo_n, clo_e, chi_n, chi_e = a[0]
        i = 1
    else:
        clo_n, clo_e, chi_n, chi_e = b[0]
        j = 1
    while i < la or j < lb:
        if j >= lb:
            nxt = a[i]
            i += 1
        elif i >= la:
            nxt = b[j]
            j += 1
        elif _le(a[i][0], a[i][1], b[j][0], b[j][1]):
            nxt = a[i]
            i += 1
        else:
            nxt = b[j]
            j += 1
        nlo_n, nlo_e, nhi_n, nhi_e = nxt
        if _le(nlo_n, nlo_e, chi_n, chi_e):
            # Overlapping or adjacent: extend the accumulator if needed.
            if _lt(chi_n, chi_e, nhi_n, nhi_e):
                chi_n, chi_e = nhi_n, nhi_e
        else:
            out.append((clo_n, clo_e, chi_n, chi_e))
            clo_n, clo_e, chi_n, chi_e = nxt
    out.append((clo_n, clo_e, chi_n, chi_e))
    return out


def _intersection(a: _FlatUnion, b: _FlatUnion) -> _FlatUnion:
    """Set intersection (two-pointer sweep, mirrors IntervalUnion)."""
    if not a or not b:
        return []
    out: _FlatUnion = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        alo_n, alo_e, ahi_n, ahi_e = a[i]
        blo_n, blo_e, bhi_n, bhi_e = b[j]
        if _lt(alo_n, alo_e, blo_n, blo_e):
            lo_n, lo_e = blo_n, blo_e
        else:
            lo_n, lo_e = alo_n, alo_e
        if _lt(ahi_n, ahi_e, bhi_n, bhi_e):
            hi_n, hi_e = ahi_n, ahi_e
        else:
            hi_n, hi_e = bhi_n, bhi_e
        if _lt(lo_n, lo_e, hi_n, hi_e):
            out.append((lo_n, lo_e, hi_n, hi_e))
        if _le(ahi_n, ahi_e, bhi_n, bhi_e):
            i += 1
        else:
            j += 1
    return out


def _difference(a: _FlatUnion, b: _FlatUnion) -> _FlatUnion:
    """Set difference ``a \\ b`` (shared sweep, mirrors IntervalUnion)."""
    if not a or not b:
        return a
    out: _FlatUnion = []
    j = 0
    lb = len(b)
    for ilo_n, ilo_e, ihi_n, ihi_e in a:
        cur_n, cur_e = ilo_n, ilo_e
        while j < lb and _le(b[j][2], b[j][3], ilo_n, ilo_e):
            j += 1
        k = j
        while k < lb and _lt(b[k][0], b[k][1], ihi_n, ihi_e):
            blo_n, blo_e, bhi_n, bhi_e = b[k]
            if _lt(cur_n, cur_e, blo_n, blo_e):
                out.append((cur_n, cur_e, blo_n, blo_e))
            if _lt(cur_n, cur_e, bhi_n, bhi_e):
                cur_n, cur_e = bhi_n, bhi_e
            if _le(ihi_n, ihi_e, cur_n, cur_e):
                break
            k += 1
        if _lt(cur_n, cur_e, ihi_n, ihi_e):
            out.append((cur_n, cur_e, ihi_n, ihi_e))
    return out


# ----------------------------------------------------------------------
# Partition schemes (Δ-split of Theorem 4.3, canonical partition of §4)
# ----------------------------------------------------------------------


def _split(interval: _FlatInterval, parts: int) -> List[_FlatInterval]:
    """Δ-split a non-empty interval into ``parts`` pieces (Thm 4.3)."""
    if parts == 1:
        return [interval]
    lo_n, lo_e, hi_n, hi_e = interval
    shift = (parts - 1).bit_length()  # N = 2**shift >= parts
    mn, me = _sub(hi_n, hi_e, lo_n, lo_e)
    dn, de = _norm(mn, me + shift)  # measure / N
    cuts: List[_FlatInterval] = []
    cur_n, cur_e = lo_n, lo_e
    for _ in range(parts - 1):
        nxt_n, nxt_e = _add(cur_n, cur_e, dn, de)
        cuts.append((cur_n, cur_e, nxt_n, nxt_e))
        cur_n, cur_e = nxt_n, nxt_e
    cuts.append((cur_n, cur_e, hi_n, hi_e))
    return cuts


def _partition(alpha: _FlatUnion, parts: int, literal: bool) -> List[_FlatUnion]:
    """The §4 canonical partition (repaired by default, literal optional)."""
    if parts == 1:
        return [alpha]
    if not alpha:
        return [[] for _ in range(parts)]
    first, rest = alpha[0], alpha[1:]
    if literal:
        result: List[_FlatUnion] = [[piece] for piece in _split(first, parts - 1)]
        result.append(rest)
        return result
    if rest:
        result = [[piece] for piece in _split(first, parts - 1)]
        result.append(rest)
    else:
        result = [[piece] for piece in _split(first, parts)]
    return result


# ----------------------------------------------------------------------
# Materialisation back to the object world
# ----------------------------------------------------------------------


def _to_union(flat: _FlatUnion) -> IntervalUnion:
    """Lift a flat canonical union back into an :class:`IntervalUnion`."""
    if not flat:
        return EMPTY_UNION
    return IntervalUnion(
        Interval(Dyadic(ln, le), Dyadic(hn, he)) for ln, le, hn, he in flat
    )


class IntervalKernel:
    """Fast-path machine for :class:`GeneralBroadcastProtocol` semantics.

    Parameters
    ----------
    protocol:
        The protocol instance (source of ``payload_bits``,
        ``broadcast_payload`` and the partition rule).
    compiled:
        The :class:`~repro.network.fastpath.CompiledNetwork`.
    reserve_label:
        §5 variation: partition into ``d + 1`` parts and retain slot 0.
    root_plain / d0_plain:
        The :class:`~repro.core.labeling.LabelAssignmentProtocol` overrides
        for the paper setting (``label_endpoints=False``): the root injects
        like the plain broadcast protocol, and out-degree-0 vertices take
        no label and leave the virgin flag cleared on every delivery.
    """

    __slots__ = (
        "protocol",
        "terminal",
        "payload_bits",
        "literal",
        "reserve_label",
        "root_plain",
        "d0_plain",
        "out_degree",
        "virgin",
        "received",
        "alphas",
        "beta",
        "alpha_acc",
        "label",
        "frozen",
        "coverage",
        "covered",
        "terminal_done",
    )

    def __init__(
        self,
        protocol: Any,
        compiled: Any,
        *,
        reserve_label: bool,
        root_plain: bool,
        d0_plain: bool,
    ) -> None:
        self.protocol = protocol
        self.terminal = compiled.terminal
        self.payload_bits: int = protocol.payload_bits
        self.literal = protocol.partition_rule == "literal"
        self.reserve_label = reserve_label
        self.root_plain = root_plain
        self.d0_plain = d0_plain
        n = compiled.num_vertices
        self.out_degree = [len(ports) for ports in compiled.out_edge_ids]
        self.virgin = [True] * n
        self.received = [False] * n
        self.alphas: List[List[_FlatUnion]] = [
            [[] for _ in range(d)] for d in self.out_degree
        ]
        self.beta: List[_FlatUnion] = [[] for _ in range(n)]
        self.alpha_acc: List[_FlatUnion] = [[] for _ in range(n)]
        self.label: List[Optional[_FlatUnion]] = [None] * n
        self.frozen: List[_FlatUnion] = [[] for _ in range(n)]
        self.coverage: List[_FlatUnion] = [[] for _ in range(n)]
        self.covered: _FlatUnion = []
        self.terminal_done = False

    # ------------------------------------------------------------------
    # machine interface
    # ------------------------------------------------------------------

    def initial_emissions(self, root: int) -> List[Tuple[int, Any, int]]:
        d = self.out_degree[root]
        if self.reserve_label and not self.root_plain:
            parts = _partition(_UNIT, d + 1, self.literal)
            beta0, port_parts = parts[0], parts[1:]
        else:
            beta0, port_parts = [], _partition(_UNIT, d, self.literal)
        beta0_cost = _cost(beta0)
        pb = self.payload_bits
        return [
            (port, (part, beta0), _cost(part) + beta0_cost + pb)
            for port, part in enumerate(port_parts)
            if part or beta0
        ]

    def deliver(
        self, vertex: int, in_port: int, token: Tuple[_FlatUnion, _FlatUnion]
    ) -> List[Tuple[int, Any, int]]:
        alpha_in, beta_in = token
        self.received[vertex] = True
        d = self.out_degree[vertex]
        pb = self.payload_bits

        if d == 0:
            # Terminal or dead end: accumulate for the stopping test.
            if alpha_in:
                self.alpha_acc[vertex] = _union(self.alpha_acc[vertex], alpha_in)
            if beta_in:
                self.beta[vertex] = _union(self.beta[vertex], beta_in)
            if self.d0_plain:
                self.virgin[vertex] = False
            elif self.virgin[vertex] and alpha_in:
                self.virgin[vertex] = False
                if self.reserve_label and self.label[vertex] is None:
                    self.label[vertex] = alpha_in
            if vertex == self.terminal and not self.terminal_done:
                covered = self.covered
                if alpha_in:
                    covered = _union(covered, alpha_in)
                if beta_in:
                    covered = _union(covered, beta_in)
                self.covered = covered
                self.terminal_done = (
                    len(covered) == 1 and covered[0] == (0, 0, 1, 0)
                )
            return []

        if self.virgin[vertex]:
            if not alpha_in:
                # β-only message before any commodity: flood the increment,
                # stay virgin (second erratum repair).
                old_beta = self.beta[vertex]
                delta_beta = _difference(beta_in, old_beta)
                self.beta[vertex] = _union(old_beta, beta_in)
                if not delta_beta:
                    return []
                token_out = ([], delta_beta)
                bits = _EMPTY_COST + _cost(delta_beta) + pb
                return [(port, token_out, bits) for port in range(d)]
            return self._first_receipt(vertex, d, alpha_in, beta_in)
        return self._subsequent_receipt(vertex, d, alpha_in, beta_in)

    def _first_receipt(
        self, vertex: int, d: int, alpha_in: _FlatUnion, beta_in: _FlatUnion
    ) -> List[Tuple[int, Any, int]]:
        self.virgin[vertex] = False
        old_beta = self.beta[vertex]
        if self.reserve_label:
            parts = _partition(alpha_in, d + 1, self.literal)
            label = parts[0]
            self.label[vertex] = label
            alphas = parts[1:]
            new_beta = _union(_union(old_beta, beta_in), label)
            frozen = label
        else:
            alphas = _partition(alpha_in, d, self.literal)
            new_beta = _union(old_beta, beta_in)
            frozen = []
        self.alphas[vertex] = alphas
        delta_beta = _difference(new_beta, old_beta)
        for part in alphas[:-1]:
            frozen = _union(frozen, part)
        self.frozen[vertex] = frozen
        self.coverage[vertex] = _union(frozen, alphas[-1])
        self.beta[vertex] = new_beta
        delta_beta_cost = _cost(delta_beta)
        pb = self.payload_bits
        return [
            (port, (part, delta_beta), _cost(part) + delta_beta_cost + pb)
            for port, part in enumerate(alphas)
            if part or delta_beta
        ]

    def _subsequent_receipt(
        self, vertex: int, d: int, alpha_in: _FlatUnion, beta_in: _FlatUnion
    ) -> List[Tuple[int, Any, int]]:
        coverage = self.coverage[vertex]
        overlap = _intersection(alpha_in, coverage)
        delta_alpha_last = _difference(alpha_in, coverage)
        old_beta = self.beta[vertex]
        new_beta = _union(_union(old_beta, beta_in), overlap)
        delta_beta = _difference(new_beta, old_beta)

        if delta_alpha_last:
            alphas = self.alphas[vertex]
            alphas[-1] = _union(alphas[-1], delta_alpha_last)
            self.coverage[vertex] = _union(coverage, delta_alpha_last)
        self.beta[vertex] = new_beta

        emissions: List[Tuple[int, Any, int]] = []
        pb = self.payload_bits
        if delta_beta:
            delta_beta_cost = _cost(delta_beta)
            token_out = ([], delta_beta)
            bits = _EMPTY_COST + delta_beta_cost + pb
            for port in range(d - 1):
                emissions.append((port, token_out, bits))
            emissions.append(
                (
                    d - 1,
                    (delta_alpha_last, delta_beta),
                    _cost(delta_alpha_last) + delta_beta_cost + pb,
                )
            )
        elif delta_alpha_last:
            emissions.append(
                (
                    d - 1,
                    (delta_alpha_last, delta_beta),
                    _cost(delta_alpha_last) + _EMPTY_COST + pb,
                )
            )
        return emissions

    def check_terminal(self, terminal: int) -> bool:
        return self.terminal_done

    def state_bits(self, vertex: int) -> int:  # pragma: no cover - unused
        raise NotImplementedError(
            "the interval kernel is never engaged with state-bit tracking"
        )

    # ------------------------------------------------------------------
    # snapshot/restore (schedule-explorer branching)
    # ------------------------------------------------------------------

    def snapshot(self) -> Tuple:
        """The full mutable state as nested tuples.

        Flat unions are de-facto immutable (every algebra call returns a
        fresh list or an operand), so the snapshot shares them by
        reference and only copies the containers that are reassigned or
        index-assigned.  ``restore`` is the exact inverse.
        """
        return (
            tuple(self.virgin),
            tuple(self.received),
            tuple(tuple(per_port) for per_port in self.alphas),
            tuple(self.beta),
            tuple(self.alpha_acc),
            tuple(self.label),
            tuple(self.frozen),
            tuple(self.coverage),
            self.covered,
            self.terminal_done,
        )

    def restore(self, snap: Tuple) -> None:
        """Reset the kernel to a previously captured :meth:`snapshot`."""
        self.virgin = list(snap[0])
        self.received = list(snap[1])
        self.alphas = [list(per_port) for per_port in snap[2]]
        self.beta = list(snap[3])
        self.alpha_acc = list(snap[4])
        self.label = list(snap[5])
        self.frozen = list(snap[6])
        self.coverage = list(snap[7])
        self.covered = snap[8]
        self.terminal_done = snap[9]

    # ------------------------------------------------------------------
    # end-of-run materialisation
    # ------------------------------------------------------------------

    def finalize_states(self) -> Dict[int, Any]:
        from .general_broadcast import GeneralState

        payload = self.protocol.broadcast_payload
        states: Dict[int, Any] = {}
        for vertex, d in enumerate(self.out_degree):
            state = GeneralState(d)
            state.virgin = self.virgin[vertex]
            state.got_broadcast = self.received[vertex]
            state.payload = payload if self.received[vertex] else None
            state.beta = _to_union(self.beta[vertex])
            label = self.label[vertex]
            if label is not None:
                state.label = _to_union(label)
            if d == 0:
                state.alpha_acc = _to_union(self.alpha_acc[vertex])
            else:
                state.alphas = [_to_union(part) for part in self.alphas[vertex]]
                state.frozen_union = _to_union(self.frozen[vertex])
                state.coverage = _to_union(self.coverage[vertex])
            states[vertex] = state
        return states

    def output(self, terminal: int) -> Any:
        # Only consulted on termination, which requires a received message;
        # the protocol's output is the delivered broadcast payload.
        return self.protocol.broadcast_payload
