"""Broadcasting over grounded trees (Section 3.1, Theorem 3.1).

A *grounded tree* is a directed graph in which every vertex has in-degree 1,
except the root ``s`` (in-degree 0) and the terminal ``t`` (which may have
several incoming edges and has out-degree 0).

The protocol broadcasts a payload ``m`` and terminates **iff** every vertex
is connected to ``t``.  Termination detection works by commodity-preserving
flow: the root injects a commodity of value 1; a vertex of out-degree ``d``
that receives commodity ``x`` forwards

* ``x · 2^(-⌈log₂ d⌉)``     on its first ``2d - 2^⌈log₂ d⌉`` out-ports, and
* ``x · 2^(-⌈log₂ d⌉ + 1)`` on the remaining ports,

which sums back to ``x`` exactly (the paper verifies
``α·2^(-⌈log d⌉) + (d-α)·2^(-⌈log d⌉+1) = 1`` for ``α = 2d - 2^⌈log d⌉``).
Because the injected value is 1 and every split is by a power of two, **every
commodity in flight is a power of two** and a message is just the exponent —
``O(log |E|)`` bits — which is what brings the total communication down from
the naive rule's ``O(|E|^{3/2})`` to the optimal ``O(|E| log |E|)``
(Theorem 3.2 proves the matching lower bound; the naive ``x/d`` rule is
implemented in :mod:`repro.baselines.naive_tree` for the ablation).

The terminal declares termination exactly when the sum of received commodity
equals 1.  If some vertex is not connected to ``t``, the commodity routed
into it can never reach ``t`` and the sum stays strictly below 1 forever.

Applicability note: the protocol is *defined* for grounded trees, where each
internal vertex receives exactly one message.  The implementation splits
every received token independently, which on a general DAG turns it into the
"eager" per-message variant whose message count explodes with path
multiplicity — exactly the behaviour ablation E10 demonstrates against the
aggregating DAG protocol of :mod:`repro.core.dag_broadcast`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .dyadic import DYADIC_ONE, DYADIC_ZERO, Dyadic
from .messages import TreeToken
from .model import AnonymousProtocol, Emission, VertexView
from ..api.registry import PROTOCOLS

__all__ = ["TreeState", "TreeBroadcastProtocol", "pow2_split_exponents"]


def pow2_split_exponents(out_degree: int) -> List[int]:
    """Per-port exponent increments of the paper's power-of-two split rule.

    For out-degree ``d``, returns a list ``incs`` of length ``d`` such that a
    vertex holding commodity ``2^-k`` sends ``2^-(k + incs[j])`` on out-port
    ``j``; the first ``2d - 2^⌈log₂ d⌉`` ports get increment ``⌈log₂ d⌉`` and
    the rest get ``⌈log₂ d⌉ - 1``.  The increments always satisfy
    ``sum(2^-inc) == 1``, i.e. the rule is commodity preserving.
    """
    if out_degree < 1:
        raise ValueError("split rule needs out-degree >= 1")
    ceil_log = (out_degree - 1).bit_length()  # ⌈log₂ d⌉ (0 for d = 1)
    small_count = 2 * out_degree - (1 << ceil_log)
    return [ceil_log] * small_count + [ceil_log - 1] * (out_degree - small_count)


@dataclass(frozen=True)
class TreeState:
    """Per-vertex state of the grounded-tree protocol.

    ``received_sum`` is the exact total commodity seen so far; at the
    terminal this is the quantity compared against 1.  ``payload`` is the
    broadcast message ``m`` once received (``got_broadcast`` distinguishes a
    genuinely-``None`` payload from "not yet received").
    """

    received_sum: Dyadic
    got_broadcast: bool = False
    payload: Any = None


@PROTOCOLS.register()
class TreeBroadcastProtocol(AnonymousProtocol[TreeState, TreeToken]):
    """The Section 3.1 broadcast protocol with power-of-two commodity splits.

    Parameters
    ----------
    broadcast_payload:
        The message ``m`` distributed to every vertex.
    payload_bits:
        Size of ``m`` in bits, charged on every transmission (the paper's
        ``|E|·|m|`` term).  Defaults to ``8·len(m)`` for ``str``/``bytes``
        payloads and 0 otherwise.
    """

    name = "tree-broadcast"

    def __init__(self, broadcast_payload: Any = None, payload_bits: Optional[int] = None) -> None:
        self.broadcast_payload = broadcast_payload
        if payload_bits is None:
            if isinstance(broadcast_payload, (str, bytes)):
                payload_bits = 8 * len(broadcast_payload)
            else:
                payload_bits = 0
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
        self.payload_bits = payload_bits

    def create_state(self, view: VertexView) -> TreeState:
        return TreeState(received_sum=DYADIC_ZERO)

    def initial_emissions(self, view: VertexView) -> List[Emission]:
        # The root injects total commodity 1, split across its out-ports by
        # the same power-of-two rule (exactly 2^0 on its single edge in the
        # strict model; the rule generalises to multi-out-edge roots).
        token_for = pow2_split_exponents(view.out_degree)
        return [
            (port, TreeToken(exponent=inc, payload=self.broadcast_payload))
            for port, inc in enumerate(token_for)
        ]

    def on_receive(
        self, state: TreeState, view: VertexView, in_port: int, message: TreeToken
    ) -> Tuple[TreeState, List[Emission]]:
        new_state = TreeState(
            received_sum=state.received_sum + message.value,
            got_broadcast=True,
            payload=message.payload,
        )
        if view.out_degree == 0:
            # Terminal (or a dead-end vertex, where the commodity is lost —
            # which is precisely what prevents spurious termination).
            return new_state, []
        emissions: List[Emission] = [
            (port, TreeToken(exponent=message.exponent + inc, payload=message.payload))
            for port, inc in enumerate(pow2_split_exponents(view.out_degree))
        ]
        return new_state, emissions

    def is_terminated(self, state: TreeState) -> bool:
        return state.received_sum == DYADIC_ONE

    def message_bits(self, message: TreeToken) -> int:
        return message.structure_bits() + self.payload_bits

    def output(self, state: TreeState) -> Any:
        return state.payload

    def state_bits(self, state: TreeState) -> int:
        from .encoding import dyadic_cost

        return dyadic_cost(state.received_sum) + 1

    def clone_state(self, state: TreeState) -> TreeState:
        # Frozen dataclass, replaced (never mutated) on every transition.
        return state

    def clone_message(self, message: TreeToken) -> TreeToken:
        # Frozen dataclass; transitions never mutate received messages.
        return message

    def compile_fastpath(self, compiled: Any) -> Optional[Any]:
        """Flat dyadic-pair kernel (exact same semantics).

        Guarded by an exact type check: a behaviour-overriding subclass
        would silently diverge from the kernel, so unknown subclasses fall
        back to the engine's generic machine (always correct).
        """
        if type(self) is not TreeBroadcastProtocol:
            return None
        from .flat_kernel import TreeBroadcastKernel

        return TreeBroadcastKernel(self, compiled)

    def compile_batch(self, compiled: Any) -> Optional[Any]:
        """Structure-of-arrays multi-run kernel over the enumerated
        order-independent message multiset (``None`` on shapes the
        enumeration can't express — see
        :class:`~repro.core.batch_kernel.BatchSplitKernel`)."""
        if type(self) is not TreeBroadcastProtocol:
            return None
        from .batch_kernel import BatchSplitKernel

        return BatchSplitKernel.build(self, compiled)
