"""Core layer: exact arithmetic, the formal model, and the paper's protocols."""

from .dyadic import DYADIC_ONE, DYADIC_ZERO, Dyadic
from .intervals import (
    EMPTY_UNION,
    UNIT_INTERVAL,
    UNIT_UNION,
    Interval,
    IntervalUnion,
    canonical_partition,
    split_interval,
)
from .messages import IntervalMessage, ScalarToken, TreeToken
from .model import AnonymousProtocol, FunctionalProtocol, VertexView
from .tree_broadcast import TreeBroadcastProtocol, TreeState, pow2_split_exponents
from .dag_broadcast import DagBroadcastProtocol, DagState
from .general_broadcast import GeneralBroadcastProtocol, GeneralState
from .labeling import LabelAssignmentProtocol, extract_labels, labels_pairwise_disjoint
from .mapping import MappingProtocol, NetworkMap

__all__ = [
    "Dyadic",
    "DYADIC_ZERO",
    "DYADIC_ONE",
    "Interval",
    "IntervalUnion",
    "EMPTY_UNION",
    "UNIT_INTERVAL",
    "UNIT_UNION",
    "canonical_partition",
    "split_interval",
    "TreeToken",
    "ScalarToken",
    "IntervalMessage",
    "AnonymousProtocol",
    "FunctionalProtocol",
    "VertexView",
    "TreeBroadcastProtocol",
    "TreeState",
    "pow2_split_exponents",
    "DagBroadcastProtocol",
    "DagState",
    "GeneralBroadcastProtocol",
    "GeneralState",
    "LabelAssignmentProtocol",
    "extract_labels",
    "labels_pairwise_disjoint",
    "MappingProtocol",
    "NetworkMap",
]
