"""Structure-of-arrays protocol kernels for the ``batch`` engine.

A *batch kernel* is the multi-run analogue of a
:mod:`~repro.core.flat_kernel` machine: where a flat kernel holds the
state of one run as Python int arrays, a batch kernel holds the state of
``K`` simultaneous runs of the *same compiled topology* as one numpy
tensor per field, and advances all ``K`` runs with array operations — one
delivery per active run per "super-step", chosen by ``K`` vectorized
per-run RNG streams (:class:`~repro.network.batchpath.MTStreams`) that
reproduce each run's :class:`~repro.network.scheduler.RandomScheduler`
choices bit for bit.

Protocols opt in by implementing
:meth:`~repro.core.model.AnonymousProtocol.compile_batch` and returning
an object with this interface:

``run(streams, max_steps, capture=None) -> BatchRunOutcome``
    Execute one run per RNG stream under the random-scheduler delivery
    order, each with delivery budget ``max_steps``, and return the
    per-run metric arrays.  ``capture``, when given, is a list of ``K``
    lists the kernel appends each run's delivered edge ids to — the
    differential tests use it to hold the vectorized delivery order to
    the fastpath trace, delivery for delivery.

The contract mirrors the fastpath kernels' exactness bar: a batch kernel
must be *result-equivalent* to running the same specs one at a time on
the fastpath engine — same outcome, same step counts, same metric values
per (spec, seed).  Protocols whose flat kernels need arbitrary-precision
arithmetic (the dyadic ``(num, exp)`` weights of the tree/DAG machines
can exceed 64 bits) have no batch kernel yet and fall back to per-spec
fastpath execution inside ``run_many`` — the engine is correct for every
protocol, vectorized for the ones that opted in.

:class:`BatchFloodingKernel` is the first kernel: flooding state is one
receipt bit per (run, vertex), every message costs the same constant
bits, and the terminal predicate is constant-false, so the whole run is
queue bookkeeping — ideal SoA material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

__all__ = ["BatchRunOutcome", "BatchFloodingKernel"]


@dataclass(frozen=True)
class BatchRunOutcome:
    """Per-run metric arrays from one batch-kernel execution (length ``K``).

    ``termination_step`` uses ``-1`` for "never terminated" (flooding
    always reports ``-1``); ``exhausted`` marks runs stopped by the step
    budget with messages still in flight.  ``messages_at_termination`` /
    ``bits_at_termination`` carry the run totals for non-terminated runs,
    matching :func:`~repro.network.fastpath._freeze_result`.
    """

    steps: np.ndarray
    exhausted: np.ndarray
    total_messages: np.ndarray
    total_bits: np.ndarray
    max_message_bits: np.ndarray
    max_edge_messages: np.ndarray
    max_edge_bits: np.ndarray
    termination_step: np.ndarray
    messages_at_termination: np.ndarray
    bits_at_termination: np.ndarray


class BatchFloodingKernel:
    """SoA machine for the no-termination flooding baseline.

    Per-run state across ``K`` runs: a ``(K, capacity)`` in-flight queue
    mirroring the :class:`RandomScheduler`'s append order (the dense
    path queues head vertices, the general path edge ids), a ``(K, |V|)``
    receipt-bit matrix and — in the general path — a ``(K, |E|)``
    per-edge delivery count.  Every super-step delivers exactly one
    message in each still-active run: a vectorized ``randrange(len)``
    per run picks the queue slot, the swap-pop mirrors the scheduler's,
    and the fresh receivers' out-edges are appended with one padded
    rectangular scatter (dense) or ragged CSR scatter (general).

    ``capacity`` is the exact worst case: every message ever pushed is
    the root burst plus one burst per first receipt, so the in-flight
    count never exceeds ``outdeg(root) + |E|``.
    """

    __slots__ = (
        "message_bits",
        "num_vertices",
        "num_edges",
        "root",
        "edge_head",
        "edge_tail",
        "root_edge_bonus",
        "out_degree",
        "out_start",
        "out_flat",
        "head_pad",
        "arange_pad",
        "capacity",
        "reached",
        "drain_steps",
        "max_edge_count",
    )

    def __init__(self, protocol: Any, compiled: Any) -> None:
        self.message_bits = 1 + protocol.payload_bits
        self.num_vertices = compiled.num_vertices
        self.num_edges = compiled.num_edges
        self.root = compiled.root
        self.edge_head = np.asarray(compiled.edge_head, dtype=np.int64)
        self.edge_tail = np.asarray(compiled.edge_tail, dtype=np.int64)
        # The root's initial burst pushes each of its out-edges once
        # before any receipt; every later push of edge e comes from a
        # first receipt at tail(e).
        self.root_edge_bonus = (self.edge_tail == self.root).astype(np.int64)
        out_degree = np.asarray(
            [len(eids) for eids in compiled.out_edge_ids], dtype=np.int64
        )
        self.out_degree = out_degree
        starts = np.zeros(self.num_vertices, dtype=np.int64)
        np.cumsum(out_degree[:-1], out=starts[1:])
        self.out_start = starts
        self.out_flat = np.asarray(
            [eid for eids in compiled.out_edge_ids for eid in eids] or [0],
            dtype=np.int64,
        )
        # Degree-padded out-neighbour matrix: the dense loop appends a
        # burst with one rectangular masked scatter instead of ragged CSR
        # math.  It stores head *vertices*, not edge ids: the dense loop
        # never needs the edge identity (per-edge counts are analytic),
        # so queueing heads directly saves an ``edge_head`` gather per
        # super-step.
        max_degree = int(out_degree.max()) if self.num_vertices else 0
        head_pad = np.zeros((self.num_vertices, max_degree), dtype=np.int64)
        for vertex, eids in enumerate(compiled.out_edge_ids):
            head_pad[vertex, : len(eids)] = self.edge_head[list(eids)]
        self.head_pad = head_pad
        self.arange_pad = np.arange(max_degree, dtype=np.int64)
        self.capacity = max(1, self.num_edges + int(out_degree[self.root]))
        # Under a full budget, flooding's observables are structural:
        # every pushed message is delivered, the set of vertices that
        # ever receive one is the set reachable from the root by >= 1
        # edge (order-independent), and with it the drain step — the
        # root burst plus one burst per reached vertex — and every
        # per-edge delivery count.  Precomputing them here is what lets
        # :meth:`_run_dense` drop all per-step accounting.
        reached = np.zeros(self.num_vertices, dtype=bool)
        if self.num_vertices:
            heads = [
                [int(self.edge_head[eid]) for eid in eids]
                for eids in compiled.out_edge_ids
            ]
            stack = []
            for head in heads[self.root]:
                if not reached[head]:
                    reached[head] = True
                    stack.append(head)
            while stack:
                for head in heads[stack.pop()]:
                    if not reached[head]:
                        reached[head] = True
                        stack.append(head)
        self.reached = reached
        self.drain_steps = int(out_degree[self.root]) + int(
            out_degree[reached].sum()
        )
        if self.num_edges:
            per_edge = reached[self.edge_tail].astype(np.int64) + self.root_edge_bonus
            self.max_edge_count = int(per_edge.max())
        else:
            self.max_edge_count = 0

    def run(
        self,
        streams: Any,
        max_steps: int,
        capture: Optional[List[List[int]]] = None,
    ) -> BatchRunOutcome:
        # Total pops never exceed `capacity` pushes, so when the budget is
        # at least that large it cannot bind and all per-step accounting
        # can move out of the hot loop (the common case: the default
        # budget is 64 + 16|E|(|V|+2) >> 2|E|).  Capture requests take the
        # general loop too — they need the per-pop edge ids.
        if max_steps >= self.capacity and capture is None:
            return self._run_dense(streams)
        return self._run_general(streams, max_steps, capture)

    def _run_dense(self, streams: Any) -> BatchRunOutcome:
        """Hot path: every run gets the full budget, no capture.

        With a full budget every flooding observable is structural
        (precomputed in ``__init__``): every run drains at exactly
        ``drain_steps`` regardless of delivery order, and receives on
        exactly the reachable set.  The loop therefore carries *no*
        accounting at all — its job is to advance the ``K`` queues and
        RNG streams exactly as the per-run schedulers would (each pop
        feeds the next ``randrange`` its queue length, so the simulation
        itself cannot be skipped), which is what keeps the streams'
        word consumption and the general path's delivery order honest.
        The terminal drain assertion would catch any divergence between
        the simulated queues and the precomputed structure.  Note this
        consumes ``streams``.
        """
        k = streams.k
        cap = self.capacity
        num_vertices = self.num_vertices
        q = np.zeros((k, cap), dtype=np.int64)
        q_flat = q.reshape(-1)
        qlen = np.zeros(k, dtype=np.int64)
        notgot_flat = np.ones(k * num_vertices, dtype=bool)

        root_degree = int(self.out_degree[self.root])
        if root_degree:
            start = self.out_start[self.root]
            root_edges = self.out_flat[start : start + root_degree]
            q[:, :root_degree] = self.edge_head[root_edges]
            qlen[:] = root_degree

        out_degree = self.out_degree
        head_pad = self.head_pad
        arange_pad = self.arange_pad
        row_cap = np.arange(k, dtype=np.int64) * cap
        row_v = np.arange(k, dtype=np.int64) * num_vertices

        # Loop-carried scratch: every per-step array is (k,)-shaped, so
        # the hot loop reuses these instead of allocating ~6 arrays per
        # super-step.
        addr = np.empty(k, dtype=np.int64)
        head = np.empty(k, dtype=np.int64)
        tail_src = np.empty(k, dtype=np.int64)
        got_addr = np.empty(k, dtype=np.int64)
        fresh = np.empty(k, dtype=bool)

        # Receipts still to come across all runs.  Once zero, no pop can
        # be fresh, so nothing ever reads a popped value again — the
        # queue contents are inert and only the length sequence matters
        # (it feeds each randrange its argument), so the tail loop below
        # drops the pop/swap bookkeeping entirely.
        remaining = k * int(self.reached.sum())
        step = 0
        while step < self.drain_steps and remaining:
            step += 1
            idx = streams.randbelow_dense(qlen)
            np.add(row_cap, idx, out=addr)
            q_flat.take(addr, out=head)  # queue holds head vertices
            qlen -= 1
            np.add(row_cap, qlen, out=got_addr)  # reused as a temp
            q_flat.take(got_addr, out=tail_src)
            q_flat[addr] = tail_src
            np.add(row_v, head, out=got_addr)
            notgot_flat.take(got_addr, out=fresh)
            frows = np.nonzero(fresh)[0]
            if frows.size:
                remaining -= frows.size
                fheads = head.take(frows)
                notgot_flat[got_addr.take(frows)] = False
                counts = out_degree.take(fheads)
                qlen_old = qlen.take(frows)
                src = head_pad[fheads]  # (m, max_degree), zero-padded
                mask = (arange_pad < counts[:, None]).reshape(-1)
                dest = (
                    (row_cap.take(frows) + qlen_old)[:, None] + arange_pad
                ).reshape(-1)
                qlen[frows] = qlen_old + counts
                q_flat[dest[mask]] = src.reshape(-1)[mask]
        while step < self.drain_steps:
            step += 1
            streams.randbelow_dense(qlen)
            qlen -= 1

        if qlen.any():
            raise RuntimeError(
                "batch flooding kernel failed to drain at its structural "
                "step count — queue simulation and topology disagree"
            )

        bits = self.message_bits
        steps = np.full(k, self.drain_steps, dtype=np.int64)
        total_bits = steps * bits
        max_edge_messages = np.full(k, self.max_edge_count, dtype=np.int64)
        return BatchRunOutcome(
            steps=steps,
            exhausted=np.zeros(k, dtype=bool),
            total_messages=steps,
            total_bits=total_bits,
            max_message_bits=np.where(steps > 0, bits, 0),
            max_edge_messages=max_edge_messages,
            max_edge_bits=max_edge_messages * bits,
            termination_step=np.full(k, -1, dtype=np.int64),
            messages_at_termination=steps,
            bits_at_termination=total_bits,
        )

    def _run_general(
        self,
        streams: Any,
        max_steps: int,
        capture: Optional[List[List[int]]],
    ) -> BatchRunOutcome:
        """Per-pop accounting loop: binding budgets and capture requests.

        Draws RNG words in exactly the same order as :meth:`_run_dense`
        (one ``randbelow`` per active run per super-step), so the two
        loops make identical scheduler choices for identical streams.
        """
        k = streams.k
        q = np.zeros((k, self.capacity), dtype=np.int64)
        qlen = np.zeros(k, dtype=np.int64)
        steps = np.zeros(k, dtype=np.int64)
        got = np.zeros((k, self.num_vertices), dtype=bool)
        edge_messages = np.zeros((k, max(1, self.num_edges)), dtype=np.int64)

        root_degree = int(self.out_degree[self.root])
        if root_degree:
            start = self.out_start[self.root]
            q[:, :root_degree] = self.out_flat[start : start + root_degree]
            qlen[:] = root_degree

        edge_head = self.edge_head
        out_degree = self.out_degree
        out_start = self.out_start
        out_flat = self.out_flat

        while True:
            cols = np.nonzero((qlen > 0) & (steps < max_steps))[0]
            if cols.size == 0:
                break
            n = qlen[cols]
            idx = streams.randbelow(n, cols)
            last = n - 1
            eid = q[cols, idx]
            q[cols, idx] = q[cols, last]
            qlen[cols] = last
            steps[cols] += 1
            edge_messages[cols, eid] += 1
            if capture is not None:
                for col, edge in zip(cols.tolist(), eid.tolist()):
                    capture[col].append(edge)

            head = edge_head[eid]
            fresh = ~got[cols, head]
            if fresh.any():
                fcols = cols[fresh]
                fheads = head[fresh]
                got[fcols, fheads] = True
                counts = out_degree[fheads]
                total = int(counts.sum())
                if total:
                    rep_cols = np.repeat(fcols, counts)
                    ends = np.cumsum(counts)
                    ramp = np.arange(total, dtype=np.int64) - np.repeat(
                        ends - counts, counts
                    )
                    src = out_flat[np.repeat(out_start[fheads], counts) + ramp]
                    dest = np.repeat(qlen[fcols], counts) + ramp
                    q[rep_cols, dest] = src
                    qlen[fcols] += counts

        bits = self.message_bits
        total_bits = steps * bits
        max_edge_messages = (
            edge_messages.max(axis=1)
            if self.num_edges
            else np.zeros(k, dtype=np.int64)
        )
        return BatchRunOutcome(
            steps=steps,
            exhausted=qlen > 0,
            total_messages=steps,
            total_bits=total_bits,
            max_message_bits=np.where(steps > 0, bits, 0),
            max_edge_messages=max_edge_messages,
            max_edge_bits=max_edge_messages * bits,
            termination_step=np.full(k, -1, dtype=np.int64),
            messages_at_termination=steps,
            bits_at_termination=total_bits,
        )
