"""Structure-of-arrays protocol kernels for the ``batch`` engine.

A *batch kernel* is the multi-run analogue of a
:mod:`~repro.core.flat_kernel` machine: where a flat kernel holds the
state of one run as Python int arrays, a batch kernel holds the state of
``K`` simultaneous runs of the *same compiled topology* as one numpy
tensor per field, and advances all ``K`` runs with array operations — one
delivery per active run per "super-step", chosen by ``K`` vectorized
per-run RNG streams (:class:`~repro.network.batchpath.MTStreams`) that
reproduce each run's :class:`~repro.network.scheduler.RandomScheduler`
choices bit for bit.

Protocols opt in by implementing
:meth:`~repro.core.model.AnonymousProtocol.compile_batch` and returning
an object with this interface:

``run(streams, max_steps, capture=None, stop_at_termination=False) -> BatchRunOutcome``
    Execute one run per RNG stream under the random-scheduler delivery
    order, each with delivery budget ``max_steps``, and return the
    per-run metric arrays.  ``capture``, when given, is a list of ``K``
    lists the kernel appends each run's delivered edge ids to — the
    differential tests use it to hold the vectorized delivery order to
    the fastpath trace, delivery for delivery.

The contract mirrors the fastpath kernels' exactness bar: a batch kernel
must be *result-equivalent* to running the same specs one at a time on
the fastpath engine — same outcome, same step counts, same metric values
per (spec, seed).

The shared machinery (compiled-topology tables, the padded
``(k, capacity)`` swap-remove queue planes, the rectangular and ragged
frontier scatters, the drain assertion) lives in :class:`BatchFlatKernel`;
three kernels build on it:

* :class:`BatchFloodingKernel` — flooding state is one receipt bit per
  (run, vertex) and every message costs the same constant bits, so the
  whole run is queue bookkeeping.
* :class:`BatchSplitKernel` — the token-splitting broadcasts
  (``tree-broadcast``, ``eager-dag-broadcast``, ``naive-tree-broadcast``).
  Their per-delivery emissions depend only on the delivered token, never
  on accumulated vertex state, so the run's *message multiset* is
  order-independent and is enumerated exactly once at compile time by
  driving the protocol's scalar flat kernel; the SoA loop then moves
  small int message ids while the exact dyadic/rational arithmetic
  (which can exceed 64 bits) stays at compile time in Python ints.
* :class:`BatchDagKernel` — the aggregate-then-split DAG rule
  (``dag-broadcast``).  A vertex fires once, when its last in-edge
  message arrives, so each edge carries at most one message whose exact
  value is structural; the SoA loop keeps per-run heard counters and
  fires out-edge blocks at the join.

Shapes a kernel cannot express exactly (root-reachable cycles that make
the message multiset infinite, eager path-multiplicity past the
enumeration cap, re-fired edges on cyclic graphs) make ``compile_batch``
return ``None`` and the group falls back to per-spec fastpath execution
inside ``run_many`` — the engine is correct for every protocol,
vectorized for the ones that opted in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "BatchRunOutcome",
    "BatchFlatKernel",
    "BatchFloodingKernel",
    "BatchSplitKernel",
    "BatchDagKernel",
]

#: Compile-time enumeration cap of :class:`BatchSplitKernel`: the largest
#: order-independent message multiset a split kernel will materialise.
#: Root-reachable cycles (an infinite multiset) and eager-DAG path
#: explosions past this bound return ``None`` from ``compile_batch`` and
#: take the per-spec fastpath fallback instead.
ENUM_CAP = 1 << 15


@dataclass(frozen=True)
class BatchRunOutcome:
    """Per-run metric arrays from one batch-kernel execution (length ``K``).

    ``termination_step`` uses ``-1`` for "never terminated" (flooding
    always reports ``-1``); ``exhausted`` marks runs stopped by the step
    budget with messages still in flight.  ``messages_at_termination`` /
    ``bits_at_termination`` carry the latched values for runs whose
    termination predicate fired and the run totals otherwise, matching
    :func:`~repro.network.fastpath._freeze_result` — note a run can be
    both exhausted *and* carry a termination step (budget bound after the
    latch), exactly as on the fastpath engine.
    """

    steps: np.ndarray
    exhausted: np.ndarray
    total_messages: np.ndarray
    total_bits: np.ndarray
    max_message_bits: np.ndarray
    max_edge_messages: np.ndarray
    max_edge_bits: np.ndarray
    termination_step: np.ndarray
    messages_at_termination: np.ndarray
    bits_at_termination: np.ndarray


class BatchFlatKernel:
    """Compiled-topology tables and queue-plane machinery shared by the
    batch kernels.

    Every kernel simulates ``K`` :class:`RandomScheduler` queues as one
    ``(K, capacity)`` int plane: appends go at the end (mirroring the
    scheduler's push order), removal is the scheduler's swap-pop, and the
    slot to pop is chosen by the vectorized per-run RNG streams.  The
    base owns the per-vertex CSR out-edge layout, the degree-padded
    rectangular scatter used by the dense loops, the ragged CSR scatter
    used by the general loops, and the drain assertion that pins the
    queue simulation to the precomputed structure.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "root",
        "terminal",
        "edge_head",
        "edge_tail",
        "out_degree",
        "out_start",
        "out_flat",
        "max_degree",
        "arange_pad",
    )

    def __init__(self, compiled: Any) -> None:
        self.num_vertices = compiled.num_vertices
        self.num_edges = compiled.num_edges
        self.root = compiled.root
        self.terminal = compiled.terminal
        self.edge_head = np.asarray(compiled.edge_head, dtype=np.int64)
        self.edge_tail = np.asarray(compiled.edge_tail, dtype=np.int64)
        out_degree = np.asarray(
            [len(eids) for eids in compiled.out_edge_ids], dtype=np.int64
        )
        self.out_degree = out_degree
        starts = np.zeros(self.num_vertices, dtype=np.int64)
        np.cumsum(out_degree[:-1], out=starts[1:])
        self.out_start = starts
        self.out_flat = np.asarray(
            [eid for eids in compiled.out_edge_ids for eid in eids] or [0],
            dtype=np.int64,
        )
        self.max_degree = int(out_degree.max()) if self.num_vertices else 0
        self.arange_pad = np.arange(self.max_degree, dtype=np.int64)

    # -- queue-plane helpers ------------------------------------------------

    @staticmethod
    def _scatter_pad(
        q_flat: np.ndarray,
        row_cap: np.ndarray,
        rows: np.ndarray,
        qlen: np.ndarray,
        counts: np.ndarray,
        src_pad: np.ndarray,
        arange_pad: np.ndarray,
    ) -> None:
        """Append ``counts[i]`` ids from ``src_pad`` row ``i`` onto queue
        row ``rows[i]`` with one rectangular masked scatter (``src_pad``
        is degree-padded to ``arange_pad``'s width); updates ``qlen``."""
        qlen_old = qlen.take(rows)
        mask = (arange_pad < counts[:, None]).reshape(-1)
        dest = ((row_cap.take(rows) + qlen_old)[:, None] + arange_pad).reshape(-1)
        qlen[rows] = qlen_old + counts
        q_flat[dest[mask]] = src_pad.reshape(-1)[mask]

    @staticmethod
    def _push_csr(
        q: np.ndarray,
        qlen: np.ndarray,
        fcols: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
        flat_ids: np.ndarray,
    ) -> None:
        """Append the CSR block ``flat_ids[starts[i] : starts[i]+counts[i]]``
        onto queue row ``fcols[i]`` (ragged scatter); updates ``qlen``."""
        total = int(counts.sum())
        if not total:
            return
        rep_cols = np.repeat(fcols, counts)
        ends = np.cumsum(counts)
        ramp = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        src = flat_ids[np.repeat(starts, counts) + ramp]
        dest = np.repeat(qlen[fcols], counts) + ramp
        q[rep_cols, dest] = src
        qlen[fcols] += counts

    @staticmethod
    def _assert_drained(qlen: np.ndarray) -> None:
        if qlen.any():
            raise RuntimeError(
                "batch kernel failed to drain at its structural step "
                "count — queue simulation and topology disagree"
            )


class BatchFloodingKernel(BatchFlatKernel):
    """SoA machine for the no-termination flooding baseline.

    Per-run state across ``K`` runs: a ``(K, capacity)`` in-flight queue
    mirroring the :class:`RandomScheduler`'s append order (the dense
    path queues head vertices, the general path edge ids), a ``(K, |V|)``
    receipt-bit matrix and — in the general path — a ``(K, |E|)``
    per-edge delivery count.  Every super-step delivers exactly one
    message in each still-active run: a vectorized ``randrange(len)``
    per run picks the queue slot, the swap-pop mirrors the scheduler's,
    and the fresh receivers' out-edges are appended with one padded
    rectangular scatter (dense) or ragged CSR scatter (general).

    ``capacity`` is the exact worst case: every message ever pushed is
    the root burst plus one burst per first receipt, so the in-flight
    count never exceeds ``outdeg(root) + |E|``.
    """

    __slots__ = (
        "message_bits",
        "root_edge_bonus",
        "head_pad",
        "capacity",
        "reached",
        "drain_steps",
        "max_edge_count",
    )

    def __init__(self, protocol: Any, compiled: Any) -> None:
        super().__init__(compiled)
        self.message_bits = 1 + protocol.payload_bits
        # The root's initial burst pushes each of its out-edges once
        # before any receipt; every later push of edge e comes from a
        # first receipt at tail(e).
        self.root_edge_bonus = (self.edge_tail == self.root).astype(np.int64)
        out_degree = self.out_degree
        # Degree-padded out-neighbour matrix: the dense loop appends a
        # burst with one rectangular masked scatter instead of ragged CSR
        # math.  It stores head *vertices*, not edge ids: the dense loop
        # never needs the edge identity (per-edge counts are analytic),
        # so queueing heads directly saves an ``edge_head`` gather per
        # super-step.
        head_pad = np.zeros((self.num_vertices, self.max_degree), dtype=np.int64)
        for vertex, eids in enumerate(compiled.out_edge_ids):
            head_pad[vertex, : len(eids)] = self.edge_head[list(eids)]
        self.head_pad = head_pad
        self.capacity = max(1, self.num_edges + int(out_degree[self.root]))
        # Under a full budget, flooding's observables are structural:
        # every pushed message is delivered, the set of vertices that
        # ever receive one is the set reachable from the root by >= 1
        # edge (order-independent), and with it the drain step — the
        # root burst plus one burst per reached vertex — and every
        # per-edge delivery count.  Precomputing them here is what lets
        # :meth:`_run_dense` drop all per-step accounting.
        reached = np.zeros(self.num_vertices, dtype=bool)
        if self.num_vertices:
            heads = [
                [int(self.edge_head[eid]) for eid in eids]
                for eids in compiled.out_edge_ids
            ]
            stack = []
            for head in heads[self.root]:
                if not reached[head]:
                    reached[head] = True
                    stack.append(head)
            while stack:
                for head in heads[stack.pop()]:
                    if not reached[head]:
                        reached[head] = True
                        stack.append(head)
        self.reached = reached
        self.drain_steps = int(out_degree[self.root]) + int(
            out_degree[reached].sum()
        )
        if self.num_edges:
            per_edge = reached[self.edge_tail].astype(np.int64) + self.root_edge_bonus
            self.max_edge_count = int(per_edge.max())
        else:
            self.max_edge_count = 0

    def run(
        self,
        streams: Any,
        max_steps: int,
        capture: Optional[List[List[int]]] = None,
        stop_at_termination: bool = False,
    ) -> BatchRunOutcome:
        # Total pops never exceed `capacity` pushes, so when the budget is
        # at least that large it cannot bind and all per-step accounting
        # can move out of the hot loop (the common case: the default
        # budget is 64 + 16|E|(|V|+2) >> 2|E|).  Capture requests take the
        # general loop too — they need the per-pop edge ids.
        # ``stop_at_termination`` is accepted for interface uniformity;
        # flooding's terminal predicate is constant-false, so the flag can
        # never bind and both loops ignore it.
        if max_steps >= self.capacity and capture is None:
            return self._run_dense(streams)
        return self._run_general(streams, max_steps, capture)

    def _run_dense(self, streams: Any) -> BatchRunOutcome:
        """Hot path: every run gets the full budget, no capture.

        With a full budget every flooding observable is structural
        (precomputed in ``__init__``): every run drains at exactly
        ``drain_steps`` regardless of delivery order, and receives on
        exactly the reachable set.  The loop therefore carries *no*
        accounting at all — its job is to advance the ``K`` queues and
        RNG streams exactly as the per-run schedulers would (each pop
        feeds the next ``randrange`` its queue length, so the simulation
        itself cannot be skipped), which is what keeps the streams'
        word consumption and the general path's delivery order honest.
        The terminal drain assertion would catch any divergence between
        the simulated queues and the precomputed structure.  Note this
        consumes ``streams``.
        """
        k = streams.k
        cap = self.capacity
        num_vertices = self.num_vertices
        q = np.zeros((k, cap), dtype=np.int64)
        q_flat = q.reshape(-1)
        qlen = np.zeros(k, dtype=np.int64)
        notgot_flat = np.ones(k * num_vertices, dtype=bool)

        root_degree = int(self.out_degree[self.root])
        if root_degree:
            start = self.out_start[self.root]
            root_edges = self.out_flat[start : start + root_degree]
            q[:, :root_degree] = self.edge_head[root_edges]
            qlen[:] = root_degree

        out_degree = self.out_degree
        head_pad = self.head_pad
        arange_pad = self.arange_pad
        row_cap = np.arange(k, dtype=np.int64) * cap
        row_v = np.arange(k, dtype=np.int64) * num_vertices

        # Loop-carried scratch: every per-step array is (k,)-shaped, so
        # the hot loop reuses these instead of allocating ~6 arrays per
        # super-step.
        addr = np.empty(k, dtype=np.int64)
        head = np.empty(k, dtype=np.int64)
        tail_src = np.empty(k, dtype=np.int64)
        got_addr = np.empty(k, dtype=np.int64)
        fresh = np.empty(k, dtype=bool)

        # Receipts still to come across all runs.  Once zero, no pop can
        # be fresh, so nothing ever reads a popped value again — the
        # queue contents are inert and only the length sequence matters
        # (it feeds each randrange its argument), so the tail loop below
        # drops the pop/swap bookkeeping entirely.
        remaining = k * int(self.reached.sum())
        step = 0
        while step < self.drain_steps and remaining:
            step += 1
            idx = streams.randbelow_dense(qlen)
            np.add(row_cap, idx, out=addr)
            q_flat.take(addr, out=head)  # queue holds head vertices
            qlen -= 1
            np.add(row_cap, qlen, out=got_addr)  # reused as a temp
            q_flat.take(got_addr, out=tail_src)
            q_flat[addr] = tail_src
            np.add(row_v, head, out=got_addr)
            notgot_flat.take(got_addr, out=fresh)
            frows = np.nonzero(fresh)[0]
            if frows.size:
                remaining -= frows.size
                fheads = head.take(frows)
                notgot_flat[got_addr.take(frows)] = False
                self._scatter_pad(
                    q_flat,
                    row_cap,
                    frows,
                    qlen,
                    out_degree.take(fheads),
                    head_pad[fheads],
                    arange_pad,
                )
        while step < self.drain_steps:
            step += 1
            streams.randbelow_dense(qlen)
            qlen -= 1

        self._assert_drained(qlen)

        bits = self.message_bits
        steps = np.full(k, self.drain_steps, dtype=np.int64)
        total_bits = steps * bits
        max_edge_messages = np.full(k, self.max_edge_count, dtype=np.int64)
        return BatchRunOutcome(
            steps=steps,
            exhausted=np.zeros(k, dtype=bool),
            total_messages=steps,
            total_bits=total_bits,
            max_message_bits=np.where(steps > 0, bits, 0),
            max_edge_messages=max_edge_messages,
            max_edge_bits=max_edge_messages * bits,
            termination_step=np.full(k, -1, dtype=np.int64),
            messages_at_termination=steps,
            bits_at_termination=total_bits,
        )

    def _run_general(
        self,
        streams: Any,
        max_steps: int,
        capture: Optional[List[List[int]]],
    ) -> BatchRunOutcome:
        """Per-pop accounting loop: binding budgets and capture requests.

        Draws RNG words in exactly the same order as :meth:`_run_dense`
        (one ``randbelow`` per active run per super-step), so the two
        loops make identical scheduler choices for identical streams.
        """
        k = streams.k
        q = np.zeros((k, self.capacity), dtype=np.int64)
        qlen = np.zeros(k, dtype=np.int64)
        steps = np.zeros(k, dtype=np.int64)
        got = np.zeros((k, self.num_vertices), dtype=bool)
        edge_messages = np.zeros((k, max(1, self.num_edges)), dtype=np.int64)

        root_degree = int(self.out_degree[self.root])
        if root_degree:
            start = self.out_start[self.root]
            q[:, :root_degree] = self.out_flat[start : start + root_degree]
            qlen[:] = root_degree

        edge_head = self.edge_head
        out_degree = self.out_degree
        out_start = self.out_start
        out_flat = self.out_flat

        while True:
            cols = np.nonzero((qlen > 0) & (steps < max_steps))[0]
            if cols.size == 0:
                break
            n = qlen[cols]
            idx = streams.randbelow(n, cols)
            last = n - 1
            eid = q[cols, idx]
            q[cols, idx] = q[cols, last]
            qlen[cols] = last
            steps[cols] += 1
            edge_messages[cols, eid] += 1
            if capture is not None:
                for col, edge in zip(cols.tolist(), eid.tolist()):
                    capture[col].append(edge)

            head = edge_head[eid]
            fresh = ~got[cols, head]
            if fresh.any():
                fcols = cols[fresh]
                fheads = head[fresh]
                got[fcols, fheads] = True
                self._push_csr(
                    q,
                    qlen,
                    fcols,
                    out_start[fheads],
                    out_degree[fheads],
                    out_flat,
                )

        bits = self.message_bits
        total_bits = steps * bits
        max_edge_messages = (
            edge_messages.max(axis=1)
            if self.num_edges
            else np.zeros(k, dtype=np.int64)
        )
        return BatchRunOutcome(
            steps=steps,
            exhausted=qlen > 0,
            total_messages=steps,
            total_bits=total_bits,
            max_message_bits=np.where(steps > 0, bits, 0),
            max_edge_messages=max_edge_messages,
            max_edge_bits=max_edge_messages * bits,
            termination_step=np.full(k, -1, dtype=np.int64),
            messages_at_termination=steps,
            bits_at_termination=total_bits,
        )


class _TerminationLatch:
    """Per-run count-based termination latch shared by the terminating
    kernels.

    Both terminating protocols accumulate *positive* token values at the
    terminal and latch when the accumulated sum first equals exactly 1.
    Because every partial sum is strictly increasing and the structural
    total over the full message multiset is at most 1 (value is conserved
    at every split and a finite multiset admits no second visit), the
    predicate fires **iff** every terminal-arriving message has been
    delivered — so the latch reduces to counting terminal deliveries
    against the structural target, with no per-run big-int arithmetic.
    ``can_terminate`` (the structural total equals 1) is decided at
    compile time by the scalar kernel's own ``check_terminal`` after the
    full enumeration.
    """

    __slots__ = ("ttarget", "tcount", "tstep", "bits_at", "latched")

    def __init__(self, k: int, ttarget: int) -> None:
        self.ttarget = ttarget
        self.tcount = np.zeros(k, dtype=np.int64)
        self.tstep = np.full(k, -1, dtype=np.int64)
        self.bits_at = np.zeros(k, dtype=np.int64)
        self.latched = np.zeros(k, dtype=bool)

    def update_dense(
        self, step: int, is_term: np.ndarray, bits_run: np.ndarray
    ) -> None:
        """Lockstep form: all runs delivered one message at ``step``."""
        self.tcount += is_term
        newly = np.nonzero((self.tcount == self.ttarget) & ~self.latched)[0]
        if newly.size:
            self.latched[newly] = True
            self.tstep[newly] = step
            self.bits_at[newly] = bits_run[newly]

    def update_general(
        self,
        cols: np.ndarray,
        is_term: np.ndarray,
        steps: np.ndarray,
        bits_run: np.ndarray,
    ) -> None:
        """Active-columns form: runs in ``cols`` delivered one message."""
        self.tcount[cols] += is_term
        newly = (self.tcount[cols] == self.ttarget) & ~self.latched[cols]
        if newly.any():
            ncols = cols[newly]
            self.latched[ncols] = True
            self.tstep[ncols] = steps[ncols]
            self.bits_at[ncols] = bits_run[ncols]


class BatchSplitKernel(BatchFlatKernel):
    """SoA machine for the token-splitting broadcast protocols
    (``tree-broadcast``, ``eager-dag-broadcast``, ``naive-tree-broadcast``).

    These protocols split every delivered token across the receiver's
    out-ports *unconditionally*: the emissions of a delivery depend only
    on the delivered token and the receiving vertex, never on accumulated
    state.  The run's message multiset is therefore order-independent,
    and :meth:`build` enumerates it exactly once at compile time by
    driving the protocol's scalar flat kernel with a FIFO worklist — the
    exact dyadic / rational token arithmetic (arbitrary-precision Python
    ints) happens there, and the SoA loops only ever move small int
    *message ids* whose edge, bit cost and children are table lookups.

    The in-flight queues mirror the scalar scheduler id for id: initial
    messages are ids ``0..n_init-1`` in root port order, and delivering
    id ``m`` appends ``children[m]`` (that delivery's emissions, in port
    order), so position-for-position the ``(K, capacity)`` planes hold
    exactly what each run's :class:`RandomScheduler` holds and every
    swap-pop lands on the same message.

    Enumeration returns ``None`` (→ per-spec fastpath fallback) when the
    multiset is infinite (a root-reachable cycle), exceeds
    :data:`ENUM_CAP` (eager path explosion), or the reference protocol
    would raise during its initial emissions.
    """

    __slots__ = (
        "num_messages",
        "num_initial",
        "capacity",
        "msg_edge",
        "msg_bits",
        "msg_terminal",
        "child_start",
        "child_count",
        "child_flat",
        "child_pad",
        "can_terminate",
        "ttarget",
        "total_bits_const",
        "max_message_bits_const",
        "max_edge_messages_const",
        "max_edge_bits_const",
    )

    @classmethod
    def build(cls, protocol: Any, compiled: Any) -> Optional["BatchSplitKernel"]:
        """Enumerate the message multiset; ``None`` when inexpressible."""
        machine = protocol.compile_fastpath(compiled)
        if machine is None:
            return None
        edge_head = compiled.edge_head
        in_port = compiled.in_port
        out_edge_ids = compiled.out_edge_ids
        root = compiled.root
        try:
            initial = list(machine.initial_emissions(root))
        except Exception:
            # The reference raises at run time (e.g. a root without
            # out-edges); the per-spec fallback reproduces that exactly.
            return None
        if not initial:
            return None
        root_ports = out_edge_ids[root]
        msg_edge: List[int] = []
        msg_bits: List[int] = []
        payloads: List[Any] = []
        for out_port, payload, bits in initial:  # port order = push order
            msg_edge.append(root_ports[out_port])
            msg_bits.append(bits)
            payloads.append(payload)
        children: List[List[int]] = []
        cursor = 0
        while cursor < len(msg_edge):
            if len(msg_edge) > ENUM_CAP:
                return None  # cycle or eager explosion: fastpath fallback
            eid = msg_edge[cursor]
            head = edge_head[eid]
            emissions = machine.deliver(head, in_port[eid], payloads[cursor])
            payloads[cursor] = None  # big rationals: free as we go
            ports = out_edge_ids[head]
            kids: List[int] = []
            for out_port, out_payload, out_bits in emissions:
                kids.append(len(msg_edge))
                msg_edge.append(ports[out_port])
                msg_bits.append(out_bits)
                payloads.append(out_payload)
            children.append(kids)
            cursor += 1
        # Every message was delivered exactly once, so the scalar machine
        # now holds the exact end-of-run state of a fully drained run —
        # its own terminal check decides structural terminability.
        can_terminate = bool(machine.check_terminal(compiled.terminal))
        return cls(compiled, msg_edge, msg_bits, children, len(initial), can_terminate)

    def __init__(
        self,
        compiled: Any,
        msg_edge: List[int],
        msg_bits: List[int],
        children: List[List[int]],
        num_initial: int,
        can_terminate: bool,
    ) -> None:
        super().__init__(compiled)
        m = len(msg_edge)
        self.num_messages = m
        self.num_initial = num_initial
        # Total pushes over a full run is exactly the multiset size, so
        # the in-flight count can never exceed it.
        self.capacity = m
        self.msg_edge = np.asarray(msg_edge, dtype=np.int64)
        self.msg_bits = np.asarray(msg_bits, dtype=np.int64)
        self.msg_terminal = (
            self.edge_head[self.msg_edge] == self.terminal
        ).astype(np.int64)
        counts = np.asarray([len(kids) for kids in children], dtype=np.int64)
        self.child_count = counts
        starts = np.zeros(m, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        self.child_start = starts
        self.child_flat = np.asarray(
            [kid for kids in children for kid in kids] or [0], dtype=np.int64
        )
        # Message-indexed padded child matrix for the dense loop's
        # rectangular scatter (a message's children count is its head's
        # out-degree, so the base pad width fits).
        child_pad = np.zeros((m, self.max_degree), dtype=np.int64)
        for mid, kids in enumerate(children):
            child_pad[mid, : len(kids)] = kids
        self.child_pad = child_pad
        self.ttarget = int(self.msg_terminal.sum())
        self.can_terminate = bool(can_terminate) and self.ttarget > 0
        # Full-drain observables are structural: every run delivers the
        # whole multiset, in some order.
        self.total_bits_const = int(self.msg_bits.sum())
        self.max_message_bits_const = int(self.msg_bits.max())
        edge_msgs = np.zeros(max(1, self.num_edges), dtype=np.int64)
        np.add.at(edge_msgs, self.msg_edge, 1)
        edge_bits = np.zeros(max(1, self.num_edges), dtype=np.int64)
        np.add.at(edge_bits, self.msg_edge, self.msg_bits)
        self.max_edge_messages_const = int(edge_msgs.max())
        self.max_edge_bits_const = int(edge_bits.max())

    def run(
        self,
        streams: Any,
        max_steps: int,
        capture: Optional[List[List[int]]] = None,
        stop_at_termination: bool = False,
    ) -> BatchRunOutcome:
        # The dense loop runs all K queues in lockstep for exactly
        # `num_messages` super-steps (every run delivers the whole
        # multiset, so all drain together); it needs the budget to never
        # bind and every run to keep draining past its latch.
        if (
            max_steps >= self.capacity
            and capture is None
            and not (stop_at_termination and self.can_terminate)
        ):
            return self._run_dense(streams)
        return self._run_general(streams, max_steps, capture, stop_at_termination)

    def _run_dense(self, streams: Any) -> BatchRunOutcome:
        """Lockstep full-drain loop: budget slack, no capture, no early stop.

        Everything except the termination latch is structural, so the
        per-step work is the queue simulation itself plus — only for
        terminating shapes — a per-run running bits sum (the latched
        ``bits_at_termination`` is order-dependent) and the terminal
        delivery counter.
        """
        k = streams.k
        cap = self.capacity
        m = self.num_messages
        q = np.zeros((k, cap), dtype=np.int64)
        q_flat = q.reshape(-1)
        qlen = np.zeros(k, dtype=np.int64)
        ninit = self.num_initial
        q[:, :ninit] = np.arange(ninit, dtype=np.int64)
        qlen[:] = ninit

        child_count = self.child_count
        child_pad = self.child_pad
        arange_pad = self.arange_pad
        msg_bits = self.msg_bits
        msg_terminal = self.msg_terminal
        row_cap = np.arange(k, dtype=np.int64) * cap
        rows = np.arange(k, dtype=np.int64)

        can_term = self.can_terminate
        latch = _TerminationLatch(k, self.ttarget) if can_term else None
        bits_run = np.zeros(k, dtype=np.int64)

        addr = np.empty(k, dtype=np.int64)
        mid = np.empty(k, dtype=np.int64)
        swap = np.empty(k, dtype=np.int64)

        for step in range(1, m + 1):
            idx = streams.randbelow_dense(qlen)
            np.add(row_cap, idx, out=addr)
            q_flat.take(addr, out=mid)  # queue holds message ids
            qlen -= 1
            np.add(row_cap, qlen, out=swap)
            q_flat.take(swap, out=swap)
            q_flat[addr] = swap
            self._scatter_pad(
                q_flat,
                row_cap,
                rows,
                qlen,
                child_count.take(mid),
                child_pad[mid],
                arange_pad,
            )
            if latch is not None:
                bits_run += msg_bits.take(mid)
                latch.update_dense(step, msg_terminal.take(mid), bits_run)

        self._assert_drained(qlen)

        steps = np.full(k, m, dtype=np.int64)
        total_bits = np.full(k, self.total_bits_const, dtype=np.int64)
        if latch is not None:
            # A full drain delivers every terminal message, so every run
            # latched; the at-termination metrics are the latched values.
            tstep = latch.tstep
            messages_at = latch.tstep
            bits_at = latch.bits_at
        else:
            tstep = np.full(k, -1, dtype=np.int64)
            messages_at = steps
            bits_at = total_bits
        return BatchRunOutcome(
            steps=steps,
            exhausted=np.zeros(k, dtype=bool),
            total_messages=steps,
            total_bits=total_bits,
            max_message_bits=np.full(k, self.max_message_bits_const, dtype=np.int64),
            max_edge_messages=np.full(
                k, self.max_edge_messages_const, dtype=np.int64
            ),
            max_edge_bits=np.full(k, self.max_edge_bits_const, dtype=np.int64),
            termination_step=tstep,
            messages_at_termination=messages_at,
            bits_at_termination=bits_at,
        )

    def _run_general(
        self,
        streams: Any,
        max_steps: int,
        capture: Optional[List[List[int]]],
        stop_at_termination: bool,
    ) -> BatchRunOutcome:
        """Per-pop accounting loop: binding budgets, capture, early stop.

        Needs the full ``(K, |E|)`` per-edge planes — under a partial
        drain the per-edge message counts and bit sums are order-
        dependent (a split protocol can put many messages on one edge).
        """
        k = streams.k
        q = np.zeros((k, self.capacity), dtype=np.int64)
        qlen = np.zeros(k, dtype=np.int64)
        steps = np.zeros(k, dtype=np.int64)
        ninit = self.num_initial
        q[:, :ninit] = np.arange(ninit, dtype=np.int64)
        qlen[:] = ninit

        total_bits = np.zeros(k, dtype=np.int64)
        max_msg_bits = np.zeros(k, dtype=np.int64)
        edge_msgs = np.zeros((k, max(1, self.num_edges)), dtype=np.int64)
        edge_bits = np.zeros((k, max(1, self.num_edges)), dtype=np.int64)
        latch = _TerminationLatch(k, self.ttarget) if self.can_terminate else None

        msg_edge = self.msg_edge
        msg_bits = self.msg_bits
        msg_terminal = self.msg_terminal
        child_start = self.child_start
        child_count = self.child_count
        child_flat = self.child_flat
        stop = bool(stop_at_termination)

        while True:
            active = (qlen > 0) & (steps < max_steps)
            if stop and latch is not None:
                active &= ~latch.latched
            cols = np.nonzero(active)[0]
            if cols.size == 0:
                break
            n = qlen[cols]
            idx = streams.randbelow(n, cols)
            last = n - 1
            mid = q[cols, idx]
            q[cols, idx] = q[cols, last]
            qlen[cols] = last
            steps[cols] += 1
            eid = msg_edge[mid]
            bits = msg_bits[mid]
            edge_msgs[cols, eid] += 1
            edge_bits[cols, eid] += bits
            total_bits[cols] += bits
            max_msg_bits[cols] = np.maximum(max_msg_bits[cols], bits)
            if capture is not None:
                for col, edge in zip(cols.tolist(), eid.tolist()):
                    capture[col].append(edge)
            self._push_csr(
                q, qlen, cols, child_start[mid], child_count[mid], child_flat
            )
            if latch is not None:
                latch.update_general(cols, msg_terminal[mid], steps, total_bits)

        exhausted = qlen > 0
        if latch is not None:
            if stop:
                # A run that latched broke out of its loop at the latch,
                # before any budget check could declare it exhausted.
                exhausted &= ~latch.latched
            tstep = latch.tstep
            not_latched = ~latch.latched
            messages_at = np.where(not_latched, steps, latch.tstep)
            bits_at = np.where(not_latched, total_bits, latch.bits_at)
        else:
            tstep = np.full(k, -1, dtype=np.int64)
            messages_at = steps
            bits_at = total_bits
        return BatchRunOutcome(
            steps=steps,
            exhausted=exhausted,
            total_messages=steps,
            total_bits=total_bits,
            max_message_bits=max_msg_bits,
            max_edge_messages=edge_msgs.max(axis=1),
            max_edge_bits=edge_bits.max(axis=1),
            termination_step=tstep,
            messages_at_termination=messages_at,
            bits_at_termination=bits_at,
        )


class BatchDagKernel(BatchFlatKernel):
    """SoA machine for the aggregate-then-split DAG rule (``dag-broadcast``).

    A vertex accumulates until its *last* in-edge message arrives, then
    fires once, splitting the accumulated sum across its out-edges — so
    each edge carries at most one message, that message's exact value and
    bit cost are structural (the in-flow of a vertex is order-independent),
    and the only per-run protocol state the SoA loop needs is a
    ``(K, |V|)`` heard-counter plane: delivering edge ``e`` increments
    ``heard[head(e)]``, and the head's out-edge block is pushed exactly
    when the counter hits the structural join target.

    :meth:`build` drives the scalar flat kernel over a worklist once to
    find which edges carry messages, their exact costs, and which
    vertices fire; it returns ``None`` when any edge would carry two
    messages (a cyclic graph feeding the root back — the one shape whose
    queue dynamics the one-message-per-edge layout cannot express).
    """

    __slots__ = (
        "num_messages",
        "capacity",
        "init_edges",
        "edge_msg_bits",
        "is_term_edge",
        "fire_need",
        "edge_pad",
        "can_terminate",
        "ttarget",
        "total_bits_const",
        "max_message_bits_const",
    )

    @classmethod
    def build(cls, protocol: Any, compiled: Any) -> Optional["BatchDagKernel"]:
        """Trace the one-shot message per edge; ``None`` when inexpressible."""
        machine = protocol.compile_fastpath(compiled)
        if machine is None:
            return None
        edge_head = compiled.edge_head
        in_port = compiled.in_port
        out_edge_ids = compiled.out_edge_ids
        root = compiled.root
        try:
            initial = list(machine.initial_emissions(root))
        except Exception:
            return None  # reference raises at run time: fastpath fallback
        if not initial:
            return None
        root_ports = out_edge_ids[root]
        edge_bits: Dict[int, int] = {}
        work: List[Tuple[int, Any]] = []
        for out_port, payload, bits in initial:
            eid = root_ports[out_port]
            if eid in edge_bits:
                return None
            edge_bits[eid] = bits
            work.append((eid, payload))
        fired = [False] * compiled.num_vertices
        cursor = 0
        while cursor < len(work):
            eid, payload = work[cursor]
            cursor += 1
            head = edge_head[eid]
            emissions = machine.deliver(head, in_port[eid], payload)
            if emissions:
                fired[head] = True
                ports = out_edge_ids[head]
                for out_port, out_payload, out_bits in emissions:
                    oeid = ports[out_port]
                    if oeid in edge_bits:
                        # A second message on one edge — the root heard
                        # all its in-edges on a cyclic graph and re-fired.
                        return None
                    edge_bits[oeid] = out_bits
                    work.append((oeid, out_payload))
        can_terminate = bool(machine.check_terminal(compiled.terminal))
        init_edges = [root_ports[out_port] for out_port, _, _ in initial]
        in_degree = [view.in_degree for view in compiled.views]
        return cls(compiled, edge_bits, fired, in_degree, init_edges, can_terminate)

    def __init__(
        self,
        compiled: Any,
        edge_bits: Dict[int, int],
        fired: List[bool],
        in_degree: List[int],
        init_edges: List[int],
        can_terminate: bool,
    ) -> None:
        super().__init__(compiled)
        m = len(edge_bits)
        self.num_messages = m
        self.capacity = max(1, m)
        self.init_edges = np.asarray(init_edges, dtype=np.int64)
        bits_table = np.zeros(max(1, self.num_edges), dtype=np.int64)
        for eid, bits in edge_bits.items():
            bits_table[eid] = bits
        self.edge_msg_bits = bits_table
        self.is_term_edge = (self.edge_head == self.terminal).astype(np.int64)
        # Join target per vertex: its in-degree where the vertex fires,
        # -1 (unreachable by a counter) everywhere else.  A firing
        # vertex's in-edges all carry exactly one message, so its counter
        # hits the target exactly once per run.
        need = np.asarray(in_degree, dtype=np.int64)
        self.fire_need = np.where(
            np.asarray(fired, dtype=bool), need, np.int64(-1)
        )
        # Vertex-indexed padded out-edge-id matrix: a fire pushes the
        # vertex's whole out-block (port order) in one rectangular scatter.
        edge_pad = np.zeros((self.num_vertices, self.max_degree), dtype=np.int64)
        for vertex, eids in enumerate(compiled.out_edge_ids):
            edge_pad[vertex, : len(eids)] = eids
        self.edge_pad = edge_pad
        carrying = np.zeros(max(1, self.num_edges), dtype=bool)
        for eid in edge_bits:
            carrying[eid] = True
        self.ttarget = int(
            (carrying[: self.num_edges] & (self.edge_head == self.terminal)).sum()
        )
        self.can_terminate = bool(can_terminate) and self.ttarget > 0
        self.total_bits_const = int(bits_table.sum())
        self.max_message_bits_const = int(bits_table.max())

    def run(
        self,
        streams: Any,
        max_steps: int,
        capture: Optional[List[List[int]]] = None,
        stop_at_termination: bool = False,
    ) -> BatchRunOutcome:
        if (
            max_steps >= self.capacity
            and capture is None
            and not (stop_at_termination and self.can_terminate)
        ):
            return self._run_dense(streams)
        return self._run_general(streams, max_steps, capture, stop_at_termination)

    def _run_dense(self, streams: Any) -> BatchRunOutcome:
        """Lockstep full-drain loop (see :meth:`BatchSplitKernel._run_dense`):
        every run delivers every carrying edge exactly once, so all K runs
        drain together at the structural step count."""
        k = streams.k
        cap = self.capacity
        m = self.num_messages
        num_vertices = self.num_vertices
        q = np.zeros((k, cap), dtype=np.int64)
        q_flat = q.reshape(-1)
        qlen = np.zeros(k, dtype=np.int64)
        heard_flat = np.zeros(k * num_vertices, dtype=np.int64)

        ninit = self.init_edges.size
        q[:, :ninit] = self.init_edges
        qlen[:] = ninit

        edge_head = self.edge_head
        out_degree = self.out_degree
        fire_need = self.fire_need
        edge_pad = self.edge_pad
        arange_pad = self.arange_pad
        edge_msg_bits = self.edge_msg_bits
        is_term_edge = self.is_term_edge
        row_cap = np.arange(k, dtype=np.int64) * cap
        row_v = np.arange(k, dtype=np.int64) * num_vertices

        can_term = self.can_terminate
        latch = _TerminationLatch(k, self.ttarget) if can_term else None
        bits_run = np.zeros(k, dtype=np.int64)

        addr = np.empty(k, dtype=np.int64)
        eid = np.empty(k, dtype=np.int64)
        swap = np.empty(k, dtype=np.int64)
        head = np.empty(k, dtype=np.int64)
        vaddr = np.empty(k, dtype=np.int64)

        for step in range(1, m + 1):
            idx = streams.randbelow_dense(qlen)
            np.add(row_cap, idx, out=addr)
            q_flat.take(addr, out=eid)  # queue holds edge ids
            qlen -= 1
            np.add(row_cap, qlen, out=swap)
            q_flat.take(swap, out=swap)
            q_flat[addr] = swap
            edge_head.take(eid, out=head)
            np.add(row_v, head, out=vaddr)
            heard_flat[vaddr] += 1
            fire = heard_flat.take(vaddr) == fire_need.take(head)
            frows = np.nonzero(fire)[0]
            if frows.size:
                fheads = head.take(frows)
                self._scatter_pad(
                    q_flat,
                    row_cap,
                    frows,
                    qlen,
                    out_degree.take(fheads),
                    edge_pad[fheads],
                    arange_pad,
                )
            if latch is not None:
                bits_run += edge_msg_bits.take(eid)
                latch.update_dense(step, is_term_edge.take(eid), bits_run)

        self._assert_drained(qlen)

        steps = np.full(k, m, dtype=np.int64)
        total_bits = np.full(k, self.total_bits_const, dtype=np.int64)
        if latch is not None:
            tstep = latch.tstep
            messages_at = latch.tstep
            bits_at = latch.bits_at
        else:
            tstep = np.full(k, -1, dtype=np.int64)
            messages_at = steps
            bits_at = total_bits
        has_steps = np.int64(1) if m > 0 else np.int64(0)
        return BatchRunOutcome(
            steps=steps,
            exhausted=np.zeros(k, dtype=bool),
            total_messages=steps,
            total_bits=total_bits,
            max_message_bits=np.full(k, self.max_message_bits_const, dtype=np.int64),
            # Each carrying edge delivers exactly once per full drain.
            max_edge_messages=np.full(k, has_steps, dtype=np.int64),
            max_edge_bits=np.full(k, self.max_message_bits_const, dtype=np.int64),
            termination_step=tstep,
            messages_at_termination=messages_at,
            bits_at_termination=bits_at,
        )

    def _run_general(
        self,
        streams: Any,
        max_steps: int,
        capture: Optional[List[List[int]]],
        stop_at_termination: bool,
    ) -> BatchRunOutcome:
        """Per-pop accounting loop: binding budgets, capture, early stop.

        One message per edge keeps even the partial-drain accounting
        plane-free: a run's ``max_edge_messages`` is 1 as soon as it
        delivered anything, and its ``max_edge_bits`` is the max bit cost
        over delivered messages — the same running max as
        ``max_message_bits``.
        """
        k = streams.k
        q = np.zeros((k, self.capacity), dtype=np.int64)
        qlen = np.zeros(k, dtype=np.int64)
        steps = np.zeros(k, dtype=np.int64)
        heard = np.zeros((k, self.num_vertices), dtype=np.int64)

        ninit = self.init_edges.size
        q[:, :ninit] = self.init_edges
        qlen[:] = ninit

        total_bits = np.zeros(k, dtype=np.int64)
        max_msg_bits = np.zeros(k, dtype=np.int64)
        latch = _TerminationLatch(k, self.ttarget) if self.can_terminate else None

        edge_head = self.edge_head
        out_degree = self.out_degree
        out_start = self.out_start
        out_flat = self.out_flat
        fire_need = self.fire_need
        edge_msg_bits = self.edge_msg_bits
        is_term_edge = self.is_term_edge
        stop = bool(stop_at_termination)

        while True:
            active = (qlen > 0) & (steps < max_steps)
            if stop and latch is not None:
                active &= ~latch.latched
            cols = np.nonzero(active)[0]
            if cols.size == 0:
                break
            n = qlen[cols]
            idx = streams.randbelow(n, cols)
            last = n - 1
            eid = q[cols, idx]
            q[cols, idx] = q[cols, last]
            qlen[cols] = last
            steps[cols] += 1
            bits = edge_msg_bits[eid]
            total_bits[cols] += bits
            max_msg_bits[cols] = np.maximum(max_msg_bits[cols], bits)
            if capture is not None:
                for col, edge in zip(cols.tolist(), eid.tolist()):
                    capture[col].append(edge)

            head = edge_head[eid]
            heard[cols, head] += 1
            fire = heard[cols, head] == fire_need[head]
            if fire.any():
                fcols = cols[fire]
                fheads = head[fire]
                self._push_csr(
                    q,
                    qlen,
                    fcols,
                    out_start[fheads],
                    out_degree[fheads],
                    out_flat,
                )
            if latch is not None:
                latch.update_general(cols, is_term_edge[eid], steps, total_bits)

        exhausted = qlen > 0
        if latch is not None:
            if stop:
                exhausted &= ~latch.latched
            tstep = latch.tstep
            not_latched = ~latch.latched
            messages_at = np.where(not_latched, steps, latch.tstep)
            bits_at = np.where(not_latched, total_bits, latch.bits_at)
        else:
            tstep = np.full(k, -1, dtype=np.int64)
            messages_at = steps
            bits_at = total_bits
        return BatchRunOutcome(
            steps=steps,
            exhausted=exhausted,
            total_messages=steps,
            total_bits=total_bits,
            max_message_bits=max_msg_bits,
            max_edge_messages=np.where(steps > 0, 1, 0).astype(np.int64),
            max_edge_bits=max_msg_bits,
            termination_step=tstep,
            messages_at_termination=messages_at,
            bits_at_termination=bits_at,
        )
