"""Compiled fast-path kernel for the Section 6 topology-mapping protocol.

:class:`~repro.core.mapping.MappingProtocol` is the label-assignment
protocol plus fact piggybacking: every message additionally carries the
sender's identity, the out-port it left on, and a monotonically growing
frozenset of :class:`~repro.core.mapping.VertexFact` /
:class:`~repro.core.mapping.EdgeFact` records.  The generic machine pays
for that twice per delivery — interval-union algebra on
:class:`~repro.core.intervals.IntervalUnion` objects *and* dataclass
hashing/equality over whole fact sets.

This kernel composes the flat pieces instead:

* the labeling transition runs on an
  :class:`~repro.core.interval_kernel.IntervalKernel` (paper-setting
  root/terminal overrides, exactly as ``MappingProtocol``'s inner
  protocol);
* identities are ``"s"`` / ``"t"`` markers or a label's flat union frozen
  into a tuple-of-int-tuples (hashable, canonical — equality matches
  :class:`IntervalUnion` equality);
* facts are flat tagged tuples — ``("v", ident, out_degree)`` and
  ``("e", tail, tail_port, head, head_port)`` — with their encoded bit
  size computed once and memoised, and a per-vertex running total so a
  message's fact-set cost is one integer add instead of a sum over the
  set.

Fact-set closure (the mapping termination test) runs the same root-BFS as
:func:`repro.core.mapping._closure` over the flat facts; real
:class:`~repro.core.mapping.MappingState` objects, fact dataclasses and
the :class:`~repro.core.mapping.NetworkMap` output are materialised only
at the end of the run.  Byte-identical results are enforced by the
differential suite like every other kernel.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple, Union

from .flat_kernel import FlatKernel, _ucost
from .interval_kernel import _EMPTY_COST, IntervalKernel, _cost, _to_union

__all__ = ["MappingKernel"]

#: A flat identity: a distinguished marker or a frozen flat label union.
_FlatIdentity = Union[str, Tuple[Tuple[int, int, int, int], ...]]

#: Empty flat union (tuple form: shared, immutable).
_EMPTY: Tuple = ()


def _ident_cost(identity: Optional[_FlatIdentity]) -> int:
    """Bit cost of an identity: 2 tag bits plus the label encoding.

    ``None`` (an unidentified sender) costs the 2 tag bits alone — the
    same arithmetic as :func:`repro.core.mapping._identity_cost` plus the
    message-level ``sender is None`` case.
    """
    if identity is None or isinstance(identity, str):
        return 2
    return 2 + _cost(identity)


def _fact_cost(fact: Tuple) -> int:
    """Encoded size of a flat fact (mirrors ``VertexFact``/``EdgeFact``)."""
    if fact[0] == "v":
        return _ident_cost(fact[1]) + _ucost(fact[2])
    return (
        _ident_cost(fact[1])
        + _ident_cost(fact[3])
        + _ucost(fact[2])
        + _ucost(fact[4])
    )


def _closed(facts: FrozenSet) -> bool:
    """Flat-fact closure test: the root-BFS of ``mapping._closure``."""
    out_degree: Dict[_FlatIdentity, int] = {}
    out_edges: Dict[_FlatIdentity, Dict[int, Tuple]] = {}
    for fact in facts:
        if fact[0] == "v":
            out_degree[fact[1]] = fact[2]
        else:
            out_edges.setdefault(fact[1], {})[fact[2]] = fact
    if "s" not in out_degree:
        return False
    seen = {"s"}
    frontier: List[_FlatIdentity] = ["s"]
    while frontier:
        ident = frontier.pop()
        if ident == "t":
            continue
        if ident not in out_degree:
            return False
        ports = out_edges.get(ident, {})
        if len(ports) != out_degree[ident]:
            return False
        for port in range(out_degree[ident]):
            fact = ports.get(port)
            if fact is None:
                return False
            head = fact[3]
            if head not in seen:
                seen.add(head)
                frontier.append(head)
    return True


class MappingKernel(FlatKernel):
    """Fast-path machine for :class:`MappingProtocol` semantics.

    Messages between kernel vertices are
    ``(alpha, beta, sender, sender_port, facts)`` tuples: the labeling
    token in flat-union form plus the mapping piggyback with flat
    identities and a frozenset of flat facts.
    """

    __slots__ = (
        "inner",
        "identity",
        "ident_cost",
        "facts",
        "facts_bits",
        "in_info",
        "recorded",
        "_fact_bits",
    )

    def __init__(self, protocol: Any, compiled: Any) -> None:
        super().__init__(protocol, compiled)
        # The labeling transition, on the paper-setting interval kernel —
        # exactly what MappingProtocol's inner LabelAssignmentProtocol
        # compiles to.
        self.inner: IntervalKernel = protocol._inner.compile_fastpath(compiled)
        n = compiled.num_vertices
        #: Own identity once known (out-degree-0 vertices play the
        #: terminal's role from the start, as in MappingState).
        self.identity: List[Optional[_FlatIdentity]] = [
            "t" if d == 0 else None for d in self.out_degree
        ]
        self.ident_cost: List[int] = [2] * n
        self.facts: List[set] = [set() for _ in range(n)]
        self.facts_bits: List[int] = [0] * n
        #: First labeled sender seen per in-port: port → (identity, tail_port).
        self.in_info: List[Dict[int, Tuple[_FlatIdentity, int]]] = [
            {} for _ in range(n)
        ]
        #: In-ports whose EdgeFact has been recorded.
        self.recorded: List[set] = [set() for _ in range(n)]
        #: Memoised flat-fact bit sizes (facts are shared across vertices).
        self._fact_bits: Dict[Tuple, int] = {}

    # ------------------------------------------------------------------
    # machine interface
    # ------------------------------------------------------------------

    def _bits_of(self, fact: Tuple) -> int:
        bits = self._fact_bits.get(fact)
        if bits is None:
            bits = self._fact_bits[fact] = _fact_cost(fact)
        return bits

    def _add_fact(self, vertex: int, fact: Tuple) -> None:
        facts = self.facts[vertex]
        if fact not in facts:
            facts.add(fact)
            self.facts_bits[vertex] += self._bits_of(fact)

    def initial_emissions(self, root: int) -> List[Tuple[int, Any, int]]:
        root_fact = ("v", "s", self.out_degree[root])
        facts = frozenset({root_fact})
        fact_bits = self._bits_of(root_fact)
        emissions = []
        for port, token, inner_bits in self.inner.initial_emissions(root):
            alpha, beta = token
            emissions.append(
                (
                    port,
                    (alpha, beta, "s", port, facts),
                    inner_bits + _ucost(port) + 2 + fact_bits,
                )
            )
        return emissions

    def deliver(
        self, vertex: int, in_port: int, message: Tuple
    ) -> List[Tuple[int, Any, int]]:
        alpha, beta, sender, sender_port, msg_facts = message
        facts = self.facts[vertex]
        facts_before = len(facts)

        # 1. The underlying labeling transition.
        inner_emissions = self.inner.deliver(vertex, in_port, (alpha, beta))

        # 2. Learn our own identity when the label arrives.
        if self.identity[vertex] is None:
            label = self.inner.label[vertex]
            if label is not None:
                ident_key = tuple(label)
                self.identity[vertex] = ident_key
                self.ident_cost[vertex] = _ident_cost(ident_key)
                self._add_fact(vertex, ("v", ident_key, self.out_degree[vertex]))

        # 3. Record the in-edge's tail (first labeled message per in-port).
        in_info = self.in_info[vertex]
        if sender is not None and in_port not in in_info:
            in_info[in_port] = (sender, sender_port)
        ident = self.identity[vertex]
        if ident is not None:
            recorded = self.recorded[vertex]
            for port, (tail, tail_port) in in_info.items():
                if port not in recorded:
                    recorded.add(port)
                    self._add_fact(vertex, ("e", tail, tail_port, ident, port))

        # 4. Adopt the sender's facts.
        for fact in msg_facts:
            if fact not in facts:
                facts.add(fact)
                self.facts_bits[vertex] += self._bits_of(fact)

        # 5. Emit: wrap the labeling emissions; if the fact set grew, flood
        #    facts on the remaining ports too.
        facts_grew = len(facts) != facts_before
        snapshot_facts = frozenset(facts)
        ident = self.identity[vertex]
        icost = self.ident_cost[vertex]
        fbits = self.facts_bits[vertex]
        emissions: List[Tuple[int, Any, int]] = []
        ports_covered = set()
        for port, token, inner_bits in inner_emissions:
            ports_covered.add(port)
            a, b = token
            emissions.append(
                (
                    port,
                    (a, b, ident, port, snapshot_facts),
                    inner_bits + _ucost(port) + icost + fbits,
                )
            )
        if facts_grew:
            pb = self.payload_bits
            base_bits = 2 * _EMPTY_COST + pb + icost + fbits
            for port in range(self.out_degree[vertex]):
                if port not in ports_covered:
                    emissions.append(
                        (
                            port,
                            (_EMPTY, _EMPTY, ident, port, snapshot_facts),
                            base_bits + _ucost(port),
                        )
                    )
        return emissions

    def check_terminal(self, terminal: int) -> bool:
        if not self.inner.terminal_done:
            return False
        return _closed(frozenset(self.facts[terminal]))

    # ------------------------------------------------------------------
    # snapshot/restore (schedule-explorer branching)
    # ------------------------------------------------------------------

    def snapshot(self) -> Tuple:
        return (
            self.inner.snapshot(),
            tuple(frozenset(f) for f in self.facts),
            tuple(self.facts_bits),
            tuple(tuple(d.items()) for d in self.in_info),
            tuple(frozenset(r) for r in self.recorded),
            tuple(self.identity),
            tuple(self.ident_cost),
        )

    def restore(self, snap: Tuple) -> None:
        self.inner.restore(snap[0])
        self.facts = [set(f) for f in snap[1]]
        self.facts_bits = list(snap[2])
        self.in_info = [dict(items) for items in snap[3]]
        self.recorded = [set(r) for r in snap[4]]
        self.identity = list(snap[5])
        self.ident_cost = list(snap[6])

    # ------------------------------------------------------------------
    # end-of-run materialisation
    # ------------------------------------------------------------------

    def _real_identity(
        self, ident: Optional[_FlatIdentity], cache: Dict[Tuple, Any]
    ) -> Any:
        from .mapping import ROOT_MARKER, TERMINAL_MARKER

        if ident is None:
            return None
        if ident == "s":
            return ROOT_MARKER
        if ident == "t":
            return TERMINAL_MARKER
        real = cache.get(ident)
        if real is None:
            real = cache[ident] = _to_union(list(ident))
        return real

    def _real_fact(self, fact: Tuple, cache: Dict[Tuple, Any]) -> Any:
        from .mapping import EdgeFact, VertexFact

        if fact[0] == "v":
            return VertexFact(self._real_identity(fact[1], cache), fact[2])
        return EdgeFact(
            tail=self._real_identity(fact[1], cache),
            tail_port=fact[2],
            head=self._real_identity(fact[3], cache),
            head_port=fact[4],
        )

    def finalize_states(self) -> Dict[int, Any]:
        from .mapping import MappingState

        base_states = self.inner.finalize_states()
        cache: Dict[Tuple, Any] = {}
        states: Dict[int, Any] = {}
        for vertex, d in enumerate(self.out_degree):
            state = MappingState(base_states[vertex], d)
            state.facts = {
                self._real_fact(fact, cache) for fact in self.facts[vertex]
            }
            state.in_info = {
                port: (self._real_identity(tail, cache), tail_port)
                for port, (tail, tail_port) in self.in_info[vertex].items()
            }
            state.recorded_ports = set(self.recorded[vertex])
            state.identity = self._real_identity(self.identity[vertex], cache)
            states[vertex] = state
        return states

    def output(self, terminal: int) -> Any:
        from .mapping import _closure

        cache: Dict[Tuple, Any] = {}
        return _closure(
            {self._real_fact(fact, cache) for fact in self.facts[terminal]}
        )
