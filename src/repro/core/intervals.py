"""Half-open intervals and interval unions over dyadic endpoints.

Section 4 of the paper (Definition 4.1) builds its commodity out of the
*interval set* ``I[0,1) = {[a,b) ⊆ [0,1)}`` and the *interval-union set*
``U[0,1)`` of finite unions of disjoint intervals.  This module implements
both, exactly:

* :class:`Interval` — a half-open interval ``[a, b)`` with :class:`Dyadic`
  endpoints.  ``[a, a)`` is the unique empty interval (the paper's
  convention), a subset of every interval.
* :class:`IntervalUnion` — a canonical (sorted, disjoint, non-adjacent)
  finite union of non-empty intervals with exact set algebra: union,
  intersection, difference, inclusion, and Lebesgue measure.

Two partition schemes from the paper are implemented here:

* :func:`split_interval` — the Δ-scheme of Theorem 4.3: to split ``[a, b)``
  into ``k`` parts, let ``N`` be the smallest power of two with ``N >= k`` and
  ``Δ = (b - a)/N``; produce ``k - 1`` intervals of width ``Δ`` and one final
  interval of width ``(b - a) - (k - 1)Δ``.  Because ``N`` is a power of two,
  each new endpoint costs only ``O(log k)`` additional bits relative to the
  endpoints of ``[a, b)`` — this is what caps endpoint representations at
  ``O(|V| log d_out)`` bits overall.
* :func:`canonical_partition` — the canonical partition of Section 4: given an
  interval-union ``α' = I₁ ∪ … ∪ I_r`` and ``d`` parts, the first ``d - 1``
  parts are a Δ-split of ``I₁`` and the ``d``-th part is ``I₂ ∪ … ∪ I_r``.

All operations preserve exactness; measures are :class:`Dyadic` and the
terminal's ``α ∪ β == [0, 1)`` test is an exact structural equality.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from .dyadic import DYADIC_ONE, DYADIC_ZERO, Dyadic
from .encoding import BitReader, BitWriter, decode_dyadic, dyadic_cost, encode_dyadic, encode_unsigned, decode_unsigned, unsigned_cost

__all__ = [
    "Interval",
    "IntervalUnion",
    "EMPTY_UNION",
    "UNIT_INTERVAL",
    "UNIT_UNION",
    "split_interval",
    "canonical_partition",
    "canonical_partition_literal",
    "encode_interval",
    "decode_interval",
    "encode_union",
    "decode_union",
    "interval_cost",
    "union_cost",
]


class Interval:
    """A half-open interval ``[lo, hi)`` with dyadic endpoints.

    ``lo <= hi`` always holds; ``lo == hi`` is the empty interval.  Instances
    are immutable and hashable.
    """

    __slots__ = ("lo", "hi")

    lo: Dyadic
    hi: Dyadic

    def __init__(self, lo: Dyadic, hi: Dyadic) -> None:
        if not isinstance(lo, Dyadic) or not isinstance(hi, Dyadic):
            raise TypeError("Interval endpoints must be Dyadic")
        if lo > hi:
            raise ValueError(f"Interval requires lo <= hi, got [{lo}, {hi})")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @classmethod
    def unit(cls) -> "Interval":
        """The unit interval ``[0, 1)``."""
        return cls(DYADIC_ZERO, DYADIC_ONE)

    @classmethod
    def point_free(cls, lo: Dyadic) -> "Interval":
        """The empty interval anchored at ``lo`` (``[lo, lo)``)."""
        return cls(lo, lo)

    def is_empty(self) -> bool:
        """True iff this is the empty interval ``[a, a)``."""
        return self.lo == self.hi

    def measure(self) -> Dyadic:
        """The width ``hi - lo``."""
        return self.hi - self.lo

    def contains(self, point: Dyadic) -> bool:
        """True iff ``lo <= point < hi``."""
        return self.lo <= point < self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """True iff ``other ⊆ self`` (the empty interval is in everything)."""
        if other.is_empty():
            return True
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "Interval") -> bool:
        """True iff the two intervals share at least one point."""
        return max(self.lo, other.lo) < min(self.hi, other.hi)

    def intersection(self, other: "Interval") -> "Interval":
        """The intersection interval (possibly empty)."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo >= hi:
            return Interval(lo, lo)
        return Interval(lo, hi)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        if self.is_empty():
            return hash("empty-interval")
        return hash((self.lo, self.hi))

    def __copy__(self) -> "Interval":
        # Immutable: copying is identity.
        return self

    def __deepcopy__(self, memo) -> "Interval":
        return self

    def __repr__(self) -> str:
        return f"Interval({self.lo!r}, {self.hi!r})"

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi})"

    def endpoint_bit_cost(self) -> int:
        """Total encoded size of the two endpoints in bits."""
        return dyadic_cost(self.lo) + dyadic_cost(self.hi)


#: The unit interval ``[0, 1)``.
UNIT_INTERVAL = Interval(DYADIC_ZERO, DYADIC_ONE)


class IntervalUnion:
    """A canonical finite union of disjoint, non-adjacent, non-empty intervals.

    The canonical form is a tuple of intervals sorted by left endpoint where
    consecutive intervals are separated by a gap (touching intervals are
    merged).  This makes structural equality coincide with set equality, which
    the protocols rely on for their termination tests.
    """

    __slots__ = ("_ivals",)

    _ivals: Tuple[Interval, ...]

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        object.__setattr__(self, "_ivals", _canonicalize(intervals))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalUnion":
        """The empty union (the paper's ``[0, 0)``)."""
        return _EMPTY

    @classmethod
    def unit(cls) -> "IntervalUnion":
        """The union consisting of the single interval ``[0, 1)``."""
        return _UNIT

    @classmethod
    def single(cls, interval: Interval) -> "IntervalUnion":
        """The union of one interval (empty union if the interval is empty)."""
        if interval.is_empty():
            return _EMPTY
        return cls((interval,))

    @classmethod
    def of(cls, *intervals: Interval) -> "IntervalUnion":
        """The union of the given intervals (overlaps allowed)."""
        return cls(intervals)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The canonical component intervals, left to right."""
        return self._ivals

    def interval_count(self) -> int:
        """Number of canonical component intervals."""
        return len(self._ivals)

    def is_empty(self) -> bool:
        """True iff the union is the empty set."""
        return not self._ivals

    def is_unit(self) -> bool:
        """True iff the union equals ``[0, 1)`` exactly."""
        return len(self._ivals) == 1 and self._ivals[0] == UNIT_INTERVAL

    def measure(self) -> Dyadic:
        """Total length of the union (exact)."""
        total = DYADIC_ZERO
        for ival in self._ivals:
            total = total + ival.measure()
        return total

    def contains(self, point: Dyadic) -> bool:
        """True iff the point lies in the union (binary search)."""
        lo, hi = 0, len(self._ivals)
        while lo < hi:
            mid = (lo + hi) // 2
            ival = self._ivals[mid]
            if point < ival.lo:
                hi = mid
            elif point >= ival.hi:
                lo = mid + 1
            else:
                return True
        return False

    def contains_union(self, other: "IntervalUnion") -> bool:
        """True iff ``other ⊆ self``."""
        return other.difference(self).is_empty()

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivals)

    def __len__(self) -> int:
        return len(self._ivals)

    def __bool__(self) -> bool:
        return bool(self._ivals)

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def union(self, other: "IntervalUnion") -> "IntervalUnion":
        """Set union."""
        if not self._ivals:
            return other
        if not other._ivals:
            return self
        return IntervalUnion(self._ivals + other._ivals)

    def union_interval(self, interval: Interval) -> "IntervalUnion":
        """Set union with a single interval."""
        if interval.is_empty():
            return self
        return IntervalUnion(self._ivals + (interval,))

    def intersection(self, other: "IntervalUnion") -> "IntervalUnion":
        """Set intersection (two-pointer sweep over canonical forms)."""
        out: List[Interval] = []
        i = j = 0
        a, b = self._ivals, other._ivals
        while i < len(a) and j < len(b):
            lo = max(a[i].lo, b[j].lo)
            hi = min(a[i].hi, b[j].hi)
            if lo < hi:
                out.append(Interval(lo, hi))
            # Advance whichever interval ends first.
            if a[i].hi <= b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalUnion(out) if out else _EMPTY

    def difference(self, other: "IntervalUnion") -> "IntervalUnion":
        """Set difference ``self \\ other``."""
        if not self._ivals or not other._ivals:
            return self
        out: List[Interval] = []
        j = 0
        b = other._ivals
        for ival in self._ivals:
            cursor = ival.lo
            # Skip subtrahend intervals entirely to the left of this one.
            while j < len(b) and b[j].hi <= ival.lo:
                j += 1
            k = j
            while k < len(b) and b[k].lo < ival.hi:
                if b[k].lo > cursor:
                    out.append(Interval(cursor, b[k].lo))
                cursor = max(cursor, b[k].hi)
                if cursor >= ival.hi:
                    break
                k += 1
            if cursor < ival.hi:
                out.append(Interval(cursor, ival.hi))
        return IntervalUnion(out) if out else _EMPTY

    def symmetric_difference(self, other: "IntervalUnion") -> "IntervalUnion":
        """Points in exactly one of the two unions."""
        return self.difference(other).union(other.difference(self))

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalUnion):
            return NotImplemented
        return self._ivals == other._ivals

    def __hash__(self) -> int:
        return hash(self._ivals)

    def __copy__(self) -> "IntervalUnion":
        # Immutable: copying is identity.
        return self

    def __deepcopy__(self, memo) -> "IntervalUnion":
        return self

    def __repr__(self) -> str:
        return f"IntervalUnion({list(self._ivals)!r})"

    def __str__(self) -> str:
        if not self._ivals:
            return "∅"
        return " ∪ ".join(str(ival) for ival in self._ivals)

    # ------------------------------------------------------------------
    # Encoding cost
    # ------------------------------------------------------------------

    def bit_cost(self) -> int:
        """Encoded size in bits (length prefix plus per-interval endpoints)."""
        return union_cost(self)


def _canonicalize(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort, drop empties, and merge overlapping/adjacent intervals."""
    nonempty = [iv for iv in intervals if not iv.is_empty()]
    if not nonempty:
        return ()
    nonempty.sort(key=lambda iv: (iv.lo.as_fraction(), iv.hi.as_fraction()))
    merged: List[Interval] = [nonempty[0]]
    for ival in nonempty[1:]:
        last = merged[-1]
        if ival.lo <= last.hi:
            if ival.hi > last.hi:
                merged[-1] = Interval(last.lo, ival.hi)
        else:
            merged.append(ival)
    return tuple(merged)


_EMPTY = object.__new__(IntervalUnion)
object.__setattr__(_EMPTY, "_ivals", ())

_UNIT = object.__new__(IntervalUnion)
object.__setattr__(_UNIT, "_ivals", (UNIT_INTERVAL,))

#: The empty interval-union.
EMPTY_UNION: IntervalUnion = _EMPTY

#: The full unit interval-union ``[0, 1)``.
UNIT_UNION: IntervalUnion = _UNIT


# ----------------------------------------------------------------------
# Partition schemes
# ----------------------------------------------------------------------


def split_interval(interval: Interval, parts: int) -> List[Interval]:
    """Split ``[a, b)`` into ``parts`` disjoint intervals by the Δ-scheme.

    Theorem 4.3's construction: let ``N`` be the smallest power of two with
    ``N >= parts`` and ``Δ = (b - a) / N``.  The result is ``parts - 1``
    intervals of width ``Δ`` followed by ``[a + (parts - 1)Δ, b)``.  The
    concatenation of the parts is exactly ``[a, b)`` and every new endpoint is
    dyadic.

    Splitting the empty interval yields ``parts`` empty intervals; splitting
    into one part returns the interval unchanged.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if parts == 1:
        return [interval]
    if interval.is_empty():
        return [interval] * parts
    shift = (parts - 1).bit_length()  # N = 2**shift is the least power of two >= parts
    delta = interval.measure().divide_pow2_parts(1 << shift)
    cuts: List[Interval] = []
    cursor = interval.lo
    for _ in range(parts - 1):
        nxt = cursor + delta
        cuts.append(Interval(cursor, nxt))
        cursor = nxt
    cuts.append(Interval(cursor, interval.hi))
    return cuts


def canonical_partition(alpha: IntervalUnion, parts: int) -> List[IntervalUnion]:
    """The canonical partition of Section 4 (with a necessary repair).

    Given ``α' = I₁ ∪ … ∪ I_r`` (canonical components, left to right) and a
    number of parts ``d``, the paper defines::

        α*_j = I₁ʲ            for j = 1 … d-1   (Δ-split of I₁ into d-1 parts)
        α*_d = I₂ ∪ … ∪ I_r

    **Erratum repair.**  Read literally, with ``r = 1`` (a single component —
    in particular the very first message ``[0,1)``) the last part is *empty*,
    and an out-neighbour reachable only through the last port then receives
    no commodity at all.  That breaks the paper's own guarantees: on the DAG
    ``s→p``, ``p→{x,u}``, ``x→t``, ``u→t`` the terminal covers ``[0,1)`` via
    ``x`` and declares termination while ``u`` has never received the
    broadcast (contradicting Theorem 4.2's delivery claim), and dead-end
    regions hanging off last ports stop blocking termination (contradicting
    the "iff").  The evidently intended invariant is that a non-empty ``α'``
    gives **every** part non-empty commodity, so when ``r = 1`` we Δ-split
    ``I₁`` into ``d`` parts instead.  This preserves the Theorem 4.3
    accounting (still one partition per vertex into at most ``d_out`` + 1
    pieces, each endpoint refined by ``O(log d_out)`` bits).  The literal
    rule is kept as :func:`canonical_partition_literal`; the erratum test
    suite demonstrates the failure it causes.

    For ``d == 1`` the partition is ``[α']`` itself.  Partitioning the empty
    union yields ``d`` empty unions.  The parts are pairwise disjoint, their
    union is exactly ``α'``, and all are non-empty whenever ``α'`` is.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if parts == 1:
        return [alpha]
    if alpha.is_empty():
        return [EMPTY_UNION] * parts
    components = alpha.intervals
    first, rest = components[0], components[1:]
    if rest:
        pieces = split_interval(first, parts - 1)
        result = [IntervalUnion.single(piece) for piece in pieces]
        result.append(IntervalUnion(rest))
    else:
        pieces = split_interval(first, parts)
        result = [IntervalUnion.single(piece) for piece in pieces]
    return result


def canonical_partition_literal(alpha: IntervalUnion, parts: int) -> List[IntervalUnion]:
    """The canonical partition exactly as written in Section 4.

    Kept for the erratum experiments: with a single-component ``α'`` the last
    part is empty, which demonstrably breaks broadcast delivery and the
    termination "iff" (see :func:`canonical_partition`).  Not used by the
    repaired protocols.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if parts == 1:
        return [alpha]
    if alpha.is_empty():
        return [EMPTY_UNION] * parts
    components = alpha.intervals
    first, rest = components[0], components[1:]
    pieces = split_interval(first, parts - 1)
    result = [IntervalUnion.single(piece) for piece in pieces]
    result.append(IntervalUnion(rest) if rest else EMPTY_UNION)
    return result


# ----------------------------------------------------------------------
# Encodings
# ----------------------------------------------------------------------


def encode_interval(writer: BitWriter, interval: Interval) -> None:
    """Encode an interval as its two endpoints."""
    encode_dyadic(writer, interval.lo)
    encode_dyadic(writer, interval.hi)


def decode_interval(reader: BitReader) -> Interval:
    """Inverse of :func:`encode_interval`."""
    lo = decode_dyadic(reader)
    hi = decode_dyadic(reader)
    return Interval(lo, hi)


def encode_union(writer: BitWriter, union: IntervalUnion) -> None:
    """Encode a union as a count followed by its canonical intervals."""
    encode_unsigned(writer, union.interval_count())
    for ival in union:
        encode_interval(writer, ival)


def decode_union(reader: BitReader) -> IntervalUnion:
    """Inverse of :func:`encode_union`."""
    count = decode_unsigned(reader)
    return IntervalUnion([decode_interval(reader) for _ in range(count)])


def interval_cost(interval: Interval) -> int:
    """Encoded size of an interval in bits."""
    return interval.endpoint_bit_cost()


def union_cost(union: IntervalUnion) -> int:
    """Encoded size of a union in bits."""
    total = unsigned_cost(union.interval_count())
    for ival in union:
        total += interval_cost(ival)
    return total
