"""Self-delimiting bit encodings for protocol symbols.

The paper's complexity measures are stated in *bits*: total communication
complexity is the total number of bits transmitted, and required bandwidth is
the maximal number of bits transmitted over a single edge (Section 2).  To
charge every message its true cost we implement concrete, decodable,
self-delimiting encodings rather than guessing sizes:

* Elias gamma / delta codes for unsigned integers,
* a zig-zag + delta code for signed integers,
* dyadic rationals as ``(signed numerator, exponent)``,
* half-open intervals as two dyadics,
* interval unions as a length-prefixed list of intervals.

Every ``encode_*`` has a matching ``decode_*`` and round-trip tests assert
``decode(encode(x)) == x``; this keeps the accounting honest (an encoding that
could not be decoded could claim arbitrarily small sizes).

The lower-bound theorems in the paper (Thm 3.2, Thm 3.8) are statements about
*any* encoding; the matching harnesses in :mod:`repro.lowerbounds` therefore
count distinct symbols and apply the information-theoretic ``log2`` floor
rather than trusting these encoders.
"""

from __future__ import annotations

from typing import List, Tuple

from .dyadic import Dyadic

__all__ = [
    "BitWriter",
    "BitReader",
    "encode_unsigned",
    "decode_unsigned",
    "encode_signed",
    "decode_signed",
    "encode_dyadic",
    "decode_dyadic",
    "elias_gamma_length",
    "elias_delta_length",
    "unsigned_cost",
    "signed_cost",
    "dyadic_cost",
]


class BitWriter:
    """An append-only bit buffer.

    Bits are stored as a list of booleans; this is not meant to be fast, it is
    meant to be obviously correct, and protocol runs only ever *measure*
    lengths (decoding is exercised by the test suite).
    """

    __slots__ = ("_bits",)

    def __init__(self) -> None:
        self._bits: List[bool] = []

    def write_bit(self, bit: bool) -> None:
        """Append a single bit."""
        self._bits.append(bool(bit))

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most-significant first."""
        if value < 0 or (width and value >> width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for i in reversed(range(width)):
            self._bits.append(bool((value >> i) & 1))

    def __len__(self) -> int:
        return len(self._bits)

    def bits(self) -> Tuple[bool, ...]:
        """The written bits as an immutable tuple."""
        return tuple(self._bits)

    def reader(self) -> "BitReader":
        """A reader positioned at the start of the written bits."""
        return BitReader(self._bits)


class BitReader:
    """Sequential reader over a bit sequence produced by :class:`BitWriter`."""

    __slots__ = ("_bits", "_pos")

    def __init__(self, bits) -> None:
        self._bits = list(bits)
        self._pos = 0

    def read_bit(self) -> bool:
        """Consume and return one bit."""
        if self._pos >= len(self._bits):
            raise EOFError("bit stream exhausted")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Consume ``width`` bits and return them as an unsigned integer."""
        value = 0
        for _ in range(width):
            value = (value << 1) | int(self.read_bit())
        return value

    def exhausted(self) -> bool:
        """True iff every bit has been consumed."""
        return self._pos >= len(self._bits)


# ----------------------------------------------------------------------
# Elias codes for unsigned integers
# ----------------------------------------------------------------------


def encode_unsigned(writer: BitWriter, value: int) -> None:
    """Elias-delta-encode a non-negative integer.

    Values are shifted by one so that 0 is encodable (Elias codes natively
    encode positive integers only).
    """
    if value < 0:
        raise ValueError("encode_unsigned takes non-negative integers")
    n = value + 1
    nbits = n.bit_length()  # length of n in bits, >= 1
    # Elias gamma for nbits: (len(nbits)-1) zeros, then nbits in binary.
    lbits = nbits.bit_length()
    for _ in range(lbits - 1):
        writer.write_bit(False)
    writer.write_bits(nbits, lbits)
    # Then n without its leading 1 bit.
    writer.write_bits(n - (1 << (nbits - 1)), nbits - 1)


def decode_unsigned(reader: BitReader) -> int:
    """Inverse of :func:`encode_unsigned`."""
    zeros = 0
    while not reader.read_bit():
        zeros += 1
    nbits = (1 << zeros) | reader.read_bits(zeros)
    rest = reader.read_bits(nbits - 1)
    n = (1 << (nbits - 1)) | rest
    return n - 1


def elias_gamma_length(n: int) -> int:
    """Bit length of the Elias gamma code of a positive integer ``n``."""
    if n <= 0:
        raise ValueError("Elias gamma encodes positive integers")
    return 2 * n.bit_length() - 1


def elias_delta_length(n: int) -> int:
    """Bit length of the Elias delta code of a positive integer ``n``."""
    if n <= 0:
        raise ValueError("Elias delta encodes positive integers")
    nbits = n.bit_length()
    return elias_gamma_length(nbits) + nbits - 1


def unsigned_cost(value: int) -> int:
    """Bit cost of :func:`encode_unsigned` without materialising the bits."""
    return elias_delta_length(value + 1)


# ----------------------------------------------------------------------
# Signed integers (zig-zag)
# ----------------------------------------------------------------------


def encode_signed(writer: BitWriter, value: int) -> None:
    """Encode a signed integer via zig-zag mapping onto the unsigned code."""
    mapped = value * 2 if value >= 0 else -value * 2 - 1
    encode_unsigned(writer, mapped)


def decode_signed(reader: BitReader) -> int:
    """Inverse of :func:`encode_signed`."""
    mapped = decode_unsigned(reader)
    if mapped % 2 == 0:
        return mapped // 2
    return -(mapped + 1) // 2


def signed_cost(value: int) -> int:
    """Bit cost of :func:`encode_signed`."""
    mapped = value * 2 if value >= 0 else -value * 2 - 1
    return unsigned_cost(mapped)


# ----------------------------------------------------------------------
# Dyadic rationals
# ----------------------------------------------------------------------


def encode_dyadic(writer: BitWriter, value: Dyadic) -> None:
    """Encode a dyadic rational as ``(signed num, unsigned exp)``."""
    encode_signed(writer, value.num)
    encode_unsigned(writer, value.exp)


def decode_dyadic(reader: BitReader) -> Dyadic:
    """Inverse of :func:`encode_dyadic`."""
    num = decode_signed(reader)
    exp = decode_unsigned(reader)
    return Dyadic(num, exp)


def dyadic_cost(value: Dyadic) -> int:
    """Bit cost of :func:`encode_dyadic` without materialising the bits."""
    return signed_cost(value.num) + unsigned_cost(value.exp)
