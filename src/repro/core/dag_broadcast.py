"""Broadcasting over directed acyclic graphs (Section 3.3).

The paper extends the grounded-tree commodity protocol to DAGs by the
"straightforward modification ... in which the commodity is a scalar value",
analysed under the assumption (used for its lower bound, and adopted here)
that *a vertex sends nothing until it has heard a message on each of its
incoming edges*.  The protocol:

1. The root injects commodity 1 (with the broadcast payload ``m``).
2. A vertex of in-degree ``d_in`` buffers incoming commodity until all
   ``d_in`` in-edges have delivered; it then splits the accumulated sum
   across its out-ports with the power-of-two rule of Section 3.1 and sends
   one message per out-edge.
3. The terminal declares termination when its accumulated commodity equals 1.

Exactly one message crosses each edge, but the commodity values are now
*sums* of powers of two — general dyadic rationals whose representation can
grow to ``Θ(|E|)`` bits (Theorem 3.8 proves this is unavoidable for every
commodity-preserving protocol; :mod:`repro.lowerbounds.commodity` builds the
witness family).  Hence the paper's DAG bounds: required bandwidth
``O(|E|) + |m|`` and total communication ``O(|E|²) + |E|·|m|``.

On a graph with a directed cycle the waiting rule deadlocks: every vertex on
the cycle waits for a predecessor on the cycle.  The run then drains to
quiescence without termination — the correct outcome is produced for the
wrong reason, which is why general graphs need the interval machinery of
Section 4 (:mod:`repro.core.general_broadcast`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .dyadic import DYADIC_ONE, DYADIC_ZERO, Dyadic
from .messages import ScalarToken
from .model import AnonymousProtocol, Emission, VertexView
from ..api.registry import PROTOCOLS
from .tree_broadcast import pow2_split_exponents

__all__ = ["DagState", "DagBroadcastProtocol"]


@dataclass(frozen=True)
class DagState:
    """Per-vertex state of the DAG protocol.

    ``heard`` counts in-edges already delivered; the vertex fires when
    ``heard == in_degree``.  ``acc`` is the exact accumulated commodity.
    """

    heard: int
    acc: Dyadic
    got_broadcast: bool = False
    payload: Any = None
    fired: bool = False


@PROTOCOLS.register()
class DagBroadcastProtocol(AnonymousProtocol[DagState, ScalarToken]):
    """Section 3.3 DAG broadcast: aggregate all in-edges, then split.

    Parameters
    ----------
    broadcast_payload:
        The message ``m``.
    payload_bits:
        Bits charged per transmission for ``m`` (default: ``8·len(m)`` for
        ``str``/``bytes``, else 0).
    """

    name = "dag-broadcast"

    def __init__(self, broadcast_payload: Any = None, payload_bits: Optional[int] = None) -> None:
        self.broadcast_payload = broadcast_payload
        if payload_bits is None:
            if isinstance(broadcast_payload, (str, bytes)):
                payload_bits = 8 * len(broadcast_payload)
            else:
                payload_bits = 0
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
        self.payload_bits = payload_bits

    def create_state(self, view: VertexView) -> DagState:
        return DagState(heard=0, acc=DYADIC_ZERO)

    def initial_emissions(self, view: VertexView) -> List[Emission]:
        return [
            (port, ScalarToken(value=Dyadic.pow2(-inc), payload=self.broadcast_payload))
            for port, inc in enumerate(pow2_split_exponents(view.out_degree))
        ]

    def on_receive(
        self, state: DagState, view: VertexView, in_port: int, message: ScalarToken
    ) -> Tuple[DagState, List[Emission]]:
        heard = state.heard + 1
        acc = state.acc + message.value
        fired = state.fired
        emissions: List[Emission] = []
        if heard == view.in_degree and view.out_degree > 0 and not fired:
            emissions = [
                (port, ScalarToken(value=acc.scaled_pow2(-inc), payload=message.payload))
                for port, inc in enumerate(pow2_split_exponents(view.out_degree))
            ]
            fired = True
        new_state = DagState(
            heard=heard,
            acc=acc,
            got_broadcast=True,
            payload=message.payload,
            fired=fired,
        )
        return new_state, emissions

    def is_terminated(self, state: DagState) -> bool:
        return state.acc == DYADIC_ONE

    def message_bits(self, message: ScalarToken) -> int:
        return message.structure_bits() + self.payload_bits

    def output(self, state: DagState) -> Any:
        return state.payload

    def state_bits(self, state: DagState) -> int:
        from .encoding import dyadic_cost, unsigned_cost

        return dyadic_cost(state.acc) + unsigned_cost(state.heard) + 2

    def clone_state(self, state: DagState) -> DagState:
        # Frozen dataclass, replaced (never mutated) on every transition.
        return state

    def clone_message(self, message: ScalarToken) -> ScalarToken:
        # Frozen dataclass; transitions never mutate received messages.
        return message

    def compile_fastpath(self, compiled: Any) -> Optional[Any]:
        """Flat aggregate-then-split kernel (exact same semantics)."""
        if type(self) is not DagBroadcastProtocol:
            return None
        from .flat_kernel import DagBroadcastKernel

        return DagBroadcastKernel(self, compiled)

    def compile_batch(self, compiled: Any) -> Optional[Any]:
        """Structure-of-arrays multi-run kernel over per-run heard
        counters (``None`` on cyclic shapes that would re-fire an edge —
        see :class:`~repro.core.batch_kernel.BatchDagKernel`)."""
        if type(self) is not DagBroadcastProtocol:
            return None
        from .batch_kernel import BatchDagKernel

        return BatchDagKernel.build(self, compiled)
