"""Exact dyadic (binary-point) rational numbers.

Every commodity value and every interval endpoint in the paper is a *dyadic
rational*: a number of the form ``n / 2**k`` with integer ``n`` and
non-negative integer ``k``.  Section 4 of the paper chooses interval endpoints
to be "binary-point numbers of finite representation, i.e., a sum of powers of
2 with a finite number of summands" precisely so that they can be encoded with
finitely many bits; Section 3.1 arranges for every scalar commodity to be a
power of 2 for the same reason.

:class:`Dyadic` implements these numbers exactly.  Floating point is never
used anywhere in a protocol: commodity preservation (the sum of outgoing
commodity equalling the incoming commodity) must hold *exactly* for the
terminal's ``sum == 1`` test to be meaningful, and Python floats would break
it as soon as a vertex of out-degree 3 splits an interval.

The class is immutable, hashable, totally ordered, and interoperates with
:class:`int` where that is unambiguous.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple, Union

__all__ = ["Dyadic", "DYADIC_ZERO", "DYADIC_ONE"]

_IntOrDyadic = Union[int, "Dyadic"]


def _normalize(num: int, exp: int) -> Tuple[int, int]:
    """Return the canonical ``(num, exp)`` pair for ``num / 2**exp``.

    The canonical form has ``exp >= 0`` and either ``num`` odd or
    ``exp == 0``.  Zero is represented as ``(0, 0)``.
    """
    if num == 0:
        return 0, 0
    if exp < 0:
        # n / 2**(-k) == n * 2**k / 2**0
        return num << (-exp), 0
    # Strip common factors of two.
    shift = min(exp, _trailing_zeros(num))
    return num >> shift, exp - shift


def _trailing_zeros(n: int) -> int:
    """Number of trailing zero bits of a non-zero integer."""
    return (n & -n).bit_length() - 1


class Dyadic:
    """An exact dyadic rational ``num / 2**exp``.

    Instances are canonical: ``exp >= 0`` and ``num`` is odd unless the value
    is an integer (``exp == 0``).  This makes equality and hashing structural.

    Parameters
    ----------
    num:
        Integer numerator.
    exp:
        The denominator is ``2**exp``.  May be negative on input (the value is
        then ``num * 2**(-exp)``); the stored form is normalised.
    """

    __slots__ = ("num", "exp")

    num: int
    exp: int

    def __init__(self, num: int, exp: int = 0) -> None:
        if not isinstance(num, int) or not isinstance(exp, int):
            raise TypeError("Dyadic components must be integers")
        n, e = _normalize(num, exp)
        object.__setattr__(self, "num", n)
        object.__setattr__(self, "exp", e)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_int(cls, value: int) -> "Dyadic":
        """The dyadic equal to the integer ``value``."""
        return cls(value, 0)

    @classmethod
    def pow2(cls, k: int) -> "Dyadic":
        """The dyadic ``2**k`` (``k`` may be negative)."""
        if k >= 0:
            return cls(1 << k, 0)
        return cls(1, -k)

    @classmethod
    def from_fraction(cls, frac: Fraction) -> "Dyadic":
        """Convert an exactly-dyadic :class:`~fractions.Fraction`.

        Raises
        ------
        ValueError
            If the denominator of ``frac`` is not a power of two.
        """
        denom = frac.denominator
        if denom & (denom - 1):
            raise ValueError(f"{frac} is not a dyadic rational")
        return cls(frac.numerator, denom.bit_length() - 1)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def as_fraction(self) -> Fraction:
        """This value as an exact :class:`~fractions.Fraction`."""
        return Fraction(self.num, 1 << self.exp)

    def __float__(self) -> float:
        return self.num / (1 << self.exp)

    def __int__(self) -> int:
        if self.exp:
            raise ValueError(f"{self!r} is not an integer")
        return self.num

    def is_integer(self) -> bool:
        """True iff the value is an integer."""
        return self.exp == 0

    def is_power_of_two(self) -> bool:
        """True iff the value is ``2**k`` for some (possibly negative) ``k``."""
        return self.num == 1 or (self.num > 1 and self.exp == 0 and self.num & (self.num - 1) == 0)

    def log2(self) -> int:
        """The exponent ``k`` with ``self == 2**k``.

        Raises
        ------
        ValueError
            If the value is not a power of two.
        """
        if not self.is_power_of_two():
            raise ValueError(f"{self!r} is not a power of two")
        if self.num == 1:
            return -self.exp
        return self.num.bit_length() - 1

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _coerce(self, other: _IntOrDyadic) -> "Dyadic":
        if isinstance(other, Dyadic):
            return other
        if isinstance(other, int):
            return Dyadic(other, 0)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: _IntOrDyadic) -> "Dyadic":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        e = max(self.exp, o.exp)
        return Dyadic((self.num << (e - self.exp)) + (o.num << (e - o.exp)), e)

    __radd__ = __add__

    def __sub__(self, other: _IntOrDyadic) -> "Dyadic":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        e = max(self.exp, o.exp)
        return Dyadic((self.num << (e - self.exp)) - (o.num << (e - o.exp)), e)

    def __rsub__(self, other: _IntOrDyadic) -> "Dyadic":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return o - self

    def __mul__(self, other: _IntOrDyadic) -> "Dyadic":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return Dyadic(self.num * o.num, self.exp + o.exp)

    __rmul__ = __mul__

    def __neg__(self) -> "Dyadic":
        return Dyadic(-self.num, self.exp)

    def __abs__(self) -> "Dyadic":
        return Dyadic(abs(self.num), self.exp)

    def scaled_pow2(self, k: int) -> "Dyadic":
        """This value multiplied by ``2**k`` (``k`` may be negative)."""
        return Dyadic(self.num, self.exp - k)

    def half(self) -> "Dyadic":
        """This value divided by 2."""
        return Dyadic(self.num, self.exp + 1)

    def midpoint(self, other: "Dyadic") -> "Dyadic":
        """The dyadic midpoint of ``self`` and ``other``."""
        return (self + other).half()

    def divide_pow2_parts(self, parts: int) -> "Dyadic":
        """This value divided by ``parts`` where ``parts`` is a power of two.

        Raises
        ------
        ValueError
            If ``parts`` is not a positive power of two.
        """
        if parts <= 0 or parts & (parts - 1):
            raise ValueError(f"parts must be a positive power of two, got {parts}")
        return Dyadic(self.num, self.exp + parts.bit_length() - 1)

    # ------------------------------------------------------------------
    # Comparison and hashing
    # ------------------------------------------------------------------

    def _cmp(self, other: _IntOrDyadic) -> int:
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        e = max(self.exp, o.exp)
        a = self.num << (e - self.exp)
        b = o.num << (e - o.exp)
        return (a > b) - (a < b)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Dyadic):
            return self.num == other.num and self.exp == other.exp
        if isinstance(other, int):
            return self.exp == 0 and self.num == other
        return NotImplemented

    def __lt__(self, other: _IntOrDyadic) -> bool:
        c = self._cmp(other)
        return NotImplemented if c is NotImplemented else c < 0

    def __le__(self, other: _IntOrDyadic) -> bool:
        c = self._cmp(other)
        return NotImplemented if c is NotImplemented else c <= 0

    def __gt__(self, other: _IntOrDyadic) -> bool:
        c = self._cmp(other)
        return NotImplemented if c is NotImplemented else c > 0

    def __ge__(self, other: _IntOrDyadic) -> bool:
        c = self._cmp(other)
        return NotImplemented if c is NotImplemented else c >= 0

    def __hash__(self) -> int:
        # Hash-compatible with int for integer values.
        if self.exp == 0:
            return hash(self.num)
        return hash((self.num, self.exp))

    def __bool__(self) -> bool:
        return self.num != 0

    # ------------------------------------------------------------------
    # Encoding cost
    # ------------------------------------------------------------------

    def bit_cost(self) -> int:
        """Number of bits needed to write this value down.

        This is the quantity the paper's communication-complexity accounting
        charges for an endpoint or a scalar commodity: the length of the
        binary-point representation, i.e. the bits of the numerator plus the
        bits needed to state the binary-point position.  Exact self-delimiting
        encodings live in :mod:`repro.core.encoding`; this method is the quick
        size proxy used in metrics.
        """
        from .encoding import BitWriter, encode_dyadic  # local import: avoid cycle

        writer = BitWriter()
        encode_dyadic(writer, self)
        return len(writer)

    # ------------------------------------------------------------------
    # Copying / repr
    # ------------------------------------------------------------------

    def __copy__(self) -> "Dyadic":
        # Immutable: copying is identity (keeps schedule exploration cheap).
        return self

    def __deepcopy__(self, memo) -> "Dyadic":
        return self

    def __repr__(self) -> str:
        if self.exp == 0:
            return f"Dyadic({self.num})"
        return f"Dyadic({self.num}, {self.exp})"

    def __str__(self) -> str:
        if self.exp == 0:
            return str(self.num)
        return f"{self.num}/2^{self.exp}"


#: The dyadic zero.
DYADIC_ZERO = Dyadic(0)

#: The dyadic one.
DYADIC_ONE = Dyadic(1)
