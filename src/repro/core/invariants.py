"""Runtime invariant checkers for the interval protocols.

The Section 4/5 correctness proofs lean on a handful of structural
invariants.  This module states each one as an executable predicate over
the simulator's vertex-state map, so they can be (a) asserted after runs in
unit tests, (b) passed as the ``invariant`` hook of
:func:`repro.lowerbounds.schedules.explore_all_schedules` to be checked
after *every delivery on every schedule branch*, and (c) reused by
downstream protocol authors extending the commodity machinery.

Invariants:

* :func:`alphas_pairwise_disjoint` — within each vertex, the per-port
  ``α_j`` (plus the retained label) never overlap; this is what makes
  α-travel single-path, the backbone of the ``G_T(a)`` argument.
* :func:`coverage_within_unit` — no vertex ever manufactures commodity
  outside ``[0, 1)``.
* :func:`commodity_conserved` — globally, the union of everything any
  vertex has routed, retained, β-recorded or received equals everything
  that has been injected: points are never lost, only parked.
* :func:`labels_disjoint_globally` — retained labels are pairwise disjoint
  across vertices (Theorem 5.1's uniqueness).

All predicates accept the ``states`` dict as produced by the simulator
(vertex id → state) and are safe on mixed populations (vertices that have
not yet received anything).
"""

from __future__ import annotations

from typing import Any, Dict

from .general_broadcast import GeneralState
from .intervals import EMPTY_UNION, UNIT_UNION, IntervalUnion

__all__ = [
    "alphas_pairwise_disjoint",
    "coverage_within_unit",
    "commodity_conserved",
    "labels_disjoint_globally",
    "all_interval_invariants",
]


def _general_states(states: Dict[int, Any]):
    for state in states.values():
        if isinstance(state, GeneralState):
            yield state
        else:
            base = getattr(state, "base", None)
            if isinstance(base, GeneralState):
                yield base


def alphas_pairwise_disjoint(states: Dict[int, Any]) -> bool:
    """Per-vertex: label and all ``α_j`` are pairwise disjoint."""
    for state in _general_states(states):
        parts = list(state.alphas)
        if state.label is not None:
            parts.append(state.label)
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                if not parts[i].intersection(parts[j]).is_empty():
                    return False
    return True


def coverage_within_unit(states: Dict[int, Any]) -> bool:
    """No vertex holds points outside ``[0, 1)``."""
    for state in _general_states(states):
        combined = state.coverage.union(state.beta).union(state.alpha_acc)
        if state.label is not None:
            combined = combined.union(state.label)
        if not UNIT_UNION.contains_union(combined):
            return False
    return True


def commodity_conserved(states: Dict[int, Any]) -> bool:
    """Globally: injected commodity is fully accounted for *at quiescence*.

    During a run, points can legitimately be in flight (inside messages) and
    visible nowhere, so this predicate is meaningful only when no messages
    are pending — assert it on final states, not per delivery.
    The conservation law: the union over all vertices of
    ``coverage ∪ β ∪ alpha_acc ∪ label`` equals ``[0, 1)`` once the root has
    injected (the root's emission enters some vertex's accounting on first
    delivery; before any delivery the union is empty).
    """
    union: IntervalUnion = EMPTY_UNION
    any_activity = False
    for state in _general_states(states):
        combined = state.coverage.union(state.beta).union(state.alpha_acc)
        if state.label is not None:
            combined = combined.union(state.label)
        if not combined.is_empty():
            any_activity = True
        union = union.union(combined)
    if not any_activity:
        return True
    return union == UNIT_UNION


def labels_disjoint_globally(states: Dict[int, Any]) -> bool:
    """Across vertices: retained labels never overlap (label uniqueness)."""
    seen: IntervalUnion = EMPTY_UNION
    for state in _general_states(states):
        if state.label is None or state.label.is_empty():
            continue
        if not seen.intersection(state.label).is_empty():
            return False
        seen = seen.union(state.label)
    return True


def all_interval_invariants(states: Dict[int, Any]) -> bool:
    """The per-delivery-safe invariants combined (conservation excluded —
    it only holds at quiescence; see :func:`commodity_conserved`)."""
    return (
        alphas_pairwise_disjoint(states)
        and coverage_within_unit(states)
        and labels_disjoint_globally(states)
    )
