"""Typed message payloads for the paper's protocols.

Every protocol message conceptually contains the broadcast payload ``m`` plus
*termination information* (Section 3: "the messages leaving u are of the form
``(m, x/2^⌈log d⌉)``…").  The classes here model the termination information
exactly and carry the broadcast payload as an opaque ``payload`` field; bit
accounting charges the structural part via the exact encoders of
:mod:`repro.core.encoding` and the payload via a per-protocol ``|m|``
parameter (the paper, likewise, accounts ``|m|`` separately as the inevitable
``|E|·|m|`` term).

All messages are frozen and hashable so that traces can count distinct
symbols (the ``Σ_G`` sets of Theorem 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .dyadic import Dyadic
from .encoding import dyadic_cost, unsigned_cost
from .intervals import IntervalUnion, union_cost

__all__ = [
    "TreeToken",
    "ScalarToken",
    "IntervalMessage",
    "payload_repr",
]


def payload_repr(payload: Any) -> str:
    """Short display form of a broadcast payload."""
    text = repr(payload)
    return text if len(text) <= 24 else text[:21] + "..."


@dataclass(frozen=True)
class TreeToken:
    """Grounded-tree termination information: the commodity ``x = 2^-exponent``.

    Section 3.1 arranges for every transmitted value ``x`` to be a power of
    two, so a token is fully described by the non-negative integer
    ``exponent``; this is what makes the ``O(log |E|)`` per-message size (and
    hence the ``O(|E| log |E|)`` total) possible.
    """

    exponent: int
    #: The broadcast payload ``m`` (opaque; same object on every message).
    payload: Any = None

    def __post_init__(self) -> None:
        if self.exponent < 0:
            raise ValueError("TreeToken exponent must be non-negative")

    @property
    def value(self) -> Dyadic:
        """The commodity value ``2^-exponent`` as an exact dyadic."""
        return Dyadic.pow2(-self.exponent)

    def structure_bits(self) -> int:
        """Encoded size of the termination information (excludes ``|m|``)."""
        return unsigned_cost(self.exponent)

    def __repr__(self) -> str:
        return f"TreeToken(2^-{self.exponent})"


@dataclass(frozen=True)
class ScalarToken:
    """DAG termination information: an arbitrary dyadic commodity value.

    Section 3.3's protocol aggregates the commodity arriving on all in-edges
    of a vertex before splitting, so values are sums of powers of two —
    general dyadics needing up to ``Θ(|E|)`` bits on worst-case inputs
    (Theorem 3.8 shows this is inherent for commodity-preserving protocols).
    """

    value: Dyadic
    payload: Any = None

    def structure_bits(self) -> int:
        """Encoded size of the termination value (excludes ``|m|``)."""
        return dyadic_cost(self.value)

    def __repr__(self) -> str:
        return f"ScalarToken({self.value})"


@dataclass(frozen=True)
class IntervalMessage:
    """General-graph message ``σ = (α', β')`` of Section 4.

    ``alpha`` is freshly forwarded commodity (new points for the recipient's
    α-side); ``beta`` is cycle-detection information flooded toward the
    terminal.  The labeling protocol of Section 5 uses the same message type.
    """

    alpha: IntervalUnion
    beta: IntervalUnion
    payload: Any = None

    def structure_bits(self) -> int:
        """Encoded size of both interval-unions (excludes ``|m|``)."""
        return union_cost(self.alpha) + union_cost(self.beta)

    def is_vacuous(self) -> bool:
        """True iff the message carries no commodity at all."""
        return self.alpha.is_empty() and self.beta.is_empty()

    def __repr__(self) -> str:
        return f"IntervalMessage(α={self.alpha}, β={self.beta})"
