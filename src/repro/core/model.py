"""The paper's formal protocol model.

Section 2 defines an *anonymous protocol* as a tuple
``(Π, Σ, π₀, σ₀, f, g, S)``:

* a state space ``Π`` with initial state ``π₀``,
* a message space ``Σ`` with initial message ``σ₀`` sent on the root's
  outgoing edge,
* a state function ``f : Π × Σ × ℕ → Π`` — the new state of a vertex that
  receives message ``σ`` on in-port ``i`` while in state ``π``,
* a message function ``g : Π × Σ × ℕ × ℕ → Σ ∪ {φ}`` — the message sent on
  out-port ``j`` in that same step (``φ`` = send nothing),
* a stopping predicate ``S : Π → {0, 1}`` evaluated at the terminal.

Anonymity is enforced *structurally* here: protocol callbacks receive a
:class:`VertexView` that exposes only the vertex's own in/out-degree — the
exact knowledge the model grants — and the in-port a message arrived on.
Vertex identities never cross this boundary.

Two interfaces are provided:

* :class:`AnonymousProtocol` — the practical interface the simulator runs
  (state creation, a combined receive step, the stopping predicate, and bit
  accounting).  All paper protocols implement this.
* :class:`FunctionalProtocol` — a literal ``(f, g, S)`` adapter for writing a
  protocol exactly in the paper's notation; useful for small examples and for
  the lower-bound harness, which needs to treat protocols as black boxes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Generic, List, Optional, Tuple, TypeVar

__all__ = [
    "VertexView",
    "Emission",
    "AnonymousProtocol",
    "FunctionalProtocol",
]

State = TypeVar("State")
Message = TypeVar("Message")

#: An outgoing transmission: ``(out_port, payload)``.
Emission = Tuple[int, Any]


@dataclass(frozen=True)
class VertexView:
    """Everything an anonymous vertex may know about itself.

    The model grants a vertex knowledge of its own degree and the ability to
    distinguish its ports — nothing else.  No identifier, no topology, no
    bound on ``|V|``.
    """

    in_degree: int
    out_degree: int

    def __post_init__(self) -> None:
        if self.in_degree < 0 or self.out_degree < 0:
            raise ValueError("degrees must be non-negative")


class AnonymousProtocol(abc.ABC, Generic[State, Message]):
    """Executable form of an anonymous protocol.

    The simulator drives instances as follows: every vertex gets an initial
    state from :meth:`create_state`; the root's initial emissions are obtained
    from :meth:`initial_emissions`; each delivered message triggers
    :meth:`on_receive` (the combination of the paper's ``f`` and ``g``); and
    after every delivery to the terminal, :meth:`is_terminated` (the paper's
    ``S``) is evaluated on the terminal's state.

    Implementations may mutate and return the same state object — the
    simulator treats states as opaque.
    """

    #: Human-readable protocol name (used in reports).
    name: str = "anonymous-protocol"

    @abc.abstractmethod
    def create_state(self, view: VertexView) -> State:
        """The initial state ``π₀`` of a vertex with the given degrees."""

    @abc.abstractmethod
    def initial_emissions(self, view: VertexView) -> List[Emission]:
        """The root's initial transmissions (the paper's ``σ₀`` on out-port 0).

        The base model gives the root exactly one outgoing edge; protocols
        supporting the multi-out-edge extension may emit on several ports.
        """

    @abc.abstractmethod
    def on_receive(
        self, state: State, view: VertexView, in_port: int, message: Message
    ) -> Tuple[State, List[Emission]]:
        """Process one delivery: the paper's ``π' = f(π, σ, i)`` plus all
        ``g(π, σ, i, j)`` emissions (``φ`` entries simply omitted)."""

    @abc.abstractmethod
    def is_terminated(self, state: State) -> bool:
        """The stopping predicate ``S`` evaluated on the terminal's state."""

    @abc.abstractmethod
    def message_bits(self, message: Message) -> int:
        """Encoded size of a message in bits (used for all accounting)."""

    def output(self, state: State) -> Any:
        """The protocol output extracted from the terminal's final state.

        Defaults to the state itself (the paper takes the terminal's state as
        the output of the protocol).
        """
        return state

    def state_bits(self, state: State) -> int:
        """Approximate encoded size of a vertex state in bits (memory metric).

        Optional; protocols that do not care about the state-space metric may
        leave the default, which reports zero.
        """
        return 0

    def compile_fastpath(self, compiled: Any) -> Optional[Any]:
        """Optional accelerated kernel for the fast-path engine.

        ``compiled`` is a :class:`~repro.network.fastpath.CompiledNetwork`.
        A protocol may return a kernel object implementing the machine
        interface the fast-path engine drives (``initial_emissions``,
        ``deliver``, ``check_terminal``, ``finalize_states``, ``output``)
        over its own flat data structures; it must be *exactly*
        result-equivalent to running the protocol through
        :meth:`on_receive` — same emissions in the same port order, same
        bit accounting, same termination step.  Return ``None`` (the
        default) to run through the engine's generic machine, which is
        always correct.  Kernels are never consulted when tracing or
        state-bit tracking is requested.

        Kernels may additionally implement ``snapshot()`` / ``restore()``
        over their flat state; the ∀-schedule explorer
        (:mod:`repro.lowerbounds.schedules`) uses that pair to branch
        without deep-copying object states.
        """
        return None

    def compile_batch(self, compiled: Any) -> Optional[Any]:
        """Optional structure-of-arrays kernel for the ``batch`` engine.

        ``compiled`` is a :class:`~repro.network.fastpath.CompiledNetwork`.
        A protocol may return a batch kernel (see
        :mod:`repro.core.batch_kernel`) whose
        ``run(streams, max_steps, capture=None, stop_at_termination=False)``
        executes K simultaneous runs of this topology — one per RNG
        stream — under the random scheduler's delivery order, with every
        per-run result *exactly* equal to a fastpath run of the same
        (spec, seed), including the early-stop semantics of
        ``stop_at_termination`` and the per-delivery edge-id ``capture``
        hook the differential tests use.  Return ``None`` (the default)
        and the batch engine falls back to per-spec fastpath execution,
        which is always correct — kernels whose exact tables can't
        express a particular compiled shape (e.g. cyclic graphs under
        the broadcast kernels) return ``None`` per shape for the same
        fallback.
        """
        return None

    def clone_state(self, state: State) -> State:
        """An independent copy of ``state`` for schedule-tree branching.

        The ∀-schedule explorer forks the configuration at every branch
        point; transitions may mutate states in place, so branches need
        independent copies.  The default is a full :func:`copy.deepcopy`
        (always correct).  Protocols with immutable states should return
        ``state`` unchanged; protocols with shallow mutable containers
        should copy just those containers — that turns exhaustive
        exploration from allocation-bound into pointer-copy-bound.
        """
        import copy

        return copy.deepcopy(state)

    def clone_message(self, message: Message) -> Message:
        """A delivery-safe copy of an in-flight ``message``.

        Sibling schedule-tree branches share the pending-message list, so
        a transition that mutates a received message would leak into other
        branches; the default deepcopy keeps arbitrary protocols safe.
        Every shipped message type is a frozen dataclass, so the paper
        protocols override this to return the message unchanged.
        """
        import copy

        return copy.deepcopy(message)


class FunctionalProtocol(AnonymousProtocol[Any, Any]):
    """Literal ``(Π, Σ, π₀, σ₀, f, g, S)`` protocol, as in the paper.

    Parameters mirror Section 2.  ``f(state, message, in_port)`` returns the
    new state; ``g(state, message, in_port, out_port)`` returns the message
    for ``out_port`` or ``None`` for the paper's ``φ``.  Note ``g`` receives
    the *pre-transition* state, exactly as in the paper's definition.

    ``initial_state`` may be a value or a callable taking a
    :class:`VertexView` (the paper's ``π₀`` formally depends on the degree,
    e.g. ``([0,0)^d, [0,0))`` in Section 4).
    """

    def __init__(
        self,
        *,
        initial_state: Any,
        initial_message: Any,
        state_fn: Callable[[Any, Any, int], Any],
        message_fn: Callable[[Any, Any, int, int], Optional[Any]],
        stopping_predicate: Callable[[Any], bool],
        message_bits_fn: Callable[[Any], int],
        name: str = "functional-protocol",
    ) -> None:
        self._initial_state = initial_state
        self._initial_message = initial_message
        self._f = state_fn
        self._g = message_fn
        self._s = stopping_predicate
        self._bits = message_bits_fn
        self.name = name

    def create_state(self, view: VertexView) -> Any:
        if callable(self._initial_state):
            return self._initial_state(view)
        return self._initial_state

    def initial_emissions(self, view: VertexView) -> List[Emission]:
        return [(port, self._initial_message) for port in range(view.out_degree)]

    def on_receive(
        self, state: Any, view: VertexView, in_port: int, message: Any
    ) -> Tuple[Any, List[Emission]]:
        emissions: List[Emission] = []
        for out_port in range(view.out_degree):
            out = self._g(state, message, in_port, out_port)
            if out is not None:
                emissions.append((out_port, out))
        new_state = self._f(state, message, in_port)
        return new_state, emissions

    def is_terminated(self, state: Any) -> bool:
        return bool(self._s(state))

    def message_bits(self, message: Any) -> int:
        return self._bits(message)
