"""Shared flat-array kernel base for the fast-path engine.

:mod:`repro.core.interval_kernel` proved the compiled-kernel design on the
Section 4/5 interval protocols; this module generalises the pattern to the
*counter/bit-set* protocols — the grounded-tree and DAG commodity
protocols and the baselines — whose per-vertex state is a handful of
scalars.  The shared pieces live here once:

* **dyadic pair arithmetic** — a normalised ``(num, exp)`` pair of plain
  ints mirrors :class:`~repro.core.dyadic.Dyadic` exactly (same canonical
  form, same addition), so commodity sums computed on int pairs are
  bit-for-bit the sums the reference protocols compute on objects;
* **bit costs** — :func:`_ucost` / :func:`_scost` / :func:`_dcost`
  replicate the Elias-delta arithmetic of :mod:`repro.core.encoding`
  without allocating writers, so ``total_bits`` accounting is identical;
* **:class:`FlatKernel`** — the machine-interface scaffolding every kernel
  shares (terminal/out-degree tables, payload-bit charging, the default
  ``output``), plus the ``snapshot()``/``restore()`` pair the
  :mod:`~repro.lowerbounds.schedules` explorer uses to branch without
  ``copy.deepcopy``.

Concrete kernels for the scalar protocols follow: the power-of-two tree
split (:class:`TreeBroadcastKernel`, shared by the eager-DAG baseline),
the aggregate-then-split DAG rule (:class:`DagBroadcastKernel`), the naive
rational split (:class:`NaiveTreeKernel`) and plain flooding
(:class:`FloodingKernel`).  Each is *exactly* result-equivalent to running
its protocol through the generic machine — same emissions in the same
port order, same bit accounting, same termination step — which the
differential suite (``tests/api/test_engine_differential.py``) enforces
for every protocol × graph family × scheduler combination.  Real state
objects are materialised only once, at the end of the run.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Any, Dict, List, Tuple

__all__ = [
    "FlatKernel",
    "TreeBroadcastKernel",
    "DagBroadcastKernel",
    "NaiveTreeKernel",
    "FloodingKernel",
]


# ----------------------------------------------------------------------
# Dyadic (num, exp) arithmetic — mirrors repro.core.dyadic exactly
# ----------------------------------------------------------------------


def _norm(num: int, exp: int) -> Tuple[int, int]:
    """Canonicalise ``num / 2**exp`` (num odd or exp == 0; zero is (0, 0))."""
    if num == 0:
        return 0, 0
    shift = (num & -num).bit_length() - 1
    if shift > exp:
        shift = exp
    return num >> shift, exp - shift


def _add(an: int, ae: int, bn: int, be: int) -> Tuple[int, int]:
    if ae >= be:
        return _norm(an + (bn << (ae - be)), ae)
    return _norm((an << (be - ae)) + bn, be)


def _sub(an: int, ae: int, bn: int, be: int) -> Tuple[int, int]:
    if ae >= be:
        return _norm(an - (bn << (ae - be)), ae)
    return _norm((an << (be - ae)) - bn, be)


def _lt(an: int, ae: int, bn: int, be: int) -> bool:
    """a < b for normalised dyadic pairs."""
    if ae >= be:
        return an < (bn << (ae - be))
    return (an << (be - ae)) < bn


def _le(an: int, ae: int, bn: int, be: int) -> bool:
    """a <= b for normalised dyadic pairs."""
    if ae >= be:
        return an <= (bn << (ae - be))
    return (an << (be - ae)) <= bn


# ----------------------------------------------------------------------
# Bit costs — mirrors repro.core.encoding exactly
# ----------------------------------------------------------------------


def _ucost(value: int) -> int:
    """``unsigned_cost``: Elias-delta length of ``value + 1``."""
    nbits = (value + 1).bit_length()
    return 2 * nbits.bit_length() + nbits - 2


def _scost(value: int) -> int:
    """``signed_cost``: zig-zag mapping onto the unsigned code."""
    mapped = value + value if value >= 0 else -value - value - 1
    return _ucost(mapped)


def _dcost(num: int, exp: int) -> int:
    """``dyadic_cost`` of a normalised pair (zig-zag num + unsigned exp)."""
    return _scost(num) + _ucost(exp)


# ----------------------------------------------------------------------
# Kernel base
# ----------------------------------------------------------------------


class FlatKernel:
    """Machine-interface scaffolding shared by the flat-state kernels.

    Subclasses implement ``initial_emissions`` / ``deliver`` /
    ``check_terminal`` / ``finalize_states`` over their own flat arrays and
    the ``snapshot()`` / ``restore()`` pair used by the schedule explorer.
    Emissions are ``(out_port, payload, bits)`` triples, exactly as the
    engine drivers in :mod:`repro.network.fastpath` consume them.
    """

    __slots__ = ("protocol", "terminal", "out_degree", "payload_bits")

    def __init__(self, protocol: Any, compiled: Any) -> None:
        self.protocol = protocol
        self.terminal = compiled.terminal
        self.out_degree: List[int] = [
            len(ports) for ports in compiled.out_edge_ids
        ]
        self.payload_bits: int = int(getattr(protocol, "payload_bits", 0))

    def state_bits(self, vertex: int) -> int:  # pragma: no cover - unused
        raise NotImplementedError(
            "flat kernels are never engaged with state-bit tracking"
        )

    def output(self, terminal: int) -> Any:
        # Only consulted on termination, which requires a received message;
        # every scalar protocol outputs the delivered broadcast payload.
        return self.protocol.broadcast_payload

    def snapshot(self) -> Tuple:  # pragma: no cover - abstract
        raise NotImplementedError

    def restore(self, snap: Tuple) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


def _split_exponent_table(out_degrees: List[int]) -> List[Tuple[int, ...]]:
    """Per-vertex power-of-two split increments, shared per out-degree."""
    from .tree_broadcast import pow2_split_exponents

    cache: Dict[int, Tuple[int, ...]] = {}
    table: List[Tuple[int, ...]] = []
    for d in out_degrees:
        if d == 0:
            table.append(())
            continue
        if d not in cache:
            cache[d] = tuple(pow2_split_exponents(d))
        table.append(cache[d])
    return table


class TreeBroadcastKernel(FlatKernel):
    """Flat machine for the Section 3.1 power-of-two commodity split.

    Per-vertex state is a normalised dyadic pair (the received sum) plus a
    receipt flag; a message is just the token's exponent (the payload is a
    run constant, carried implicitly).  Also serves the eager-DAG baseline,
    whose transition rules are identical.
    """

    __slots__ = ("sums", "got", "port_exponents")

    def __init__(self, protocol: Any, compiled: Any) -> None:
        super().__init__(protocol, compiled)
        n = compiled.num_vertices
        self.sums: List[Tuple[int, int]] = [(0, 0)] * n
        self.got: List[bool] = [False] * n
        self.port_exponents = _split_exponent_table(self.out_degree)

    def initial_emissions(self, root: int) -> List[Tuple[int, int, int]]:
        if self.out_degree[root] < 1:
            from .tree_broadcast import pow2_split_exponents

            pow2_split_exponents(self.out_degree[root])  # raises, as reference
        pb = self.payload_bits
        return [
            (port, inc, _ucost(inc) + pb)
            for port, inc in enumerate(self.port_exponents[root])
        ]

    def deliver(self, vertex: int, in_port: int, exponent: int):
        num, exp = self.sums[vertex]
        self.sums[vertex] = _add(num, exp, 1, exponent)
        self.got[vertex] = True
        incs = self.port_exponents[vertex]
        if not incs:
            return ()
        pb = self.payload_bits
        return [
            (port, exponent + inc, _ucost(exponent + inc) + pb)
            for port, inc in enumerate(incs)
        ]

    def check_terminal(self, terminal: int) -> bool:
        return self.sums[terminal] == (1, 0)

    def finalize_states(self) -> Dict[int, Any]:
        from .dyadic import Dyadic
        from .tree_broadcast import TreeState

        payload = self.protocol.broadcast_payload
        return {
            v: TreeState(
                received_sum=Dyadic(num, exp),
                got_broadcast=got,
                payload=payload if got else None,
            )
            for v, ((num, exp), got) in enumerate(zip(self.sums, self.got))
        }

    def snapshot(self) -> Tuple:
        return (tuple(self.sums), tuple(self.got))

    def restore(self, snap: Tuple) -> None:
        self.sums = list(snap[0])
        self.got = list(snap[1])


class DagBroadcastKernel(FlatKernel):
    """Flat machine for the Section 3.3 aggregate-then-split DAG rule.

    State is ``(heard, acc, fired)`` per vertex; a message is the general
    dyadic commodity value as a normalised pair.
    """

    __slots__ = ("heard", "acc", "fired", "got", "in_degree", "port_exponents")

    def __init__(self, protocol: Any, compiled: Any) -> None:
        super().__init__(protocol, compiled)
        n = compiled.num_vertices
        self.heard: List[int] = [0] * n
        self.acc: List[Tuple[int, int]] = [(0, 0)] * n
        self.fired: List[bool] = [False] * n
        self.got: List[bool] = [False] * n
        self.in_degree: List[int] = [view.in_degree for view in compiled.views]
        self.port_exponents = _split_exponent_table(self.out_degree)

    def initial_emissions(self, root: int) -> List[Tuple[int, Any, int]]:
        if self.out_degree[root] < 1:
            from .tree_broadcast import pow2_split_exponents

            pow2_split_exponents(self.out_degree[root])  # raises, as reference
        pb = self.payload_bits
        return [
            (port, (1, inc), _dcost(1, inc) + pb)
            for port, inc in enumerate(self.port_exponents[root])
        ]

    def deliver(self, vertex: int, in_port: int, value: Tuple[int, int]):
        heard = self.heard[vertex] + 1
        self.heard[vertex] = heard
        an, ae = self.acc[vertex]
        an, ae = _add(an, ae, value[0], value[1])
        self.acc[vertex] = (an, ae)
        self.got[vertex] = True
        if (
            heard == self.in_degree[vertex]
            and self.out_degree[vertex] > 0
            and not self.fired[vertex]
        ):
            self.fired[vertex] = True
            pb = self.payload_bits
            out = []
            for port, inc in enumerate(self.port_exponents[vertex]):
                on, oe = _norm(an, ae + inc)
                out.append((port, (on, oe), _dcost(on, oe) + pb))
            return out
        return ()

    def check_terminal(self, terminal: int) -> bool:
        return self.acc[terminal] == (1, 0)

    def finalize_states(self) -> Dict[int, Any]:
        from .dag_broadcast import DagState
        from .dyadic import Dyadic

        payload = self.protocol.broadcast_payload
        states: Dict[int, Any] = {}
        for v, (num, exp) in enumerate(self.acc):
            got = self.got[v]
            states[v] = DagState(
                heard=self.heard[v],
                acc=Dyadic(num, exp),
                got_broadcast=got,
                payload=payload if got else None,
                fired=self.fired[v],
            )
        return states

    def snapshot(self) -> Tuple:
        return (
            tuple(self.heard),
            tuple(self.acc),
            tuple(self.fired),
            tuple(self.got),
        )

    def restore(self, snap: Tuple) -> None:
        self.heard = list(snap[0])
        self.acc = list(snap[1])
        self.fired = list(snap[2])
        self.got = list(snap[3])


class NaiveTreeKernel(FlatKernel):
    """Flat machine for the naive ``x/d`` rational split (ablation E9).

    Commodity values are exact rationals kept as reduced ``(num, den)``
    int pairs — the same canonical form :class:`~fractions.Fraction`
    maintains, so encoded sizes (zig-zag numerator + unsigned denominator)
    agree bit for bit.
    """

    __slots__ = ("sums", "got")

    def __init__(self, protocol: Any, compiled: Any) -> None:
        super().__init__(protocol, compiled)
        n = compiled.num_vertices
        self.sums: List[Tuple[int, int]] = [(0, 1)] * n
        self.got: List[bool] = [False] * n

    def initial_emissions(self, root: int) -> List[Tuple[int, Any, int]]:
        d = self.out_degree[root]
        share = Fraction(1, d)  # raises ZeroDivisionError exactly as reference
        value = (share.numerator, share.denominator)
        pb = self.payload_bits
        bits = _scost(value[0]) + _ucost(value[1]) + pb
        return [(port, value, bits) for port in range(d)]

    def deliver(self, vertex: int, in_port: int, value: Tuple[int, int]):
        vn, vd = value
        sn, sd = self.sums[vertex]
        num = sn * vd + vn * sd
        den = sd * vd
        g = gcd(num, den)
        self.sums[vertex] = (num // g, den // g)
        self.got[vertex] = True
        d = self.out_degree[vertex]
        if d == 0:
            return ()
        sden = vd * d
        g = gcd(vn, sden)
        share = (vn // g, sden // g)
        pb = self.payload_bits
        bits = _scost(share[0]) + _ucost(share[1]) + pb
        return [(port, share, bits) for port in range(d)]

    def check_terminal(self, terminal: int) -> bool:
        return self.sums[terminal] == (1, 1)

    def finalize_states(self) -> Dict[int, Any]:
        from ..baselines.naive_tree import NaiveTreeState

        payload = self.protocol.broadcast_payload
        return {
            v: NaiveTreeState(
                received_sum=Fraction(num, den),
                got_broadcast=got,
                payload=payload if got else None,
            )
            for v, ((num, den), got) in enumerate(zip(self.sums, self.got))
        }

    def snapshot(self) -> Tuple:
        return (tuple(self.sums), tuple(self.got))

    def restore(self, snap: Tuple) -> None:
        self.sums = list(snap[0])
        self.got = list(snap[1])


class FloodingKernel(FlatKernel):
    """Flat machine for the no-termination flooding baseline.

    The entire per-vertex state is one receipt bit; messages carry no
    termination information at all, so every emission list is precomputed
    at compile time and shared per out-degree.
    """

    __slots__ = ("got", "vertex_emissions")

    def __init__(self, protocol: Any, compiled: Any) -> None:
        super().__init__(protocol, compiled)
        n = compiled.num_vertices
        self.got: List[bool] = [False] * n
        bits = 1 + self.payload_bits
        cache: Dict[int, List[Tuple[int, Any, int]]] = {}
        self.vertex_emissions: List[List[Tuple[int, Any, int]]] = []
        for d in self.out_degree:
            if d not in cache:
                cache[d] = [(port, None, bits) for port in range(d)]
            self.vertex_emissions.append(cache[d])

    def initial_emissions(self, root: int) -> List[Tuple[int, Any, int]]:
        return self.vertex_emissions[root]

    def deliver(self, vertex: int, in_port: int, message: Any):
        if self.got[vertex]:
            return ()
        self.got[vertex] = True
        return self.vertex_emissions[vertex]

    def check_terminal(self, terminal: int) -> bool:
        # No sound stopping rule exists without termination information —
        # the honest constant-false predicate, exactly as the reference.
        return False

    def finalize_states(self) -> Dict[int, Any]:
        from ..baselines.flooding import FloodState

        payload = self.protocol.broadcast_payload
        return {
            v: FloodState(got_broadcast=got, payload=payload if got else None)
            for v, got in enumerate(self.got)
        }

    def snapshot(self) -> Tuple:
        return (tuple(self.got),)

    def restore(self, snap: Tuple) -> None:
        self.got = list(snap[0])
