"""Broadcasting over general directed graphs (Section 4, Theorems 4.2–4.3).

This is the paper's main protocol.  The scalar commodity of Sections 3.1–3.3
cannot cope with cycles (a scalar arriving twice is indistinguishable from
fresh commodity), so the commodity becomes *uniquely identifiable*: subsets
of the unit interval ``[0, 1)`` represented as
:class:`~repro.core.intervals.IntervalUnion`.

**State.**  A vertex of out-degree ``d`` holds ``π = (ᾱ, β)`` where
``α_j ∈ U[0,1)`` is everything it has ever sent on out-port ``j`` and
``β ∈ U[0,1)`` is cycle information.  The paper's *state-monotonicity*
property — states only grow over time — holds structurally here and is
asserted by the property tests.

**Transition** on receiving ``σ = (α', β')`` on in-port ``i``:

* first message ever (``π = π₀``): ``ᾱ''`` is the *canonical partition* of
  ``α'`` into ``d`` parts (Δ-split of the first component interval into
  ``d-1`` parts; the remaining component intervals form the ``d``-th part),
  and ``β'' = β'``.  A vertex thus performs interval splitting **once** in
  its lifetime, which caps endpoint representations at ``O(|V| log d_out)``
  bits (Theorem 4.3).
* subsequently: ``α''_j = α_j`` for ``j < d`` (frozen), the last port
  absorbs all new commodity — ``α''_d = (α' ∪ α_d) \\ ⋃_{j<d} α_j`` — and
  every point of ``α'`` that this vertex has *already sent* is a witness of a
  directed cycle and moves to β: ``β'' = β' ∪ β ∪ ⋃_j (α' ∩ α_j)``.

**Messages.**  On out-port ``j`` the vertex sends ``(α''_j \\ α_j, β'' \\ β)``
— i.e. exactly the *increments*; nothing is sent when both increments are
empty.  β-increments flood on **all** ports, which is how cycle notifications
reach the terminal.

**Termination.**  ``S(π) = 1`` iff the terminal has seen, between α and β,
the entire unit interval: ``α ∪ β = [0, 1)``.  Every point ``a ∈ [0,1)`` is
α-carried along a single growing path (``G_T(a)`` in the paper's proof) that
either reaches ``t`` or closes a cycle — in which case the closing vertex
β-floods it to ``t``.  If some vertex is not connected to ``t``, a point gets
stuck on a path ending at an unvisited vertex, is never β-carried (β entries
require a cycle), and the terminal never covers ``[0, 1)`` — the protocol
correctly never terminates.

The label-assignment protocol of Section 5 is a small variation (each vertex
retains a slice of the commodity as its identity); it is implemented in
:mod:`repro.core.labeling` by subclassing the machinery here with
``reserve_label=True``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .intervals import (
    EMPTY_UNION,
    UNIT_UNION,
    IntervalUnion,
    canonical_partition,
    canonical_partition_literal,
    union_cost,
)
from .messages import IntervalMessage
from .model import AnonymousProtocol, Emission, VertexView
from ..api.registry import PROTOCOLS

__all__ = ["GeneralState", "GeneralBroadcastProtocol"]


class GeneralState:
    """Mutable per-vertex state ``π = (ᾱ, β)`` plus bookkeeping caches.

    Attributes
    ----------
    virgin:
        True until the first message is processed (the paper's ``π = π₀``
        test).
    alphas:
        ``α_j`` per out-port.  After the first message only the last entry
        ever changes.
    beta:
        The β interval-union.
    label:
        The retained label ``α₀`` (labeling protocol only, else ``None``).
    alpha_acc:
        For out-degree-0 vertices (the terminal and dead ends, which have no
        ``ᾱ``): the union of every α received — the α side of the stopping
        predicate.
    frozen_union:
        Cache of ``label ∪ α_1 ∪ … ∪ α_{d-1}`` (everything except the last
        port), fixed after the first message.
    coverage:
        Cache of ``frozen_union ∪ α_d`` — every point this vertex has ever
        routed; incoming α points already in it are cycle witnesses.
    got_broadcast / payload:
        Receipt of the broadcast message ``m``.
    """

    __slots__ = (
        "virgin",
        "alphas",
        "beta",
        "label",
        "alpha_acc",
        "frozen_union",
        "coverage",
        "got_broadcast",
        "payload",
    )

    def __init__(self, out_degree: int) -> None:
        self.virgin = True
        self.alphas: List[IntervalUnion] = [EMPTY_UNION] * out_degree
        self.beta: IntervalUnion = EMPTY_UNION
        self.label: Optional[IntervalUnion] = None
        self.alpha_acc: IntervalUnion = EMPTY_UNION
        self.frozen_union: IntervalUnion = EMPTY_UNION
        self.coverage: IntervalUnion = EMPTY_UNION
        self.got_broadcast = False
        self.payload: Any = None

    def covered(self) -> IntervalUnion:
        """``α ∪ β`` as seen by this vertex (the stopping-predicate quantity
        for out-degree-0 vertices; diagnostic elsewhere)."""
        if self.alphas:
            return self.coverage.union(self.beta)
        return self.alpha_acc.union(self.beta)

    def clone(self) -> "GeneralState":
        """An independent copy sharing the immutable interval unions.

        Only ``alphas`` is ever mutated in place (last-port absorption);
        every :class:`IntervalUnion` is immutable, so a shallow list copy
        plus field copies is a full state fork — the cheap substitute for
        ``copy.deepcopy`` in schedule-tree branching.
        """
        clone = GeneralState.__new__(GeneralState)
        clone.virgin = self.virgin
        clone.alphas = list(self.alphas)
        clone.beta = self.beta
        clone.label = self.label
        clone.alpha_acc = self.alpha_acc
        clone.frozen_union = self.frozen_union
        clone.coverage = self.coverage
        clone.got_broadcast = self.got_broadcast
        clone.payload = self.payload
        return clone

    def __repr__(self) -> str:
        # Complete by design: the schedule-exploration harness uses reprs as
        # state fingerprints, so every behaviour-relevant field must appear.
        return (
            f"GeneralState(virgin={self.virgin}, alphas={self.alphas!r}, "
            f"beta={self.beta!r}, label={self.label!r}, "
            f"alpha_acc={self.alpha_acc!r}, got={self.got_broadcast})"
        )


@PROTOCOLS.register()
class GeneralBroadcastProtocol(AnonymousProtocol[GeneralState, IntervalMessage]):
    """The Section 4 interval-union broadcast protocol.

    Parameters
    ----------
    broadcast_payload:
        The message ``m`` delivered to every vertex.
    payload_bits:
        Bits charged per transmission for ``m`` (default ``8·len(m)`` for
        ``str``/``bytes``, else 0).
    reserve_label:
        Internal switch used by the Section 5 labeling subclass: partition
        into ``d+1`` parts, retain slot 0 as the vertex label, and β-account
        the retained slice immediately.  Leave ``False`` for plain broadcast.
    partition_rule:
        ``"repaired"`` (default) uses the canonical partition with the
        single-component erratum repaired (every part non-empty); see
        :func:`repro.core.intervals.canonical_partition`.  ``"literal"`` uses
        the rule exactly as printed in Section 4, which demonstrably breaks
        delivery and the termination "iff" — kept for the erratum
        experiments only.
    """

    name = "general-broadcast"

    def __init__(
        self,
        broadcast_payload: Any = None,
        payload_bits: Optional[int] = None,
        *,
        reserve_label: bool = False,
        partition_rule: str = "repaired",
    ) -> None:
        self.broadcast_payload = broadcast_payload
        if payload_bits is None:
            if isinstance(broadcast_payload, (str, bytes)):
                payload_bits = 8 * len(broadcast_payload)
            else:
                payload_bits = 0
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
        self.payload_bits = payload_bits
        self._reserve_label = reserve_label
        if partition_rule == "repaired":
            self._partition = canonical_partition
        elif partition_rule == "literal":
            self._partition = canonical_partition_literal
        else:
            raise ValueError("partition_rule must be 'repaired' or 'literal'")
        self.partition_rule = partition_rule

    # ------------------------------------------------------------------
    # AnonymousProtocol interface
    # ------------------------------------------------------------------

    def create_state(self, view: VertexView) -> GeneralState:
        return GeneralState(view.out_degree)

    def initial_emissions(self, view: VertexView) -> List[Emission]:
        """The root's σ₀: the whole unit interval, canonically partitioned.

        In the strict model the root has one out-edge and σ₀ = ([0,1), ∅).
        With ``reserve_label`` the root keeps slot 0 of a ``d+1`` partition as
        its own label and β-accounts it in the initial messages so the
        terminal's unit-coverage test still closes.
        """
        d = view.out_degree
        if self._reserve_label:
            parts = self._partition(UNIT_UNION, d + 1)
            root_label, port_parts = parts[0], parts[1:]
            beta0 = root_label
        else:
            port_parts = self._partition(UNIT_UNION, d)
            beta0 = EMPTY_UNION
        return [
            (port, IntervalMessage(alpha=part, beta=beta0, payload=self.broadcast_payload))
            for port, part in enumerate(port_parts)
            if not (part.is_empty() and beta0.is_empty())
        ]

    def on_receive(
        self, state: GeneralState, view: VertexView, in_port: int, message: IntervalMessage
    ) -> Tuple[GeneralState, List[Emission]]:
        state.got_broadcast = True
        state.payload = message.payload
        d = view.out_degree

        if d == 0:
            # Terminal or dead end: no ᾱ — accumulate for the stopping test.
            state.alpha_acc = state.alpha_acc.union(message.alpha)
            state.beta = state.beta.union(message.beta)
            if state.virgin and not message.alpha.is_empty():
                state.virgin = False
                if self._reserve_label and state.label is None:
                    # The terminal adopts its first non-empty α as its label
                    # (an extension hook; see labeling module docs).
                    # Retention at t removes nothing from the accounting
                    # since t forwards nothing.
                    state.label = message.alpha
            return state, []

        if state.virgin:
            if message.alpha.is_empty():
                # Second erratum repair (schedule robustness): a β-only
                # message must NOT consume the vertex's one-time canonical
                # partition — otherwise, under schedules where cycle
                # notifications overtake commodity, the vertex would waste
                # its partition on ∅ (no label in Section 5, and all later
                # commodity funnelled through the absorber port, breaking
                # the termination "iff" exactly as in the first erratum).
                # The vertex stays "virgin" until real commodity arrives and
                # meanwhile floods the β increment like any non-virgin
                # vertex.
                delta_beta = message.beta.difference(state.beta)
                state.beta = state.beta.union(message.beta)
                if delta_beta.is_empty():
                    return state, []
                emissions = [
                    (port, IntervalMessage(alpha=EMPTY_UNION, beta=delta_beta, payload=message.payload))
                    for port in range(d)
                ]
                return state, emissions
            return self._first_receipt(state, d, message)
        return self._subsequent_receipt(state, d, message)

    def _first_receipt(
        self, state: GeneralState, d: int, message: IntervalMessage
    ) -> Tuple[GeneralState, List[Emission]]:
        """The ``π = π₀`` branch: canonical partition, β pass-through.

        ``state.beta`` may already be non-empty if β-only floods arrived
        before the first commodity (see the virgin branch of
        :meth:`on_receive`), so the β increment is computed against it.
        """
        state.virgin = False
        if self._reserve_label:
            parts = self._partition(message.alpha, d + 1)
            state.label = parts[0]
            state.alphas = parts[1:]
            new_beta = state.beta.union(message.beta).union(parts[0])
        else:
            state.alphas = self._partition(message.alpha, d)
            new_beta = state.beta.union(message.beta)
        delta_beta = new_beta.difference(state.beta)
        state.frozen_union = _union_all(
            ([state.label] if state.label is not None else []) + state.alphas[:-1]
        )
        state.coverage = state.frozen_union.union(state.alphas[-1])
        state.beta = new_beta
        emissions = [
            (port, IntervalMessage(alpha=part, beta=delta_beta, payload=message.payload))
            for port, part in enumerate(state.alphas)
            if not (part.is_empty() and delta_beta.is_empty())
        ]
        return state, emissions

    def _subsequent_receipt(
        self, state: GeneralState, d: int, message: IntervalMessage
    ) -> Tuple[GeneralState, List[Emission]]:
        """The ``π ≠ π₀`` branch: last port absorbs, overlaps go to β."""
        alpha_in = message.alpha
        # Cycle witnesses: points of α' already routed by this vertex.
        overlap = alpha_in.intersection(state.coverage)
        # α''_d = (α' ∪ α_d) \ ⋃_{j<d} α_j ; the increment actually sent is
        # α''_d \ α_d = α' \ (everything already routed).
        delta_alpha_last = alpha_in.difference(state.coverage)
        new_beta = state.beta.union(message.beta).union(overlap)
        delta_beta = new_beta.difference(state.beta)

        if not delta_alpha_last.is_empty():
            new_last = state.alphas[-1].union(delta_alpha_last)
            state.alphas[-1] = new_last
            state.coverage = state.coverage.union(delta_alpha_last)
        state.beta = new_beta

        emissions: List[Emission] = []
        if not delta_beta.is_empty():
            for port in range(d - 1):
                emissions.append(
                    (port, IntervalMessage(alpha=EMPTY_UNION, beta=delta_beta, payload=message.payload))
                )
        if not (delta_alpha_last.is_empty() and delta_beta.is_empty()):
            emissions.append(
                (d - 1, IntervalMessage(alpha=delta_alpha_last, beta=delta_beta, payload=message.payload))
            )
        return state, emissions

    def is_terminated(self, state: GeneralState) -> bool:
        return state.covered().is_unit()

    def message_bits(self, message: IntervalMessage) -> int:
        return message.structure_bits() + self.payload_bits

    def output(self, state: GeneralState) -> Any:
        return state.payload

    def state_bits(self, state: GeneralState) -> int:
        total = union_cost(state.beta)
        for alpha in state.alphas:
            total += union_cost(alpha)
        total += union_cost(state.alpha_acc)
        if state.label is not None:
            total += union_cost(state.label)
        return total

    def clone_state(self, state: GeneralState) -> GeneralState:
        return state.clone()

    def clone_message(self, message: IntervalMessage) -> IntervalMessage:
        # Frozen dataclass over immutable unions; never mutated on receive.
        return message

    def compile_fastpath(self, compiled: Any) -> Optional[Any]:
        """Flat-state kernel for the fast-path engine (exact same semantics).

        Guarded by an exact type check: a subclass that overrides behaviour
        would silently diverge from the kernel, so unknown subclasses fall
        back to the engine's generic machine (always correct).
        """
        if type(self) is not GeneralBroadcastProtocol:
            return None
        from .interval_kernel import IntervalKernel

        return IntervalKernel(
            self,
            compiled,
            reserve_label=self._reserve_label,
            root_plain=False,
            d0_plain=False,
        )


def _union_all(unions: List[IntervalUnion]) -> IntervalUnion:
    """Union of a list of interval-unions."""
    out = EMPTY_UNION
    for u in unions:
        out = out.union(u)
    return out
