"""Unique label assignment on general graphs (Section 5, Theorem 5.1).

A "slight variation" of the general broadcast protocol: on its first message
a vertex of out-degree ``d`` canonically partitions the incoming commodity
into ``d + 1`` parts instead of ``d``; the extra slot ``α₀`` is **retained as
the vertex's unique label**, and — so the terminal's unit-coverage test still
closes — the retained slice is immediately added to β (``β'' = β' ∪ α₀``)
and flooded like any other cycle information.  Everything else (last-port
absorption, overlap-to-β, β flooding, the ``α ∪ β = [0,1)`` stopping rule) is
inherited unchanged from :class:`~repro.core.general_broadcast.GeneralBroadcastProtocol`.

Why labels are unique: a point ``a ∈ [0,1)`` travels, on the α side, along a
single path; a vertex that retains an interval containing ``a`` removes it
from circulation forever (retained slices are never forwarded), so no two
vertices can retain overlapping intervals — disjoint non-empty intervals are
distinct labels.  Theorem 5.1 bounds each label by ``O(|V| log d_out)`` bits
(a label is a single interval whose endpoints were refined once per vertex
on the path from the root); Theorem 5.2 shows this is *tight*, an exponential
gap against the ``O(log |V|)`` achievable in undirected or strongly connected
anonymous networks — see :mod:`repro.lowerbounds.labels` and the baseline in
:mod:`repro.baselines.undirected_labeling`.

Endpoint labels: the paper leaves the root and terminal unlabeled (the
protocol's purpose is to label the anonymous *internal* vertices; ``s`` and
``t`` are already distinguished).  ``label_endpoints=True`` additionally has
the root retain a slice of ``[0,1)`` before injecting and the terminal adopt
the first α it receives; both preserve pairwise disjointness.  This mode is
an extension, marked as such in DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .general_broadcast import GeneralBroadcastProtocol, GeneralState
from .intervals import IntervalUnion
from .model import VertexView
from ..api.registry import PROTOCOLS

__all__ = ["LabelAssignmentProtocol", "extract_labels", "labels_pairwise_disjoint"]


@PROTOCOLS.register()
class LabelAssignmentProtocol(GeneralBroadcastProtocol):
    """The Section 5 unique-labeling protocol.

    Parameters
    ----------
    broadcast_payload / payload_bits:
        As in the broadcast protocol; label assignment subsumes broadcasting
        (the paper's protocol carries ``m`` too), so a payload may be
        attached.  The paper's headline complexity for labeling alone
        corresponds to ``payload_bits=0``.
    label_endpoints:
        Also assign labels to the root and terminal (extension; see module
        docs).  Default ``False`` — the paper's setting.
    """

    name = "label-assignment"

    def __init__(
        self,
        broadcast_payload: Any = None,
        payload_bits: Optional[int] = None,
        *,
        label_endpoints: bool = False,
        partition_rule: str = "repaired",
    ) -> None:
        super().__init__(
            broadcast_payload,
            payload_bits,
            reserve_label=True,
            partition_rule=partition_rule,
        )
        self.label_endpoints = label_endpoints

    def initial_emissions(self, view: VertexView):
        if not self.label_endpoints:
            # Paper setting: the root injects the full unit interval and
            # takes no label — behave like the plain broadcast root.
            plain = GeneralBroadcastProtocol(
                self.broadcast_payload,
                self.payload_bits,
                reserve_label=False,
                partition_rule=self.partition_rule,
            )
            return plain.initial_emissions(view)
        return super().initial_emissions(view)

    def on_receive(self, state: GeneralState, view: VertexView, in_port: int, message):
        if view.out_degree == 0 and not self.label_endpoints:
            # Paper setting: the terminal takes no label; suppress the
            # adopt-first-alpha hook of the base class.
            state.got_broadcast = True
            state.payload = message.payload
            state.alpha_acc = state.alpha_acc.union(message.alpha)
            state.beta = state.beta.union(message.beta)
            state.virgin = False
            return state, []
        return super().on_receive(state, view, in_port, message)

    def compile_fastpath(self, compiled):
        """Kernel with the paper-setting root/terminal overrides applied."""
        if type(self) is not LabelAssignmentProtocol:
            return None
        from .interval_kernel import IntervalKernel

        plain = not self.label_endpoints
        return IntervalKernel(
            self,
            compiled,
            reserve_label=True,
            root_plain=plain,
            d0_plain=plain,
        )


def extract_labels(states: Dict[int, GeneralState]) -> Dict[int, IntervalUnion]:
    """Collect the assigned labels from a finished run's vertex states.

    Returns a map from simulator vertex id to the retained label
    interval-union, for every vertex that holds one.  (White-box helper for
    experiments and tests; the protocol itself never aggregates labels — each
    anonymous vertex knows only its own.)
    """
    return {
        vertex: state.label
        for vertex, state in states.items()
        if state.label is not None and not state.label.is_empty()
    }


def labels_pairwise_disjoint(labels) -> bool:
    """True iff the given label interval-unions are pairwise disjoint.

    Disjointness is exactly what makes the labels *unique identifiers*
    (Theorem 5.1): disjoint non-empty subsets of ``[0, 1)`` are distinct.
    Runs in ``O(k log k)`` by sweeping all component intervals in endpoint
    order instead of intersecting all pairs.
    """
    component_intervals = []
    for owner, label in enumerate(labels):
        for interval in label:
            component_intervals.append((interval.lo, interval.hi))
    component_intervals.sort(key=lambda item: item[0].as_fraction())
    max_hi = None
    for lo, hi in component_intervals:
        # Components within one union are canonically disjoint, so any
        # overlap found by the sweep is necessarily cross-owner.
        if max_hi is not None and lo < max_hi:
            return False
        if max_hi is None or hi > max_hi:
            max_hi = hi
    return True
