"""Trace capture, sampling, profiling and deterministic replay.

The in-memory :class:`~repro.network.trace.Trace` answers the paper's
symbol-level questions (Theorem 3.2's ``|Σ_G|`` counts, the Lemma 3.5–3.7
cut multisets) for one run at a time, but it cannot survive a large
campaign, be sampled, or be replayed.  This package is the durable form
of the same information:

* :mod:`~repro.tracing.format` — the ``.rtrace`` columnar file format:
  a :class:`~repro.tracing.format.TraceWriter` streaming
  ``(step, edge, vertex, kind, bits, payload)`` event records into flat
  numpy column blocks with bounded memory, and a
  :class:`~repro.tracing.format.TraceReader` with lazy column loading.
* :mod:`~repro.tracing.sampler` — reproducible keep-1-in-``k`` event
  selection, deterministic given ``(spec, seed, k)`` and independent of
  the executing engine.
* :mod:`~repro.tracing.capture` — the engine-side sink: wiring from
  :attr:`~repro.api.spec.RunSpec.trace` policies to ``.rtrace``
  artifacts keyed by ``(spec_id, seed, engine)``.
* :mod:`~repro.tracing.profiler` — per-protocol histograms
  (message-size distribution, per-edge counts, per-vertex load,
  deferral depth) from traces, full or sampled.
* :mod:`~repro.tracing.replay` — deterministic re-execution of a
  recorded run under a :class:`~repro.tracing.replay.ReplayScheduler`,
  verifying the recording bit for bit.

See ``docs/TRACING.md`` for the format specification and the replay
contract.
"""

from .capture import (
    TRACE_DIR_ENV,
    TraceCapture,
    capture_traces,
    open_capture,
    trace_artifact_path,
    workload_id,
)
from .format import (
    FORMAT_VERSION,
    KIND_DEFER,
    KIND_DELIVER,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    canonical_repr,
)
from .policy import TracePolicyError, normalize_policy, sample_k
from .profiler import TraceProfile, TraceProfiler
from .replay import ReplayError, ReplayReport, ReplayScheduler, replay_trace
from .sampler import TraceSampler

__all__ = [
    "TRACE_DIR_ENV",
    "FORMAT_VERSION",
    "KIND_DELIVER",
    "KIND_DEFER",
    "TraceCapture",
    "TraceFormatError",
    "TracePolicyError",
    "TraceProfile",
    "TraceProfiler",
    "TraceReader",
    "TraceSampler",
    "TraceWriter",
    "ReplayError",
    "ReplayReport",
    "ReplayScheduler",
    "canonical_repr",
    "capture_traces",
    "normalize_policy",
    "open_capture",
    "replay_trace",
    "sample_k",
    "trace_artifact_path",
    "workload_id",
]
