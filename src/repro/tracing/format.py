"""The ``.rtrace`` columnar trace file format.

One event record per delivery (or fault deferral), stored as flat numpy
int columns — the SoA layout of :mod:`repro.core.batch_kernel` applied to
traces.  The file is a small framed binary container::

    preamble   b"RTRACE" + format version (uint16 LE)
    H frame    header JSON: workload identity, engine-neutral spec dict,
               trace policy, column names and dtypes
    C frame*   column blocks: uint32 subheader length + subheader JSON
               ({"count": n, "sizes": {column: nbytes}}) + the raw little-
               endian column bytes, in header column order
    I frame    payload intern table JSON: canonical payload strings and
               their blake2b digests, in intern-id order
    F frame    footer JSON: event counts, a sha256 over every preceding
               byte (tamper detection), and the run's verification summary
               (outcome, metrics, final-states digest)

    frame := kind (1 byte: H/C/I/F) + payload length (uint64 LE) + payload

Columns are ``(step, edge, vertex, kind, bits, payload)``; ``payload`` is
an intern-table id, so repeated symbols cost 4 bytes per event no matter
how large the message object is, and ``kind`` distinguishes deliveries
from fault deferrals.  The :class:`TraceWriter` buffers a bounded number
of events (``chunk_events``) before flushing a column block, so memory
stays flat for arbitrarily long runs; the :class:`TraceReader` records
block offsets on open and loads columns lazily on first access.

Everything in the file is deterministic — no timestamps, no engine name,
no machine identity — so the async and fastpath engines produce
**byte-identical** files for the same run (proven by
``tests/tracing/test_differential.py``).  Set-like Python objects have
hash-order-dependent ``repr``; :func:`canonical_repr` therefore sorts
containers recursively before hashing payloads or states, keeping digests
stable across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import struct
from typing import Any, BinaryIO, Dict, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "COLUMNS",
    "DTYPES",
    "KIND_DELIVER",
    "KIND_DEFER",
    "TraceFormatError",
    "TraceWriter",
    "TraceReader",
    "canonical_repr",
    "payload_digest",
    "states_digest",
]

MAGIC = b"RTRACE"
FORMAT_VERSION = 1

#: Event kinds in the ``kind`` column.
KIND_DELIVER = 0
KIND_DEFER = 1

#: Column order inside every column block.
COLUMNS: Tuple[str, ...] = ("step", "edge", "vertex", "kind", "bits", "payload")

#: Little-endian dtypes per column (``bits`` is wide: total-bit counts of
#: large mapping payloads exceed 32 bits in theory if not in practice).
DTYPES: Dict[str, str] = {
    "step": "<i8",
    "edge": "<i4",
    "vertex": "<i4",
    "kind": "<i1",
    "bits": "<i8",
    "payload": "<i4",
}

_PREAMBLE = struct.Struct("<6sH")
_FRAME_HEAD = struct.Struct("<cQ")
_SUBHEAD_LEN = struct.Struct("<I")


class TraceFormatError(ValueError):
    """A ``.rtrace`` file is malformed, truncated, or version-mismatched."""


def canonical_repr(obj: Any) -> str:
    """A process-independent ``repr``: container contents are sorted.

    ``repr`` of sets and dicts depends on hash order, which varies across
    processes (``PYTHONHASHSEED``); digests built on it would break the
    cross-run replay contract.  This walks containers and dataclasses
    recursively and sorts the unordered ones, so equal values always
    canonicalise to equal strings.
    """
    if isinstance(obj, dict):
        items = sorted(
            (canonical_repr(k), canonical_repr(v)) for k, v in obj.items()
        )
        return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
    if isinstance(obj, (set, frozenset)):
        name = "frozenset" if isinstance(obj, frozenset) else "set"
        return name + "{" + ", ".join(sorted(canonical_repr(x) for x in obj)) + "}"
    if isinstance(obj, tuple):
        inner = ", ".join(canonical_repr(x) for x in obj)
        return "(" + inner + ("," if len(obj) == 1 else "") + ")"
    if isinstance(obj, list):
        return "[" + ", ".join(canonical_repr(x) for x in obj) + "]"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        inner = ", ".join(
            f"{f.name}={canonical_repr(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__name__}({inner})"
    return repr(obj)


def payload_digest(canonical: str) -> str:
    """Short stable digest of one canonical payload string."""
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


def states_digest(states: Dict[int, Any]) -> str:
    """Canonical digest of a run's final per-vertex states.

    The footer stores this so :func:`~repro.tracing.replay.replay_trace`
    can verify "this exact execution still produces these exact states"
    without serialising arbitrary state objects.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for vertex in sorted(states):
        hasher.update(f"{vertex}:{canonical_repr(states[vertex])};".encode("utf-8"))
    return hasher.hexdigest()


class TraceWriter:
    """Streaming ``.rtrace`` writer with bounded memory.

    ``destination`` is a path or a writable binary file-like object; a
    path is opened (and closed) by the writer.  ``header`` carries the
    caller's identity fields (workload id, spec dict, policy); the format
    fields (version, columns, dtypes) are added here.  Events accumulate
    in plain-list column buffers and flush to a numpy column block every
    ``chunk_events`` events, so a million-delivery run holds at most one
    chunk in memory.
    """

    def __init__(
        self,
        destination: Union[str, BinaryIO],
        *,
        header: Dict[str, Any],
        chunk_events: int = 65536,
    ) -> None:
        if chunk_events < 1:
            raise ValueError("chunk_events must be >= 1")
        self._owns_file = isinstance(destination, str)
        self._file: BinaryIO = (
            open(destination, "wb") if isinstance(destination, str) else destination
        )
        self._chunk_events = chunk_events
        self._sha = hashlib.sha256()
        self._bytes = 0
        self._events_written = 0
        self._closed = False
        # payload intern table: object -> id, with a canonical-string
        # fallback for the (documented-away) unhashable case
        self._intern_by_object: Dict[Any, int] = {}
        self._intern_by_text: Dict[str, int] = {}
        self._payloads: List[str] = []
        self._digests: List[str] = []
        self._col_step: List[int] = []
        self._col_edge: List[int] = []
        self._col_vertex: List[int] = []
        self._col_kind: List[int] = []
        self._col_bits: List[int] = []
        self._col_payload: List[int] = []

        self._write(_PREAMBLE.pack(MAGIC, FORMAT_VERSION))
        full_header = dict(header)
        full_header.setdefault("format", "rtrace")
        full_header.setdefault("version", FORMAT_VERSION)
        full_header["columns"] = list(COLUMNS)
        full_header["dtypes"] = dict(DTYPES)
        self._write_frame(b"H", _json_bytes(full_header))

    # ------------------------------------------------------------------
    # low-level output
    # ------------------------------------------------------------------

    def _write(self, data: bytes) -> None:
        self._file.write(data)
        self._sha.update(data)
        self._bytes += len(data)

    def _write_frame(self, kind: bytes, payload: bytes) -> None:
        self._write(_FRAME_HEAD.pack(kind, len(payload)))
        self._write(payload)

    @property
    def bytes_written(self) -> int:
        """Bytes emitted so far (the whole file once finalized)."""
        return self._bytes

    @property
    def events_written(self) -> int:
        return self._events_written

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def intern(self, payload: Any) -> int:
        """Intern one payload object; returns its table id.

        The canonical string (and its digest) is computed once per
        *distinct* payload — repeated symbols, the overwhelmingly common
        case in broadcast traces, cost one dict lookup.
        """
        try:
            cached = self._intern_by_object.get(payload)
        except TypeError:  # unhashable payload: fall back to its text
            text = canonical_repr(payload)
            cached = self._intern_by_text.get(text)
            if cached is None:
                cached = self._add_payload(text)
                self._intern_by_text[text] = cached
            return cached
        if cached is None:
            text = canonical_repr(payload)
            cached = self._intern_by_text.get(text)
            if cached is None:
                cached = self._add_payload(text)
                self._intern_by_text[text] = cached
            self._intern_by_object[payload] = cached
        return cached

    def _add_payload(self, text: str) -> int:
        self._payloads.append(text)
        self._digests.append(payload_digest(text))
        return len(self._payloads) - 1

    def append(
        self,
        step: int,
        edge: int,
        vertex: int,
        kind: int,
        bits: int,
        payload_id: int,
    ) -> None:
        """Record one event (``payload_id`` from :meth:`intern`, or -1)."""
        self._col_step.append(step)
        self._col_edge.append(edge)
        self._col_vertex.append(vertex)
        self._col_kind.append(kind)
        self._col_bits.append(bits)
        self._col_payload.append(payload_id)
        self._events_written += 1
        if len(self._col_step) >= self._chunk_events:
            self._flush_block()

    def _flush_block(self) -> None:
        if not self._col_step:
            return
        arrays = {
            "step": np.asarray(self._col_step, dtype=DTYPES["step"]),
            "edge": np.asarray(self._col_edge, dtype=DTYPES["edge"]),
            "vertex": np.asarray(self._col_vertex, dtype=DTYPES["vertex"]),
            "kind": np.asarray(self._col_kind, dtype=DTYPES["kind"]),
            "bits": np.asarray(self._col_bits, dtype=DTYPES["bits"]),
            "payload": np.asarray(self._col_payload, dtype=DTYPES["payload"]),
        }
        blobs = [arrays[name].tobytes() for name in COLUMNS]
        subheader = _json_bytes(
            {
                "count": len(self._col_step),
                "sizes": {
                    name: len(blob) for name, blob in zip(COLUMNS, blobs)
                },
            }
        )
        total = _SUBHEAD_LEN.size + len(subheader) + sum(len(b) for b in blobs)
        self._write(_FRAME_HEAD.pack(b"C", total))
        self._write(_SUBHEAD_LEN.pack(len(subheader)))
        self._write(subheader)
        for blob in blobs:
            self._write(blob)
        for buffer in (
            self._col_step,
            self._col_edge,
            self._col_vertex,
            self._col_kind,
            self._col_bits,
            self._col_payload,
        ):
            buffer.clear()

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def finalize(
        self,
        *,
        events_seen: Optional[int] = None,
        result: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Flush buffers, write the intern table and the footer, close.

        ``events_seen`` is the pre-sampling event count (defaults to the
        written count — i.e. an unsampled trace); ``result`` is the run's
        verification summary (outcome, metrics, states digest) that
        replay compares against.  The footer's ``data_sha256`` covers
        every byte written before the footer frame, so any tampering with
        the columns, intern table or header fails closed on read.
        """
        if self._closed:
            raise TraceFormatError("writer already finalized")
        self._flush_block()
        self._write_frame(
            b"I", _json_bytes({"payloads": self._payloads, "digests": self._digests})
        )
        footer = {
            "events_seen": (
                self._events_written if events_seen is None else events_seen
            ),
            "events_written": self._events_written,
            "payload_count": len(self._payloads),
            "data_sha256": self._sha.hexdigest(),
            "result": result,
        }
        self._write_frame(b"F", _json_bytes(footer))
        self.close()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._owns_file:
                self._file.close()
            else:
                self._file.flush()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _Block:
    """One column block's location: payload offset + parsed subheader."""

    __slots__ = ("data_offset", "count", "sizes")

    def __init__(self, data_offset: int, count: int, sizes: Dict[str, int]) -> None:
        self.data_offset = data_offset
        self.count = count
        self.sizes = sizes


class TraceReader:
    """Lazy ``.rtrace`` reader.

    Opening a file scans the frame structure (parsing the small JSON
    frames, *skipping* the column bytes), so open cost is independent of
    trace size; :meth:`column` loads one column across all blocks on
    first access and caches the concatenated array.
    """

    def __init__(self, source: Union[str, BinaryIO]) -> None:
        self._owns_file = isinstance(source, str)
        self._file: BinaryIO = (
            open(source, "rb") if isinstance(source, str) else source
        )
        self._columns: Dict[str, np.ndarray] = {}
        self._blocks: List[_Block] = []
        self.header: Dict[str, Any] = {}
        self.footer: Dict[str, Any] = {}
        self._intern: Dict[str, Any] = {}
        self._footer_offset: Optional[int] = None
        try:
            self._scan()
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # structure scan
    # ------------------------------------------------------------------

    def _read_exact(self, n: int, what: str) -> bytes:
        data = self._file.read(n)
        if len(data) != n:
            raise TraceFormatError(f"truncated trace file: short read in {what}")
        return data

    def _scan(self) -> None:
        self._file.seek(0)
        preamble = self._file.read(_PREAMBLE.size)
        if len(preamble) != _PREAMBLE.size or preamble[: len(MAGIC)] != MAGIC:
            raise TraceFormatError("not an .rtrace file (bad magic)")
        _, version = _PREAMBLE.unpack(preamble)
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported .rtrace format version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        self.version = version
        offset = _PREAMBLE.size
        while True:
            head = self._file.read(_FRAME_HEAD.size)
            if not head:
                break
            if len(head) != _FRAME_HEAD.size:
                raise TraceFormatError("truncated trace file: short frame header")
            kind, length = _FRAME_HEAD.unpack(head)
            offset += _FRAME_HEAD.size
            if kind == b"C":
                sub_len_raw = self._read_exact(_SUBHEAD_LEN.size, "column subheader")
                (sub_len,) = _SUBHEAD_LEN.unpack(sub_len_raw)
                subheader = _parse_json(
                    self._read_exact(sub_len, "column subheader"), "column subheader"
                )
                data_offset = offset + _SUBHEAD_LEN.size + sub_len
                data_len = length - _SUBHEAD_LEN.size - sub_len
                if data_len != sum(subheader["sizes"].values()):
                    raise TraceFormatError("column block sizes do not add up")
                self._blocks.append(
                    _Block(data_offset, subheader["count"], subheader["sizes"])
                )
                self._file.seek(data_offset + data_len)
            elif kind == b"H":
                self.header = _parse_json(self._read_exact(length, "header"), "header")
            elif kind == b"I":
                self._intern = _parse_json(
                    self._read_exact(length, "intern table"), "intern table"
                )
            elif kind == b"F":
                self._footer_offset = offset - _FRAME_HEAD.size
                self.footer = _parse_json(self._read_exact(length, "footer"), "footer")
            else:
                raise TraceFormatError(f"unknown frame kind {kind!r}")
            offset += length
        if not self.header:
            raise TraceFormatError("trace file has no header frame")
        if not self.footer:
            raise TraceFormatError(
                "trace file has no footer frame (recording was interrupted?)"
            )
        if self.num_events != self.footer.get("events_written"):
            raise TraceFormatError(
                f"column blocks hold {self.num_events} events but the footer "
                f"records {self.footer.get('events_written')}"
            )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    @property
    def num_events(self) -> int:
        """Events stored in the file (post-sampling)."""
        return sum(block.count for block in self._blocks)

    @property
    def payloads(self) -> List[str]:
        """The intern table: canonical payload strings in id order."""
        return list(self._intern.get("payloads", []))

    @property
    def payload_digests(self) -> List[str]:
        return list(self._intern.get("digests", []))

    def column(self, name: str) -> np.ndarray:
        """One event column, concatenated across blocks (cached)."""
        if name not in COLUMNS:
            raise KeyError(f"unknown trace column {name!r}; have {COLUMNS}")
        cached = self._columns.get(name)
        if cached is not None:
            return cached
        dtype = np.dtype(DTYPES[name])
        parts: List[np.ndarray] = []
        for block in self._blocks:
            skip = 0
            for col in COLUMNS:
                if col == name:
                    break
                skip += block.sizes[col]
            self._file.seek(block.data_offset + skip)
            raw = self._read_exact(block.sizes[name], f"column {name!r}")
            parts.append(np.frombuffer(raw, dtype=dtype))
        column = (
            np.concatenate(parts) if parts else np.empty(0, dtype=dtype)
        )
        column.setflags(write=False)
        self._columns[name] = column
        return column

    def spec(self):
        """The recorded :class:`~repro.api.spec.RunSpec`.

        The header stores the spec engine-neutrally (the ``engine`` field
        is stripped so both engines write identical bytes); the returned
        spec therefore re-executes on the default ``async`` reference
        engine, which is exactly what replay wants.
        """
        from ..api.spec import RunSpec

        payload = self.header.get("spec")
        if payload is None:
            raise TraceFormatError("trace header carries no spec")
        return RunSpec.from_dict(payload)

    def verify_checksum(self) -> None:
        """Re-hash the data region against the footer's ``data_sha256``.

        Raises :class:`TraceFormatError` on mismatch — a tampered or
        bit-rotted trace must fail closed, never replay "successfully".
        """
        if self._footer_offset is None:
            raise TraceFormatError("trace file has no footer frame")
        recorded = self.footer.get("data_sha256")
        self._file.seek(0)
        hasher = hashlib.sha256()
        remaining = self._footer_offset
        while remaining > 0:
            chunk = self._file.read(min(1 << 20, remaining))
            if not chunk:
                raise TraceFormatError("truncated trace file: data region short")
            hasher.update(chunk)
            remaining -= len(chunk)
        if hasher.hexdigest() != recorded:
            raise TraceFormatError(
                "checksum mismatch: trace data does not match its footer "
                "(corrupted or tampered file)"
            )

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _parse_json(raw: bytes, what: str) -> Dict[str, Any]:
    try:
        parsed = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"malformed {what} frame: {exc}") from None
    if not isinstance(parsed, dict):
        raise TraceFormatError(f"malformed {what} frame: expected an object")
    return parsed
