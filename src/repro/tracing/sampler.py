"""Reproducible keep-1-in-``k`` event selection.

A sampled trace is only comparable across engines and CI runs if both
sides keep *the same events*.  Seeding a PRNG would make the selection
depend on how many times each engine draws — the fault layer already
owns the run's RNG stream — so the sampler is stateless instead: event
``i`` is kept iff a keyed hash of ``(key, k, i)`` lands in the 1-in-``k``
residue class.  The key is the engine-neutral workload id (see
:func:`~repro.tracing.capture.workload_id`), so the decision depends only
on ``(spec, seed, k)`` and the event's position — never on the executing
engine, the process, or ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib

__all__ = ["TraceSampler"]


class TraceSampler:
    """Deterministic 1-in-``k`` selector over a monotone event index.

    >>> s = TraceSampler("deadbeef00000000", 3)
    >>> picks = [i for i in range(30) if s.keep(i)]
    >>> len(picks) > 0 and picks == [i for i in range(30) if s.keep(i)]
    True
    >>> TraceSampler("deadbeef00000000", 1).keep(17)
    True
    """

    __slots__ = ("key", "k", "_prefix")

    def __init__(self, key: str, k: int) -> None:
        if k < 1:
            raise ValueError(f"sampling rate k must be >= 1, got {k}")
        self.key = key
        self.k = k
        self._prefix = f"{key}:{k}:".encode("utf-8")

    def keep(self, index: int) -> bool:
        """Whether event ``index`` (0-based, pre-sampling) is retained."""
        if self.k == 1:
            return True
        digest = hashlib.blake2b(
            self._prefix + str(index).encode("ascii"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % self.k == 0
