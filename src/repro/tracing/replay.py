"""Deterministic replay: a recorded trace as an executable certificate.

``replay_trace(spec, trace)`` re-executes a recording and verifies it bit
for bit.  Two modes, chosen by the recorded policy:

* **scripted** (``full`` traces) — the delivery rows become the schedule:
  a :class:`ReplayScheduler` hands the engine exactly the recorded
  delivery sequence, so the trace itself is the adversary.  This is the
  ROADMAP's "replayable schedule artifact": any full trace — however its
  schedule was originally found — is an independently checkable
  certificate of the execution it claims.
* **re-executed** (``sample:k`` traces) — a sampled trace cannot script
  the gaps, but the run is deterministic given the spec, so the replay
  re-runs it under the spec's own scheduler and samples again.

Either way the replay records itself through a fresh in-memory
:class:`~repro.tracing.capture.TraceCapture` and the two recordings are
compared structurally: header, every column, the payload intern table,
and the footer (event counts, metrics, final-states digest, data
checksum).  Equality of the footer ``data_sha256`` alone implies the
files are byte-identical; the column-level comparison exists to say
*where* a divergence happened, not just that it did.

Fault interplay (why scripted replay stays deterministic): the injector's
RNG is consumed once per emission (``send_copies``) and once per pop
(``should_defer``), and a scripted run performs the same emissions and
the same number of pops with the same in-flight counts as the recording —
so the draw sequence, and therefore every drop/duplicate/defer decision,
reproduces exactly.  Deferral events are content-free in the format
because *which* message a scheduler hands back for deferral differs under
scripting; the decision sequence is the reproducible quantity.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from .capture import TraceCapture, workload_id
from .format import (
    COLUMNS,
    KIND_DELIVER,
    TraceFormatError,
    TraceReader,
    canonical_repr,
)
from .policy import sample_k

__all__ = ["ReplayError", "ReplayReport", "ReplayScheduler", "replay_trace"]


class ReplayError(RuntimeError):
    """Replay cannot proceed: wrong spec, or the execution diverged."""


@dataclass
class ReplayReport:
    """Outcome of one replay verification."""

    ok: bool
    mode: str  # "scripted" | "re-executed"
    policy: str
    workload_id: str
    events_seen: int
    events_written: int
    outcome: Optional[str] = None
    failures: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One line for the CLI."""
        if self.ok:
            return (
                f"REPLAY OK [{self.mode}] workload={self.workload_id} "
                f"policy={self.policy} events={self.events_written}/"
                f"{self.events_seen} outcome={self.outcome}"
            )
        return (
            f"REPLAY FAILED [{self.mode}] workload={self.workload_id}: "
            + "; ".join(self.failures)
        )


class ReplayScheduler:
    """Delivers exactly a recorded delivery sequence.

    The script is the trace's delivery rows: parallel lists of edge ids
    and canonical payload strings.  ``pop`` returns the in-flight message
    matching the next scripted row (earliest send order among equals —
    fault duplicates are interchangeable); a pop the script cannot
    satisfy raises :class:`ReplayError`, which is precisely the
    regression signal ("this executable no longer produces the recorded
    execution").  A fault deferral pushes the popped event object back;
    that re-entry rewinds the script pointer instead of registering a new
    send, so deferral decisions replay at the recorded positions.
    """

    name = "replay"

    def __init__(self, edges: List[int], payload_texts: List[str]) -> None:
        if len(edges) != len(payload_texts):
            raise ValueError("edge and payload scripts must have equal length")
        self._edges = edges
        self._texts = payload_texts
        self._pos = 0
        self._inflight: List[Tuple[Any, str]] = []
        self._last: Optional[Any] = None
        self._last_text = ""

    def bind(self, network: Any) -> None:
        pass

    def push(self, event: Any) -> None:
        if event is self._last:
            # Fault deferral re-entry: the engine is handing back the
            # event it just popped, not sending a new message.
            self._pos -= 1
            self._inflight.append((event, self._last_text))
            self._last = None
            return
        self._inflight.append((event, canonical_repr(event.payload)))

    def pop(self) -> Any:
        if not self._inflight:
            raise IndexError("pop from empty ReplayScheduler")
        if self._pos >= len(self._edges):
            raise ReplayError(
                f"execution diverged: run wants delivery "
                f"#{self._pos + 1} but the recording holds only "
                f"{len(self._edges)} deliveries"
            )
        want_edge = self._edges[self._pos]
        want_text = self._texts[self._pos]
        best = -1
        for i, (event, text) in enumerate(self._inflight):
            if event.edge_id == want_edge and text == want_text:
                if best < 0 or event.seq < self._inflight[best][0].seq:
                    best = i
        if best < 0:
            raise ReplayError(
                f"execution diverged at delivery #{self._pos + 1}: the "
                f"recording expects payload {want_text} on edge "
                f"{want_edge}, but no matching message is in flight"
            )
        event, text = self._inflight.pop(best)
        self._pos += 1
        self._last = event
        self._last_text = text
        return event

    def __len__(self) -> int:
        return len(self._inflight)

    @property
    def script_consumed(self) -> bool:
        """Whether every recorded delivery was replayed."""
        return self._pos == len(self._edges)


def _delivery_script(reader: TraceReader) -> Tuple[List[int], List[str]]:
    kind = np.asarray(reader.column("kind"))
    mask = kind == KIND_DELIVER
    edges = [int(e) for e in np.asarray(reader.column("edge"))[mask]]
    payload_ids = np.asarray(reader.column("payload"))[mask]
    table = reader.payloads
    texts = [table[i] for i in payload_ids]
    return edges, texts


def _compare_recordings(original: TraceReader, replayed: TraceReader) -> List[str]:
    """Structural bit-for-bit comparison; returns human-readable failures."""
    failures: List[str] = []
    if original.header != replayed.header:
        keys = sorted(set(original.header) | set(replayed.header))
        diff = [
            k
            for k in keys
            if original.header.get(k) != replayed.header.get(k)
        ]
        failures.append(f"header differs in field(s): {', '.join(diff)}")
    for name in COLUMNS:
        a = original.column(name)
        b = replayed.column(name)
        if len(a) != len(b):
            failures.append(
                f"column {name!r} length differs: recorded {len(a)}, "
                f"replayed {len(b)}"
            )
        elif not np.array_equal(a, b):
            idx = int(np.flatnonzero(a != b)[0])
            failures.append(
                f"column {name!r} diverges at event {idx}: recorded "
                f"{a[idx]}, replayed {b[idx]}"
            )
    if original.payloads != replayed.payloads:
        failures.append("payload intern tables differ")
    orig_footer, rep_footer = original.footer, replayed.footer
    for key in ("events_seen", "events_written", "payload_count"):
        if orig_footer.get(key) != rep_footer.get(key):
            failures.append(
                f"footer {key} differs: recorded {orig_footer.get(key)}, "
                f"replayed {rep_footer.get(key)}"
            )
    orig_result = orig_footer.get("result") or {}
    rep_result = rep_footer.get("result") or {}
    for key in ("outcome", "terminated", "states_sha256"):
        if orig_result.get(key) != rep_result.get(key):
            failures.append(
                f"result {key} differs: recorded {orig_result.get(key)!r}, "
                f"replayed {rep_result.get(key)!r}"
            )
    orig_metrics = orig_result.get("metrics") or {}
    rep_metrics = rep_result.get("metrics") or {}
    if orig_metrics != rep_metrics:
        keys = sorted(set(orig_metrics) | set(rep_metrics))
        diff = [k for k in keys if orig_metrics.get(k) != rep_metrics.get(k)]
        failures.append(f"metrics differ in field(s): {', '.join(diff)}")
    if not failures and orig_footer.get("data_sha256") != rep_footer.get(
        "data_sha256"
    ):
        # Structurally equal but hash-unequal would mean a format-layer
        # bug; surface it rather than declare victory.
        failures.append("data_sha256 differs despite equal structure")
    return failures


def replay_trace(
    spec: Optional[Any],
    trace: Union[str, TraceReader],
) -> ReplayReport:
    """Re-execute a recording and verify it bit for bit.

    ``spec`` is an optional cross-check: when given, its engine-neutral
    :func:`~repro.tracing.capture.workload_id` must match the recording's
    (a mismatch raises :class:`ReplayError` — replaying against the wrong
    spec is a usage error, not a divergence).  The executed spec always
    comes from the trace header, on the reference ``async`` engine: the
    differential suites prove all engines result-identical, so verifying
    against ``async`` verifies the recording regardless of which engine
    produced it.

    Returns a :class:`ReplayReport`; ``ok=False`` covers both checksum
    tampering and genuine divergence, with the failure list saying which.
    """
    owns_reader = isinstance(trace, str)
    reader = TraceReader(trace) if isinstance(trace, str) else trace
    try:
        return _replay_with_reader(spec, reader)
    finally:
        if owns_reader:
            reader.close()


def _replay_with_reader(spec: Optional[Any], reader: TraceReader) -> ReplayReport:
    header = reader.header
    recorded_workload = header.get("workload_id", "?")
    policy = header.get("policy", "full")
    if spec is not None:
        caller_workload = workload_id(spec)
        if caller_workload != recorded_workload:
            raise ReplayError(
                f"trace was recorded for workload {recorded_workload} but "
                f"the given spec is workload {caller_workload}"
            )
    report = ReplayReport(
        ok=False,
        mode="scripted" if sample_k(policy) is None else "re-executed",
        policy=policy,
        workload_id=recorded_workload,
        events_seen=reader.footer.get("events_seen", 0),
        events_written=reader.footer.get("events_written", 0),
    )
    try:
        reader.verify_checksum()
    except TraceFormatError as exc:
        report.failures.append(str(exc))
        return report

    run_spec = reader.spec()
    network = run_spec.build_graph()
    protocol = run_spec.build_protocol()
    faults = run_spec.build_faults(network)
    scheduler: Any
    replay_scheduler: Optional[ReplayScheduler] = None
    if report.mode == "scripted":
        edges, texts = _delivery_script(reader)
        replay_scheduler = ReplayScheduler(edges, texts)
        scheduler = replay_scheduler
    elif faults is not None and faults.adversary is not None:
        scheduler = faults.adversary
    else:
        scheduler = run_spec.build_scheduler()

    from ..network.simulator import run_protocol

    buffer = io.BytesIO()
    recapture = TraceCapture(run_spec, network, buffer)
    try:
        result = run_protocol(
            network,
            protocol,
            scheduler,
            max_steps=run_spec.max_steps,
            record_trace=run_spec.record_trace,
            track_state_bits=run_spec.track_state_bits,
            stop_at_termination=run_spec.stop_at_termination,
            faults=faults,
            trace_sink=recapture,
        )
    except ReplayError as exc:
        recapture.abort()
        report.failures.append(str(exc))
        return report
    recapture.finalize(result)
    report.outcome = result.outcome.value

    if replay_scheduler is not None and not replay_scheduler.script_consumed:
        report.failures.append(
            f"execution ended after {replay_scheduler._pos} of "
            f"{len(replay_scheduler._edges)} recorded deliveries"
        )
    replayed = TraceReader(buffer)
    report.failures.extend(_compare_recordings(reader, replayed))
    report.ok = not report.failures
    return report
