"""Histograms from traces: the communication-load view of a run.

The paper's efficiency analysis (and the Devismes–Masuzawa–Tixeuil
communication-efficiency line in PAPERS.md) asks per-edge and per-vertex
questions the scalar :class:`~repro.network.metrics.RunMetrics` summary
cannot answer: how are message sizes distributed, which edges carry the
load, how deep do fault deferrals stack.  :class:`TraceProfiler` answers
them from either source of trace data — an in-memory
:class:`~repro.network.trace.Trace` or an ``.rtrace`` file — full or
sampled, using vectorized column passes throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from .format import KIND_DEFER, KIND_DELIVER, TraceReader

__all__ = ["TraceProfile", "TraceProfiler"]


@dataclass(frozen=True)
class TraceProfile:
    """One run's histogram summary (JSON-safe via :meth:`to_dict`)."""

    events: int
    deliveries: int
    deferrals: int
    total_bits: int
    max_message_bits: int
    mean_message_bits: float
    max_edge_messages: int
    max_vertex_load: int
    max_deferral_depth: int
    termination_step: Optional[int]
    #: Message size in bits → number of messages of that size.
    message_size_histogram: Dict[int, int] = field(default_factory=dict)
    #: Edge id → messages delivered over it.
    per_edge_messages: Dict[int, int] = field(default_factory=dict)
    #: Vertex id → messages delivered *to* it.
    per_vertex_load: Dict[int, int] = field(default_factory=dict)
    #: Consecutive-deferral run length → occurrences.
    deferral_depths: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form: histogram keys become strings."""
        return {
            "events": self.events,
            "deliveries": self.deliveries,
            "deferrals": self.deferrals,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "mean_message_bits": self.mean_message_bits,
            "max_edge_messages": self.max_edge_messages,
            "max_vertex_load": self.max_vertex_load,
            "max_deferral_depth": self.max_deferral_depth,
            "termination_step": self.termination_step,
            "message_size_histogram": {
                str(k): v for k, v in sorted(self.message_size_histogram.items())
            },
            "per_edge_messages": {
                str(k): v for k, v in sorted(self.per_edge_messages.items())
            },
            "per_vertex_load": {
                str(k): v for k, v in sorted(self.per_vertex_load.items())
            },
            "deferral_depths": {
                str(k): v for k, v in sorted(self.deferral_depths.items())
            },
        }


def _hist(values: np.ndarray) -> Dict[int, int]:
    uniques, counts = np.unique(values, return_counts=True)
    return {int(u): int(c) for u, c in zip(uniques, counts)}


class TraceProfiler:
    """Column-pass profiler over trace event arrays.

    Build one with :meth:`from_reader` (an ``.rtrace`` file, full or
    sampled) or :meth:`from_trace` (an in-memory delivery trace plus its
    network, which supplies the head vertex of each edge).
    """

    def __init__(
        self,
        *,
        step: np.ndarray,
        edge: np.ndarray,
        vertex: np.ndarray,
        kind: np.ndarray,
        bits: np.ndarray,
        termination_step: Optional[int] = None,
    ) -> None:
        self._step = step
        self._edge = edge
        self._vertex = vertex
        self._kind = kind
        self._bits = bits
        self._termination_step = termination_step
        self._deliver = np.asarray(kind) == KIND_DELIVER

    @classmethod
    def from_reader(cls, reader: TraceReader) -> "TraceProfiler":
        """Profile a recorded ``.rtrace`` file (lazy column loads)."""
        result = (reader.footer or {}).get("result") or {}
        metrics = result.get("metrics") or {}
        return cls(
            step=reader.column("step"),
            edge=reader.column("edge"),
            vertex=reader.column("vertex"),
            kind=reader.column("kind"),
            bits=reader.column("bits"),
            termination_step=metrics.get("termination_step"),
        )

    @classmethod
    def from_trace(
        cls, trace: Any, network: Any, *, termination_step: Optional[int] = None
    ) -> "TraceProfiler":
        """Profile an in-memory :class:`~repro.network.trace.Trace`."""
        deliveries = trace.deliveries
        n = len(deliveries)
        step = np.empty(n, dtype=np.int64)
        edge = np.empty(n, dtype=np.int32)
        bits = np.empty(n, dtype=np.int64)
        for i, record in enumerate(deliveries):
            step[i] = record.step
            edge[i] = record.edge_id
            bits[i] = record.bits
        heads = np.asarray(
            [network.edge_head(eid) for eid in range(network.num_edges)],
            dtype=np.int32,
        )
        vertex = (
            heads[edge] if n and heads.size else np.empty(n, dtype=np.int32)
        )
        return cls(
            step=step,
            edge=edge,
            vertex=vertex,
            kind=np.zeros(n, dtype=np.int8),  # in-memory traces: all deliveries
            bits=bits,
            termination_step=termination_step,
        )

    # ------------------------------------------------------------------
    # individual histograms
    # ------------------------------------------------------------------

    def message_size_histogram(self) -> Dict[int, int]:
        """Message size in bits → delivery count."""
        return _hist(np.asarray(self._bits)[self._deliver])

    def per_edge_messages(self) -> Dict[int, int]:
        """Edge id → deliveries over that edge."""
        return _hist(np.asarray(self._edge)[self._deliver])

    def per_vertex_load(self) -> Dict[int, int]:
        """Vertex id → deliveries into that vertex."""
        return _hist(np.asarray(self._vertex)[self._deliver])

    def deferral_depths(self) -> Dict[int, int]:
        """Run length of consecutive fault deferrals → occurrences."""
        deferred = np.asarray(self._kind) == KIND_DEFER
        if not deferred.any():
            return {}
        padded = np.concatenate(([False], deferred, [False]))
        flips = np.flatnonzero(np.diff(padded.astype(np.int8)))
        lengths = flips[1::2] - flips[0::2]
        return _hist(lengths)

    def termination_step(self) -> Optional[int]:
        """From the recording's footer metrics (``None`` for in-memory)."""
        return self._termination_step

    # ------------------------------------------------------------------
    # full profile
    # ------------------------------------------------------------------

    def profile(self) -> TraceProfile:
        """All histograms plus scalar extremes, in one pass per column."""
        sizes = self.message_size_histogram()
        per_edge = self.per_edge_messages()
        per_vertex = self.per_vertex_load()
        depths = self.deferral_depths()
        deliver_bits = np.asarray(self._bits)[self._deliver]
        deliveries = int(self._deliver.sum())
        events = int(len(self._kind))
        total_bits = int(deliver_bits.sum()) if deliveries else 0
        return TraceProfile(
            events=events,
            deliveries=deliveries,
            deferrals=events - deliveries,
            total_bits=total_bits,
            max_message_bits=int(deliver_bits.max()) if deliveries else 0,
            mean_message_bits=(total_bits / deliveries) if deliveries else 0.0,
            max_edge_messages=max(per_edge.values(), default=0),
            max_vertex_load=max(per_vertex.values(), default=0),
            max_deferral_depth=max(depths.keys(), default=0),
            termination_step=self._termination_step,
            message_size_histogram=sizes,
            per_edge_messages=per_edge,
            per_vertex_load=per_vertex,
            deferral_depths=depths,
        )
