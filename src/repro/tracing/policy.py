"""Trace policy strings: ``None`` / ``"full"`` / ``"sample:k"``.

The :attr:`~repro.api.spec.RunSpec.trace` field carries one of these
canonical strings (or ``None``, the default: no tracing).  This module is
dependency-free so :mod:`repro.api.spec` can import it lazily during spec
validation without pulling in numpy or the format layer.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["TracePolicyError", "normalize_policy", "sample_k"]

#: Policy spellings that mean "no tracing" (normalised to ``None``).
_OFF = ("off", "none", "")


class TracePolicyError(ValueError):
    """A trace policy string is malformed."""


def normalize_policy(value: object) -> Optional[str]:
    """Canonicalise a trace policy value.

    Accepts ``None`` / ``"off"`` / ``"none"`` / ``""`` (→ ``None``),
    ``"full"``, and ``"sample:k"`` for an integer ``k >= 1`` (``k`` is
    re-rendered so ``"sample:08"`` and ``"sample:8"`` share one spec_id).
    Anything else raises :class:`TracePolicyError`.

    >>> normalize_policy("off") is None
    True
    >>> normalize_policy("full")
    'full'
    >>> normalize_policy("sample:08")
    'sample:8'
    """
    if value is None:
        return None
    if not isinstance(value, str):
        raise TracePolicyError(
            f"trace policy must be a string ('full', 'sample:k') or None, "
            f"got {type(value).__name__}"
        )
    text = value.strip().lower()
    if text in _OFF:
        return None
    if text == "full":
        return "full"
    if text.startswith("sample:"):
        k_text = text[len("sample:"):]
        try:
            k = int(k_text)
        except ValueError:
            raise TracePolicyError(
                f"sample policy needs an integer k, got 'sample:{k_text}'"
            ) from None
        if k < 1:
            raise TracePolicyError(f"sample policy needs k >= 1, got k={k}")
        return f"sample:{k}"
    raise TracePolicyError(
        f"unknown trace policy {value!r}; use 'off', 'full' or 'sample:k'"
    )


def sample_k(policy: Optional[str]) -> Optional[int]:
    """The keep-1-in-``k`` rate of a canonical policy (``None`` = unsampled).

    >>> sample_k("full") is None
    True
    >>> sample_k("sample:8")
    8
    """
    if policy is not None and policy.startswith("sample:"):
        return int(policy[len("sample:"):])
    return None
