"""Engine-side trace capture: from ``RunSpec.trace`` policies to ``.rtrace``.

A :class:`TraceCapture` is the ``trace_sink`` both engines thread through
their delivery loops.  It owns the whole recording pipeline for one run:
policy → sampler → writer → finalized artifact, plus the counters
(``trace_events`` / ``trace_sampled`` / ``trace_bytes``) the engines fold
into :attr:`~repro.api.spec.RunRecord.metrics` exactly like PR 5's fault
counters.

Where the bytes go is resolved per-run by :func:`open_capture`:

1. an explicit file set by :func:`capture_traces(file=...) <capture_traces>`
   (the CLI's ``--trace-out``),
2. a directory set by :func:`capture_traces(directory=...) <capture_traces>`
   or the ``REPRO_TRACE_DIR`` environment variable (inherited by
   ``BatchRunner`` worker processes), laid out as
   ``<dir>/<spec_id>/<seed>-<engine>.rtrace`` beside the result store,
3. otherwise a null sink: events are still counted, sampled and hashed —
   so metrics stay identical — but no file is produced.

Identity is the engine-neutral :func:`workload_id`: the spec hash with
``engine`` *and* ``trace`` excluded (on top of spec_id's label/faults
rules).  Excluding the engine is what lets async and fastpath write
byte-identical files; excluding the trace policy is what lets
``repro trace replay FILE --spec original.json`` accept the spec file the
recording was launched from, before any ``--trace`` override.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import asdict
from typing import Any, BinaryIO, Dict, Iterator, List, Optional, Union

from .format import (
    KIND_DEFER,
    KIND_DELIVER,
    TraceWriter,
    states_digest,
)
from .policy import sample_k
from .sampler import TraceSampler

__all__ = [
    "TRACE_DIR_ENV",
    "TraceCapture",
    "capture_traces",
    "open_capture",
    "trace_artifact_path",
    "workload_id",
    "result_summary",
]

#: Environment variable naming the trace artifact directory.  Set (also)
#: by :func:`capture_traces` so BatchRunner worker processes inherit it.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

# Session-scoped destination overrides (see capture_traces).
_ACTIVE_FILE: Optional[Union[str, BinaryIO]] = None
_ACTIVE_DIR: Optional[str] = None


def workload_id(spec: Any) -> str:
    """Engine- and policy-neutral identity of a traced run.

    sha256[:16] over the canonical spec dict with ``label``, ``engine``
    and ``trace`` always excluded and ``faults`` excluded when ``None``
    (the :attr:`~repro.api.spec.RunSpec.spec_id` conventions, minus the
    two fields that must not distinguish recordings of the same run).
    """
    payload = spec.to_dict()
    payload.pop("label", None)
    payload.pop("engine", None)
    payload.pop("trace", None)
    if payload.get("faults") is None:
        payload.pop("faults", None)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def trace_artifact_path(root: str, spec: Any) -> str:
    """Canonical artifact location: ``<root>/<spec_id>/<seed>-<engine>.rtrace``."""
    seed = "none" if spec.seed is None else str(spec.seed)
    return os.path.join(root, spec.spec_id, f"{seed}-{spec.engine}.rtrace")


@contextlib.contextmanager
def capture_traces(
    directory: Optional[str] = None,
    file: Optional[Union[str, BinaryIO]] = None,
) -> Iterator[None]:
    """Route trace artifacts for the duration of the ``with`` block.

    ``file`` pins every capture to one destination (single-run use:
    ``repro run --trace-out``); ``directory`` spreads runs over the
    ``trace_artifact_path`` layout and is exported via ``REPRO_TRACE_DIR``
    so spawned worker processes capture to the same place.
    """
    global _ACTIVE_FILE, _ACTIVE_DIR
    if directory is not None and file is not None:
        raise ValueError("capture_traces takes a directory or a file, not both")
    prev_file, prev_dir = _ACTIVE_FILE, _ACTIVE_DIR
    prev_env = os.environ.get(TRACE_DIR_ENV)
    _ACTIVE_FILE, _ACTIVE_DIR = file, directory
    if directory is not None:
        os.environ[TRACE_DIR_ENV] = directory
    try:
        yield
    finally:
        _ACTIVE_FILE, _ACTIVE_DIR = prev_file, prev_dir
        if directory is not None:
            if prev_env is None:
                os.environ.pop(TRACE_DIR_ENV, None)
            else:
                os.environ[TRACE_DIR_ENV] = prev_env


def _resolve_destination(spec: Any) -> Optional[Union[str, BinaryIO]]:
    if _ACTIVE_FILE is not None:
        return _ACTIVE_FILE
    root = _ACTIVE_DIR if _ACTIVE_DIR is not None else os.environ.get(TRACE_DIR_ENV)
    if root:
        return trace_artifact_path(root, spec)
    return None


def open_capture(spec: Any, network: Any) -> Optional["TraceCapture"]:
    """The run's :class:`TraceCapture`, or ``None`` when tracing is off."""
    if spec.trace is None:
        return None
    return TraceCapture(spec, network, _resolve_destination(spec))


def result_summary(result: Any) -> Dict[str, Any]:
    """The footer's verification summary of a finished run.

    Everything replay compares bit-for-bit: the outcome, the full metrics
    block, and a canonical digest of the final per-vertex states (states
    themselves are arbitrary Python objects, so they travel as a digest).
    """
    return {
        "outcome": result.outcome.value,
        "terminated": result.terminated,
        "metrics": asdict(result.metrics),
        "states_sha256": states_digest(result.states),
    }


class _NullSink:
    """Discards bytes; lets the writer count/hash without an artifact."""

    def write(self, data: bytes) -> int:
        return len(data)

    def flush(self) -> None:
        pass


class TraceCapture:
    """One run's trace sink: sampling, interning, streaming, counters.

    The engines call :meth:`record` once per delivery and :meth:`defer`
    once per fault-deferred pop, then :meth:`finalize` with the finished
    :class:`~repro.network.simulator.RunResult` (or :meth:`abort` on
    failure, which removes the partial artifact).  Deferral events are
    recorded content-free — ``(step, -1, -1, KIND_DEFER, 0, -1)`` — the
    fault RNG, not the deferred message, is the reproducible quantity.
    """

    def __init__(
        self,
        spec: Any,
        network: Any,
        destination: Optional[Union[str, BinaryIO]],
    ) -> None:
        if spec.trace is None:
            raise ValueError("TraceCapture needs a spec with a trace policy")
        self.spec = spec
        self.policy: str = spec.trace
        self.workload_id = workload_id(spec)
        k = sample_k(self.policy)
        self._sampler: Optional[TraceSampler] = (
            TraceSampler(self.workload_id, k) if k is not None else None
        )
        # Head vertex per edge, precomputed: record() sits on the hot path.
        self._edge_head: List[int] = [
            network.edge_head(eid) for eid in range(network.num_edges)
        ]
        self._seen = 0
        self._tmp_path: Optional[str] = None
        self.path: Optional[str] = None
        if isinstance(destination, str):
            self.path = destination
            parent = os.path.dirname(destination)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._tmp_path = destination + ".tmp"
            target: Union[str, BinaryIO] = self._tmp_path
        elif destination is None:
            target = _NullSink()  # type: ignore[assignment]
        else:
            target = destination
        header = {
            "workload_id": self.workload_id,
            "spec": self._neutral_spec_dict(spec),
            "seed": spec.seed,
            "policy": self.policy,
            "sample_k": k,
        }
        self._writer = TraceWriter(target, header=header)

    @staticmethod
    def _neutral_spec_dict(spec: Any) -> Dict[str, Any]:
        payload = spec.to_dict()
        payload.pop("engine", None)  # engine-byte-identical files
        return payload

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------

    def record(self, step: int, edge_id: int, payload: Any, bits: int) -> None:
        """One delivered message (called at the engines' delivery site)."""
        index = self._seen
        self._seen += 1
        if self._sampler is not None and not self._sampler.keep(index):
            return
        self._writer.append(
            step,
            edge_id,
            self._edge_head[edge_id],
            KIND_DELIVER,
            bits,
            self._writer.intern(payload),
        )

    def defer(self, step: int) -> None:
        """One fault-deferred pop (content-free; see class docstring)."""
        index = self._seen
        self._seen += 1
        if self._sampler is not None and not self._sampler.keep(index):
            return
        self._writer.append(step, -1, -1, KIND_DEFER, 0, -1)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def finalize(self, result: Any) -> None:
        """Seal the artifact: footer with counts, checksum, run summary."""
        self._writer.finalize(
            events_seen=self._seen, result=result_summary(result)
        )
        if self._tmp_path is not None and self.path is not None:
            os.replace(self._tmp_path, self.path)
            self._tmp_path = None

    def abort(self) -> None:
        """Drop a partial recording after an engine failure."""
        self._writer.close()
        if self._tmp_path is not None:
            with contextlib.suppress(OSError):
                os.remove(self._tmp_path)
            self._tmp_path = None

    def counters(self) -> Dict[str, int]:
        """Engine-extras block for :attr:`RunRecord.metrics`."""
        return {
            "trace_events": self._seen,
            "trace_sampled": self._writer.events_written,
            "trace_bytes": self._writer.bytes_written,
        }
