"""Experiment service: submit campaigns over HTTP, serve results from the store.

Two layers with one seam:

* :mod:`repro.service.jobs` — :class:`ExperimentService`, which validates
  submission payloads, runs each as a background job through the ordinary
  :class:`~repro.api.campaign.CampaignRunner`, and exposes observable
  :class:`Job` state.  No HTTP anywhere.
* :mod:`repro.service.server` — the stdlib :mod:`http.server` front end
  (``repro serve``): ``POST /experiments``, ``GET /experiments/<id>``
  (optionally a streaming NDJSON watch), ``GET /experiments/<id>/result``.

Attach a :class:`~repro.store.store.ResultStore` and a re-submitted
completed campaign is answered from the store index without executing a
single spec — the whole point of content-addressed results.

Typical in-process use (what the tests do)::

    from repro.service import ExperimentService, make_server, serve_forever

    service = ExperimentService(store=store, parallel=False)
    server = make_server("127.0.0.1", 0, service)   # port 0 = pick free
    serve_forever(server, ready_line=False, in_thread=True)
    ...
    server.shutdown(); service.close()
"""

from .jobs import ExperimentService, Job, JobError
from .server import ServiceServer, make_server, serve_forever

__all__ = [
    "ExperimentService",
    "Job",
    "JobError",
    "ServiceServer",
    "make_server",
    "serve_forever",
]
